// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78) —
// the checksum guarding the tape file format's section trailers.
//
// Software slice-by-4 table implementation: no SSE4.2 dependency, a few
// GB/s, which dwarfs tape load throughput. CRC32C detects every
// single-bit error and every burst up to 32 bits in the covered data,
// which is exactly the property the tape bit-flip sweep test pins.
#ifndef XSQ_COMMON_CRC32C_H_
#define XSQ_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace xsq {

// CRC of `data` continuing from `seed` (0 for a fresh checksum). The
// conventional init/finalize inversions are applied per call, so
// chaining sections means passing the previous section's crc as seed.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32c(std::string_view data, uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

}  // namespace xsq

#endif  // XSQ_COMMON_CRC32C_H_
