// Small string and number utilities shared across XSQ++ modules.
//
// XPath 1.0 comparisons coerce operands to numbers when both sides look
// numeric; `contains` and `=` fall back to string comparison otherwise.
// These helpers centralize that logic so the streaming engines and the
// DOM oracle agree bit-for-bit.
#ifndef XSQ_COMMON_STRINGS_H_
#define XSQ_COMMON_STRINGS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xsq {

// Parses a decimal floating point number after trimming XML whitespace.
// Returns nullopt when the trimmed string is not a complete number.
std::optional<double> ParseNumber(std::string_view s);

// True for the XML whitespace characters space, tab, CR, LF.
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

// Removes leading and trailing XML whitespace.
std::string_view TrimWhitespace(std::string_view s);

// True if `haystack` contains `needle` (XPath contains()).
bool Contains(std::string_view haystack, std::string_view needle);

// Splits on a single character; keeps empty pieces.
std::vector<std::string_view> Split(std::string_view s, char sep);

// Formats a double the way XPath 1.0 number-to-string conversion does:
// integral values print without a decimal point ("42"), others with
// shortest round-trip precision.
std::string FormatNumber(double value);

// Escapes <, >, &, ", ' for inclusion in XML text or attribute values.
std::string XmlEscape(std::string_view s);

// Line-oriented payload escaping used by the xsqd wire protocol and the
// pub/sub EVENT frames: "\n" = newline, "\t" = tab, "\\" = backslash,
// so arbitrary document and item bytes fit on one protocol line. Kept
// here (not in net/) so the service layer can format event frames with
// exactly the encoding the transports decode.
std::string LineEscape(std::string_view text);
std::string LineUnescape(std::string_view text);

// A deterministic 64-bit split-mix style PRNG used by data generators and
// property tests so corpora and test cases are reproducible across runs.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace xsq

#endif  // XSQ_COMMON_STRINGS_H_
