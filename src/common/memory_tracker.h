// Deterministic memory accounting used to reproduce the paper's memory
// figures (Figures 19 and 20) without depending on OS/JVM reporting.
//
// Engines report logical buffered/materialized bytes through a
// MemoryTracker; the benchmark harness reads the peak. This measures the
// quantity the paper studies: how much of the stream a processor must
// retain (buffers for streaming engines, the whole tree for DOM engines).
#ifndef XSQ_COMMON_MEMORY_TRACKER_H_
#define XSQ_COMMON_MEMORY_TRACKER_H_

#include <cstddef>
#include <cstdint>

namespace xsq {

class MemoryTracker {
 public:
  MemoryTracker() = default;

  // Not copyable: trackers are identity objects shared by reference.
  MemoryTracker(const MemoryTracker&) = delete;
  MemoryTracker& operator=(const MemoryTracker&) = delete;

  void Add(size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  void Release(size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  void Reset() {
    current_ = 0;
    peak_ = 0;
  }

  // Drops the current accounting (an engine reset discards all buffered
  // items at once) while preserving the observed peak.
  void ReleaseAll() { current_ = 0; }

  size_t current_bytes() const { return current_; }
  size_t peak_bytes() const { return peak_; }

 private:
  size_t current_ = 0;
  size_t peak_ = 0;
};

}  // namespace xsq

#endif  // XSQ_COMMON_MEMORY_TRACKER_H_
