#include "common/status.h"

namespace xsq {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kLimitExceeded:
      return "LimitExceeded";
    case StatusCode::kDataCorruption:
      return "DataCorruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace xsq
