#include "common/failpoints.h"

#include <cstdio>
#include <cstdlib>

namespace xsq {
namespace {

// splitmix64: deterministic, seedable, good enough for probability
// triggers (this is test infrastructure, not cryptography).
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

FailPoints& FailPoints::Instance() {
  static FailPoints* instance = [] {
    auto* fp = new FailPoints();
    if (const char* env = std::getenv("XSQ_FAILPOINTS")) {
      // A bad spec in the environment should be loud but not fatal:
      // the daemon keeps running with whatever did parse.
      Status parsed = fp->ArmFromEnvSpec(env);
      if (!parsed.ok()) {
        std::fprintf(stderr, "[xsq] XSQ_FAILPOINTS: %s\n",
                     parsed.ToString().c_str());
      }
    }
    return fp;
  }();
  return *instance;
}

void FailPoints::Arm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_[std::string(name)] = State{};
}

void FailPoints::ArmProbability(std::string_view name, double p,
                                uint64_t seed) {
  State state;
  state.mode = Mode::kProbability;
  state.probability = p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
  state.rng = seed ^ 0x5DEECE66Dull;
  std::lock_guard<std::mutex> lock(mu_);
  armed_[std::string(name)] = state;
}

void FailPoints::ArmAfter(std::string_view name, uint64_t n) {
  State state;
  state.mode = Mode::kAfterN;
  state.after = n;
  std::lock_guard<std::mutex> lock(mu_);
  armed_[std::string(name)] = state;
}

void FailPoints::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.erase(std::string(name));
}

void FailPoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
}

bool FailPoints::Fire(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (armed_.empty()) return false;  // fast path: nothing armed at all
  auto it = armed_.find(std::string(name));
  if (it == armed_.end()) return false;
  State& state = it->second;
  uint64_t hit = state.hits++;
  switch (state.mode) {
    case Mode::kAlways:
      return true;
    case Mode::kProbability:
      return static_cast<double>(NextRandom(&state.rng) >> 11) *
                 (1.0 / 9007199254740992.0) <
             state.probability;
    case Mode::kAfterN:
      return hit >= state.after;
  }
  return false;
}

uint64_t FailPoints::hits(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = armed_.find(std::string(name));
  return it == armed_.end() ? 0 : it->second.hits;
}

Status FailPoints::ArmFromEnvSpec(std::string_view env) {
  size_t pos = 0;
  while (pos < env.size()) {
    size_t comma = env.find(',', pos);
    std::string_view entry = env.substr(
        pos, comma == std::string_view::npos ? env.size() - pos : comma - pos);
    pos = comma == std::string_view::npos ? env.size() : comma + 1;
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    std::string_view name =
        eq == std::string_view::npos ? entry : entry.substr(0, eq);
    std::string_view spec =
        eq == std::string_view::npos ? "1" : entry.substr(eq + 1);
    if (name.empty()) {
      return Status::InvalidArgument("failpoint spec with empty name: '" +
                                     std::string(entry) + "'");
    }
    if (spec == "1" || spec == "always") {
      Arm(name);
    } else if (!spec.empty() && spec[0] == 'p') {
      char* end = nullptr;
      std::string prob(spec.substr(1));
      double p = std::strtod(prob.c_str(), &end);
      if (end == nullptr || *end != '\0' || prob.empty()) {
        return Status::InvalidArgument("bad probability in failpoint spec '" +
                                       std::string(entry) + "'");
      }
      ArmProbability(name, p);
    } else if (spec.rfind("after", 0) == 0) {
      std::string count(spec.substr(5));
      char* end = nullptr;
      uint64_t n = std::strtoull(count.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || count.empty()) {
        return Status::InvalidArgument("bad count in failpoint spec '" +
                                       std::string(entry) + "'");
      }
      ArmAfter(name, n);
    } else {
      return Status::InvalidArgument("unknown failpoint spec '" +
                                     std::string(entry) + "'");
    }
  }
  return Status::OK();
}

std::vector<std::string> FailPoints::ArmedNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(armed_.size());
  for (const auto& [name, state] : armed_) names.push_back(name);
  return names;
}

}  // namespace xsq
