// Status and Result<T>: exception-free error handling in the style of
// RocksDB's Status / Arrow's Result. All fallible public APIs in XSQ++
// return one of these types.
#ifndef XSQ_COMMON_STATUS_H_
#define XSQ_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace xsq {

// Broad error categories. Kept deliberately small; detail lives in the
// human-readable message (with line/column for parse errors).
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed (e.g. bad query)
  kParseError,        // malformed XML / XPath input
  kNotSupported,      // feature outside the implemented XPath subset
  kOutOfRange,        // index/size violation
  kResourceExhausted, // admission/backpressure/memory budget rejection
  kInternal,          // invariant violation inside the library
  kCancelled,         // caller cancelled the operation (CancelToken)
  kDeadlineExceeded,  // the operation's deadline passed before it finished
  kLimitExceeded,     // input exceeded a configured hard limit (ParserLimits)
  kDataCorruption,    // stored bytes failed integrity checks (tape CRC etc.)
};

// Returns a stable human-readable name such as "ParseError".
const char* StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of an operation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status LimitExceeded(std::string msg) {
    return Status(StatusCode::kLimitExceeded, std::move(msg));
  }
  static Status DataCorruption(std::string msg) {
    return Status(StatusCode::kDataCorruption, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "ParseError: unexpected '<' at line 3, column 7".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> holds either a value or an error Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work.
  Result(T value) : value_(std::move(value)) {}       // NOLINT
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(value_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates a non-OK status to the caller.
#define XSQ_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::xsq::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

// Evaluates a Result<T> expression, propagating errors, else binds `lhs`.
#define XSQ_ASSIGN_OR_RETURN(lhs, expr)      \
  auto XSQ_CONCAT_(_res, __LINE__) = (expr); \
  if (!XSQ_CONCAT_(_res, __LINE__).ok())     \
    return XSQ_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(XSQ_CONCAT_(_res, __LINE__)).value()

#define XSQ_CONCAT_IMPL_(a, b) a##b
#define XSQ_CONCAT_(a, b) XSQ_CONCAT_IMPL_(a, b)

}  // namespace xsq

#endif  // XSQ_COMMON_STATUS_H_
