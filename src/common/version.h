// Library version, following the paper-era release numbering (the
// original XSQ shipped as 1.0).
#ifndef XSQ_COMMON_VERSION_H_
#define XSQ_COMMON_VERSION_H_

namespace xsq {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr char kVersionString[] = "1.0.0";

}  // namespace xsq

#endif  // XSQ_COMMON_VERSION_H_
