#include "common/strings.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace xsq {

std::string_view TrimWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && IsXmlWhitespace(s[begin])) ++begin;
  size_t end = s.size();
  while (end > begin && IsXmlWhitespace(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::optional<double> ParseNumber(std::string_view s) {
  std::string_view t = TrimWhitespace(s);
  if (t.empty()) return std::nullopt;
  // strtod needs NUL termination; numerals short enough for the stack
  // buffer (the overwhelming majority) avoid a heap allocation, longer
  // ones — legal XPath numerals like a 70-digit integer or a padded
  // "0.000...1" — take the std::string path instead of being rejected.
  char stack_buf[64];
  std::string heap_buf;
  const char* begin;
  if (t.size() < sizeof(stack_buf)) {
    std::memcpy(stack_buf, t.data(), t.size());
    stack_buf[t.size()] = '\0';
    begin = stack_buf;
  } else {
    heap_buf.assign(t);
    begin = heap_buf.c_str();
  }
  char* end = nullptr;
  double value = std::strtod(begin, &end);
  if (end != begin + t.size()) return std::nullopt;
  if (std::isnan(value)) return std::nullopt;
  return value;
}

bool Contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

std::vector<std::string_view> Split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string FormatNumber(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "Infinity" : "-Infinity";
  double integral_part;
  if (std::modf(value, &integral_part) == 0.0 &&
      std::fabs(value) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  // Shortest representation that round-trips: %.15g suffices for most
  // doubles, %.17g always does. Fixed %.12g silently lost precision,
  // which made streaming and DOM evaluators disagree on values that
  // differ only past the 12th significant digit.
  char buf[64];
  for (int precision = 15; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string LineEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\\': out += "\\\\"; break;
      default: out.push_back(c); break;
    }
  }
  return out;
}

std::string LineUnescape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      switch (text[i]) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case '\\': out.push_back('\\'); break;
        default: out.push_back(text[i]); break;
      }
    } else {
      out.push_back(text[i]);
    }
  }
  return out;
}

}  // namespace xsq
