// Failpoints: named fault-injection sites compiled into the library for
// resilience testing, in the spirit of RocksDB's SyncPoint / FreeBSD's
// fail(9).
//
// A site is one macro invocation naming the failure it simulates:
//
//   XSQ_FAILPOINT("tape.load.short_read",
//                 return Status::DataCorruption("injected short read"));
//
// Sites are inert (a mutex-guarded hash probe, test builds only) until a
// test or the environment arms them:
//
//   FailPoints::Instance().Arm("tape.load.short_read");        // always
//   FailPoints::Instance().ArmProbability("x", 0.25, seed);    // p = 0.25
//   FailPoints::Instance().ArmAfter("x", 3);   // pass 3 times, then fire
//
// or  XSQ_FAILPOINTS="tape.load.short_read=1,x=p0.25,y=after3" xsqd ...
//
// Under -DXSQ_FAILPOINTS=OFF (the default) the macro expands to nothing
// and the sites do not exist in the binary; tools/check.sh's failpoint
// leg builds with -DXSQ_FAILPOINTS=ON and runs the fault-injection test
// under ASan, proving every armed site surfaces as a clean per-session
// Status rather than a crash, deadlock, or leak. kFailPointCatalog
// enumerates every site compiled into the library so that test can arm
// them all without grepping the sources.
#ifndef XSQ_COMMON_FAILPOINTS_H_
#define XSQ_COMMON_FAILPOINTS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace xsq {

#if XSQ_FAILPOINTS_ENABLED
inline constexpr bool kFailPointsCompiledIn = true;
#else
inline constexpr bool kFailPointsCompiledIn = false;
#endif

// Every failpoint site in the library, one entry per XSQ_FAILPOINT
// call. Keep in sync when adding sites; the fault-injection test walks
// this list and arms each name.
inline constexpr const char* kFailPointCatalog[] = {
    "xml.parse.io_error",         // SaxParser::Feed - upstream read failed
    "core.engine.alloc_fail",     // StreamingQuery::Open - engine allocation
    "service.worker.alloc_fail",  // QueryService::OpenSession - session alloc
    "service.session.push_fault", // Session::Push - worker-loop evaluation
    "service.record.alloc_fail",  // QueryService::RecordDocument - tape alloc
    "tape.load.short_read",       // Tape::Load - file truncated mid-read
    "tape.save.short_write",      // Tape::Save - disk full / write error
    "net.accept.shed",            // net::Server - force accept-side shedding
    "net.read.fail",              // net::Server - socket read error path
    "net.write.fail",             // net::Server - socket write error path
    "pubsub.fanout.fail",         // QueryService fan-out - sink delivery drop
    "cluster.repl.fail",          // cluster::Replicator - replication send site
};

class FailPoints {
 public:
  // The process-wide registry. First call parses the XSQ_FAILPOINTS
  // environment variable.
  static FailPoints& Instance();

  // Arm `name` to fire on every hit.
  void Arm(std::string_view name);
  // Arm `name` to fire each hit independently with probability `p`,
  // using a deterministic per-site RNG seeded with `seed`.
  void ArmProbability(std::string_view name, double p, uint64_t seed = 1);
  // Arm `name` to pass `n` hits and fire on every hit after that.
  void ArmAfter(std::string_view name, uint64_t n);

  void Disarm(std::string_view name);
  void DisarmAll();

  // The site call: true if `name` is armed and triggers on this hit.
  bool Fire(std::string_view name);

  // Hits observed at `name` since it was last armed (armed sites only).
  uint64_t hits(std::string_view name) const;

  // Parses an "name=spec,name=spec" string; spec is "1"/"always",
  // "p<float>", or "after<N>". Unknown specs fail without arming.
  Status ArmFromEnvSpec(std::string_view env);

  std::vector<std::string> ArmedNames() const;

 private:
  enum class Mode : uint8_t { kAlways, kProbability, kAfterN };
  struct State {
    Mode mode = Mode::kAlways;
    double probability = 1.0;
    uint64_t after = 0;
    uint64_t hits = 0;
    uint64_t rng = 1;  // splitmix64 state for kProbability
  };

  FailPoints() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, State> armed_;
};

// Expands a fault-injection site. `...` is the statement to execute
// when the site fires (typically `return Status::...(...)`). Compiled
// out entirely unless the build sets XSQ_FAILPOINTS_ENABLED.
#if XSQ_FAILPOINTS_ENABLED
#define XSQ_FAILPOINT(name, ...)                         \
  do {                                                   \
    if (::xsq::FailPoints::Instance().Fire(name)) {      \
      __VA_ARGS__;                                       \
    }                                                    \
  } while (false)
#else
#define XSQ_FAILPOINT(name, ...) \
  do {                           \
  } while (false)
#endif

}  // namespace xsq

#endif  // XSQ_COMMON_FAILPOINTS_H_
