#include "obs/registry.h"

#include <cinttypes>
#include <cstdio>

namespace xsq::obs {

namespace {

void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  *out += buf;
}

}  // namespace

Histogram* Registry::GetOrCreateHistogram(std::string_view name,
                                          std::string_view help,
                                          std::string_view labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      return &entry->histogram;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name.assign(name);
  entry->help.assign(help);
  entry->labels.assign(labels);
  entries_.push_back(std::move(entry));
  return &entries_.back()->histogram;
}

const Histogram* Registry::FindHistogram(std::string_view name,
                                         std::string_view labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      return &entry->histogram;
    }
  }
  return nullptr;
}

std::string Registry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  const std::string* family = nullptr;  // name whose header was emitted
  for (const std::unique_ptr<Entry>& entry : entries_) {
    Histogram::Snapshot snap = entry->histogram.snapshot();
    // One # HELP/# TYPE header per metric family: labeled series of one
    // name are registered consecutively and share the header.
    if (family == nullptr || *family != entry->name) {
      if (!entry->help.empty()) {
        out += "# HELP " + entry->name + " " + entry->help + "\n";
      }
      out += "# TYPE " + entry->name + " histogram\n";
      family = &entry->name;
    }
    // `name_sum{engine="nc"}` for labeled series, `name_sum` otherwise.
    const std::string suffix_labels =
        entry->labels.empty() ? "" : "{" + entry->labels + "}";
    // le joins any series labels inside one brace list.
    const std::string le_prefix =
        entry->labels.empty()
            ? entry->name + "_bucket{le=\""
            : entry->name + "_bucket{" + entry->labels + ",le=\"";

    size_t highest = 0;
    for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (snap.buckets[i] != 0) highest = i;
    }
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= highest; ++i) {
      cumulative += snap.buckets[i];
      out += le_prefix;
      AppendUint(&out, Histogram::BucketUpperBound(i));
      out += "\"} ";
      AppendUint(&out, cumulative);
      out += '\n';
    }
    out += le_prefix + "+Inf\"} ";
    AppendUint(&out, snap.count);
    out += '\n';
    out += entry->name + "_sum" + suffix_labels + " ";
    AppendUint(&out, snap.sum);
    out += '\n';
    out += entry->name + "_count" + suffix_labels + " ";
    AppendUint(&out, snap.count);
    out += '\n';
    out += entry->name + "_p50" + suffix_labels + " ";
    AppendDouble(&out, snap.p50());
    out += '\n';
    out += entry->name + "_p95" + suffix_labels + " ";
    AppendDouble(&out, snap.p95());
    out += '\n';
    out += entry->name + "_p99" + suffix_labels + " ";
    AppendDouble(&out, snap.p99());
    out += '\n';
    out += entry->name + "_max" + suffix_labels + " ";
    AppendUint(&out, snap.max);
    out += '\n';
  }
  return out;
}

void Registry::AppendScalar(std::string* out, std::string_view name,
                            std::string_view type, uint64_t value) {
  *out += "# TYPE ";
  out->append(name);
  *out += ' ';
  out->append(type);
  *out += '\n';
  out->append(name);
  *out += ' ';
  AppendUint(out, value);
  *out += '\n';
}

}  // namespace xsq::obs
