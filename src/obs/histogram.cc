#include "obs/histogram.h"

namespace xsq::obs {

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  for (size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

double Histogram::Snapshot::Quantile(double q) const {
  // Rank against the bucket totals, not `count`: a snapshot taken while
  // writers are recording may have copied the two at slightly different
  // instants, and the quantile must stay inside the copied buckets.
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;

  // 1-based rank of the requested quantile.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    if (buckets[i] == 0) continue;
    if (cumulative + buckets[i] >= rank) {
      double lower = static_cast<double>(BucketLowerBound(i));
      double upper = static_cast<double>(BucketUpperBound(i));
      if (i == kBucketCount - 1 || upper < lower) return lower;
      // Interpolate linearly by the rank's position inside the bucket.
      double within = static_cast<double>(rank - cumulative - 1) /
                      static_cast<double>(buckets[i]);
      double value = lower + within * (upper - lower);
      // The observed max is a tighter bound than the bucket ceiling.
      double cap = static_cast<double>(max);
      return cap > 0.0 && value > cap && cumulative + buckets[i] == total
                 ? cap
                 : value;
    }
    cumulative += buckets[i];
  }
  return static_cast<double>(max);
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  for (size_t i = 0; i < kBucketCount; ++i) buckets[i] += other.buckets[i];
}

}  // namespace xsq::obs
