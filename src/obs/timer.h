// RAII timers over the obs histograms.
//
// ScopedTimer measures one region and records its duration (in
// microseconds, the unit every service histogram uses) into a Histogram
// when it goes out of scope. The clock is steady_clock — two reads per
// timed region, no allocation, safe on any thread.
#ifndef XSQ_OBS_TIMER_H_
#define XSQ_OBS_TIMER_H_

#include <chrono>
#include <cstdint>

#include "obs/histogram.h"

namespace xsq::obs {

// Monotonic nanoseconds since an arbitrary epoch.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t NanosToMicros(uint64_t nanos) { return nanos / 1000; }

// Records the lifetime of the scope into `histogram` (microseconds).
// A null histogram makes the timer a near-no-op (one clock read).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_ns_(MonotonicNanos()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(NanosToMicros(MonotonicNanos() - start_ns_));
    }
  }

  // Elapsed time so far, without stopping the timer.
  uint64_t ElapsedNanos() const { return MonotonicNanos() - start_ns_; }
  uint64_t ElapsedMicros() const { return NanosToMicros(ElapsedNanos()); }

  // Detaches the histogram; nothing is recorded at destruction.
  void Cancel() { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  const uint64_t start_ns_;
};

}  // namespace xsq::obs

#endif  // XSQ_OBS_TIMER_H_
