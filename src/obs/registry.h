// Registry: named histograms plus Prometheus-style text exposition.
//
// The registry owns its histograms; GetOrCreateHistogram returns a
// stable pointer that stays valid for the registry's lifetime, so hot
// paths resolve a metric once at startup and then record lock-free.
// The registry lock covers only registration and render iteration,
// never Record().
//
// RenderText() emits, per histogram <name> (recorded in microseconds by
// convention, reflected in the _us suffix the service layer uses):
//
//   # HELP <name> <help>
//   # TYPE <name> histogram
//   <name>_bucket{le="<bound>"} <cumulative count>   (non-empty prefix)
//   <name>_bucket{le="+Inf"} <count>
//   <name>_sum <sum>
//   <name>_count <count>
//   <name>_p50 / _p95 / _p99 <interpolated quantile>
//   <name>_max <max>
//
// The quantile lines are a convenience beyond strict Prometheus
// histogram exposition (which leaves quantiles to the scraper); they
// make `xsqd` METRICS self-contained for shell consumers.
#ifndef XSQ_OBS_REGISTRY_H_
#define XSQ_OBS_REGISTRY_H_

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace xsq::obs {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Returns the histogram registered under (`name`, `labels`), creating
  // it on first use. `help` is kept from the first registration of the
  // name. `labels` is a Prometheus label list without braces (e.g.
  // `engine="nc"`); entries sharing a name but differing in labels are
  // distinct series of one metric family and render under one # TYPE
  // header when registered consecutively. Thread-safe; the returned
  // pointer is stable until the registry is destroyed.
  Histogram* GetOrCreateHistogram(std::string_view name,
                                  std::string_view help = "",
                                  std::string_view labels = "");

  // The histogram registered under (`name`, `labels`), or null.
  // Thread-safe.
  const Histogram* FindHistogram(std::string_view name,
                                 std::string_view labels = "") const;

  // Prometheus-style exposition of every registered histogram, in
  // registration order. Thread-safe; concurrent Record()s may or may
  // not be included.
  std::string RenderText() const;

  // Renders one scalar metric line pair ("# TYPE" + value) in the same
  // exposition format; used by callers that mix plain counters/gauges
  // into the same METRICS payload. `type` is "counter" or "gauge".
  static void AppendScalar(std::string* out, std::string_view name,
                           std::string_view type, uint64_t value);

 private:
  struct Entry {
    std::string name;
    std::string help;
    std::string labels;  // without braces; empty = unlabeled series
    Histogram histogram;
  };

  mutable std::mutex mu_;  // registration and iteration only
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace xsq::obs

#endif  // XSQ_OBS_REGISTRY_H_
