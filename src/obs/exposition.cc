#include "obs/exposition.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace xsq::obs {

namespace {

void AppendUint(std::string* out, uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += buf;
}

void AppendDouble(std::string* out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", value);
  *out += buf;
}

// "123" -> 123; false on anything else (sign, empty, trailing junk).
bool ParseUint(std::string_view text, uint64_t* value) {
  if (text.empty()) return false;
  uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    uint64_t next = out * 10 + static_cast<uint64_t>(c - '0');
    if (next < out) return false;  // overflow
    out = next;
  }
  *value = out;
  return true;
}

// A rendered bucket upper bound back to its bucket index. The bounds
// the renderer emits are exactly 0, 2^i - 1 (1 <= i <= 63) and the
// all-ones 2^64 - 1 for bucket 64, so the mapping is invertible.
bool BucketIndexFromBound(std::string_view bound, size_t* index) {
  if (bound == "+Inf") return false;  // handled by the caller
  uint64_t value = 0;
  if (!ParseUint(bound, &value)) return false;
  size_t i = value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  if (i >= Histogram::kBucketCount) return false;
  if (Histogram::BucketUpperBound(i) != value) return false;
  *index = i;
  return true;
}

// Splits "name_suffix{labels} value" / "name_suffix value" given the
// family name. Returns the suffix ("_sum", "_bucket", ...), labels
// (brace contents) and the value text.
struct DataLine {
  std::string_view suffix;
  std::string_view labels;  // brace contents, verbatim
  std::string_view value;
};

bool SplitDataLine(std::string_view line, std::string_view family,
                   DataLine* out) {
  if (line.substr(0, family.size()) != family) return false;
  std::string_view rest = line.substr(family.size());
  size_t brace = rest.find('{');
  size_t space = rest.find(' ');
  if (space == std::string_view::npos) return false;
  if (brace != std::string_view::npos && brace < space) {
    size_t close = rest.find('}', brace);
    if (close == std::string_view::npos || close + 1 >= rest.size() ||
        rest[close + 1] != ' ') {
      return false;
    }
    out->suffix = rest.substr(0, brace);
    out->labels = rest.substr(brace + 1, close - brace - 1);
    out->value = rest.substr(close + 2);
  } else {
    out->suffix = rest.substr(0, space);
    out->labels = std::string_view();
    out->value = rest.substr(space + 1);
  }
  return true;
}

// Splits a brace list into the series labels and the le="..." bound.
// The renderer puts le last: `engine="nc",le="255"` or `le="255"`.
bool SplitBucketLabels(std::string_view brace_contents,
                       std::string_view* series_labels,
                       std::string_view* bound) {
  constexpr std::string_view kLe = "le=\"";
  size_t le = brace_contents.rfind(kLe);
  if (le == std::string_view::npos) return false;
  if (le == 0) {
    *series_labels = std::string_view();
  } else {
    if (brace_contents[le - 1] != ',') return false;
    *series_labels = brace_contents.substr(0, le - 1);
  }
  std::string_view tail = brace_contents.substr(le + kLe.size());
  if (tail.empty() || tail.back() != '"') return false;
  *bound = tail.substr(0, tail.size() - 1);
  return true;
}

void RenderHistogram(std::string* out, const ExpositionSeries& series) {
  const Histogram::Snapshot& snap = series.hist;
  const std::string suffix_labels =
      series.labels.empty() ? "" : "{" + series.labels + "}";
  const std::string le_prefix =
      series.labels.empty()
          ? series.name + "_bucket{le=\""
          : series.name + "_bucket{" + series.labels + ",le=\"";
  size_t highest = 0;
  for (size_t i = 0; i < Histogram::kBucketCount; ++i) {
    if (snap.buckets[i] != 0) highest = i;
  }
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= highest; ++i) {
    cumulative += snap.buckets[i];
    *out += le_prefix;
    AppendUint(out, Histogram::BucketUpperBound(i));
    *out += "\"} ";
    AppendUint(out, cumulative);
    *out += '\n';
  }
  *out += le_prefix + "+Inf\"} ";
  AppendUint(out, snap.count);
  *out += '\n';
  *out += series.name + "_sum" + suffix_labels + " ";
  AppendUint(out, snap.sum);
  *out += '\n';
  *out += series.name + "_count" + suffix_labels + " ";
  AppendUint(out, snap.count);
  *out += '\n';
  *out += series.name + "_p50" + suffix_labels + " ";
  AppendDouble(out, snap.p50());
  *out += '\n';
  *out += series.name + "_p95" + suffix_labels + " ";
  AppendDouble(out, snap.p95());
  *out += '\n';
  *out += series.name + "_p99" + suffix_labels + " ";
  AppendDouble(out, snap.p99());
  *out += '\n';
  *out += series.name + "_max" + suffix_labels + " ";
  AppendUint(out, snap.max);
  *out += '\n';
}

}  // namespace

Result<Exposition> Exposition::Parse(std::string_view text) {
  Exposition doc;
  // The family opened by the last # TYPE line. Series lookup during
  // parse is scoped to this family block (first index in series_), so
  // a re-registered name later in the document starts fresh series
  // exactly as the renderer would emit a fresh header.
  std::string family_name;
  std::string family_type;
  std::string pending_help;   // help seen for family_name
  size_t family_begin = 0;    // first series_ index of this family

  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;

    if (line[0] == '#') {
      // "# HELP <name> <text>" / "# TYPE <name> <type>"; any other
      // comment (foreign exemplars etc.) is skipped.
      if (line.rfind("# HELP ", 0) == 0) {
        std::string_view rest = line.substr(7);
        size_t space = rest.find(' ');
        if (space == std::string_view::npos) continue;
        family_name.assign(rest.substr(0, space));
        pending_help.assign(rest.substr(space + 1));
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        size_t space = rest.find(' ');
        if (space == std::string_view::npos) {
          return Status::ParseError("malformed # TYPE line: " +
                                    std::string(line));
        }
        std::string_view name = rest.substr(0, space);
        if (name != family_name) pending_help.clear();
        family_name.assign(name);
        family_type.assign(rest.substr(space + 1));
        family_begin = doc.series_.size();
        continue;
      }
      continue;
    }

    if (family_name.empty()) {
      return Status::ParseError("data line before any # TYPE: " +
                                std::string(line));
    }
    DataLine data;
    if (!SplitDataLine(line, family_name, &data)) {
      return Status::ParseError("line does not belong to family '" +
                                family_name + "': " + std::string(line));
    }

    if (family_type != "histogram") {
      // Scalar: "name value", no suffix, no labels.
      if (!data.suffix.empty() || !data.labels.empty()) {
        return Status::ParseError("malformed scalar line: " +
                                  std::string(line));
      }
      ExpositionSeries series;
      series.name = family_name;
      series.help = pending_help;
      series.type = family_type;
      series.is_histogram = false;
      if (!ParseUint(data.value, &series.value)) {
        return Status::ParseError("bad scalar value: " + std::string(line));
      }
      doc.series_.push_back(std::move(series));
      continue;
    }

    // Histogram family: route the line to its series by labels.
    std::string_view series_labels = data.labels;
    std::string_view bound;
    if (data.suffix == "_bucket") {
      if (!SplitBucketLabels(data.labels, &series_labels, &bound)) {
        return Status::ParseError("malformed bucket labels: " +
                                  std::string(line));
      }
    }
    ExpositionSeries* series = nullptr;
    for (size_t i = family_begin; i < doc.series_.size(); ++i) {
      if (doc.series_[i].labels == series_labels) {
        series = &doc.series_[i];
        break;
      }
    }
    if (series == nullptr) {
      ExpositionSeries fresh;
      fresh.name = family_name;
      fresh.help = pending_help;
      fresh.type = family_type;
      fresh.labels.assign(series_labels);
      fresh.is_histogram = true;
      doc.series_.push_back(std::move(fresh));
      series = &doc.series_.back();
    }

    uint64_t value = 0;
    if (data.suffix == "_p50" || data.suffix == "_p95" ||
        data.suffix == "_p99") {
      continue;  // recomputed from the buckets at render
    }
    if (!ParseUint(data.value, &value)) {
      return Status::ParseError("bad value: " + std::string(line));
    }
    if (data.suffix == "_bucket") {
      if (bound == "+Inf") {
        // Cumulative total; _count carries the same number. Nothing to
        // store — the buckets themselves reconstruct it.
        continue;
      }
      size_t index = 0;
      if (!BucketIndexFromBound(bound, &index)) {
        return Status::ParseError("unrecognized bucket bound: " +
                                  std::string(line));
      }
      // De-cumulate: this bound's count minus everything below it.
      uint64_t below = 0;
      for (size_t i = 0; i < index; ++i) below += series->hist.buckets[i];
      if (value < below) {
        return Status::ParseError("non-monotonic bucket: " +
                                  std::string(line));
      }
      series->hist.buckets[index] = value - below;
    } else if (data.suffix == "_sum") {
      series->hist.sum = value;
    } else if (data.suffix == "_count") {
      series->hist.count = value;
    } else if (data.suffix == "_max") {
      series->hist.max = value;
    } else {
      return Status::ParseError("unknown histogram suffix: " +
                                std::string(line));
    }
  }
  return doc;
}

void Exposition::MergeFrom(const Exposition& other) {
  for (const ExpositionSeries& theirs : other.series_) {
    ExpositionSeries* mine = nullptr;
    for (ExpositionSeries& candidate : series_) {
      if (candidate.name == theirs.name &&
          candidate.labels == theirs.labels) {
        mine = &candidate;
        break;
      }
    }
    if (mine == nullptr) {
      series_.push_back(theirs);
      continue;
    }
    if (mine->is_histogram && theirs.is_histogram) {
      mine->hist.Merge(theirs.hist);
    } else {
      mine->value += theirs.value;
    }
    if (mine->help.empty()) mine->help = theirs.help;
  }
}

std::string Exposition::Render() const {
  std::string out;
  const std::string* family = nullptr;
  for (const ExpositionSeries& series : series_) {
    if (family == nullptr || *family != series.name) {
      if (!series.help.empty()) {
        out += "# HELP " + series.name + " " + series.help + "\n";
      }
      out += "# TYPE " + series.name + " " + series.type + "\n";
      family = &series.name;
    }
    if (series.is_histogram) {
      RenderHistogram(&out, series);
    } else {
      out += series.name + " ";
      AppendUint(&out, series.value);
      out += '\n';
    }
  }
  return out;
}

const ExpositionSeries* Exposition::Find(std::string_view name,
                                         std::string_view labels) const {
  for (const ExpositionSeries& series : series_) {
    if (series.name == name && series.labels == labels) return &series;
  }
  return nullptr;
}

}  // namespace xsq::obs
