// Exposition: parse the Prometheus text format Registry renders, merge
// parsed snapshots across processes, and re-render byte-identically.
//
// This is the inverse of Registry::RenderText / Registry::AppendScalar,
// built for the cluster tier: a router scrapes each shard's METRICS
// (or GET /metrics), parses the text back into histogram snapshots and
// scalar values, merges them keyed by (name, labels) — buckets, sums
// and counts add; max takes the max; scalars add — and renders one
// merged exposition for the whole cluster.
//
// Round-trip guarantee: for text produced by this repo's renderers,
// Render(Parse(text)) == text, byte for byte. That holds because the
// renderer is deterministic from the parsed state:
//   - histogram buckets are emitted cumulatively from bucket 0 through
//     the highest non-zero bucket, and each rendered upper bound
//     (0, 2^i - 1, +Inf) maps back to exactly one bucket index;
//   - the _p50/_p95/_p99 convenience lines are NOT stored at parse
//     time — they are recomputed from the buckets at render, exactly
//     as Registry::RenderText computes them (%.1f of the same
//     deterministic interpolation);
//   - scalars render as the same "# TYPE" + "name value" pair.
// Comment lines other than # HELP / # TYPE (e.g. exemplars from a
// foreign exposition) are skipped by the parser and therefore do NOT
// round-trip; everything this repo emits does.
#ifndef XSQ_OBS_EXPOSITION_H_
#define XSQ_OBS_EXPOSITION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/histogram.h"

namespace xsq::obs {

// One parsed series: a histogram snapshot or a scalar value, plus the
// family metadata needed to re-render its header.
struct ExpositionSeries {
  std::string name;
  std::string help;    // family help; empty renders no # HELP line
  std::string type;    // "histogram", "counter" or "gauge"
  std::string labels;  // without braces; empty = unlabeled series
  bool is_histogram = false;
  Histogram::Snapshot hist;  // when is_histogram
  uint64_t value = 0;        // when !is_histogram
};

// An ordered exposition document. Order is first-seen (registration
// order for Registry output), preserved across Merge so a stable
// shard set renders a stable merged document.
class Exposition {
 public:
  // Parses renderer output. Returns ParseError on a malformed data
  // line; unknown comment lines are skipped.
  static Result<Exposition> Parse(std::string_view text);

  // Folds `other` into this document. Series are keyed by
  // (name, labels): histograms merge bucket-wise (counts, sums and
  // buckets add, max takes the max), scalars add — counters because
  // cluster totals are sums, gauges because the cluster-wide "in
  // flight right now" is also the sum over shards. Series unseen here
  // are appended in `other`'s order.
  void MergeFrom(const Exposition& other);

  // Renders the document in Registry's exact format (headers shared by
  // consecutive same-name series, cumulative buckets, recomputed
  // quantile lines).
  std::string Render() const;

  const std::vector<ExpositionSeries>& series() const { return series_; }

  // The series registered under (name, labels), or null.
  const ExpositionSeries* Find(std::string_view name,
                               std::string_view labels = "") const;

 private:
  std::vector<ExpositionSeries> series_;
};

}  // namespace xsq::obs

#endif  // XSQ_OBS_EXPOSITION_H_
