// Histogram: a lock-free, fixed log-bucket latency histogram.
//
// The serving stack needs latency *distributions*, not just lifetime
// counters: the paper's own evaluation (Section 6, Figure 18) splits
// runtime into parsing / automaton / buffer phases, and under the
// concurrent load the service layer targets, tails (p95/p99) are what
// admission control and capacity planning act on.
//
// Design: 65 buckets on power-of-two boundaries — bucket 0 holds the
// value 0, bucket b >= 1 holds [2^(b-1), 2^b). A value's bucket is
// bit_width(value), one instruction; Record() is then four relaxed
// atomic adds plus a CAS-max, so any number of worker threads can record
// concurrently with snapshot readers without ever contending on a lock.
// Values are unit-agnostic; the service layer records microseconds.
//
// Snapshot() copies the buckets with relaxed loads. Counts recorded
// concurrently with the copy may or may not be included (each Record is
// atomic, so a snapshot is always a valid histogram, just a slightly
// stale one). Snapshots are plain structs: mergeable across histograms
// (worker-local shards, multi-process roll-ups) and queryable for
// p50/p95/p99/max with log-linear interpolation inside the bucket.
#ifndef XSQ_OBS_HISTOGRAM_H_
#define XSQ_OBS_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

namespace xsq::obs {

class Histogram {
 public:
  // Bucket 0 = {0}; bucket b in [1, 64] = [2^(b-1), 2^b).
  static constexpr size_t kBucketCount = 65;

  static constexpr size_t BucketIndex(uint64_t value) {
    return value == 0 ? 0 : static_cast<size_t>(std::bit_width(value));
  }
  // Inclusive bounds of bucket `index`.
  static constexpr uint64_t BucketLowerBound(size_t index) {
    return index == 0 ? 0 : uint64_t{1} << (index - 1);
  }
  static constexpr uint64_t BucketUpperBound(size_t index) {
    return index == 0 ? 0
           : index >= 64
               ? ~uint64_t{0}
               : (uint64_t{1} << index) - 1;
  }

  // A point-in-time copy, safe to read, merge, and format at leisure.
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    std::array<uint64_t, kBucketCount> buckets{};

    // Approximate quantile (q in [0, 1]) with linear interpolation
    // inside the containing bucket; exact for q=1 up to bucket bounds.
    // Returns 0 for an empty snapshot.
    double Quantile(double q) const;
    double p50() const { return Quantile(0.50); }
    double p95() const { return Quantile(0.95); }
    double p99() const { return Quantile(0.99); }
    double Mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }

    // Adds `other`'s counts into this snapshot (shard roll-up).
    void Merge(const Snapshot& other);
  };

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Lock-free; any thread.
  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen && !max_.compare_exchange_weak(
                               seen, value, std::memory_order_relaxed)) {
    }
  }

  Snapshot snapshot() const;

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace xsq::obs

#endif  // XSQ_OBS_HISTOGRAM_H_
