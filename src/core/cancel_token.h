// CancelToken: cooperative cancellation and deadlines for streaming
// evaluation.
//
// A token is an atomic cancel flag plus an optional monotonic deadline.
// The serving side arms it (Cancel() from any thread, SetDeadline* when
// a request starts) and the evaluation side polls it at natural
// boundaries: StreamingQuery checks once per Push/Close (chunk
// granularity) and both engines check every kCheckIntervalEvents SAX
// events (the kSampleEvery cadence of the phase shim), so even a
// single-chunk document with millions of events stops within
// microseconds of the flag being raised. Polling a token with no
// deadline armed costs one relaxed atomic load; the steady_clock read
// happens only while a deadline is set.
//
// The token does not own or interrupt anything: evaluation that
// observes it simply fails with kCancelled / kDeadlineExceeded, which
// propagates through the session status like any other error. Reset()
// re-arms the token for the next document (service::Session does this
// in its own Reset).
#ifndef XSQ_CORE_CANCEL_TOKEN_H_
#define XSQ_CORE_CANCEL_TOKEN_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace xsq::core {

class CancelToken {
 public:
  // Default sampling grain: engines poll the token every this-many
  // events. Matches the phase shim's kSampleEvery so the cancellation
  // and observability sampling grains stay aligned (see
  // streaming_query.cc). Retuned 64 -> 128 for the SWAR/SSE2 scan
  // loop: events now arrive 1.65-2x faster, so 128 events bound the
  // same wall-clock cancellation latency the old grain bought at 64
  // while halving the polling overhead.
  static constexpr uint32_t kCheckIntervalEvents = 128;

  // `check_interval_events` sets this token's sampling grain: a smaller
  // interval tightens the cancellation latency bound at the cost of
  // more frequent polls (each is one relaxed load, plus a clock read
  // while a deadline is armed). Fixed for the token's lifetime — the
  // engines cache it when the token is installed, so it cannot race
  // with evaluation.
  explicit CancelToken(
      uint32_t check_interval_events = kCheckIntervalEvents)
      : check_interval_events_(
            check_interval_events == 0 ? 1 : check_interval_events) {}
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  uint32_t check_interval_events() const { return check_interval_events_; }

  // Raises the cancel flag. Any thread; idempotent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }

  // Arms a deadline `delta` from now (replacing any previous deadline).
  void SetDeadlineAfter(std::chrono::nanoseconds delta) {
    deadline_ns_.store(NowNanos() + delta.count(), std::memory_order_release);
  }
  void SetDeadlineAfterMs(uint64_t ms) {
    SetDeadlineAfter(std::chrono::milliseconds(ms));
  }
  void ClearDeadline() { deadline_ns_.store(0, std::memory_order_release); }

  // Clears both the flag and the deadline for the next request.
  void Reset() {
    cancelled_.store(false, std::memory_order_release);
    ClearDeadline();
  }

  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  bool has_deadline() const {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  // True once the armed deadline has passed (false when none is armed).
  bool expired() const {
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 && NowNanos() >= deadline;
  }

  // The poll the evaluation side calls: OK, or the terminal status the
  // operation must fail with. Cancel wins over an expired deadline.
  Status Check() const {
    if (cancelled()) return Status::Cancelled("operation cancelled");
    if (expired()) {
      return Status::DeadlineExceeded("operation deadline exceeded");
    }
    return Status::OK();
  }

 private:
  static int64_t NowNanos() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  const uint32_t check_interval_events_;
  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // steady-clock ns; 0 = none armed
};

}  // namespace xsq::core

#endif  // XSQ_CORE_CANCEL_TOKEN_H_
