// XSQ-F: the full streaming XPath engine of the paper - closures,
// multiple predicates, and aggregations over a single pass of the input.
//
// The engine consumes the depth-extended SAX stream and runs the HPDT.
// An HPDT configuration (state, depth vector) is materialized as a
// *match instance*: the chain of elements from the root match down to a
// match is exactly the depth vector, so buffer-group operations keyed by
// depth vectors (Section 4.3) become operations on the items a match
// instance holds:
//
//   enqueue  -> a new shared Item claimed by every live chain and held
//               by each chain's lowest not-yet-TRUE match
//   upload   -> when a match turns TRUE its items move to the nearest
//               ancestor still in NA ("nearest ancestor with this BPDT in
//               its right subtree"), or are selected if every ancestor is
//               TRUE (the flush of true-spine BPDTs)
//   clear    -> when an element ends with a match still NA, the predicate
//               is false and the match drops one claim per held item
//   flush    -> selected items are emitted from the global FIFO head once
//               resolved and complete, giving document order and
//               duplicate avoidance ("mark as output" of Section 4.3)
//
// XSQ guarantees to buffer only data that must be buffered by any
// streaming XPath processor: an item exists only between the moment its
// value streams past and the moment its last relevant predicate is
// decided. The MemoryTracker makes this measurable (Figures 19/20).
#ifndef XSQ_CORE_ENGINE_H_
#define XSQ_CORE_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/aggregator.h"
#include "core/cancel_token.h"
#include "core/hpdt.h"
#include "core/item.h"
#include "core/result_sink.h"
#include "core/trace.h"
#include "xml/events.h"
#include "xpath/ast.h"

namespace xsq::core {

struct EngineStats {
  uint64_t matches_created = 0;
  uint64_t peak_live_matches = 0;
  uint64_t items_created = 0;
  uint64_t items_emitted = 0;
  uint64_t items_discarded = 0;
};

class XsqEngine : public xml::SaxHandler {
 public:
  // Compiles the query into an HPDT (one per union branch) and binds
  // the engine to `sink` (not owned, must outlive the engine).
  static Result<std::unique_ptr<XsqEngine>> Create(const xpath::Query& query,
                                                   ResultSink* sink);

  // Instantiates an engine over already-compiled HPDTs (main path first,
  // then union branches), e.g. from a cached CompiledPlan. The HPDTs are
  // read-only at run time, so one set may back many engines at once.
  static Result<std::unique_ptr<XsqEngine>> Create(
      std::vector<std::shared_ptr<const Hpdt>> hpdts, ResultSink* sink);

  // SaxHandler interface: feed this engine to a SaxParser.
  void OnDocumentBegin() override;
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

  // Prepares the engine for another document with the same query.
  void Reset();

  // Installs an observer for the paper's buffer operations (Sections
  // 3.3/4.3). Pass nullptr to disable. Not owned; must outlive the
  // engine while installed.
  void set_trace(TraceListener* trace) { trace_ = trace; }

  // Installs a cooperative cancellation token, polled once every
  // token->check_interval_events() handler events (default
  // CancelToken::kCheckIntervalEvents). Pass nullptr to detach. Not
  // owned; must outlive the engine while installed. A trip sets
  // status() to kCancelled/kDeadlineExceeded, after which every handler
  // call is a no-op until Reset.
  void set_cancel_token(const CancelToken* token) {
    cancel_token_ = token;
    cancel_interval_ = token == nullptr ? CancelToken::kCheckIntervalEvents
                                        : token->check_interval_events();
  }

  // The HPDT of the first (or only) union branch.
  const Hpdt& hpdt() const { return *hpdts_.front(); }
  size_t branch_count() const { return hpdts_.size(); }
  const EngineStats& stats() const { return stats_; }
  const MemoryTracker& memory() const { return memory_; }

  // Non-OK if an internal invariant was violated while streaming.
  const Status& status() const { return status_; }

 private:
  // An HPDT configuration: one way the current element matches the
  // query prefix. `parent` chains to the step-(layer-1) match; parents
  // outlive children because elements nest.
  struct Match {
    const Bpdt* bpdt = nullptr;
    Match* parent = nullptr;
    int branch = 0;             // union branch this match belongs to
    uint32_t pending_mask = 0;  // bit per not-yet-satisfied predicate
    std::vector<std::shared_ptr<Item>> held;  // this BPDT's buffer group

    bool satisfied() const { return pending_mask == 0; }
  };

  // Per open element (the virtual document node is entry 0).
  struct StackEntry {
    std::vector<std::unique_ptr<Match>> matches;
    std::vector<Match*> last_step_matches;  // matches at the output step
    std::shared_ptr<Item> aggregate_item;   // one per element, aggregations
    // Steps for which this element already has a true-spine match with
    // no pending predicates. Further chains reaching the same (step,
    // element) through other fully-TRUE ancestors are behaviorally
    // identical, so they are collapsed into one match. This turns the
    // exponential chain blowup of queries like //a//a//a on deeply
    // recursive data into linear work without changing any result.
    uint64_t resolved_spine_steps = 0;
  };

  // An element item currently being serialized (catchall output).
  struct ActiveSerialization {
    std::shared_ptr<Item> item;
    int begin_depth;
  };

  XsqEngine(std::vector<std::shared_ptr<const Hpdt>> hpdts, ResultSink* sink);

  // Flat index of (branch, step) into active_by_step_ and the
  // resolved-spine bitmask.
  size_t StepSlot(int branch, int step) const {
    return branch_offsets_[static_cast<size_t>(branch)] +
           static_cast<size_t>(step);
  }

  // Sampled poll of the cancel token: true (with status_ set) when the
  // token has tripped. The common case is one pointer test and one
  // increment; the atomic load happens only on sampled events.
  bool CheckCancelSampled() {
    if (cancel_token_ == nullptr || ++cancel_tick_ < cancel_interval_) {
      return false;
    }
    cancel_tick_ = 0;
    Status cancel_status = cancel_token_->Check();
    if (cancel_status.ok()) return false;
    status_ = std::move(cancel_status);
    return true;
  }

  void SatisfyPredicate(Match* match, uint32_t bit);
  void Trace(BufferOp::Kind kind, const Bpdt* bpdt, const Item* item);
  Match* LowestUnsatisfied(Match* match);
  std::shared_ptr<Item> MakeItem();
  void AttachItem(const std::shared_ptr<Item>& item, StackEntry* entry);
  void AppendToItem(Item* item, std::string_view data);
  void EmitReadyItems();
  void AppendToSerializations(std::string_view data);

  std::vector<std::shared_ptr<const Hpdt>> hpdts_;  // one per union branch
  std::vector<size_t> branch_offsets_;         // into per-(branch,step) slots
  size_t total_step_slots_ = 0;
  ResultSink* sink_;
  xpath::OutputKind output_kind_;

  std::vector<StackEntry> stack_;
  std::vector<std::vector<Match*>> active_by_step_;  // closure sources
  std::deque<std::shared_ptr<Item>> output_queue_;
  std::vector<ActiveSerialization> serializations_;
  Aggregator aggregator_;
  uint64_t next_sequence_ = 0;
  uint64_t live_matches_ = 0;

  TraceListener* trace_ = nullptr;
  const CancelToken* cancel_token_ = nullptr;
  uint32_t cancel_tick_ = 0;
  uint32_t cancel_interval_ = CancelToken::kCheckIntervalEvents;
  EngineStats stats_;
  MemoryTracker memory_;
  Status status_;
};

// Convenience: parse `query_text`, stream `xml_text` through XSQ-F, and
// collect the results.
struct QueryResult {
  std::vector<std::string> items;
  std::optional<double> aggregate;
};
Result<QueryResult> RunQuery(std::string_view query_text,
                             std::string_view xml_text);

}  // namespace xsq::core

#endif  // XSQ_CORE_ENGINE_H_
