#include "core/trace.h"

namespace xsq::core {

const char* BufferOpKindName(BufferOp::Kind kind) {
  switch (kind) {
    case BufferOp::Kind::kEnqueue:
      return "enqueue";
    case BufferOp::Kind::kUpload:
      return "upload";
    case BufferOp::Kind::kFlush:
      return "flush";
    case BufferOp::Kind::kClear:
      return "clear";
    case BufferOp::Kind::kEmit:
      return "emit";
    case BufferOp::Kind::kDiscard:
      return "discard";
  }
  return "?";
}

std::string BufferOp::ToString() const {
  std::string out = BufferOpKindName(kind);
  if (!bpdt.empty()) {
    out += " @";
    out += bpdt;
  }
  if (!value.empty()) {
    out += "  [";
    out += value;
    out += "]";
  }
  return out;
}

}  // namespace xsq::core
