// The statistics buffer of paper Section 4.4: aggregation queries replace
// queue.flush() with stat.update(...), and stat emits its running value on
// every update so aggregations work over unbounded streams.
#ifndef XSQ_CORE_AGGREGATOR_H_
#define XSQ_CORE_AGGREGATOR_H_

#include <algorithm>
#include <limits>
#include <optional>
#include <string_view>

#include "common/strings.h"
#include "xpath/ast.h"

namespace xsq::core {

class Aggregator {
 public:
  explicit Aggregator(xpath::OutputKind kind) : kind_(kind) {}

  // Consumes one selected item. `element_text` is the concatenation of
  // the matched element's direct text (ignored by count()). Returns true
  // if the running value changed (an update should be emitted).
  bool Update(std::string_view element_text) {
    if (kind_ == xpath::OutputKind::kCount) {
      ++count_;
      return true;
    }
    std::optional<double> value = ParseNumber(element_text);
    if (!value.has_value()) return false;  // non-numeric elements skipped
    ++numeric_count_;
    sum_ += *value;
    min_ = std::min(min_, *value);
    max_ = std::max(max_, *value);
    return true;
  }

  // The running value, or nullopt when it is not yet defined (avg/min/max
  // before the first numeric element).
  std::optional<double> Current() const {
    switch (kind_) {
      case xpath::OutputKind::kCount:
        return static_cast<double>(count_);
      case xpath::OutputKind::kSum:
        return sum_;
      case xpath::OutputKind::kAvg:
        if (numeric_count_ == 0) return std::nullopt;
        return sum_ / static_cast<double>(numeric_count_);
      case xpath::OutputKind::kMin:
        if (numeric_count_ == 0) return std::nullopt;
        return min_;
      case xpath::OutputKind::kMax:
        if (numeric_count_ == 0) return std::nullopt;
        return max_;
      default:
        return std::nullopt;
    }
  }

  // Final value at end of document. count() and sum() of an empty match
  // set are 0; avg/min/max of no numeric elements are absent.
  std::optional<double> Final() const {
    if (kind_ == xpath::OutputKind::kCount) {
      return static_cast<double>(count_);
    }
    if (kind_ == xpath::OutputKind::kSum) return sum_;
    return Current();
  }

 private:
  xpath::OutputKind kind_;
  uint64_t count_ = 0;
  uint64_t numeric_count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace xsq::core

#endif  // XSQ_CORE_AGGREGATOR_H_
