#include "core/engine_nc.h"

#include "common/strings.h"
#include "xpath/value_compare.h"

namespace xsq::core {

namespace {

bool TagMatches(const xpath::LocationStep& step, std::string_view tag) {
  return step.IsWildcard() || step.node_test == tag;
}

bool ChildTagMatches(const xpath::Predicate& predicate, std::string_view tag) {
  return predicate.child_tag == "*" || predicate.child_tag == tag;
}

const std::string_view* FindAttr(const std::vector<xml::Attribute>& attributes,
                                 std::string_view name) {
  for (const xml::Attribute& attr : attributes) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

bool AttributePredicateHolds(const xpath::Predicate& predicate,
                             const std::vector<xml::Attribute>& attributes) {
  const std::string_view* value = FindAttr(attributes, predicate.attribute);
  if (value == nullptr) return false;
  return !predicate.has_comparison || xpath::CompareValue(*value, predicate);
}

void AppendBeginTag(std::string* out, std::string_view tag,
                    const std::vector<xml::Attribute>& attributes) {
  out->push_back('<');
  out->append(tag);
  for (const xml::Attribute& attr : attributes) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(XmlEscape(attr.value));
    out->push_back('"');
  }
  out->push_back('>');
}

}  // namespace

XsqNcEngine::XsqNcEngine(xpath::Query query, ResultSink* sink)
    : query_(std::move(query)),
      sink_(sink),
      output_kind_(query_.output.kind),
      num_steps_(query_.steps.size()),
      aggregator_(output_kind_) {
  Reset();
}

Result<std::unique_ptr<XsqNcEngine>> XsqNcEngine::Create(
    const xpath::Query& query, ResultSink* sink) {
  if (query.steps.empty()) {
    return Status::InvalidArgument("query has no location steps");
  }
  if (query.HasClosure()) {
    return Status::NotSupported(
        "XSQ-NC does not support the closure axis '//'; use XSQ-F");
  }
  if (query.IsUnion()) {
    return Status::NotSupported(
        "XSQ-NC does not support union queries; use XSQ-F");
  }
  if (query.steps.size() > 32) {
    return Status::NotSupported("too many location steps");
  }
  return std::unique_ptr<XsqNcEngine>(new XsqNcEngine(query, sink));
}

void XsqNcEngine::Reset() {
  memory_.ReleaseAll();  // queue_ items discarded below
  stack_.clear();
  stack_.emplace_back();  // virtual document entry; always satisfied
  stack_.front().has_match = true;
  queue_.clear();
  serializing_item_ = nullptr;
  serialization_depth_ = 0;
  aggregator_ = Aggregator(output_kind_);
  cancel_tick_ = 0;
  status_ = Status::OK();
}

void XsqNcEngine::OnDocumentBegin() { Reset(); }

size_t XsqNcEngine::LowestUnsatisfied(size_t from) const {
  for (size_t i = from; i >= 1; --i) {
    if (stack_[i].has_match && !stack_[i].satisfied()) return i;
  }
  return 0;
}

void XsqNcEngine::SatisfyPredicate(size_t entry_index, uint32_t bit) {
  NcEntry& entry = stack_[entry_index];
  entry.pending_mask &= ~(1u << bit);
  if (!entry.satisfied()) return;
  // Upload to the nearest still-undecided ancestor, or select directly:
  // in the deterministic HPDT selected items are always already at the
  // queue head, so they stream straight to the output.
  size_t holder = LowestUnsatisfied(entry_index - 1);
  if (holder > 0) {
    NcEntry& target = stack_[holder];
    target.held.insert(target.held.end(), entry.held.begin(),
                       entry.held.end());
  } else {
    for (NcItem* item : entry.held) {
      if (item->state == ItemState::kPending) {
        item->state = ItemState::kSelected;
      }
    }
  }
  entry.held.clear();
}

XsqNcEngine::NcItem* XsqNcEngine::MakeItem() {
  queue_.push_back(std::make_unique<NcItem>());
  return queue_.back().get();
}

void XsqNcEngine::AttachItem(NcItem* item) {
  size_t holder = LowestUnsatisfied(num_steps_);
  if (holder > 0) {
    stack_[holder].held.push_back(item);
  } else {
    item->state = ItemState::kSelected;
  }
}

void XsqNcEngine::AppendToItem(NcItem* item, std::string_view data) {
  item->value.append(data);
  memory_.Add(data.size());
}

void XsqNcEngine::EmitReadyItems() {
  while (!queue_.empty()) {
    NcItem* front = queue_.front().get();
    if (front->state == ItemState::kPending) break;
    if (front->state == ItemState::kSelected) {
      if (!front->complete) break;
      if (xpath::IsAggregation(output_kind_)) {
        if (aggregator_.Update(front->value)) {
          std::optional<double> current = aggregator_.Current();
          if (current.has_value()) sink_->OnAggregateUpdate(*current);
        }
      } else {
        sink_->OnItem(front->value);
      }
      ++items_emitted_;
    }
    memory_.Release(front->value.size());
    queue_.pop_front();
  }
}

void XsqNcEngine::OnBegin(std::string_view tag,
                          const std::vector<xml::Attribute>& attributes,
                          int depth) {
  if (!status_.ok()) return;
  if (CheckCancelSampled()) return;
  const size_t d = static_cast<size_t>(depth);
  if (d != stack_.size()) {
    status_ = Status::Internal("event depth out of sync with engine stack");
    return;
  }

  // Child-based predicates of the parent element's match.
  NcEntry& parent = stack_[d - 1];
  if (d - 1 >= 1 && parent.has_match && !parent.satisfied()) {
    const auto& predicates = query_.steps[d - 2].predicates;
    for (size_t j = 0; j < predicates.size(); ++j) {
      if ((parent.pending_mask >> j & 1u) == 0) continue;
      const xpath::Predicate& p = predicates[j];
      if (p.kind != xpath::PredicateKind::kChild &&
          p.kind != xpath::PredicateKind::kChildAttribute) {
        continue;
      }
      if (!ChildTagMatches(p, tag)) continue;
      if (p.kind == xpath::PredicateKind::kChildAttribute &&
          !AttributePredicateHolds(p, attributes)) {
        continue;
      }
      SatisfyPredicate(d - 1, static_cast<uint32_t>(j));
      if (stack_[d - 1].satisfied()) break;
    }
  }

  // At most one possible match: element depth == step index.
  stack_.emplace_back();
  NcEntry& entry = stack_.back();
  if (d <= num_steps_ && stack_[d - 1].has_match) {
    const xpath::LocationStep& step = query_.steps[d - 1];
    if (TagMatches(step, tag)) {
      uint32_t pending = 0;
      bool dead = false;
      for (size_t j = 0; j < step.predicates.size(); ++j) {
        const xpath::Predicate& p = step.predicates[j];
        if (p.kind == xpath::PredicateKind::kAttribute) {
          if (!AttributePredicateHolds(p, attributes)) {
            dead = true;
            break;
          }
        } else {
          pending |= 1u << j;
        }
      }
      if (!dead) {
        entry.has_match = true;
        entry.pending_mask = pending;
      }
    }
  }

  // Output duties.
  if (output_kind_ == xpath::OutputKind::kElement) {
    if (serializing_item_ != nullptr) {
      std::string begin_tag;
      AppendBeginTag(&begin_tag, tag, attributes);
      AppendToItem(serializing_item_, begin_tag);
    } else if (entry.has_match && d == num_steps_) {
      NcItem* item = MakeItem();
      item->complete = false;
      AttachItem(item);
      std::string begin_tag;
      AppendBeginTag(&begin_tag, tag, attributes);
      AppendToItem(item, begin_tag);
      serializing_item_ = item;
      serialization_depth_ = depth;
    }
  } else if (entry.has_match && d == num_steps_) {
    if (output_kind_ == xpath::OutputKind::kAttribute) {
      const std::string_view* value = FindAttr(attributes, query_.output.attribute);
      if (value != nullptr) {
        NcItem* item = MakeItem();
        AppendToItem(item, *value);
        AttachItem(item);
      }
    } else if (xpath::IsAggregation(output_kind_)) {
      NcItem* item = MakeItem();
      item->complete = false;
      AttachItem(item);
      entry.aggregate_item = item;
    }
  }

  EmitReadyItems();
}

void XsqNcEngine::OnText(std::string_view enclosing_tag,
                         std::string_view text, int /*depth*/) {
  if (!status_.ok()) return;
  if (CheckCancelSampled()) return;
  const size_t d = stack_.size() - 1;
  NcEntry& entry = stack_.back();

  // Text predicates on the enclosing element.
  if (d >= 1 && entry.has_match && !entry.satisfied()) {
    const auto& predicates = query_.steps[d - 1].predicates;
    for (size_t j = 0; j < predicates.size(); ++j) {
      if ((entry.pending_mask >> j & 1u) == 0) continue;
      const xpath::Predicate& p = predicates[j];
      if (p.kind != xpath::PredicateKind::kText) continue;
      if (p.has_comparison && !xpath::CompareValue(text, p)) continue;
      SatisfyPredicate(d, static_cast<uint32_t>(j));
      if (stack_[d].satisfied()) break;
    }
  }

  // Child-text predicates on the parent element.
  if (d >= 2 && stack_[d - 1].has_match && !stack_[d - 1].satisfied()) {
    const auto& predicates = query_.steps[d - 2].predicates;
    for (size_t j = 0; j < predicates.size(); ++j) {
      if ((stack_[d - 1].pending_mask >> j & 1u) == 0) continue;
      const xpath::Predicate& p = predicates[j];
      if (p.kind != xpath::PredicateKind::kChildText) continue;
      if (!ChildTagMatches(p, enclosing_tag)) continue;
      if (!xpath::CompareValue(text, p)) continue;
      SatisfyPredicate(d - 1, static_cast<uint32_t>(j));
      if (stack_[d - 1].satisfied()) break;
    }
  }

  // Output.
  if (output_kind_ == xpath::OutputKind::kText && entry.has_match &&
      d == num_steps_) {
    NcItem* item = MakeItem();
    AppendToItem(item, text);
    AttachItem(item);
  }
  if (entry.aggregate_item != nullptr) {
    AppendToItem(entry.aggregate_item, text);
  }
  if (serializing_item_ != nullptr) {
    AppendToItem(serializing_item_, XmlEscape(text));
  }

  EmitReadyItems();
}

void XsqNcEngine::OnEnd(std::string_view tag, int depth) {
  if (!status_.ok()) return;
  if (CheckCancelSampled()) return;
  NcEntry& entry = stack_.back();

  if (serializing_item_ != nullptr) {
    std::string end_tag = "</";
    end_tag += tag;
    end_tag += ">";
    AppendToItem(serializing_item_, end_tag);
    if (depth == serialization_depth_) {
      serializing_item_->complete = true;
      serializing_item_ = nullptr;
      serialization_depth_ = 0;
    }
  }

  if (entry.aggregate_item != nullptr) {
    entry.aggregate_item->complete = true;
    entry.aggregate_item = nullptr;
  }

  if (entry.has_match && !entry.satisfied()) {
    // Predicate definitively false: clear the buffer.
    for (NcItem* item : entry.held) {
      if (item->state == ItemState::kPending) {
        item->state = ItemState::kDiscarded;
      }
    }
  }
  stack_.pop_back();

  EmitReadyItems();
}

void XsqNcEngine::OnDocumentEnd() {
  if (!status_.ok()) return;
  EmitReadyItems();
  if (!queue_.empty()) {
    status_ = Status::Internal(
        "unresolved buffered items at end of document (engine bug)");
    return;
  }
  if (xpath::IsAggregation(output_kind_)) {
    sink_->OnAggregateFinal(aggregator_.Final());
  }
}

}  // namespace xsq::core
