// XSQ-NC: the deterministic engine variant for queries without closure
// axes (paper Section 6: "XSQ-NC supports multiple predicates and
// aggregations, but not closures").
//
// Without '//', an element at depth d can only match location step d, so
// the HPDT is deterministic: there is at most one live match chain, one
// match per open element, and results are decided in document order.
// XSQ-NC exploits this: a single hash-free probe per event, no shared
// items or claim counting, and direct output the moment an item is known
// to be in the result - the properties the paper credits for XSQ-NC's
// higher throughput relative to XSQ-F.
#ifndef XSQ_CORE_ENGINE_NC_H_
#define XSQ_CORE_ENGINE_NC_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/aggregator.h"
#include "core/cancel_token.h"
#include "core/result_sink.h"
#include "xml/events.h"
#include "xpath/ast.h"

namespace xsq::core {

class XsqNcEngine : public xml::SaxHandler {
 public:
  // Fails with NotSupported when the query contains a closure axis.
  static Result<std::unique_ptr<XsqNcEngine>> Create(
      const xpath::Query& query, ResultSink* sink);

  void OnDocumentBegin() override;
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

  void Reset();

  // Same contract as XsqEngine::set_cancel_token: polled every
  // token->check_interval_events() events; a trip fails status().
  void set_cancel_token(const CancelToken* token) {
    cancel_token_ = token;
    cancel_interval_ = token == nullptr ? CancelToken::kCheckIntervalEvents
                                        : token->check_interval_events();
  }

  const MemoryTracker& memory() const { return memory_; }
  const Status& status() const { return status_; }
  uint64_t items_emitted() const { return items_emitted_; }

 private:
  enum class ItemState : uint8_t { kPending, kSelected, kDiscarded };

  struct NcItem {
    std::string value;
    ItemState state = ItemState::kPending;
    bool complete = true;
  };

  // Per open element; at most one match (the element's step == depth).
  struct NcEntry {
    bool has_match = false;
    uint32_t pending_mask = 0;  // undecided predicates of the step
    std::vector<NcItem*> held;  // this BPDT's buffer
    NcItem* aggregate_item = nullptr;

    bool satisfied() const { return pending_mask == 0; }
  };

  XsqNcEngine(xpath::Query query, ResultSink* sink);

  // Sampled poll of the cancel token; see XsqEngine::CheckCancelSampled.
  bool CheckCancelSampled() {
    if (cancel_token_ == nullptr || ++cancel_tick_ < cancel_interval_) {
      return false;
    }
    cancel_tick_ = 0;
    Status cancel_status = cancel_token_->Check();
    if (cancel_status.ok()) return false;
    status_ = std::move(cancel_status);
    return true;
  }

  // Index of the deepest entry (<= from) with an undecided predicate,
  // or 0 when the whole chain is decided true.
  size_t LowestUnsatisfied(size_t from) const;
  void SatisfyPredicate(size_t entry_index, uint32_t bit);
  NcItem* MakeItem();
  void AttachItem(NcItem* item);
  void AppendToItem(NcItem* item, std::string_view data);
  void EmitReadyItems();
  bool InResultSubtree() const { return serialization_depth_ > 0; }

  xpath::Query query_;
  ResultSink* sink_;
  xpath::OutputKind output_kind_;
  size_t num_steps_;

  std::vector<NcEntry> stack_;
  std::deque<std::unique_ptr<NcItem>> queue_;
  NcItem* serializing_item_ = nullptr;  // catchall output in progress
  int serialization_depth_ = 0;         // begin depth of that element
  Aggregator aggregator_;

  const CancelToken* cancel_token_ = nullptr;
  uint32_t cancel_tick_ = 0;
  uint32_t cancel_interval_ = CancelToken::kCheckIntervalEvents;
  uint64_t items_emitted_ = 0;
  MemoryTracker memory_;
  Status status_;
};

}  // namespace xsq::core

#endif  // XSQ_CORE_ENGINE_NC_H_
