// Buffer-operation tracing for XSQ-F.
//
// The paper explains the runtime in terms of four buffer operations -
// queue.enqueue / queue.upload / queue.clear / queue.flush (Sections
// 3.3 and 4.3). A TraceListener observes exactly those operations as
// the engine executes, which makes the worked examples of the paper
// (Example 1's buffering of author A, Example 6's selective clear)
// directly checkable, and powers xsq_cli --trace.
#ifndef XSQ_CORE_TRACE_H_
#define XSQ_CORE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xsq::core {

struct BufferOp {
  enum class Kind {
    kEnqueue,  // a potential result item entered a BPDT's buffer
    kUpload,   // items moved to the nearest still-undecided ancestor
    kFlush,    // items selected for output (all predicates proved)
    kClear,    // a claim dropped: the holding BPDT's predicate failed
    kEmit,     // a selected item left the head of the global FIFO
    kDiscard,  // an item left the FIFO with all claims dropped
  };

  Kind kind;
  std::string bpdt;   // e.g. "bpdt(2,2)"; target BPDT for uploads
  std::string value;  // current item value (possibly still growing)

  std::string ToString() const;
};

const char* BufferOpKindName(BufferOp::Kind kind);

class TraceListener {
 public:
  virtual ~TraceListener() = default;
  virtual void OnBufferOp(const BufferOp& op) = 0;
};

// Collects every operation; used by tests and examples.
class RecordingTrace : public TraceListener {
 public:
  void OnBufferOp(const BufferOp& op) override { ops.push_back(op); }

  // Operations of one kind, in order.
  std::vector<BufferOp> OfKind(BufferOp::Kind kind) const {
    std::vector<BufferOp> out;
    for (const BufferOp& op : ops) {
      if (op.kind == kind) out.push_back(op);
    }
    return out;
  }

  std::vector<BufferOp> ops;
};

}  // namespace xsq::core

#endif  // XSQ_CORE_TRACE_H_
