// Multi-query evaluation: many standing XPath queries over one stream.
//
// Section 5 of the paper notes that "the HPDT used by XSQ has a simple
// and regular structure, so that multiple HPDTs can be grouped" the way
// YFilter groups filter automata. This engine realizes the first and
// dominant level of that sharing: one SAX parse and one event dispatch
// feed every registered query's HPDT, so the per-query marginal cost is
// only automaton work, never parsing. (The bench/ext_multiquery binary
// quantifies the effect against running one full parse per query.)
//
// Queries are independent: each gets its own ResultSink and its own
// document-order output; an unsupported or failed query never affects
// the others.
#ifndef XSQ_CORE_MULTI_QUERY_H_
#define XSQ_CORE_MULTI_QUERY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "core/result_sink.h"
#include "xml/events.h"
#include "xpath/ast.h"

namespace xsq::core {

class MultiQueryEngine : public xml::SaxHandler {
 public:
  MultiQueryEngine() = default;

  // Registers a query; its results are delivered to `sink` (not owned).
  // Returns the query's index. Must not be called while a document is
  // being streamed.
  Result<int> AddQuery(const xpath::Query& query, ResultSink* sink);

  // Convenience: parse and register.
  Result<int> AddQuery(std::string_view query_text, ResultSink* sink);

  // SaxHandler: feed to a SaxParser; events fan out to every query.
  void OnDocumentBegin() override;
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

  size_t query_count() const { return engines_.size(); }

  // Engine for one registered query (stats, memory, status).
  const XsqEngine& engine(int index) const { return *engines_[static_cast<size_t>(index)]; }

  // First non-OK engine status, or OK.
  Status status() const;

  // Sum of all engines' buffered bytes (for memory studies).
  size_t total_peak_buffered_bytes() const;

 private:
  std::vector<std::unique_ptr<XsqEngine>> engines_;
};

}  // namespace xsq::core

#endif  // XSQ_CORE_MULTI_QUERY_H_
