// Buffered result items for the nondeterministic XSQ-F runtime
// (paper Section 4.3).
//
// With closure axes, one potential result can be reached by several match
// chains at once (Example 2). The paper shares a single item among all of
// them: the item is marked "output" as soon as one chain proves every
// predicate true, is dropped once every chain has failed, and is emitted
// only when it reaches the head of the global FIFO - which yields
// document order and duplicate avoidance. `claims` counts the chains that
// could still prove the item; each clear() drops one claim.
#ifndef XSQ_CORE_ITEM_H_
#define XSQ_CORE_ITEM_H_

#include <cstdint>
#include <string>

namespace xsq::core {

class Item {
 public:
  enum class State : uint8_t {
    kPending,    // some chain may still prove or refute this item
    kSelected,   // marked "output": at least one chain satisfied everything
    kDiscarded,  // all claims dropped without selection
  };

  explicit Item(uint64_t sequence) : sequence_(sequence) {}

  Item(const Item&) = delete;
  Item& operator=(const Item&) = delete;

  uint64_t sequence() const { return sequence_; }
  State state() const { return state_; }
  bool resolved() const { return state_ != State::kPending; }

  // The serialized element / text / attribute value. For catchall output
  // this grows while the element's subtree streams past.
  const std::string& value() const { return value_; }
  std::string* mutable_value() { return &value_; }

  // True once the value can no longer grow (always true except for an
  // element item whose end tag has not been seen yet).
  bool complete() const { return complete_; }
  void set_complete() { complete_ = true; }
  void set_incomplete() { complete_ = false; }

  void AddClaim() { ++claims_; }

  // One chain failed. The item is discarded when no chain remains and it
  // was never selected.
  void DropClaim() {
    if (claims_ > 0) --claims_;
    if (claims_ == 0 && state_ == State::kPending) {
      state_ = State::kDiscarded;
    }
  }

  // One chain proved all predicates: mark as output. Idempotent; wins
  // over any number of later DropClaim calls.
  void Select() {
    if (state_ == State::kPending) state_ = State::kSelected;
  }

 private:
  uint64_t sequence_;
  std::string value_;
  uint32_t claims_ = 0;
  State state_ = State::kPending;
  bool complete_ = true;
};

}  // namespace xsq::core

#endif  // XSQ_CORE_ITEM_H_
