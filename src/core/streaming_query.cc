#include "core/streaming_query.h"

namespace xsq::core {

StreamingQuery::StreamingQuery(std::shared_ptr<const CompiledPlan> plan)
    : plan_(std::move(plan)) {}

Result<std::unique_ptr<StreamingQuery>> StreamingQuery::Open(
    std::string_view query_text) {
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                       CompilePlan(query_text));
  return Open(std::move(plan));
}

Result<std::unique_ptr<StreamingQuery>> StreamingQuery::Open(
    std::shared_ptr<const CompiledPlan> plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  auto streaming_query =
      std::unique_ptr<StreamingQuery>(new StreamingQuery(std::move(plan)));

  xml::SaxHandler* handler = nullptr;
  if (streaming_query->plan_->deterministic) {
    XSQ_ASSIGN_OR_RETURN(
        streaming_query->nc_engine_,
        XsqNcEngine::Create(streaming_query->plan_->query,
                            &streaming_query->sink_));
    handler = streaming_query->nc_engine_.get();
  } else {
    XSQ_ASSIGN_OR_RETURN(
        streaming_query->f_engine_,
        XsqEngine::Create(streaming_query->plan_->hpdts,
                          &streaming_query->sink_));
    handler = streaming_query->f_engine_.get();
  }
  streaming_query->parser_ = std::make_unique<xml::SaxParser>(handler);
  return streaming_query;
}

Status StreamingQuery::Push(std::string_view chunk) {
  if (closed_) return Status::Internal("Push after Close");
  XSQ_RETURN_IF_ERROR(parser_->Feed(chunk));
  if (f_engine_ != nullptr) return f_engine_->status();
  return nc_engine_->status();
}

Status StreamingQuery::Close() {
  if (closed_) return Status::OK();
  XSQ_RETURN_IF_ERROR(parser_->Finish());
  closed_ = true;
  if (f_engine_ != nullptr) return f_engine_->status();
  return nc_engine_->status();
}

xml::SaxHandler* StreamingQuery::event_handler() {
  if (f_engine_ != nullptr) return f_engine_.get();
  return nc_engine_.get();
}

Status StreamingQuery::engine_status() const {
  if (f_engine_ != nullptr) return f_engine_->status();
  return nc_engine_->status();
}

Status StreamingQuery::FinishEvents() {
  closed_ = true;
  return engine_status();
}

void StreamingQuery::Reset() {
  parser_->Reset();
  if (f_engine_ != nullptr) f_engine_->Reset();
  if (nc_engine_ != nullptr) nc_engine_->Reset();
  sink_.items.clear();
  sink_.aggregate_updates.clear();
  sink_.aggregate.reset();
  next_item_ = 0;
  closed_ = false;
}

std::optional<std::string> StreamingQuery::NextItem() {
  if (next_item_ >= sink_.items.size()) return std::nullopt;
  return sink_.items[next_item_++];
}

size_t StreamingQuery::peak_buffered_bytes() const {
  if (f_engine_ != nullptr) return f_engine_->memory().peak_bytes();
  return nc_engine_->memory().peak_bytes();
}

size_t StreamingQuery::buffered_bytes() const {
  if (f_engine_ != nullptr) return f_engine_->memory().current_bytes();
  return nc_engine_->memory().current_bytes();
}

}  // namespace xsq::core
