#include "core/streaming_query.h"

#if XSQ_OBS_ENABLED
#include <chrono>
#endif

#include "common/failpoints.h"

namespace xsq::core {

#if XSQ_OBS_ENABLED

namespace {
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

// Times the engine's share of a sampled chunk: every kSampleEvery-th
// SAX callback is bracketed with clock reads and its duration scaled by
// kSampleEvery. Begin/end events drive automaton transitions; text
// events drive buffering and predicate work (the Figure 18 split).
//
// The shim only sees every kChunkSampleEvery-th chunk (Push swaps the
// parser's handler just for those), so the steady-state per-event cost
// of instrumentation is zero on 31 of 32 chunks and two clock reads per
// 128 events on the 32nd — that is what keeps ext_obs within its 3%
// overhead bound. Per-event forwarding through an always-on wrapper
// measured ~7% on the DBLP path, far over budget. Both grains were
// doubled (64 -> 128 events, 16 -> 32 chunks) when the SWAR/SSE2 scan
// loop made events 1.65-2x cheaper: the same wall-clock sampling
// cadence now spans twice the events, and the clock reads would
// otherwise be a larger *fraction* of the cheaper event loop.
class StreamingQuery::PhaseShim : public xml::SaxHandler {
 public:
  static constexpr uint32_t kSampleEvery = 128;

  explicit PhaseShim(xml::SaxHandler* inner) : inner_(inner) {}

  void OnDocumentBegin() override { inner_->OnDocumentBegin(); }
  void OnDocumentEnd() override { inner_->OnDocumentEnd(); }
  void OnDoctype(std::string_view name,
                 std::string_view internal_subset) override {
    inner_->OnDoctype(name, internal_subset);
  }

  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override {
    if (++tick_ % kSampleEvery == 0) {
      uint64_t start = NowNanos();
      inner_->OnBegin(tag, attributes, depth);
      automaton_ns_ += (NowNanos() - start) * kSampleEvery;
    } else {
      inner_->OnBegin(tag, attributes, depth);
    }
  }

  void OnEnd(std::string_view tag, int depth) override {
    if (++tick_ % kSampleEvery == 0) {
      uint64_t start = NowNanos();
      inner_->OnEnd(tag, depth);
      automaton_ns_ += (NowNanos() - start) * kSampleEvery;
    } else {
      inner_->OnEnd(tag, depth);
    }
  }

  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override {
    if (++tick_ % kSampleEvery == 0) {
      uint64_t start = NowNanos();
      inner_->OnText(enclosing_tag, text, depth);
      buffer_ns_ += (NowNanos() - start) * kSampleEvery;
    } else {
      inner_->OnText(enclosing_tag, text, depth);
    }
  }

  // Moves out and clears the accumulated (scaled) handler durations.
  void TakePhases(uint64_t* automaton_ns, uint64_t* buffer_ns) {
    *automaton_ns = automaton_ns_;
    *buffer_ns = buffer_ns_;
    automaton_ns_ = 0;
    buffer_ns_ = 0;
  }

  void ResetCounters() {
    tick_ = 0;
    automaton_ns_ = 0;
    buffer_ns_ = 0;
  }

 private:
  xml::SaxHandler* inner_;
  uint32_t tick_ = 0;
  uint64_t automaton_ns_ = 0;
  uint64_t buffer_ns_ = 0;
};

#else  // !XSQ_OBS_ENABLED

// Placeholder so unique_ptr<PhaseShim> has a complete type to destroy;
// never instantiated in non-obs builds.
class StreamingQuery::PhaseShim {};

#endif  // XSQ_OBS_ENABLED

StreamingQuery::StreamingQuery(std::shared_ptr<const CompiledPlan> plan)
    : plan_(std::move(plan)) {}

StreamingQuery::~StreamingQuery() = default;

Result<std::unique_ptr<StreamingQuery>> StreamingQuery::Open(
    std::string_view query_text) {
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<const CompiledPlan> plan,
                       CompilePlan(query_text));
  return Open(std::move(plan));
}

Result<std::unique_ptr<StreamingQuery>> StreamingQuery::Open(
    std::shared_ptr<const CompiledPlan> plan) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  XSQ_FAILPOINT("core.engine.alloc_fail",
                return Status::ResourceExhausted(
                    "injected engine allocation failure"));
  auto streaming_query =
      std::unique_ptr<StreamingQuery>(new StreamingQuery(std::move(plan)));

  xml::SaxHandler* handler = nullptr;
  if (streaming_query->plan_->deterministic) {
    XSQ_ASSIGN_OR_RETURN(
        streaming_query->nc_engine_,
        XsqNcEngine::Create(streaming_query->plan_->query,
                            &streaming_query->sink_));
    handler = streaming_query->nc_engine_.get();
  } else {
    XSQ_ASSIGN_OR_RETURN(
        streaming_query->f_engine_,
        XsqEngine::Create(streaming_query->plan_->hpdts,
                          &streaming_query->sink_));
    handler = streaming_query->f_engine_.get();
  }
  streaming_query->parser_ = std::make_unique<xml::SaxParser>(handler);
  return streaming_query;
}

xml::SaxHandler* StreamingQuery::engine_handler() {
  if (f_engine_ != nullptr) return f_engine_.get();
  return nc_engine_.get();
}

void StreamingQuery::set_cancel_token(const CancelToken* token) {
  cancel_token_ = token;
  if (f_engine_ != nullptr) f_engine_->set_cancel_token(token);
  if (nc_engine_ != nullptr) nc_engine_->set_cancel_token(token);
}

void StreamingQuery::set_parser_limits(const xml::ParserLimits& limits) {
  parser_->set_limits(limits);
}

void StreamingQuery::set_phase_listener(PhaseListener* listener) {
#if XSQ_OBS_ENABLED
  phase_listener_ = listener;
  if (listener != nullptr && phase_shim_ == nullptr) {
    phase_shim_ = std::make_unique<PhaseShim>(engine_handler());
  }
  if (phase_shim_ != nullptr) phase_shim_->ResetCounters();
  chunk_tick_ = 0;
  sampled_chunks_ = 0;
  phase_parse_ns_ = phase_automaton_ns_ = phase_buffer_ns_ = 0;
  // The parser stays pointed at the engine; Push swaps in the shim only
  // for sampled chunks. Valid between documents only.
  parser_->set_handler(engine_handler());
#else
  (void)listener;
#endif
}

#if XSQ_OBS_ENABLED
namespace {
// One chunk in this many is fully timed; the estimate is scaled back up.
constexpr uint32_t kChunkSampleEvery = 32;
}  // namespace
#endif

Status StreamingQuery::Push(std::string_view chunk) {
  if (closed_) return Status::Internal("Push after Close");
  if (cancel_token_ != nullptr) {
    XSQ_RETURN_IF_ERROR(cancel_token_->Check());  // chunk boundary
  }
#if XSQ_OBS_ENABLED
  // Sampled chunk: route events through the phase shim, wall-time the
  // Feed, and accumulate the unscaled split; Close scales it by the
  // document's actual chunks/sampled ratio and emits one sample (a
  // fixed scale here would overstate short documents 32x). Unsampled
  // chunks run the exact bare path and pay one increment and a branch.
  if (phase_listener_ != nullptr && chunk_tick_++ % kChunkSampleEvery == 0) {
    parser_->set_handler(phase_shim_.get());
    uint64_t start = NowNanos();
    Status fed = parser_->Feed(chunk);
    uint64_t total_ns = NowNanos() - start;
    parser_->set_handler(engine_handler());
    uint64_t automaton_ns = 0;
    uint64_t buffer_ns = 0;
    phase_shim_->TakePhases(&automaton_ns, &buffer_ns);
    uint64_t handler_ns = automaton_ns + buffer_ns;
    ++sampled_chunks_;
    phase_automaton_ns_ += automaton_ns;
    phase_buffer_ns_ += buffer_ns;
    phase_parse_ns_ += total_ns > handler_ns ? total_ns - handler_ns : 0;
    XSQ_RETURN_IF_ERROR(fed);
    if (f_engine_ != nullptr) return f_engine_->status();
    return nc_engine_->status();
  }
#endif
  XSQ_RETURN_IF_ERROR(parser_->Feed(chunk));
  if (f_engine_ != nullptr) return f_engine_->status();
  return nc_engine_->status();
}

Status StreamingQuery::Close() {
  if (closed_) return Status::OK();
  if (cancel_token_ != nullptr) {
    XSQ_RETURN_IF_ERROR(cancel_token_->Check());  // chunk boundary
  }
#if XSQ_OBS_ENABLED
  // Close flushes whatever the parser retained (timed unscaled), then
  // emits the document's one phase sample: the sampled-chunk
  // accumulators scaled by how many chunks each sampled chunk stands
  // in for — the observed ratio, not kChunkSampleEvery, so documents
  // shorter than one sampling period are not overstated.
  if (phase_listener_ != nullptr) {
    parser_->set_handler(phase_shim_.get());
    uint64_t start = NowNanos();
    Status finished = parser_->Finish();
    uint64_t total_ns = NowNanos() - start;
    parser_->set_handler(engine_handler());
    uint64_t automaton_ns = 0;
    uint64_t buffer_ns = 0;
    phase_shim_->TakePhases(&automaton_ns, &buffer_ns);
    uint64_t handler_ns = automaton_ns + buffer_ns;
    uint64_t parse_ns = total_ns > handler_ns ? total_ns - handler_ns : 0;
    double scale =
        sampled_chunks_ > 0
            ? static_cast<double>(chunk_tick_) / sampled_chunks_
            : 1.0;
    phase_listener_->OnPhaseSample(
        parse_ns + static_cast<uint64_t>(phase_parse_ns_ * scale),
        automaton_ns + static_cast<uint64_t>(phase_automaton_ns_ * scale),
        buffer_ns + static_cast<uint64_t>(phase_buffer_ns_ * scale));
    phase_parse_ns_ = phase_automaton_ns_ = phase_buffer_ns_ = 0;
    sampled_chunks_ = 0;
    chunk_tick_ = 0;
    XSQ_RETURN_IF_ERROR(finished);
    closed_ = true;
    if (f_engine_ != nullptr) return f_engine_->status();
    return nc_engine_->status();
  }
#endif
  XSQ_RETURN_IF_ERROR(parser_->Finish());
  closed_ = true;
  if (f_engine_ != nullptr) return f_engine_->status();
  return nc_engine_->status();
}

xml::SaxHandler* StreamingQuery::event_handler() {
  // Direct event delivery skips the parser, so there is no parse phase
  // to split out; callers time replay as a whole (see Session::RunTape).
  return engine_handler();
}

Status StreamingQuery::engine_status() const {
  if (f_engine_ != nullptr) return f_engine_->status();
  return nc_engine_->status();
}

Status StreamingQuery::FinishEvents() {
  closed_ = true;
  return engine_status();
}

void StreamingQuery::Reset() {
  parser_->Reset();
#if XSQ_OBS_ENABLED
  if (phase_shim_ != nullptr) phase_shim_->ResetCounters();
  chunk_tick_ = 0;
  sampled_chunks_ = 0;
  phase_parse_ns_ = phase_automaton_ns_ = phase_buffer_ns_ = 0;
  parser_->set_handler(engine_handler());
#endif
  if (f_engine_ != nullptr) f_engine_->Reset();
  if (nc_engine_ != nullptr) nc_engine_->Reset();
  sink_.items.clear();
  sink_.aggregate_updates.clear();
  sink_.aggregate.reset();
  next_item_ = 0;
  closed_ = false;
}

std::optional<std::string> StreamingQuery::NextItem() {
  if (next_item_ >= sink_.items.size()) return std::nullopt;
  return sink_.items[next_item_++];
}

size_t StreamingQuery::peak_buffered_bytes() const {
  if (f_engine_ != nullptr) return f_engine_->memory().peak_bytes();
  return nc_engine_->memory().peak_bytes();
}

size_t StreamingQuery::buffered_bytes() const {
  // The parser's retained bytes (unconsumed chunk tail + live arenas)
  // count too: an adversarial stream can park memory in an unterminated
  // construct just as well as in undecided predicate buffers.
  size_t engine_bytes = f_engine_ != nullptr
                            ? f_engine_->memory().current_bytes()
                            : nc_engine_->memory().current_bytes();
  return engine_bytes + parser_->retained_bytes();
}

}  // namespace xsq::core
