#include "core/compiled_plan.h"

namespace xsq::core {

Result<std::vector<std::shared_ptr<const Hpdt>>> BuildUnionHpdts(
    const xpath::Query& query) {
  std::vector<std::shared_ptr<const Hpdt>> hpdts;
  xpath::Query main = query;
  std::vector<xpath::Query> branches = std::move(main.union_branches);
  main.union_branches.clear();
  XSQ_ASSIGN_OR_RETURN(std::unique_ptr<Hpdt> main_hpdt, Hpdt::Build(main));
  hpdts.push_back(std::move(main_hpdt));
  size_t total_slots = main.steps.size() + 1;
  for (const xpath::Query& branch : branches) {
    XSQ_ASSIGN_OR_RETURN(std::unique_ptr<Hpdt> hpdt, Hpdt::Build(branch));
    hpdts.push_back(std::move(hpdt));
    total_slots += branch.steps.size() + 1;
  }
  if (total_slots > 64) {
    return Status::NotSupported(
        "union query has too many location steps in total (max 63)");
  }
  return hpdts;
}

Result<std::shared_ptr<const CompiledPlan>> CompilePlan(
    std::string_view query_text) {
  XSQ_ASSIGN_OR_RETURN(xpath::Query query, xpath::ParseQuery(query_text));
  auto plan = std::make_shared<CompiledPlan>();
  plan->deterministic = !query.HasClosure() && !query.IsUnion();
  if (!plan->deterministic) {
    XSQ_ASSIGN_OR_RETURN(plan->hpdts, BuildUnionHpdts(query));
  }
  plan->query = std::move(query);
  return std::shared_ptr<const CompiledPlan>(std::move(plan));
}

}  // namespace xsq::core
