// Output interface shared by every streaming engine in this repository
// (XSQ-F, XSQ-NC, the lazy-DFA engine, the subtree-buffering baseline).
#ifndef XSQ_CORE_RESULT_SINK_H_
#define XSQ_CORE_RESULT_SINK_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace xsq::core {

// Receives query results as they become available. For non-aggregation
// queries, OnItem is called once per result item in document order. For
// aggregation queries, OnAggregateUpdate is called with the running value
// each time it changes (the paper's incremental semantics for unbounded
// streams, Section 4.4) and OnAggregateFinal once at end of document.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  virtual void OnItem(std::string_view value) = 0;
  virtual void OnAggregateUpdate(double /*value*/) {}
  virtual void OnAggregateFinal(std::optional<double> /*value*/) {}
};

// Collects everything; used by tests and examples.
class CollectingSink : public ResultSink {
 public:
  void OnItem(std::string_view value) override {
    items.emplace_back(value);
  }
  void OnAggregateUpdate(double value) override {
    aggregate_updates.push_back(value);
  }
  void OnAggregateFinal(std::optional<double> value) override {
    aggregate = value;
  }

  std::vector<std::string> items;
  std::vector<double> aggregate_updates;
  std::optional<double> aggregate;
};

// Counts items without storing them; used by benchmarks so that sink cost
// does not dominate throughput measurements.
class CountingSink : public ResultSink {
 public:
  void OnItem(std::string_view value) override {
    ++item_count;
    item_bytes += value.size();
  }
  void OnAggregateUpdate(double /*value*/) override { ++update_count; }
  void OnAggregateFinal(std::optional<double> value) override {
    aggregate = value;
  }

  size_t item_count = 0;
  size_t item_bytes = 0;
  size_t update_count = 0;
  std::optional<double> aggregate;
};

}  // namespace xsq::core

#endif  // XSQ_CORE_RESULT_SINK_H_
