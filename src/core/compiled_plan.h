// CompiledPlan: the immutable, shareable result of query compilation.
//
// Compiling a query means parsing the XPath text, deciding which engine
// runs it (deterministic XSQ-NC for closure-free non-union queries,
// XSQ-F otherwise), and - for XSQ-F - building one HPDT per union
// branch. All of that work is input-independent, so a plan compiled once
// can back any number of concurrently-running engines: HPDTs are
// read-only at run time and are held by shared_ptr<const>, while every
// engine keeps its own run-time state (match chains, buffers, stacks).
//
// This is what the service layer's PlanCache stores; StreamingQuery can
// be opened directly from a cached plan so hot queries skip parse and
// HPDT construction entirely.
#ifndef XSQ_CORE_COMPILED_PLAN_H_
#define XSQ_CORE_COMPILED_PLAN_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/hpdt.h"
#include "xpath/ast.h"

namespace xsq::core {

struct CompiledPlan {
  xpath::Query query;

  // True when the query runs on the deterministic XSQ-NC engine (no
  // closure axis, no union). XSQ-NC needs no HPDT, so `hpdts` is empty.
  bool deterministic = false;

  // For XSQ-F plans: the main query's HPDT followed by one per union
  // branch, in branch order. Immutable once built; shared by every
  // engine instantiated from this plan.
  std::vector<std::shared_ptr<const Hpdt>> hpdts;
};

// Parses `query_text` and compiles it into an engine-ready plan.
Result<std::shared_ptr<const CompiledPlan>> CompilePlan(
    std::string_view query_text);

// Builds the XSQ-F HPDT set for `query` (main path first, then one per
// union branch). Fails with NotSupported when the union's location
// steps exceed the engine's 63-step budget.
Result<std::vector<std::shared_ptr<const Hpdt>>> BuildUnionHpdts(
    const xpath::Query& query);

}  // namespace xsq::core

#endif  // XSQ_CORE_COMPILED_PLAN_H_
