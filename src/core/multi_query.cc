#include "core/multi_query.h"

namespace xsq::core {

Result<int> MultiQueryEngine::AddQuery(const xpath::Query& query,
                                       ResultSink* sink) {
  XSQ_ASSIGN_OR_RETURN(auto engine, XsqEngine::Create(query, sink));
  engines_.push_back(std::move(engine));
  return static_cast<int>(engines_.size()) - 1;
}

Result<int> MultiQueryEngine::AddQuery(std::string_view query_text,
                                       ResultSink* sink) {
  XSQ_ASSIGN_OR_RETURN(xpath::Query query, xpath::ParseQuery(query_text));
  return AddQuery(query, sink);
}

void MultiQueryEngine::OnDocumentBegin() {
  for (auto& engine : engines_) engine->OnDocumentBegin();
}

void MultiQueryEngine::OnBegin(std::string_view tag,
                               const std::vector<xml::Attribute>& attributes,
                               int depth) {
  for (auto& engine : engines_) engine->OnBegin(tag, attributes, depth);
}

void MultiQueryEngine::OnEnd(std::string_view tag, int depth) {
  for (auto& engine : engines_) engine->OnEnd(tag, depth);
}

void MultiQueryEngine::OnText(std::string_view enclosing_tag,
                              std::string_view text, int depth) {
  for (auto& engine : engines_) engine->OnText(enclosing_tag, text, depth);
}

void MultiQueryEngine::OnDocumentEnd() {
  for (auto& engine : engines_) engine->OnDocumentEnd();
}

Status MultiQueryEngine::status() const {
  for (const auto& engine : engines_) {
    if (!engine->status().ok()) return engine->status();
  }
  return Status::OK();
}

size_t MultiQueryEngine::total_peak_buffered_bytes() const {
  size_t total = 0;
  for (const auto& engine : engines_) {
    total += engine->memory().peak_bytes();
  }
  return total;
}

}  // namespace xsq::core
