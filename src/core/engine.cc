#include "core/engine.h"

#include <cassert>

#include "common/strings.h"
#include "core/compiled_plan.h"
#include "xml/sax_parser.h"
#include "xpath/value_compare.h"

namespace xsq::core {

namespace {

bool TagMatches(const xpath::LocationStep& step, std::string_view tag) {
  return step.IsWildcard() || step.node_test == tag;
}

bool ChildTagMatches(const xpath::Predicate& predicate, std::string_view tag) {
  return predicate.child_tag == "*" || predicate.child_tag == tag;
}

const std::string_view* FindAttr(const std::vector<xml::Attribute>& attributes,
                                 std::string_view name) {
  for (const xml::Attribute& attr : attributes) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

// True iff the attribute predicate holds for the given attribute list.
bool AttributePredicateHolds(const xpath::Predicate& predicate,
                             const std::vector<xml::Attribute>& attributes) {
  const std::string_view* value = FindAttr(attributes, predicate.attribute);
  if (value == nullptr) return false;
  return !predicate.has_comparison || xpath::CompareValue(*value, predicate);
}

void AppendBeginTag(std::string* out, std::string_view tag,
                    const std::vector<xml::Attribute>& attributes) {
  out->push_back('<');
  out->append(tag);
  for (const xml::Attribute& attr : attributes) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(XmlEscape(attr.value));
    out->push_back('"');
  }
  out->push_back('>');
}

}  // namespace

XsqEngine::XsqEngine(std::vector<std::shared_ptr<const Hpdt>> hpdts,
                     ResultSink* sink)
    : hpdts_(std::move(hpdts)),
      sink_(sink),
      output_kind_(hpdts_.front()->query().output.kind),
      aggregator_(output_kind_) {
  for (const auto& hpdt : hpdts_) {
    branch_offsets_.push_back(total_step_slots_);
    total_step_slots_ += static_cast<size_t>(hpdt->num_layers()) + 1;
  }
  Reset();
}

Result<std::unique_ptr<XsqEngine>> XsqEngine::Create(
    const xpath::Query& query, ResultSink* sink) {
  // One HPDT per union branch; items are shared across branches so set
  // semantics and document order hold over the whole union.
  XSQ_ASSIGN_OR_RETURN(std::vector<std::shared_ptr<const Hpdt>> hpdts,
                       BuildUnionHpdts(query));
  return std::unique_ptr<XsqEngine>(new XsqEngine(std::move(hpdts), sink));
}

Result<std::unique_ptr<XsqEngine>> XsqEngine::Create(
    std::vector<std::shared_ptr<const Hpdt>> hpdts, ResultSink* sink) {
  if (hpdts.empty()) {
    return Status::InvalidArgument("engine needs at least one HPDT");
  }
  return std::unique_ptr<XsqEngine>(new XsqEngine(std::move(hpdts), sink));
}

void XsqEngine::Reset() {
  memory_.ReleaseAll();  // buffered items discarded below
  stack_.clear();
  active_by_step_.assign(total_step_slots_, {});
  output_queue_.clear();
  serializations_.clear();
  aggregator_ = Aggregator(output_kind_);
  next_sequence_ = 0;
  live_matches_ = 0;
  cancel_tick_ = 0;
  status_ = Status::OK();

  // The virtual document entry with one always-TRUE root match per
  // branch (Figure 12): the document node is the depth-0 "element"
  // every leading '/' or '//' starts from.
  stack_.emplace_back();
  for (size_t b = 0; b < hpdts_.size(); ++b) {
    auto root_match = std::make_unique<Match>();
    root_match->bpdt = hpdts_[b]->root();
    root_match->branch = static_cast<int>(b);
    active_by_step_[StepSlot(static_cast<int>(b), 0)].push_back(
        root_match.get());
    stack_.back().matches.push_back(std::move(root_match));
  }
}

void XsqEngine::OnDocumentBegin() { Reset(); }

XsqEngine::Match* XsqEngine::LowestUnsatisfied(Match* match) {
  for (Match* cur = match; cur != nullptr; cur = cur->parent) {
    if (!cur->satisfied()) return cur;
  }
  return nullptr;
}

void XsqEngine::Trace(BufferOp::Kind kind, const Bpdt* bpdt,
                      const Item* item) {
  BufferOp op;
  op.kind = kind;
  if (bpdt != nullptr) op.bpdt = bpdt->Name();
  if (item != nullptr) op.value = item->value();
  trace_->OnBufferOp(op);
}

void XsqEngine::SatisfyPredicate(Match* match, uint32_t bit) {
  match->pending_mask &= ~(1u << bit);
  if (!match->satisfied()) return;
  // The BPDT reached its TRUE state: upload the buffer to the nearest
  // ancestor whose predicate is still undecided, or flush (select) when
  // every ancestor is TRUE - the true-spine case of Section 4.2.
  Match* holder = LowestUnsatisfied(match->parent);
  if (holder != nullptr) {
    for (std::shared_ptr<Item>& item : match->held) {
      if (trace_ != nullptr) {
        Trace(BufferOp::Kind::kUpload, holder->bpdt, item.get());
      }
      holder->held.push_back(std::move(item));
    }
  } else {
    for (std::shared_ptr<Item>& item : match->held) {
      if (trace_ != nullptr) {
        Trace(BufferOp::Kind::kFlush, match->bpdt, item.get());
      }
      item->Select();
    }
  }
  match->held.clear();
}

std::shared_ptr<Item> XsqEngine::MakeItem() {
  auto item = std::make_shared<Item>(next_sequence_++);
  output_queue_.push_back(item);
  ++stats_.items_created;
  return item;
}

void XsqEngine::AttachItem(const std::shared_ptr<Item>& item,
                           StackEntry* entry) {
  // One claim per match chain that can still prove the item; the item is
  // held by each chain's lowest undecided match ("enqueue" with the
  // chain's depth vector, Section 4.3).
  for (Match* match : entry->last_step_matches) {
    Match* holder = LowestUnsatisfied(match);
    if (holder != nullptr) {
      if (trace_ != nullptr) {
        Trace(BufferOp::Kind::kEnqueue, holder->bpdt, item.get());
      }
      holder->held.push_back(item);
      item->AddClaim();
    } else {
      if (trace_ != nullptr) {
        Trace(BufferOp::Kind::kFlush, match->bpdt, item.get());
      }
      item->Select();
    }
  }
}

void XsqEngine::AppendToItem(Item* item, std::string_view data) {
  item->mutable_value()->append(data);
  memory_.Add(data.size());
}

void XsqEngine::AppendToSerializations(std::string_view data) {
  for (ActiveSerialization& active : serializations_) {
    if (active.item->state() == Item::State::kDiscarded) continue;
    AppendToItem(active.item.get(), data);
  }
}

void XsqEngine::EmitReadyItems() {
  while (!output_queue_.empty()) {
    Item* front = output_queue_.front().get();
    if (front->state() == Item::State::kPending) break;
    if (front->state() == Item::State::kSelected) {
      if (!front->complete()) break;
      if (xpath::IsAggregation(output_kind_)) {
        if (aggregator_.Update(front->value())) {
          std::optional<double> current = aggregator_.Current();
          if (current.has_value()) sink_->OnAggregateUpdate(*current);
        }
      } else {
        sink_->OnItem(front->value());
      }
      if (trace_ != nullptr) {
        Trace(BufferOp::Kind::kEmit, nullptr, front);
      }
      ++stats_.items_emitted;
    } else {
      if (trace_ != nullptr) {
        Trace(BufferOp::Kind::kDiscard, nullptr, front);
      }
      ++stats_.items_discarded;
    }
    memory_.Release(front->value().size());
    output_queue_.pop_front();
  }
}

void XsqEngine::OnBegin(std::string_view tag,
                        const std::vector<xml::Attribute>& attributes,
                        int depth) {
  if (!status_.ok()) return;
  if (CheckCancelSampled()) return;
  if (static_cast<size_t>(depth) != stack_.size()) {
    status_ = Status::Internal("event depth out of sync with engine stack");
    return;
  }

  // 1. This begin event may decide child-existence / child-attribute
  // predicates of matches on the parent element (templates of
  // Figures 7 and 8).
  for (const auto& match : stack_.back().matches) {
    if (match->satisfied() || match->bpdt->step == nullptr) continue;
    const auto& predicates = match->bpdt->step->predicates;
    for (size_t j = 0; j < predicates.size(); ++j) {
      if ((match->pending_mask >> j & 1u) == 0) continue;
      const xpath::Predicate& p = predicates[j];
      if (p.kind != xpath::PredicateKind::kChild &&
          p.kind != xpath::PredicateKind::kChildAttribute) {
        continue;
      }
      if (!ChildTagMatches(p, tag)) continue;
      if (p.kind == xpath::PredicateKind::kChildAttribute &&
          !AttributePredicateHolds(p, attributes)) {
        continue;
      }
      SatisfyPredicate(match.get(), static_cast<uint32_t>(j));
      if (match->satisfied()) break;
    }
  }

  // 2. Collect the parent matches this element extends, before any state
  // for the new element exists (closure sources are strict ancestors).
  struct Candidate {
    Match* parent;
    int branch;
    int step_index;
  };
  std::vector<Candidate> candidates;
  for (size_t b = 0; b < hpdts_.size(); ++b) {
    const auto& steps = hpdts_[b]->query().steps;
    const int branch = static_cast<int>(b);
    for (int i = 1; i <= hpdts_[b]->num_layers(); ++i) {
      const xpath::LocationStep& step = steps[static_cast<size_t>(i) - 1];
      if (!TagMatches(step, tag)) continue;
      if (step.axis == xpath::Axis::kChild) {
        for (const auto& match : stack_.back().matches) {
          if (match->branch == branch && match->bpdt->layer == i - 1) {
            candidates.push_back({match.get(), branch, i});
          }
        }
      } else {
        // The closure self-transition keeps the START state live at
        // every depth, so any active match at step i-1 is a source.
        for (Match* match : active_by_step_[StepSlot(branch, i - 1)]) {
          candidates.push_back({match, branch, i});
        }
      }
    }
  }

  // 3. Create the new element's match instances. Attribute predicates
  // are decided right here (Figure 5: no NA state); a failing one means
  // no transition, hence no match.
  stack_.emplace_back();
  StackEntry& entry = stack_.back();
  for (const Candidate& candidate : candidates) {
    const xpath::LocationStep& step =
        hpdts_[static_cast<size_t>(candidate.branch)]
            ->query()
            .steps[static_cast<size_t>(candidate.step_index) - 1];
    uint32_t pending = 0;
    bool dead = false;
    for (size_t j = 0; j < step.predicates.size(); ++j) {
      const xpath::Predicate& p = step.predicates[j];
      if (p.kind == xpath::PredicateKind::kAttribute) {
        if (!AttributePredicateHolds(p, attributes)) {
          dead = true;
          break;
        }
      } else {
        pending |= 1u << j;
      }
    }
    if (dead) continue;
    const Bpdt* bpdt = hpdts_[static_cast<size_t>(candidate.branch)]->Enter(
        candidate.parent->bpdt, candidate.parent->satisfied());
    // Collapse behaviorally identical chains: a second fully-resolved
    // true-spine match at the same (branch, step, element) can neither
    // hold items nor produce different descendants.
    if (bpdt->on_true_spine && pending == 0) {
      uint64_t bit = uint64_t{1}
                     << StepSlot(candidate.branch, candidate.step_index);
      if (entry.resolved_spine_steps & bit) continue;
      entry.resolved_spine_steps |= bit;
    }
    auto match = std::make_unique<Match>();
    match->bpdt = bpdt;
    match->parent = candidate.parent;
    match->branch = candidate.branch;
    match->pending_mask = pending;
    Match* raw = match.get();
    entry.matches.push_back(std::move(match));
    active_by_step_[StepSlot(candidate.branch, candidate.step_index)]
        .push_back(raw);
    if (candidate.step_index ==
        hpdts_[static_cast<size_t>(candidate.branch)]->num_layers()) {
      entry.last_step_matches.push_back(raw);
    }
    ++stats_.matches_created;
    ++live_matches_;
    if (live_matches_ > stats_.peak_live_matches) {
      stats_.peak_live_matches = live_matches_;
    }
  }

  // 4. Output duties of the lowest layer (Section 4.2): produce the item
  // for this element if it matched the output step.
  if (output_kind_ == xpath::OutputKind::kElement) {
    std::string begin_tag;
    AppendBeginTag(&begin_tag, tag, attributes);
    AppendToSerializations(begin_tag);
    if (!entry.last_step_matches.empty()) {
      std::shared_ptr<Item> item = MakeItem();
      item->set_incomplete();
      AttachItem(item, &entry);
      AppendToItem(item.get(), begin_tag);
      serializations_.push_back({item, depth});
    }
  } else if (output_kind_ == xpath::OutputKind::kAttribute) {
    if (!entry.last_step_matches.empty()) {
      const std::string_view* value =
          FindAttr(attributes, hpdts_.front()->query().output.attribute);
      if (value != nullptr) {
        std::shared_ptr<Item> item = MakeItem();
        AppendToItem(item.get(), *value);
        AttachItem(item, &entry);
      }
    }
  } else if (xpath::IsAggregation(output_kind_)) {
    if (!entry.last_step_matches.empty()) {
      std::shared_ptr<Item> item = MakeItem();
      item->set_incomplete();  // accumulates the element's direct text
      AttachItem(item, &entry);
      entry.aggregate_item = item;
    }
  }

  EmitReadyItems();
}

void XsqEngine::OnText(std::string_view enclosing_tag, std::string_view text,
                       int /*depth*/) {
  if (!status_.ok()) return;
  if (CheckCancelSampled()) return;
  StackEntry& entry = stack_.back();

  // Text predicates on the enclosing element (Figure 6 template).
  for (const auto& match : entry.matches) {
    if (match->satisfied()) continue;
    const auto& predicates = match->bpdt->step->predicates;
    for (size_t j = 0; j < predicates.size(); ++j) {
      if ((match->pending_mask >> j & 1u) == 0) continue;
      const xpath::Predicate& p = predicates[j];
      if (p.kind != xpath::PredicateKind::kText) continue;
      if (p.has_comparison && !xpath::CompareValue(text, p)) continue;
      SatisfyPredicate(match.get(), static_cast<uint32_t>(j));
      if (match->satisfied()) break;
    }
  }

  // Child-text predicates on the parent element (Figure 9 template).
  if (stack_.size() >= 2) {
    StackEntry& parent = stack_[stack_.size() - 2];
    for (const auto& match : parent.matches) {
      if (match->satisfied() || match->bpdt->step == nullptr) continue;
      const auto& predicates = match->bpdt->step->predicates;
      for (size_t j = 0; j < predicates.size(); ++j) {
        if ((match->pending_mask >> j & 1u) == 0) continue;
        const xpath::Predicate& p = predicates[j];
        if (p.kind != xpath::PredicateKind::kChildText) continue;
        if (!ChildTagMatches(p, enclosing_tag)) continue;
        if (!xpath::CompareValue(text, p)) continue;
        SatisfyPredicate(match.get(), static_cast<uint32_t>(j));
        if (match->satisfied()) break;
      }
    }
  }

  // Output.
  if (output_kind_ == xpath::OutputKind::kText &&
      !entry.last_step_matches.empty()) {
    std::shared_ptr<Item> item = MakeItem();
    AppendToItem(item.get(), text);
    AttachItem(item, &entry);
  }
  if (entry.aggregate_item != nullptr) {
    AppendToItem(entry.aggregate_item.get(), text);
  }
  if (output_kind_ == xpath::OutputKind::kElement &&
      !serializations_.empty()) {
    AppendToSerializations(XmlEscape(text));
  }

  EmitReadyItems();
}

void XsqEngine::OnEnd(std::string_view tag, int depth) {
  if (!status_.ok()) return;
  if (CheckCancelSampled()) return;
  StackEntry& entry = stack_.back();

  if (output_kind_ == xpath::OutputKind::kElement &&
      !serializations_.empty()) {
    std::string end_tag = "</";
    end_tag += tag;
    end_tag += ">";
    AppendToSerializations(end_tag);
    // Element items rooted at this element are now complete.
    for (size_t i = serializations_.size(); i > 0; --i) {
      ActiveSerialization& active = serializations_[i - 1];
      if (active.begin_depth == depth) {
        active.item->set_complete();
        serializations_.erase(serializations_.begin() +
                              static_cast<long>(i - 1));
      }
    }
  }

  if (entry.aggregate_item != nullptr) {
    entry.aggregate_item->set_complete();
    entry.aggregate_item.reset();
  }

  // Matches still NA have definitively failed their predicate: clear
  // their buffers (one claim dropped per held item).
  for (const auto& match : entry.matches) {
    if (!match->satisfied()) {
      for (const std::shared_ptr<Item>& item : match->held) {
        if (trace_ != nullptr) {
          Trace(BufferOp::Kind::kClear, match->bpdt, item.get());
        }
        item->DropClaim();
      }
    }
    // Remove from the closure-source index (it is near the back).
    auto& actives =
        active_by_step_[StepSlot(match->branch, match->bpdt->layer)];
    for (size_t i = actives.size(); i > 0; --i) {
      if (actives[i - 1] == match.get()) {
        actives.erase(actives.begin() + static_cast<long>(i - 1));
        break;
      }
    }
  }
  live_matches_ -= entry.matches.size();
  stack_.pop_back();

  EmitReadyItems();
}

void XsqEngine::OnDocumentEnd() {
  if (!status_.ok()) return;
  EmitReadyItems();
  if (!output_queue_.empty()) {
    status_ = Status::Internal(
        "unresolved buffered items at end of document (engine bug)");
    return;
  }
  if (xpath::IsAggregation(output_kind_)) {
    sink_->OnAggregateFinal(aggregator_.Final());
  }
}

Result<QueryResult> RunQuery(std::string_view query_text,
                             std::string_view xml_text) {
  XSQ_ASSIGN_OR_RETURN(xpath::Query query, xpath::ParseQuery(query_text));
  CollectingSink sink;
  XSQ_ASSIGN_OR_RETURN(auto engine, XsqEngine::Create(query, &sink));
  xml::SaxParser parser(engine.get());
  XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
  XSQ_RETURN_IF_ERROR(engine->status());
  QueryResult result;
  result.items = std::move(sink.items);
  result.aggregate = sink.aggregate;
  return result;
}

}  // namespace xsq::core
