// StreamingQuery: the one-object facade over parser + engine + sink.
//
// For library users who just want to push bytes and pull results:
//
//   auto q = xsq::core::StreamingQuery::Open("//book[price<20]/title/text()");
//   while (...) {
//     q->Push(next_chunk);
//     while (auto item = q->NextItem()) consume(*item);
//   }
//   q->Close();
//
// Items become available at the earliest moment the engine can prove
// membership, so NextItem drains results incrementally while the
// document is still streaming. Closure-free queries automatically run
// on the faster deterministic XSQ-NC engine; everything else runs on
// XSQ-F.
//
// A StreamingQuery is reusable: Reset() rewinds parser and engine so the
// same compiled query can process another document without recompiling,
// and Open(plan) instantiates one from an already-compiled (typically
// cached) plan, skipping parse and HPDT construction entirely.
#ifndef XSQ_CORE_STREAMING_QUERY_H_
#define XSQ_CORE_STREAMING_QUERY_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/cancel_token.h"
#include "core/compiled_plan.h"
#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq::core {

// Receives phase timing samples from an instrumented StreamingQuery
// (see set_phase_listener). Durations are nanoseconds, split the way
// the paper's Figure 18 decomposes runtime:
//   parse     - SAX tokenization and well-formedness work,
//   automaton - engine transition work driven by begin/end events
//               (HPDT transitions on XSQ-F, stack moves on XSQ-NC),
//   buffer    - text-event work: candidate buffering, predicate
//               evaluation, and item upload.
// Measurement is two-level sampling so the hot path stays within the
// ext_obs overhead bound: every Nth chunk is routed through a timing
// shim (every Mth SAX callback inside it is clocked and scaled), other
// chunks run the exact uninstrumented path. One sample is emitted per
// document, at Close: the sampled-chunk totals scaled by the observed
// chunks/sampled ratio plus the always-timed Close flush — a
// statistically faithful estimate of the document's split, not exact.
class PhaseListener {
 public:
  virtual ~PhaseListener() = default;
  virtual void OnPhaseSample(uint64_t parse_ns, uint64_t automaton_ns,
                             uint64_t buffer_ns) = 0;
};

class StreamingQuery {
 public:
  // Parses and compiles `query_text`.
  static Result<std::unique_ptr<StreamingQuery>> Open(
      std::string_view query_text);

  // Instantiates engines from an already-compiled plan (no parse, no
  // HPDT construction). The plan is retained by shared_ptr and may back
  // any number of StreamingQuery instances concurrently.
  static Result<std::unique_ptr<StreamingQuery>> Open(
      std::shared_ptr<const CompiledPlan> plan);

  ~StreamingQuery();

  // Attaches (or with nullptr detaches) a per-phase timing listener.
  // While attached, each Close reports the document's estimated
  // parse/automaton/buffer nanosecond split (see PhaseListener).
  // Must be called between documents (before the first Push, or after
  // Reset); the listener must outlive the query or be detached first.
  //
  // Cost model: detached, the only overhead is one pointer test per
  // Push; compiled with XSQ_OBS=OFF the hook is a no-op and the
  // instrumentation code does not exist at all (compile-time zero).
  void set_phase_listener(PhaseListener* listener);

  // Attaches (or with nullptr detaches) a cooperative cancellation
  // token. Not owned; must outlive the query or be detached first.
  // Push and Close check it once per chunk, and the engine polls it
  // every CancelToken::kCheckIntervalEvents SAX events, so a tripped
  // token stops evaluation mid-chunk — a cancelled or past-deadline
  // query fails with kCancelled/kDeadlineExceeded within one sampling
  // interval, not at the next chunk boundary. Detached, the only cost
  // is one null test per chunk and per sampled event.
  void set_cancel_token(const CancelToken* token);

  // Replaces the parser's resource limits (see xml::ParserLimits).
  // Call between documents.
  void set_parser_limits(const xml::ParserLimits& limits);

  // Feeds the next chunk of the document (any chunk boundaries).
  Status Push(std::string_view chunk);

  // Declares end of input. Idempotent after success.
  Status Close();

  // --- event-level ingestion (tape replay) ---
  //
  // Instead of pushing bytes through the parser, a caller holding an
  // already-parsed event stream (a tape::TapeReplayer, a tee of another
  // parse) can deliver events straight to the engine. The stream must
  // be a complete, well-formed document sequence ending in
  // OnDocumentEnd; mixing event delivery and Push on one document is
  // unsupported.

  // The engine as a SaxHandler. Invalid to call after Close() until
  // Reset().
  xml::SaxHandler* event_handler();

  // Engine health between event batches (what Push would have
  // returned).
  Status engine_status() const;

  // Marks the document complete after direct event delivery; afterwards
  // the query behaves exactly as after Close().
  Status FinishEvents();

  // Rewinds parser, engine, and collected results so the same compiled
  // query can process a new document. Valid in any state, including
  // after a parse error or Close().
  void Reset();

  // Pops the next available result item, in document order; nullopt
  // when none is available yet (more input may produce more).
  std::optional<std::string> NextItem();

  // For aggregation queries: the latest running value (updated as the
  // stream progresses), and the final value after Close().
  std::optional<double> current_aggregate() const {
    return sink_.aggregate_updates.empty()
               ? std::optional<double>()
               : std::optional<double>(sink_.aggregate_updates.back());
  }
  std::optional<double> final_aggregate() const { return sink_.aggregate; }

  const xpath::Query& query() const { return plan_->query; }
  const std::shared_ptr<const CompiledPlan>& plan() const { return plan_; }
  bool uses_deterministic_engine() const { return nc_engine_ != nullptr; }

  // Peak buffered bytes so far (the engine's accounted memory).
  size_t peak_buffered_bytes() const;

  // Bytes this query is holding right now: buffered items whose
  // predicates are still undecided, plus the parser's retained bytes
  // (unconsumed chunk tail and live arena storage). The service layer's
  // memory budgets are enforced against this.
  size_t buffered_bytes() const;

 private:
  class PhaseShim;  // sampled SaxHandler timing wrapper (obs builds)

  explicit StreamingQuery(std::shared_ptr<const CompiledPlan> plan);

  // The engine as a SaxHandler, bypassing any phase shim.
  xml::SaxHandler* engine_handler();

  std::shared_ptr<const CompiledPlan> plan_;
  CollectingSink sink_;
  size_t next_item_ = 0;  // items before this index were handed out
  std::unique_ptr<XsqEngine> f_engine_;
  std::unique_ptr<XsqNcEngine> nc_engine_;
  std::unique_ptr<xml::SaxParser> parser_;
  const CancelToken* cancel_token_ = nullptr;
  PhaseListener* phase_listener_ = nullptr;
  std::unique_ptr<PhaseShim> phase_shim_;
  // Chunk-level sampling state (obs builds): how many chunks this
  // document has seen / how many went through the shim, and the
  // unscaled phase totals of the sampled ones (scaled out at Close).
  uint32_t chunk_tick_ = 0;
  uint32_t sampled_chunks_ = 0;
  uint64_t phase_parse_ns_ = 0;
  uint64_t phase_automaton_ns_ = 0;
  uint64_t phase_buffer_ns_ = 0;
  bool closed_ = false;
};

}  // namespace xsq::core

#endif  // XSQ_CORE_STREAMING_QUERY_H_
