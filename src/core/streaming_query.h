// StreamingQuery: the one-object facade over parser + engine + sink.
//
// For library users who just want to push bytes and pull results:
//
//   auto q = xsq::core::StreamingQuery::Open("//book[price<20]/title/text()");
//   while (...) {
//     q->Push(next_chunk);
//     while (auto item = q->NextItem()) consume(*item);
//   }
//   q->Close();
//
// Items become available at the earliest moment the engine can prove
// membership, so NextItem drains results incrementally while the
// document is still streaming. Closure-free queries automatically run
// on the faster deterministic XSQ-NC engine; everything else runs on
// XSQ-F.
//
// A StreamingQuery is reusable: Reset() rewinds parser and engine so the
// same compiled query can process another document without recompiling,
// and Open(plan) instantiates one from an already-compiled (typically
// cached) plan, skipping parse and HPDT construction entirely.
#ifndef XSQ_CORE_STREAMING_QUERY_H_
#define XSQ_CORE_STREAMING_QUERY_H_

#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "core/compiled_plan.h"
#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq::core {

class StreamingQuery {
 public:
  // Parses and compiles `query_text`.
  static Result<std::unique_ptr<StreamingQuery>> Open(
      std::string_view query_text);

  // Instantiates engines from an already-compiled plan (no parse, no
  // HPDT construction). The plan is retained by shared_ptr and may back
  // any number of StreamingQuery instances concurrently.
  static Result<std::unique_ptr<StreamingQuery>> Open(
      std::shared_ptr<const CompiledPlan> plan);

  // Feeds the next chunk of the document (any chunk boundaries).
  Status Push(std::string_view chunk);

  // Declares end of input. Idempotent after success.
  Status Close();

  // --- event-level ingestion (tape replay) ---
  //
  // Instead of pushing bytes through the parser, a caller holding an
  // already-parsed event stream (a tape::TapeReplayer, a tee of another
  // parse) can deliver events straight to the engine. The stream must
  // be a complete, well-formed document sequence ending in
  // OnDocumentEnd; mixing event delivery and Push on one document is
  // unsupported.

  // The engine as a SaxHandler. Invalid to call after Close() until
  // Reset().
  xml::SaxHandler* event_handler();

  // Engine health between event batches (what Push would have
  // returned).
  Status engine_status() const;

  // Marks the document complete after direct event delivery; afterwards
  // the query behaves exactly as after Close().
  Status FinishEvents();

  // Rewinds parser, engine, and collected results so the same compiled
  // query can process a new document. Valid in any state, including
  // after a parse error or Close().
  void Reset();

  // Pops the next available result item, in document order; nullopt
  // when none is available yet (more input may produce more).
  std::optional<std::string> NextItem();

  // For aggregation queries: the latest running value (updated as the
  // stream progresses), and the final value after Close().
  std::optional<double> current_aggregate() const {
    return sink_.aggregate_updates.empty()
               ? std::optional<double>()
               : std::optional<double>(sink_.aggregate_updates.back());
  }
  std::optional<double> final_aggregate() const { return sink_.aggregate; }

  const xpath::Query& query() const { return plan_->query; }
  const std::shared_ptr<const CompiledPlan>& plan() const { return plan_; }
  bool uses_deterministic_engine() const { return nc_engine_ != nullptr; }

  // Peak buffered bytes so far (the engine's accounted memory).
  size_t peak_buffered_bytes() const;

  // Bytes the engine is holding right now: buffered items whose
  // predicates are still undecided. The service layer's memory budgets
  // are enforced against this.
  size_t buffered_bytes() const;

 private:
  explicit StreamingQuery(std::shared_ptr<const CompiledPlan> plan);

  std::shared_ptr<const CompiledPlan> plan_;
  CollectingSink sink_;
  size_t next_item_ = 0;  // items before this index were handed out
  std::unique_ptr<XsqEngine> f_engine_;
  std::unique_ptr<XsqNcEngine> nc_engine_;
  std::unique_ptr<xml::SaxParser> parser_;
  bool closed_ = false;
};

}  // namespace xsq::core

#endif  // XSQ_CORE_STREAMING_QUERY_H_
