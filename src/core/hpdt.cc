#include "core/hpdt.h"

#include <deque>

namespace xsq::core {

namespace {

// One predicate can be decided at the begin event iff it only inspects
// the element's own attributes.
bool PredicateDecidedAtBegin(const xpath::Predicate& predicate) {
  return predicate.kind == xpath::PredicateKind::kAttribute;
}

std::string ComparisonSuffix(const xpath::Predicate& p) {
  if (!p.has_comparison) return "";
  return std::string(xpath::CompareOpName(p.op)) + p.literal;
}

}  // namespace

bool StepDecidedAtBegin(const xpath::LocationStep& step) {
  for (const xpath::Predicate& predicate : step.predicates) {
    if (!PredicateDecidedAtBegin(predicate)) return false;
  }
  return true;
}

std::string Bpdt::Name() const {
  return "bpdt(" + std::to_string(layer) + "," + std::to_string(position) +
         ")";
}

Bpdt* Hpdt::AddBpdt(int layer, uint64_t position, Bpdt* parent,
                    bool via_true) {
  auto bpdt = std::make_unique<Bpdt>();
  bpdt->layer = layer;
  bpdt->position = position;
  bpdt->parent = parent;
  if (layer > 0) {
    bpdt->step = &query_.steps[static_cast<size_t>(layer) - 1];
    bpdt->has_na_state = !StepDecidedAtBegin(*bpdt->step);
  }
  if (parent == nullptr) {
    bpdt->on_true_spine = true;
  } else {
    bpdt->on_true_spine = via_true && parent->on_true_spine;
    if (via_true) {
      parent->left = bpdt.get();
    } else {
      parent->right = bpdt.get();
    }
  }
  GenerateTemplateStates(bpdt.get());
  bpdts_.push_back(std::move(bpdt));
  return bpdts_.back().get();
}

void Hpdt::GenerateTemplateStates(Bpdt* bpdt) {
  auto state = [&]() { return next_state_id_++; };
  auto arc = [&](int from, int to, std::string label, std::string guard = "",
                 std::string ops = "") {
    bpdt->arcs.push_back(
        {from, to, std::move(label), std::move(guard), std::move(ops)});
  };

  if (bpdt->step == nullptr) {
    // Root BPDT (Figure 12): consumes the document root.
    bpdt->start_state = state();
    bpdt->true_state = state();
    arc(bpdt->start_state, bpdt->true_state, "<root>");
    arc(bpdt->true_state, bpdt->start_state, "</root>");
    return;
  }

  const xpath::LocationStep& step = *bpdt->step;
  const std::string tag = step.node_test;
  bpdt->start_state = state();
  bpdt->true_state = state();
  if (bpdt->has_na_state) bpdt->na_state = state();

  if (step.axis == xpath::Axis::kClosure) {
    // Closure self-transition on the START state (Section 4.2): the
    // begin arcs below then accept the tag at any depth.
    arc(bpdt->start_state, bpdt->start_state, "//");
  }

  const std::string flush_or_upload =
      bpdt->on_true_spine ? "{queue.flush()}" : "{queue.upload()}";

  if (!bpdt->has_na_state) {
    // Templates decided at begin: plain step or attribute predicate
    // (Figure 5). A failing attribute comparison simply has no arc.
    std::string guard;
    for (const xpath::Predicate& p : step.predicates) {
      guard += "[@" + p.attribute + ComparisonSuffix(p) + "]";
    }
    arc(bpdt->start_state, bpdt->true_state, "<" + tag + ">", guard);
    arc(bpdt->true_state, bpdt->start_state, "</" + tag + ">");
    return;
  }

  // Templates with an NA state (Figures 6-9). When the step carries
  // several delayed predicates (an extension of the paper's grammar),
  // the NA->TRUE transition fires once the conjunction is complete; the
  // arcs listed here describe each predicate's deciding event.
  arc(bpdt->start_state, bpdt->na_state, "<" + tag + ">");
  arc(bpdt->na_state, bpdt->start_state, "</" + tag + ">", "",
      "{queue.clear()}");
  arc(bpdt->true_state, bpdt->start_state, "</" + tag + ">");
  for (const xpath::Predicate& p : step.predicates) {
    switch (p.kind) {
      case xpath::PredicateKind::kAttribute:
        // Decided at begin: folded into the entry arc.
        bpdt->arcs[bpdt->arcs.size() - 3].guard +=
            "[@" + p.attribute + ComparisonSuffix(p) + "]";
        break;
      case xpath::PredicateKind::kText:
        arc(bpdt->na_state, bpdt->true_state, "<" + tag + ".text()>",
            "[text()" + (p.has_comparison ? ComparisonSuffix(p) : "") + "]",
            flush_or_upload);
        break;
      case xpath::PredicateKind::kChild:
        arc(bpdt->na_state, bpdt->true_state, "<" + p.child_tag + ">", "",
            flush_or_upload);
        break;
      case xpath::PredicateKind::kChildAttribute:
        arc(bpdt->na_state, bpdt->true_state, "<" + p.child_tag + ">",
            "[@" + p.attribute + ComparisonSuffix(p) + "]", flush_or_upload);
        break;
      case xpath::PredicateKind::kChildText:
        arc(bpdt->na_state, bpdt->true_state,
            "<" + p.child_tag + ".text()>", "[text()" + ComparisonSuffix(p) +
            "]", flush_or_upload);
        break;
    }
  }
}

Result<std::unique_ptr<Hpdt>> Hpdt::Build(const xpath::Query& query) {
  if (query.steps.empty()) {
    return Status::InvalidArgument("query has no location steps");
  }
  if (query.steps.size() > 32) {
    return Status::NotSupported(
        "queries with more than 32 location steps are not supported");
  }
  auto hpdt = std::unique_ptr<Hpdt>(new Hpdt(query));

  // Breadth-first construction, mirroring Section 4.2: for each BPDT of
  // the previous layer, a left child off its TRUE state and, if it has
  // an NA state, a right child off that.
  Bpdt* root = hpdt->AddBpdt(0, 0, nullptr, /*via_true=*/false);
  std::deque<Bpdt*> frontier = {root};
  const int layers = hpdt->num_layers();
  for (int layer = 1; layer <= layers; ++layer) {
    std::deque<Bpdt*> next;
    for (Bpdt* parent : frontier) {
      Bpdt* left = hpdt->AddBpdt(layer, 2 * parent->position + 1, parent,
                                 /*via_true=*/true);
      next.push_back(left);
      if (parent->has_na_state) {
        Bpdt* right = hpdt->AddBpdt(layer, 2 * parent->position, parent,
                                    /*via_true=*/false);
        next.push_back(right);
      }
      if (hpdt->bpdt_count() > 100000) {
        return Status::NotSupported(
            "HPDT would exceed 100000 BPDTs; simplify the query");
      }
    }
    frontier = std::move(next);
  }
  return hpdt;
}

std::string Hpdt::DebugString() const {
  std::string out = "HPDT for query: " + query_.ToString() + "\n";
  out += "  layers=" + std::to_string(num_layers()) +
         " bpdts=" + std::to_string(bpdt_count()) +
         " states=" + std::to_string(state_count()) + "\n";
  for (const auto& bpdt : bpdts_) {
    out += bpdt->Name();
    if (bpdt->step != nullptr) {
      out += "  step=" + bpdt->step->ToString();
    } else {
      out += "  (root)";
    }
    if (bpdt->on_true_spine) out += "  [true-spine]";
    out += "\n";
    out += "    states: START=$" + std::to_string(bpdt->start_state) +
           " TRUE=$" + std::to_string(bpdt->true_state);
    if (bpdt->na_state >= 0) out += " NA=$" + std::to_string(bpdt->na_state);
    if (bpdt->parent != nullptr) {
      out += "  parent=" + bpdt->parent->Name();
      out += bpdt->parent->left == bpdt.get() ? " (via TRUE)" : " (via NA)";
    }
    out += "\n";
    for (const BpdtArc& arc : bpdt->arcs) {
      out += "    $" + std::to_string(arc.from) + " -> $" +
             std::to_string(arc.to) + "  " + arc.label;
      if (!arc.guard.empty()) out += " " + arc.guard;
      if (!arc.ops.empty()) out += " " + arc.ops;
      out += "\n";
    }
  }
  return out;
}

}  // namespace xsq::core
