// Hierarchical pushdown transducer (paper Section 4).
//
// Each location step of the query is compiled into a BPDT from the
// template matching its predicate category (Figures 5-9; Figure 12 for
// the root). BPDTs are then composed into a binary tree: for a BPDT b at
// (layer, k), its left child (layer+1, 2k+1) hangs off b's TRUE state and
// its right child (layer+1, 2k) hangs off b's NA state (absent when the
// step's predicate is decided immediately at the begin event). The
// position of a BPDT therefore encodes exactly which predicates are
// already known true when the run is inside it: bit i of k is 1 iff the
// i-th predicate is TRUE (Section 4.2).
//
// The runtime (engine.cc) walks this tree; the explicit per-template
// state/arc listing is also materialized so the HPDT can be printed in
// the style of the paper's Figure 11 (see DebugString and the xsq_cli
// example's --explain flag).
#ifndef XSQ_CORE_HPDT_H_
#define XSQ_CORE_HPDT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"

namespace xsq::core {

// One transition arc of a BPDT, materialized for inspection.
struct BpdtArc {
  int from;           // global state id
  int to;             // global state id
  std::string label;  // e.g. "<tag>", "</tag>", "<child.text()>", "//"
  std::string guard;  // e.g. "[text()>2000]", empty if none
  std::string ops;    // e.g. "{queue.flush()}", empty if none
};

// A basic pushdown transducer for one location step.
struct Bpdt {
  int layer = 0;          // 0 is the root BPDT; step i maps to layer i
  uint64_t position = 0;  // k within the layer (paper numbering)
  const xpath::LocationStep* step = nullptr;  // null for the root BPDT

  Bpdt* parent = nullptr;
  Bpdt* left = nullptr;   // entered from this BPDT's TRUE state
  Bpdt* right = nullptr;  // entered from this BPDT's NA state

  // True when the step's predicates cannot all be decided at the begin
  // event (i.e. the template has an NA state).
  bool has_na_state = false;

  // True when every ancestor was entered through a TRUE state, i.e.
  // position == 2^layer - 1. Buffers of such BPDTs flush straight to the
  // output; all others upload to an ancestor (Section 4.2).
  bool on_true_spine = false;

  // Global state ids of the template's distinguished states (-1 absent).
  int start_state = -1;
  int true_state = -1;
  int na_state = -1;

  std::vector<BpdtArc> arcs;

  std::string Name() const;  // "bpdt(2,3)"
};

class Hpdt {
 public:
  // Compiles a parsed query. Fails with NotSupported for queries whose
  // HPDT would be unreasonably large (more than 32 steps).
  static Result<std::unique_ptr<Hpdt>> Build(const xpath::Query& query);

  Hpdt(const Hpdt&) = delete;
  Hpdt& operator=(const Hpdt&) = delete;

  const xpath::Query& query() const { return query_; }
  const Bpdt* root() const { return bpdts_.front().get(); }

  // All BPDTs, root first, then layer by layer, positions descending
  // within a layer (paper right-to-left numbering).
  const std::vector<std::unique_ptr<Bpdt>>& bpdts() const { return bpdts_; }

  int num_layers() const { return static_cast<int>(query_.steps.size()); }
  size_t bpdt_count() const { return bpdts_.size(); }
  size_t state_count() const { return static_cast<size_t>(next_state_id_); }

  // The BPDT entered when an element matches step `layer` while the
  // parent match sits in `from` with the given predicate status.
  const Bpdt* Enter(const Bpdt* from, bool parent_satisfied) const {
    return parent_satisfied ? from->left : from->right;
  }

  // A Figure 11-style rendering of the whole transducer network.
  std::string DebugString() const;

 private:
  explicit Hpdt(xpath::Query query) : query_(std::move(query)) {}

  Bpdt* AddBpdt(int layer, uint64_t position, Bpdt* parent, bool via_true);
  void GenerateTemplateStates(Bpdt* bpdt);

  xpath::Query query_;
  std::vector<std::unique_ptr<Bpdt>> bpdts_;
  int next_state_id_ = 1;
};

// True when the step's predicates can all be decided at the element's
// begin event (only attribute predicates, or none).
bool StepDecidedAtBegin(const xpath::LocationStep& step);

}  // namespace xsq::core

#endif  // XSQ_CORE_HPDT_H_
