#include "lazydfa/lazy_dfa_engine.h"

#include "common/strings.h"

namespace xsq::lazydfa {

namespace {

void AppendBeginTag(std::string* out, std::string_view tag,
                    const std::vector<xml::Attribute>& attributes) {
  out->push_back('<');
  out->append(tag);
  for (const xml::Attribute& attr : attributes) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(XmlEscape(attr.value));
    out->push_back('"');
  }
  out->push_back('>');
}

}  // namespace

LazyDfaEngine::LazyDfaEngine(xpath::Query query, core::ResultSink* sink)
    : query_(std::move(query)),
      sink_(sink),
      output_kind_(query_.output.kind) {
  int next_bit = 0;
  branches_.push_back(&query_.steps);
  offsets_.push_back(next_bit);
  next_bit += static_cast<int>(query_.steps.size()) + 1;
  for (const xpath::Query& branch : query_.union_branches) {
    branches_.push_back(&branch.steps);
    offsets_.push_back(next_bit);
    next_bit += static_cast<int>(branch.steps.size()) + 1;
  }
  Reset();
}

Result<std::unique_ptr<LazyDfaEngine>> LazyDfaEngine::Create(
    const xpath::Query& query, core::ResultSink* sink) {
  if (query.steps.empty()) {
    return Status::InvalidArgument("query has no location steps");
  }
  if (query.HasPredicates()) {
    return Status::NotSupported(
        "the lazy-DFA engine does not support predicates (like XMLTK)");
  }
  if (xpath::IsAggregation(query.output.kind)) {
    return Status::NotSupported(
        "the lazy-DFA engine does not support aggregation outputs");
  }
  size_t total_bits = query.steps.size() + 1;
  for (const xpath::Query& branch : query.union_branches) {
    if (branch.steps.empty()) {
      return Status::InvalidArgument("union branch has no location steps");
    }
    total_bits += branch.steps.size() + 1;
  }
  if (total_bits > 63) {
    return Status::NotSupported("too many location steps");
  }
  return std::unique_ptr<LazyDfaEngine>(new LazyDfaEngine(query, sink));
}

void LazyDfaEngine::Reset() {
  dfa_states_.clear();
  state_ids_.clear();
  state_stack_.clear();
  accept_stack_.clear();
  pending_elements_.clear();
  open_serializations_.clear();
  status_ = Status::OK();
  // Initial DFA state: every branch's prefix 0 (the document node).
  uint64_t initial = 0;
  for (int offset : offsets_) initial |= uint64_t{1} << offset;
  state_stack_.push_back(InternState(initial));
  accept_stack_.push_back(0);
}

int LazyDfaEngine::InternState(uint64_t nfa_set) {
  auto it = state_ids_.find(nfa_set);
  if (it != state_ids_.end()) return it->second;
  int id = static_cast<int>(dfa_states_.size());
  DfaState state;
  state.nfa_set = nfa_set;
  for (size_t b = 0; b < branches_.size(); ++b) {
    int accept_bit = offsets_[b] + static_cast<int>(branches_[b]->size());
    if ((nfa_set >> accept_bit & 1) != 0) state.accepting = true;
  }
  dfa_states_.push_back(std::move(state));
  state_ids_.emplace(nfa_set, id);
  memory_.Add(sizeof(DfaState) + sizeof(uint64_t) + sizeof(int));
  return id;
}

int LazyDfaEngine::Transition(int state_id, std::string_view tag) {
  {
    DfaState& state = dfa_states_[static_cast<size_t>(state_id)];
    auto it = state.transitions.find(std::string(tag));
    if (it != state.transitions.end()) return it->second;
  }
  // Subset construction for this (state, tag) pair, over all branches.
  uint64_t from = dfa_states_[static_cast<size_t>(state_id)].nfa_set;
  uint64_t to = 0;
  for (size_t b = 0; b < branches_.size(); ++b) {
    const std::vector<xpath::LocationStep>& steps = *branches_[b];
    const int offset = offsets_[b];
    for (int i = 0; i < static_cast<int>(steps.size()); ++i) {
      if ((from >> (offset + i) & 1) == 0) continue;
      const xpath::LocationStep& step = steps[static_cast<size_t>(i)];
      bool tag_ok = step.IsWildcard() || step.node_test == tag;
      if (step.axis == xpath::Axis::kClosure) {
        to |= uint64_t{1} << (offset + i);  // ".*": stay at any depth
        if (tag_ok) to |= uint64_t{1} << (offset + i + 1);
      } else if (tag_ok) {
        to |= uint64_t{1} << (offset + i + 1);
      }
    }
  }
  // A complete match also persists under closure-like semantics only for
  // output of descendants; element results are decided at state entry,
  // so the accepting bit does not self-propagate.
  int target = InternState(to);
  DfaState& state = dfa_states_[static_cast<size_t>(state_id)];
  state.transitions.emplace(std::string(tag), target);
  memory_.Add(tag.size() + sizeof(int) + sizeof(void*));
  return target;
}

void LazyDfaEngine::EmitCompleted() {
  while (!pending_elements_.empty() && pending_elements_.front()->complete) {
    sink_->OnItem(pending_elements_.front()->value);
    memory_.Release(pending_elements_.front()->value.size());
    pending_elements_.pop_front();
  }
}

void LazyDfaEngine::OnDocumentBegin() { Reset(); }

void LazyDfaEngine::OnBegin(std::string_view tag,
                            const std::vector<xml::Attribute>& attributes,
                            int /*depth*/) {
  if (!status_.ok()) return;
  int next = Transition(state_stack_.back(), tag);
  bool accepting = dfa_states_[static_cast<size_t>(next)].accepting;
  state_stack_.push_back(next);
  accept_stack_.push_back(accepting ? 1 : 0);

  if (output_kind_ == xpath::OutputKind::kElement) {
    if (!open_serializations_.empty() || accepting) {
      std::string begin_tag;
      AppendBeginTag(&begin_tag, tag, attributes);
      for (PendingElement* pending : open_serializations_) {
        pending->value.append(begin_tag);
        memory_.Add(begin_tag.size());
      }
      if (accepting) {
        pending_elements_.push_back(std::make_unique<PendingElement>());
        PendingElement* pending = pending_elements_.back().get();
        pending->value = begin_tag;
        memory_.Add(begin_tag.size());
        open_serializations_.push_back(pending);
      }
    }
  } else if (accepting && output_kind_ == xpath::OutputKind::kAttribute) {
    for (const xml::Attribute& attr : attributes) {
      if (attr.name == query_.output.attribute) {
        sink_->OnItem(attr.value);
        break;
      }
    }
  }
}

void LazyDfaEngine::OnText(std::string_view /*enclosing_tag*/,
                           std::string_view text, int /*depth*/) {
  if (!status_.ok()) return;
  if (output_kind_ == xpath::OutputKind::kText && accept_stack_.back()) {
    sink_->OnItem(text);
  } else if (output_kind_ == xpath::OutputKind::kElement &&
             !open_serializations_.empty()) {
    std::string escaped = XmlEscape(text);
    for (PendingElement* pending : open_serializations_) {
      pending->value.append(escaped);
      memory_.Add(escaped.size());
    }
  }
}

void LazyDfaEngine::OnEnd(std::string_view tag, int /*depth*/) {
  if (!status_.ok()) return;
  if (output_kind_ == xpath::OutputKind::kElement &&
      !open_serializations_.empty()) {
    std::string end_tag = "</";
    end_tag += tag;
    end_tag += ">";
    for (PendingElement* pending : open_serializations_) {
      pending->value.append(end_tag);
      memory_.Add(end_tag.size());
    }
    if (accept_stack_.back()) {
      open_serializations_.back()->complete = true;
      open_serializations_.pop_back();
      EmitCompleted();
    }
  }
  state_stack_.pop_back();
  accept_stack_.pop_back();
}

void LazyDfaEngine::OnDocumentEnd() {
  if (!status_.ok()) return;
  EmitCompleted();
  if (!pending_elements_.empty()) {
    status_ = Status::Internal("incomplete element buffers at document end");
  }
}

}  // namespace xsq::lazydfa
