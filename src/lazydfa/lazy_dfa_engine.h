// Lazy-DFA streaming engine for predicate-free path queries: the stand-in
// for XMLTK [Avila-Campillo et al. 2002] in the paper's study.
//
// The location path (closures and wildcards allowed, no predicates) is a
// regular expression over root-to-element tag paths. It compiles to an
// NFA whose states are step prefixes; the engine then runs the classic
// lazy subset construction: DFA states (sets of NFA states) and their
// transitions are materialized only when the input actually reaches
// them, exactly the XMLTK trade: deterministic probing (fast) in
// exchange for automaton memory that grows with the observed tag paths.
//
// Because there are no predicates, membership of an element in the
// result is known the moment its begin event arrives, so nothing but the
// in-flight element serialization is ever buffered.
#ifndef XSQ_LAZYDFA_LAZY_DFA_ENGINE_H_
#define XSQ_LAZYDFA_LAZY_DFA_ENGINE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/result_sink.h"
#include "xml/events.h"
#include "xpath/ast.h"

namespace xsq::lazydfa {

class LazyDfaEngine : public xml::SaxHandler {
 public:
  // Fails with NotSupported when the query has predicates or an
  // aggregation output (XMLTK supports neither, Figure 14).
  static Result<std::unique_ptr<LazyDfaEngine>> Create(
      const xpath::Query& query, core::ResultSink* sink);

  void OnDocumentBegin() override;
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

  void Reset();

  // Number of DFA states materialized so far (the lazy-DFA memory cost).
  size_t dfa_state_count() const { return dfa_states_.size(); }
  const MemoryTracker& memory() const { return memory_; }
  const Status& status() const { return status_; }

 private:
  // One materialized DFA state: a set of NFA states (bitmask over step
  // prefixes 0..n) plus its transition cache.
  struct DfaState {
    uint64_t nfa_set = 0;
    bool accepting = false;
    std::unordered_map<std::string, int> transitions;
  };

  struct PendingElement {
    std::string value;
    bool complete = false;
  };

  LazyDfaEngine(xpath::Query query, core::ResultSink* sink);

  int Transition(int state_id, std::string_view tag);
  int InternState(uint64_t nfa_set);
  void EmitCompleted();

  xpath::Query query_;
  core::ResultSink* sink_;
  xpath::OutputKind output_kind_;
  // Union branches flattened into one NFA: branch b owns the state bits
  // [offsets_[b], offsets_[b] + steps.size()], accepting at the last.
  std::vector<const std::vector<xpath::LocationStep>*> branches_;
  std::vector<int> offsets_;

  std::vector<DfaState> dfa_states_;
  std::unordered_map<uint64_t, int> state_ids_;
  std::vector<int> state_stack_;    // DFA state per open element
  std::vector<char> accept_stack_;  // is each open element a match

  // Catchall output: matched elements being serialized (they can nest
  // with closures; emission is FIFO to preserve document order).
  std::deque<std::unique_ptr<PendingElement>> pending_elements_;
  std::vector<PendingElement*> open_serializations_;

  MemoryTracker memory_;
  Status status_;
};

}  // namespace xsq::lazydfa

#endif  // XSQ_LAZYDFA_LAZY_DFA_ENGINE_H_
