#include "service/document_cache.h"

namespace xsq::service {

DocumentCache::DocumentCache(size_t capacity, size_t byte_budget)
    : capacity_(capacity), byte_budget_(byte_budget) {}

std::shared_ptr<const tape::Tape> DocumentCache::Get(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) {
    ++counters_.misses;
    return nullptr;
  }
  ++counters_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->tape;
}

void DocumentCache::Put(std::string_view name,
                        std::shared_ptr<const tape::Tape> tape) {
  if (tape == nullptr) return;
  size_t bytes = tape->memory_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    resident_bytes_ -= it->second->bytes;
    resident_bytes_ += bytes;
    it->second->tape = std::move(tape);
    it->second->bytes = bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{std::string(name), std::move(tape), bytes});
    index_[std::string_view(lru_.front().name)] = lru_.begin();
    resident_bytes_ += bytes;
  }
  EvictToBoundsLocked();
}

bool DocumentCache::Evict(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it == index_.end()) return false;
  resident_bytes_ -= it->second->bytes;
  lru_.erase(it->second);
  index_.erase(it);
  ++counters_.explicit_evictions;
  return true;
}

std::shared_ptr<const tape::Tape> DocumentCache::Peek(
    std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : it->second->tape;
}

std::vector<std::pair<std::string, std::shared_ptr<const tape::Tape>>>
DocumentCache::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::shared_ptr<const tape::Tape>>> out;
  out.reserve(lru_.size());
  for (const Entry& entry : lru_) out.emplace_back(entry.name, entry.tape);
  return out;
}

void DocumentCache::EvictToBoundsLocked() {
  // Never evict the most recent entry: an oversized tape the caller just
  // recorded must stay resident or the cache can thrash to empty.
  while (lru_.size() > 1 &&
         ((capacity_ > 0 && lru_.size() > capacity_) ||
          (byte_budget_ > 0 && resident_bytes_ > byte_budget_))) {
    resident_bytes_ -= lru_.back().bytes;
    index_.erase(std::string_view(lru_.back().name));
    lru_.pop_back();
    ++counters_.evictions;
  }
}

DocumentCache::Counters DocumentCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters counters = counters_;
  counters.resident_documents = lru_.size();
  counters.resident_bytes = resident_bytes_;
  return counters;
}

size_t DocumentCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace xsq::service
