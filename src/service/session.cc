#include "service/session.h"

#include "common/failpoints.h"
#include "obs/timer.h"
#include "tape/replayer.h"

namespace xsq::service {

namespace {
// Events replayed between budget checks. Large enough that the check is
// noise, small enough that a runaway document trips the budget promptly.
constexpr size_t kReplayBatchEvents = 8192;
}  // namespace

Result<std::unique_ptr<Session>> Session::Create(
    std::shared_ptr<const core::CompiledPlan> plan, size_t memory_budget,
    ServiceStats* stats, ServiceMetrics* metrics,
    const xml::ParserLimits& parser_limits, uint32_t cancel_check_events) {
  XSQ_ASSIGN_OR_RETURN(std::unique_ptr<core::StreamingQuery> query,
                       core::StreamingQuery::Open(std::move(plan)));
  return std::unique_ptr<Session>(new Session(std::move(query), memory_budget,
                                              stats, metrics, parser_limits,
                                              cancel_check_events));
}

Session::Session(std::unique_ptr<core::StreamingQuery> query,
                 size_t memory_budget, ServiceStats* stats,
                 ServiceMetrics* metrics,
                 const xml::ParserLimits& parser_limits,
                 uint32_t cancel_check_events)
    : memory_budget_(memory_budget),
      stats_(stats),
      metrics_(metrics),
      cancel_(cancel_check_events),
      query_(std::move(query)) {
  // With metrics attached the session doubles as the query's phase
  // listener; per-chunk samples accumulate into phases_ and flush to the
  // histograms once per document. No-op in XSQ_OBS=OFF builds.
  if (metrics_ != nullptr) query_->set_phase_listener(this);
  query_->set_parser_limits(parser_limits);
  query_->set_cancel_token(&cancel_);
}

void Session::OnPhaseSample(uint64_t parse_ns, uint64_t automaton_ns,
                            uint64_t buffer_ns) {
  phases_.parse_ns += parse_ns;
  phases_.automaton_ns += automaton_ns;
  phases_.buffer_ns += buffer_ns;
}

void Session::RecordPhaseHistograms() {
  if (metrics_ == nullptr) return;
  // In XSQ_OBS=OFF builds no samples ever arrive; suppress the all-zero
  // document record so the histograms stay empty rather than misleading.
  if (phases_.parse_ns == 0 && phases_.automaton_ns == 0 &&
      phases_.buffer_ns == 0) {
    return;
  }
  metrics_->phase_parse_us->Record(obs::NanosToMicros(phases_.parse_ns));
  metrics_->phase_automaton_us->Record(
      obs::NanosToMicros(phases_.automaton_ns));
  metrics_->phase_buffer_us->Record(obs::NanosToMicros(phases_.buffer_ns));
}

Session::~Session() {
  // Return this session's share of the global buffered-bytes gauge.
  if (stats_ != nullptr) {
    stats_->AdjustBufferedBytes(
        -static_cast<int64_t>(buffered_.load(std::memory_order_relaxed)));
  }
}

Status Session::AfterEngineStep(Status step) {
  // Gauge first: buffered bytes move whether or not the step succeeded.
  size_t now_buffered = query_->buffered_bytes();
  size_t previous =
      buffered_.exchange(now_buffered, std::memory_order_relaxed);
  if (stats_ != nullptr && now_buffered != previous) {
    stats_->AdjustBufferedBytes(static_cast<int64_t>(now_buffered) -
                                static_cast<int64_t>(previous));
  }

  if (step.ok() && memory_budget_ > 0 && now_buffered > memory_budget_) {
    step = Status::ResourceExhausted(
        "session memory budget exceeded: buffering " +
        std::to_string(now_buffered) + " bytes, budget " +
        std::to_string(memory_budget_));
  }

  uint64_t new_items = 0;
  bool newly_failed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    while (std::optional<std::string> item = query_->NextItem()) {
      pending_items_.push_back(std::move(*item));
      ++new_items;
    }
    current_aggregate_ = query_->current_aggregate();
    final_aggregate_ = query_->final_aggregate();
    newly_failed = status_.ok() && !step.ok();
    status_ = step;
  }
  items_produced_.fetch_add(new_items, std::memory_order_relaxed);
  if (stats_ != nullptr && new_items > 0) stats_->RecordItems(new_items);

  if (newly_failed) {
    if (stats_ != nullptr) {
      switch (step.code()) {
        case StatusCode::kCancelled:
          stats_->RecordCancelled();
          break;
        case StatusCode::kDeadlineExceeded:
          stats_->RecordDeadlineExceeded();
          break;
        case StatusCode::kLimitExceeded:
          stats_->RecordLimitRejected();
          break;
        case StatusCode::kDataCorruption:
          stats_->RecordTapeCorrupt();
          break;
        default:
          break;
      }
    }
    // A cancelled or timed-out request is abandoned, not resumable:
    // drop the engine's buffered items right now so a session parked in
    // the failed state does not pin memory against the global budget.
    // status_ keeps the failure; Reset() reopens the session as usual.
    if (step.code() == StatusCode::kCancelled ||
        step.code() == StatusCode::kDeadlineExceeded) {
      query_->Reset();
      size_t previous = buffered_.exchange(0, std::memory_order_relaxed);
      if (stats_ != nullptr && previous != 0) {
        stats_->AdjustBufferedBytes(-static_cast<int64_t>(previous));
      }
    }
  }
  return step;
}

Status Session::Push(std::string_view chunk) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok()) return status_;
  }
  if (closed()) return Status::InvalidArgument("Push on closed session");
  XSQ_FAILPOINT("service.session.push_fault",
                return AfterEngineStep(Status::Internal(
                    "injected worker fault evaluating chunk")));
  return AfterEngineStep(query_->Push(chunk));
}

Status Session::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok()) return status_;
  }
  if (closed()) return Status::OK();
  Status step = AfterEngineStep(query_->Close());
  if (step.ok()) closed_.store(true, std::memory_order_relaxed);
  RecordPhaseHistograms();
  return step;
}

Status Session::RunTape(const tape::Tape& tape) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!status_.ok()) return status_;
  }
  if (closed()) return Status::InvalidArgument("RunTape on closed session");

  obs::ScopedTimer replay_timer(metrics_ != nullptr ? metrics_->tape_replay_us
                                                    : nullptr);
  tape::TapeReplayer replayer(tape);
  xml::SaxHandler* handler = query_->event_handler();
  while (replayer.Step(handler, kReplayBatchEvents)) {
    Status step = AfterEngineStep(query_->engine_status());
    if (!step.ok()) return step;
  }
  if (!replayer.status().ok()) return AfterEngineStep(replayer.status());
  Status step = AfterEngineStep(query_->FinishEvents());
  if (step.ok()) closed_.store(true, std::memory_order_relaxed);
  if (stats_ != nullptr) stats_->RecordTapeReplay(replayer.events_emitted());
  return step;
}

Status Session::Reset() {
  cancel_.Reset();  // clears both the flag and any armed deadline
  query_->Reset();
  phases_ = PhaseTotals();
  closed_.store(false, std::memory_order_relaxed);
  size_t previous = buffered_.exchange(0, std::memory_order_relaxed);
  if (stats_ != nullptr && previous != 0) {
    stats_->AdjustBufferedBytes(-static_cast<int64_t>(previous));
  }
  std::lock_guard<std::mutex> lock(mu_);
  current_aggregate_.reset();
  final_aggregate_.reset();
  status_ = Status::OK();
  return status_;
}

std::vector<std::string> Session::TakeItems() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> items = std::move(pending_items_);
  pending_items_.clear();
  return items;
}

std::optional<double> Session::current_aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_aggregate_;
}

std::optional<double> Session::final_aggregate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return final_aggregate_;
}

Status Session::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace xsq::service
