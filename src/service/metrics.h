// ServiceMetrics: the service layer's histogram set, resolved once from
// an obs::Registry so hot paths record through stable pointers.
//
// Metric names (all durations in microseconds, log2 buckets):
//   xsq_request_latency_us   first chunk queued (or RunCached entry) to
//                            document fully evaluated; also broken out
//                            per engine kind as {engine="nc"} (the
//                            deterministic XSQ-NC engine) and
//                            {engine="f"} (the closure XSQ-F engine) —
//                            the unlabeled series stays the total
//   xsq_queue_wait_us        work item queued to claimed by a worker
//   xsq_chunk_latency_us     chunk queued to chunk evaluated, with the
//                            same per-engine breakdown
//   xsq_phase_parse_us       per-document SAX parse time (Figure 18)
//   xsq_phase_automaton_us   per-document engine transition time
//   xsq_phase_buffer_us      per-document buffering/predicate time
//   xsq_tape_replay_us       Session::RunTape replay duration
//   xsq_publish_latency_us   Publish entry to all fan-out frames queued
//                            (one parse + filter + survivor evaluation)
//   xsq_fanout_batch         EVENT frames per dispatcher sink batch
//                            (dimensionless; how bursty fan-out runs)
//
// The phase histograms record one sample per served document (the
// accumulated per-chunk split core::PhaseListener reports), mirroring
// the paper's per-run phase decomposition rather than per-event noise.
#ifndef XSQ_SERVICE_METRICS_H_
#define XSQ_SERVICE_METRICS_H_

#include "obs/registry.h"

namespace xsq::service {

struct ServiceMetrics {
  explicit ServiceMetrics(obs::Registry* registry)
      : request_latency_us(registry->GetOrCreateHistogram(
            "xsq_request_latency_us",
            "End-to-end document serve latency, microseconds")),
        request_latency_nc_us(registry->GetOrCreateHistogram(
            "xsq_request_latency_us", "", "engine=\"nc\"")),
        request_latency_f_us(registry->GetOrCreateHistogram(
            "xsq_request_latency_us", "", "engine=\"f\"")),
        queue_wait_us(registry->GetOrCreateHistogram(
            "xsq_queue_wait_us",
            "Work item queue wait before a worker claims it, microseconds")),
        chunk_latency_us(registry->GetOrCreateHistogram(
            "xsq_chunk_latency_us",
            "Chunk push-to-evaluated latency, microseconds")),
        chunk_latency_nc_us(registry->GetOrCreateHistogram(
            "xsq_chunk_latency_us", "", "engine=\"nc\"")),
        chunk_latency_f_us(registry->GetOrCreateHistogram(
            "xsq_chunk_latency_us", "", "engine=\"f\"")),
        phase_parse_us(registry->GetOrCreateHistogram(
            "xsq_phase_parse_us",
            "Per-document SAX parse phase time, microseconds")),
        phase_automaton_us(registry->GetOrCreateHistogram(
            "xsq_phase_automaton_us",
            "Per-document automaton transition phase time, microseconds")),
        phase_buffer_us(registry->GetOrCreateHistogram(
            "xsq_phase_buffer_us",
            "Per-document buffer/predicate phase time, microseconds")),
        tape_replay_us(registry->GetOrCreateHistogram(
            "xsq_tape_replay_us",
            "Cached-document tape replay duration, microseconds")),
        publish_latency_us(registry->GetOrCreateHistogram(
            "xsq_publish_latency_us",
            "Publish parse+filter+evaluate+enqueue latency, microseconds")),
        fanout_batch(registry->GetOrCreateHistogram(
            "xsq_fanout_batch",
            "EVENT frames delivered per dispatcher batch")) {}

  // Engine-kind breakdown: record the total and the matching labeled
  // series together.
  void RecordRequestLatency(uint64_t us, bool deterministic) {
    request_latency_us->Record(us);
    (deterministic ? request_latency_nc_us : request_latency_f_us)
        ->Record(us);
  }
  void RecordChunkLatency(uint64_t us, bool deterministic) {
    chunk_latency_us->Record(us);
    (deterministic ? chunk_latency_nc_us : chunk_latency_f_us)->Record(us);
  }

  obs::Histogram* const request_latency_us;
  obs::Histogram* const request_latency_nc_us;
  obs::Histogram* const request_latency_f_us;
  obs::Histogram* const queue_wait_us;
  obs::Histogram* const chunk_latency_us;
  obs::Histogram* const chunk_latency_nc_us;
  obs::Histogram* const chunk_latency_f_us;
  obs::Histogram* const phase_parse_us;
  obs::Histogram* const phase_automaton_us;
  obs::Histogram* const phase_buffer_us;
  obs::Histogram* const tape_replay_us;
  obs::Histogram* const publish_latency_us;
  obs::Histogram* const fanout_batch;
};

}  // namespace xsq::service

#endif  // XSQ_SERVICE_METRICS_H_
