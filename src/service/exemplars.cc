#include "service/exemplars.h"

#include <cinttypes>
#include <cstdio>

namespace xsq::service {

void ExemplarStore::Observe(uint64_t us, std::string_view query_text) {
  size_t bucket = obs::Histogram::BucketIndex(us);
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[bucket];
  if (slot.set && us <= slot.us) return;
  slot.us = us;
  slot.query.assign(query_text);
  // Exemplars render one per line; a query can't be allowed to break
  // the line-oriented exposition.
  for (char& c : slot.query) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  slot.set = true;
}

void ExemplarStore::RenderComments(std::string* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < slots_.size(); ++i) {
    const Slot& slot = slots_[i];
    if (!slot.set) continue;
    char head[96];
    std::snprintf(head, sizeof(head),
                  "# exemplar xsq_request_latency_us bucket{le=\"%" PRIu64
                  "\"} %" PRIu64 "us ",
                  obs::Histogram::BucketUpperBound(i), slot.us);
    *out += head;
    *out += slot.query;
    *out += '\n';
  }
}

void ExemplarStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    slot.us = 0;
    slot.query.clear();
    slot.set = false;
  }
}

}  // namespace xsq::service
