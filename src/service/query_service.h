// QueryService: the concurrent multi-session front door of the library.
//
//              clients (any threads)
//                 |  Open / Push / Close / Drain
//                 v
//   +---------- QueryService ----------+
//   | admission control   PlanCache    |
//   | per-session FIFO queues          |
//   | runnable queue -> worker pool    |
//   +----------------------------------+
//                 v
//         Session -> StreamingQuery -> XSQ-F / XSQ-NC engines
//
// Execution model: every session owns a FIFO queue of work (chunks,
// then a close marker). A session with queued work is *scheduled* on
// the runnable queue exactly once; a worker claims it, processes its
// queue in order with no other worker touching that session, and
// re-schedules it if more work arrived meanwhile. Chunks of one session
// are therefore evaluated sequentially and in arrival order (the
// engines are inherently order-dependent), while distinct sessions run
// in parallel across the pool.
//
// Flow control is explicit and caller-visible:
//   - OpenSession    rejects with ResourceExhausted above max_sessions.
//   - Push           rejects with ResourceExhausted when the session's
//                    queue is full or the global engine-buffer gauge
//                    exceeds the global memory budget; callers retry
//                    (ideally after draining) instead of the service
//                    buffering without bound.
//   - per-session    enforced inside Session: a document that forces
//     memory budget  the engine to buffer more than the budget fails
//                    that session with ResourceExhausted.
//
// Shutdown() stops admission, drains every queued work item, and joins
// the workers; the destructor calls it.
#ifndef XSQ_SERVICE_QUERY_SERVICE_H_
#define XSQ_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/registry.h"
#include "pubsub/subscription_registry.h"
#include "service/document_cache.h"
#include "service/exemplars.h"
#include "service/metrics.h"
#include "service/plan_cache.h"
#include "service/session.h"
#include "service/stats.h"
#include "tape/tape.h"

namespace xsq::service {

using SessionId = uint64_t;

struct ServiceConfig {
  // Worker threads evaluating sessions. At least 1.
  int num_workers = 4;
  // Admission control: concurrently open sessions.
  size_t max_sessions = 1024;
  // Backpressure: chunks a session may have queued (not yet claimed by
  // a worker) before Push returns ResourceExhausted.
  size_t max_queued_chunks_per_session = 64;
  // Per-session engine-buffer bound, bytes (0 = unlimited).
  size_t per_session_memory_budget = 0;
  // Global engine-buffer bound, bytes (0 = unlimited). Enforced as
  // push-time backpressure against the buffered-bytes gauge.
  size_t global_memory_budget = 0;
  // Compiled plans kept by the LRU plan cache.
  size_t plan_cache_capacity = 128;
  // Recorded tapes kept by the LRU document cache (0 = unlimited).
  size_t doc_cache_capacity = 64;
  // Byte budget for resident tapes (0 = unlimited).
  size_t doc_cache_byte_budget = 0;
  // Requests (Close/RunCached completions) at or above this many
  // milliseconds are logged to stderr with their phase breakdown
  // (0 = disabled).
  size_t slow_query_ms = 0;
  // Service-wide default deadline for a document request, milliseconds
  // (0 = none). Armed when a document's first work arrives; a request
  // that is still evaluating when it expires fails with
  // kDeadlineExceeded and frees its buffers. Push/RunCached accept a
  // per-request override.
  uint64_t default_deadline_ms = 0;
  // Bound on Shutdown's drain, milliseconds (0 = wait for everything).
  // When set, every live session gets this deadline at shutdown, so a
  // wedged evaluation aborts with kDeadlineExceeded instead of hanging
  // the join.
  uint64_t drain_deadline_ms = 0;
  // Parser hardening applied to every session. Defaults to the Serving
  // preset: hostile documents (absurd nesting, attribute floods,
  // entity bombs, unterminated DOCTYPEs) fail that session with
  // kLimitExceeded instead of exhausting the process.
  xml::ParserLimits parser_limits = xml::ParserLimits::Serving();
  // Cancellation sampling interval, in SAX events: how often the
  // engines poll each session's CancelToken. Smaller = tighter
  // cancel/deadline/disconnect latency, more polling overhead (each
  // poll is one relaxed load, plus a clock read while a deadline is
  // armed). The default keeps the poll under the 2% ext_resilience
  // throughput bound on a 1-CPU box.
  uint32_t cancel_check_events = core::CancelToken::kCheckIntervalEvents;
  // --- replication transfer bounds ---
  // Cap on a serialized tape accepted by or served for a REPLPULL
  // shard-to-shard transfer, bytes (0 = unlimited). An oversized tape
  // fails the transfer with kLimitExceeded *before* ingest begins, so
  // a runaway peer can neither wedge the puller's memory nor leave a
  // half-installed tape.
  size_t max_tape_bytes = 0;
  // Deadline for the pull side of one REPLPULL transfer (connect +
  // fetch from the source peer), milliseconds.
  uint64_t replpull_deadline_ms = 5000;
  // --- standing-query pub/sub ---
  // Admission control: live standing subscriptions across all
  // subscribers.
  size_t max_subscriptions = 4096;
  // Bound on EVENT frames queued per subscriber awaiting fan-out. A
  // subscriber whose sink cannot keep up sheds frames past this bound
  // (with one ERR notice per shed episode); Publish never blocks on a
  // slow subscriber.
  size_t max_subscriber_queue_frames = 1024;
  // Threads fanning queued EVENT frames out to subscriber sinks.
  // At least 1.
  int num_dispatchers = 2;
};

class QueryService {
 public:
  explicit QueryService(ServiceConfig config = ServiceConfig());
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // Compiles (or fetches from the plan cache) `query_text` and opens a
  // session for it. ResourceExhausted when at max_sessions.
  Result<SessionId> OpenSession(std::string_view query_text);

  // Enqueues the next chunk of `id`'s current document. Returns
  // immediately; evaluation is asynchronous. ResourceExhausted is the
  // backpressure signal (queue full or global memory budget hit).
  // `deadline_ms` > 0 (re)arms the document's deadline from now,
  // overriding the service default; 0 keeps whatever is armed.
  Status Push(SessionId id, std::string chunk, uint64_t deadline_ms = 0);

  // Enqueues end-of-document and blocks until every queued chunk and
  // the close have been evaluated. Returns the session's terminal
  // status (parse/engine errors and budget failures surface here).
  Status Close(SessionId id);

  // Blocks until the session is idle, then rewinds it for the next
  // document (same compiled plan, failures cleared).
  Status ResetSession(SessionId id);

  // --- parse-once/replay-many document serving ---

  // Parses `document` once, records it as a tape under `name` in the
  // document cache (replacing any previous recording), and returns the
  // tape. If `projection_queries` is non-empty, the tape is projected at
  // record time: events provably irrelevant to every listed query are
  // dropped, shrinking the tape while keeping RunCached results for
  // those queries (and any query they subsume) identical. The queries
  // are compiled through the plan cache, warming it for later sessions.
  Result<std::shared_ptr<const tape::Tape>> RecordDocument(
      std::string_view name, std::string_view document,
      const std::vector<std::string>& projection_queries = {});

  // Evaluates the cached document `name` on session `id` by replaying
  // its tape, synchronously on the calling thread. The session is
  // rewound first if it already served a document or failed, so one
  // session can RunCached any number of documents back to back. Returns
  // the session's terminal status; results are drainable as after
  // Close. InvalidArgument when `name` is not resident.
  // `deadline_ms` > 0 bounds this replay, overriding the service
  // default.
  Status RunCached(SessionId id, std::string_view name,
                   uint64_t deadline_ms = 0);

  // Cancels session `id` from any thread: an in-flight evaluation
  // aborts with kCancelled within one engine sampling interval, its
  // buffers are freed, and sibling sessions are untouched. Idle
  // sessions stay cancelled (the next streaming call fails) until
  // ResetSession.
  Status CancelSession(SessionId id);

  // Drops `name`'s tape from the document cache. InvalidArgument when
  // it is not resident. In-flight replays keep their tape alive.
  Status EvictDocument(std::string_view name);

  // --- shard-to-shard tape replication (the REPLPULL verb) ---
  //
  // A cluster replicates documents by streaming the serialized tape
  // between shards: the holder serves bytes (ServeTape), the new
  // replica validates and installs them (IngestTape). Both sides go
  // through DocumentCache::Peek/Put, so replication traffic never
  // perturbs the serving path's LRU order or hit/miss statistics.

  // The resident tape for `name`, recency and cache counters untouched;
  // counts one repl_serve. InvalidArgument when not resident.
  Result<std::shared_ptr<const tape::Tape>> ServeTape(std::string_view name);

  // Decodes `bytes` as a serialized tape (full validation including the
  // per-section CRC32C trailers) and installs it under `name`,
  // replacing any previous recording. A corrupt transfer counts in both
  // tape_corrupt and repl_ingest_corrupt and installs nothing.
  Result<std::shared_ptr<const tape::Tape>> IngestTape(std::string_view name,
                                                       std::string bytes);

  // Every resident document, MRU first, recency untouched — the
  // REPLSTATUS inventory the anti-entropy sweep scatters for.
  std::vector<std::pair<std::string, std::shared_ptr<const tape::Tape>>>
  DocumentInventory() const;

  // True while `id` is open (between OpenSession and Release).
  bool HasSession(SessionId id) const;

  // Moves out the items produced so far for `id`, in document order.
  // Valid while streaming, after Close, and until Release.
  std::vector<std::string> Drain(SessionId id);

  // Final aggregate value for aggregation queries (set after Close).
  std::optional<double> FinalAggregate(SessionId id);

  // Frees the session slot. In-flight work for the session finishes
  // first (the worker keeps it alive), but no new work is accepted.
  Status Release(SessionId id);

  // --- standing-query pub/sub (src/pubsub/) ---
  //
  // Register subscribers (delivery endpoints), attach standing XPath
  // subscriptions to them, and Publish documents: each document is
  // parsed once against the shared filter NFA, surviving
  // predicate-bearing subscriptions get one tape replay, and results
  // fan out asynchronously as EVENT frames through per-subscriber
  // bounded queues drained by a dispatcher pool.

  // A subscriber's delivery callback. Dispatcher threads invoke it with
  // one fully formatted frame per call, no trailing newline:
  //   EVENT <sub-id> ITEM <line-escaped item bytes>
  //   EVENT <sub-id> AGG <value>
  //   EVENT 0 ERR ResourceExhausted: <shed notice>
  // It must be fast (a slow sink backs up only its own queue, which
  // then sheds) and must never call back into this QueryService.
  using EventSink = std::function<void(std::string_view frame)>;

  struct PublishSummary {
    size_t subscriptions = 0;     // standing queries matched against
    size_t deliveries = 0;        // subscriptions that produced output
    size_t filter_survivors = 0;  // predicate subs passing the shared NFA
    size_t hpdt_evaluations = 0;  // engines actually run (== survivors)
    uint64_t frames_enqueued = 0;  // EVENT frames queued for fan-out
    uint64_t frames_shed = 0;      // frames dropped on slow subscribers
  };

  // Registers a delivery endpoint. InvalidArgument on an empty sink.
  Result<uint64_t> AddSubscriber(EventSink sink);

  // Drops the subscriber and every subscription it owns. Blocks until
  // no dispatcher is mid-delivery to it, so the sink is never invoked
  // after this returns (safe to destroy the connection behind it).
  Status RemoveSubscriber(uint64_t subscriber_id);

  // Compiles `query_text` as a standing query owned by `subscriber_id`.
  // Returns the subscription id (distinct from session ids; 1-based).
  // ResourceExhausted at max_subscriptions.
  Result<uint64_t> Subscribe(uint64_t subscriber_id,
                             std::string_view query_text);

  // Removes one standing query. InvalidArgument when the subscription
  // does not exist or is owned by a different subscriber.
  Status Unsubscribe(uint64_t subscriber_id, uint64_t subscription_id);

  // Matches `document` against every standing query — one parse, at
  // most one tape replay — and enqueues EVENT frames on the owning
  // subscribers' fan-out queues. Never blocks on slow subscribers
  // (their frames shed). Fails only on document-level errors.
  Result<PublishSummary> Publish(std::string_view document);

  // Live standing subscriptions across all subscribers.
  size_t subscription_count() const;

  // Stops admission, drains all queued work, joins the workers.
  // Idempotent.
  void Shutdown();

  // Counters, including plan-cache hit/miss/eviction numbers.
  StatsSnapshot stats() const;

  // Latency observability: the histogram registry (see
  // service/metrics.h for the metric set) and the combined
  // Prometheus-style exposition — every histogram plus the StatsSnapshot
  // counters/gauges as `xsq_<name>` scalars. The xsqd METRICS verb
  // prints MetricsText() verbatim.
  const obs::Registry& metrics_registry() const { return registry_; }
  std::string MetricsText() const;

  // Slow-query exemplars: the slowest request per latency bucket with
  // its query text. Rendered into MetricsText() as comment lines; the
  // xsqd --slow-query-ms path also dumps them at exit.
  const ExemplarStore& exemplars() const { return exemplars_; }

  // The live counter block. Exposed so the network front-end (and other
  // transports) can account connection-level events — accepts, sheds,
  // disconnect-driven cancels — in the same place the service counts
  // everything else.
  ServiceStats* stats_sink() { return &stats_; }

  // The configuration the service was built with (admission limits,
  // deadlines, cancellation grain) — the front-end reads it to align
  // accept-side shedding with the service's own admission control.
  const ServiceConfig& config() const { return config_; }

  const PlanCache& plan_cache() const { return plan_cache_; }
  const DocumentCache& document_cache() const { return doc_cache_; }
  size_t active_sessions() const;

 private:
  struct WorkItem {
    enum class Kind { kChunk, kClose } kind;
    std::string chunk;
    // Enqueue instant, for queue-wait and chunk-latency histograms.
    std::chrono::steady_clock::time_point enqueued;
  };

  // One open session plus its scheduling state. Guarded by mu_ except
  // `session`, whose streaming side is only ever touched by the single
  // worker that has the state claimed (scheduled == true).
  struct SessionState {
    std::unique_ptr<Session> session;
    std::deque<WorkItem> queue;
    bool scheduled = false;  // on the runnable queue or held by a worker
    bool close_requested = false;
    bool released = false;
    // Request-latency bookkeeping: set under mu_ when the document's
    // first work item is queued, read by the worker processing kClose
    // (ordered by the queue handoff through mu_).
    std::chrono::steady_clock::time_point doc_start{};
    bool doc_started = false;
  };

  // One delivery endpoint plus its fan-out state. Guarded by pub_mu_
  // except `sink`, which is only invoked by the dispatcher that has the
  // subscriber claimed (claimed == true), outside the lock.
  struct Subscriber {
    uint64_t id = 0;
    EventSink sink;
    std::deque<std::string> frames;  // formatted, awaiting fan-out
    std::unordered_set<uint64_t> subscriptions;
    bool claimed = false;  // a dispatcher is delivering right now
    bool queued = false;   // on dispatch_queue_
    // One ERR notice per shed episode; cleared when the queue drains.
    bool shed_episode = false;
    bool removed = false;
  };

  void WorkerLoop();
  void DispatcherLoop();
  // Requires pub_mu_: queues `sub` for a dispatcher if it needs one.
  void ScheduleSubscriberLocked(const std::shared_ptr<Subscriber>& sub);
  // Requires mu_: puts `state` on the runnable queue if it is not
  // already scheduled.
  void ScheduleLocked(const std::shared_ptr<SessionState>& state);
  // Requires mu_: looks up a live (non-released) session.
  Result<std::shared_ptr<SessionState>> FindLocked(SessionId id);
  // Blocks until `state` has no queued or in-flight work.
  void WaitUntilIdle(std::unique_lock<std::mutex>& lock,
                     const std::shared_ptr<SessionState>& state);

  // Logs the request to stderr with its phase breakdown when it ran at
  // or above the slow-query threshold. Called by the thread that just
  // finished evaluating the request (it owns the session's claim).
  void MaybeLogSlowQuery(const SessionState& state,
                         uint64_t elapsed_us) const;

  const ServiceConfig config_;
  PlanCache plan_cache_;
  DocumentCache doc_cache_;
  ServiceStats stats_;
  obs::Registry registry_;
  ServiceMetrics metrics_{&registry_};
  ExemplarStore exemplars_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers: runnable queue non-empty
  std::condition_variable idle_cv_;  // waiters: some session went idle
  std::unordered_map<SessionId, std::shared_ptr<SessionState>> sessions_;
  std::deque<std::shared_ptr<SessionState>> runnable_;
  SessionId next_id_ = 1;
  bool stopping_ = false;

  std::vector<std::thread> workers_;

  // Pub/sub state, guarded by pub_mu_ — independent of mu_ and never
  // held together with it. Publishes serialize on pub_mu_ (the registry
  // keeps persistent per-subscription engines), while fan-out to sinks
  // happens on dispatcher threads outside the lock.
  mutable std::mutex pub_mu_;
  std::condition_variable dispatch_cv_;  // dispatchers: queue non-empty
  std::condition_variable unclaim_cv_;   // RemoveSubscriber: unclaimed
  pubsub::SubscriptionRegistry pubsub_;
  std::unordered_map<uint64_t, std::shared_ptr<Subscriber>> subscribers_;
  // subscription id -> owning subscriber id.
  std::unordered_map<uint64_t, uint64_t> subscription_owner_;
  std::deque<std::shared_ptr<Subscriber>> dispatch_queue_;
  uint64_t next_subscriber_id_ = 1;
  bool pub_stopping_ = false;
  std::vector<std::thread> dispatchers_;
};

}  // namespace xsq::service

#endif  // XSQ_SERVICE_QUERY_SERVICE_H_
