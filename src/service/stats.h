// ServiceStats: the observability surface of the query service.
//
// Counters are lock-free atomics updated from worker threads and the
// client-facing API; Snapshot() assembles a consistent-enough plain
// struct with relaxed loads, so reading statistics never stops the
// world. `engine_buffered_bytes` is a gauge (sessions apply deltas as
// their engines buffer and release items) — it is both a stat and the
// input to the service's global memory admission check.
#ifndef XSQ_SERVICE_STATS_H_
#define XSQ_SERVICE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace xsq::service {

// A point-in-time copy of every counter, safe to read and format at
// leisure. Plan-cache counters are filled in by QueryService::stats()
// from the PlanCache; they are zero in snapshots taken from a bare
// ServiceStats.
struct StatsSnapshot {
  uint64_t sessions_opened = 0;
  uint64_t sessions_rejected = 0;   // admission control said no
  uint64_t sessions_active = 0;
  uint64_t chunks_processed = 0;
  uint64_t bytes_consumed = 0;
  uint64_t items_emitted = 0;
  uint64_t pushes_rejected = 0;     // backpressure (queue or memory budget)
  uint64_t queue_high_water = 0;    // most chunks ever queued on one session
  uint64_t engine_buffered_bytes = 0;  // gauge: live engine buffers, summed
  uint64_t plan_cache_hits = 0;
  uint64_t plan_cache_misses = 0;
  uint64_t plan_cache_evictions = 0;
  uint64_t doc_cache_hits = 0;
  uint64_t doc_cache_misses = 0;
  uint64_t doc_cache_evictions = 0;           // LRU budget pressure
  uint64_t doc_cache_explicit_evictions = 0;  // caller-requested EVICTs
  uint64_t doc_cache_documents = 0;  // gauge: tapes resident
  uint64_t doc_cache_bytes = 0;      // gauge: their summed memory_bytes
  uint64_t tape_replays = 0;         // documents served from tape
  uint64_t tape_events_replayed = 0;
  // Failure-mode counters (the robustness surface): how many requests
  // died by caller cancellation, by deadline, by a ParserLimits
  // rejection, and how many tapes failed integrity checks.
  uint64_t cancelled = 0;
  uint64_t deadline_exceeded = 0;
  uint64_t limit_rejected = 0;
  uint64_t tape_corrupt = 0;
  // Network front-end counters (recorded by net::Server into the same
  // stats block so STATS / METRICS / GET /metrics all tell one story).
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;     // accept-side load shedding
  uint64_t disconnect_cancels = 0;   // sessions cancelled on peer loss
  uint64_t net_idle_closed = 0;      // idle / half-open peers reaped
  uint64_t net_overrun_closed = 0;   // input/output buffer bound hit
  // Pub/sub counters (standing-query subsystem).
  uint64_t subscriptions_active = 0;  // gauge: live standing queries
  uint64_t publishes = 0;             // documents published (one parse each)
  uint64_t events_delivered = 0;      // EVENT frames handed to sinks
  uint64_t fanout_shed = 0;           // frames dropped on slow subscribers
  // Replication counters (shard-to-shard tape transfer, REPLPULL).
  uint64_t repl_serves = 0;           // tapes streamed out to a peer shard
  uint64_t repl_ingests = 0;          // tapes installed from a peer shard
  uint64_t repl_ingest_corrupt = 0;   // pulled tapes failing CRC/decoding

  // One "name value" pair per line, stable names; the xsqd STATS
  // command prints exactly this.
  std::string ToString() const;

  // The inverse of ToString: parses "name value" lines back into a
  // snapshot, so a router can decode a shard's STATS reply. Fields
  // absent from the text stay zero (an older shard); an unknown name
  // or a malformed line is a ParseError. Round trip:
  // Parse(s.ToString())->ToString() == s.ToString().
  static Result<StatsSnapshot> Parse(std::string_view text);

  // Adds `other` into this snapshot (cluster roll-up). Every field
  // sums — gauges included, since the cluster-wide "right now" is the
  // sum over shards — except queue_high_water, a per-session high-water
  // mark for which the cluster figure is the max over shards.
  void Merge(const StatsSnapshot& other);
};

class ServiceStats {
 public:
  void RecordSessionOpened() { Inc(sessions_opened_); }
  void RecordSessionRejected() { Inc(sessions_rejected_); }
  void RecordPushRejected() { Inc(pushes_rejected_); }
  void RecordChunk(size_t bytes) {
    Inc(chunks_processed_);
    bytes_consumed_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void RecordItems(uint64_t count) {
    items_emitted_.fetch_add(count, std::memory_order_relaxed);
  }
  void RecordTapeReplay(uint64_t events) {
    Inc(tape_replays_);
    tape_events_replayed_.fetch_add(events, std::memory_order_relaxed);
  }
  void RecordCancelled() { Inc(cancelled_); }
  void RecordDeadlineExceeded() { Inc(deadline_exceeded_); }
  void RecordLimitRejected() { Inc(limit_rejected_); }
  void RecordTapeCorrupt() { Inc(tape_corrupt_); }
  void RecordConnectionAccepted() { Inc(connections_accepted_); }
  void RecordConnectionShed() { Inc(connections_shed_); }
  void RecordDisconnectCancels(uint64_t count) {
    disconnect_cancels_.fetch_add(count, std::memory_order_relaxed);
  }
  void RecordNetIdleClosed() { Inc(net_idle_closed_); }
  void RecordNetOverrunClosed() { Inc(net_overrun_closed_); }
  void RecordPublish() { Inc(publishes_); }
  void RecordEventsDelivered(uint64_t count) {
    events_delivered_.fetch_add(count, std::memory_order_relaxed);
  }
  void RecordFanoutShed(uint64_t count) {
    fanout_shed_.fetch_add(count, std::memory_order_relaxed);
  }
  void RecordReplServe() { Inc(repl_serves_); }
  void RecordReplIngest() { Inc(repl_ingests_); }
  void RecordReplIngestCorrupt() { Inc(repl_ingest_corrupt_); }
  // Gauge; `delta` may be negative (unsubscribe / subscriber teardown).
  void AdjustSubscriptionsActive(int64_t delta) {
    subscriptions_active_.fetch_add(delta, std::memory_order_relaxed);
  }
  void RecordQueueDepth(uint64_t depth) {
    uint64_t seen = queue_high_water_.load(std::memory_order_relaxed);
    while (depth > seen &&
           !queue_high_water_.compare_exchange_weak(
               seen, depth, std::memory_order_relaxed)) {
    }
  }

  // Gauge maintenance; `delta` may be negative.
  void AdjustBufferedBytes(int64_t delta) {
    buffered_bytes_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t buffered_bytes() const {
    int64_t v = buffered_bytes_.load(std::memory_order_relaxed);
    return v > 0 ? static_cast<uint64_t>(v) : 0;
  }

  StatsSnapshot Snapshot() const;

 private:
  static void Inc(std::atomic<uint64_t>& counter) {
    counter.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> sessions_rejected_{0};
  std::atomic<uint64_t> chunks_processed_{0};
  std::atomic<uint64_t> bytes_consumed_{0};
  std::atomic<uint64_t> items_emitted_{0};
  std::atomic<uint64_t> pushes_rejected_{0};
  std::atomic<uint64_t> queue_high_water_{0};
  std::atomic<int64_t> buffered_bytes_{0};
  std::atomic<uint64_t> tape_replays_{0};
  std::atomic<uint64_t> tape_events_replayed_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> deadline_exceeded_{0};
  std::atomic<uint64_t> limit_rejected_{0};
  std::atomic<uint64_t> tape_corrupt_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> disconnect_cancels_{0};
  std::atomic<uint64_t> net_idle_closed_{0};
  std::atomic<uint64_t> net_overrun_closed_{0};
  std::atomic<int64_t> subscriptions_active_{0};
  std::atomic<uint64_t> publishes_{0};
  std::atomic<uint64_t> events_delivered_{0};
  std::atomic<uint64_t> fanout_shed_{0};
  std::atomic<uint64_t> repl_serves_{0};
  std::atomic<uint64_t> repl_ingests_{0};
  std::atomic<uint64_t> repl_ingest_corrupt_{0};
};

}  // namespace xsq::service

#endif  // XSQ_SERVICE_STATS_H_
