#include "service/plan_cache.h"

namespace xsq::service {

namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::string PlanCache::Normalize(std::string_view query_text) {
  size_t begin = 0;
  size_t end = query_text.size();
  while (begin < end && IsAsciiSpace(query_text[begin])) ++begin;
  while (end > begin && IsAsciiSpace(query_text[end - 1])) --end;
  return std::string(query_text.substr(begin, end - begin));
}

Result<std::shared_ptr<const core::CompiledPlan>> PlanCache::GetOrCompile(
    std::string_view query_text) {
  std::string key = Normalize(query_text);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(std::string_view(key));
    if (it != index_.end()) {
      ++counters_.hits;
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      return it->second->plan;
    }
    ++counters_.misses;
  }

  // Compile outside the lock: a miss must not stall hits on other keys.
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<const core::CompiledPlan> plan,
                       core::CompilePlan(key));

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string_view(key));
  if (it != index_.end()) {
    // Another thread compiled the same query while we did; keep theirs.
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->plan;
  }
  lru_.push_front(Entry{std::move(key), plan});
  index_[std::string_view(lru_.front().key)] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(std::string_view(lru_.back().key));
    lru_.pop_back();
    ++counters_.evictions;
  }
  return plan;
}

PlanCache::Counters PlanCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

}  // namespace xsq::service
