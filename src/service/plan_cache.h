// PlanCache: a thread-safe, bounded LRU cache of compiled query plans.
//
// Compilation (XPath parse + engine selection + HPDT construction) is
// input-independent, so a plan compiled once serves every session that
// ever runs the same query text. The cache is keyed by normalized query
// text; a hit returns a shared_ptr<const CompiledPlan> that stays valid
// even if the entry is evicted while sessions still use it.
//
// Compilation happens outside the cache lock, so a slow compile never
// blocks hits on other keys; two threads racing to compile the same new
// query may both compile, and the first insert wins (the loser's plan
// is discarded — duplicate work, never duplicate entries).
#ifndef XSQ_SERVICE_PLAN_CACHE_H_
#define XSQ_SERVICE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "core/compiled_plan.h"

namespace xsq::service {

class PlanCache {
 public:
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;      // == number of compilations started
    uint64_t evictions = 0;
  };

  // `capacity` is the maximum number of cached plans; at least 1.
  explicit PlanCache(size_t capacity);

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns the cached plan for `query_text`, compiling and inserting
  // it on a miss. Compile errors are returned and not cached.
  Result<std::shared_ptr<const core::CompiledPlan>> GetOrCompile(
      std::string_view query_text);

  // Cache key: query text with surrounding ASCII whitespace trimmed.
  // (Internal whitespace is preserved — it may be significant inside
  // quoted comparison literals.)
  static std::string Normalize(std::string_view query_text);

  Counters counters() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const core::CompiledPlan> plan;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
  Counters counters_;
};

}  // namespace xsq::service

#endif  // XSQ_SERVICE_PLAN_CACHE_H_
