// ExemplarStore: the slowest request seen per latency bucket, with its
// query text.
//
// Histograms answer "how slow", exemplars answer "slow doing what": for
// every log2 bucket of xsq_request_latency_us the store keeps the
// single worst (duration, query) pair observed, so a METRICS scrape —
// or the --slow-query-ms operator path — can name the query behind each
// latency band without any per-request logging. Updates happen once per
// completed document request (never on the per-chunk hot path) under a
// small mutex; rendering snapshots under the same mutex.
#ifndef XSQ_SERVICE_EXEMPLARS_H_
#define XSQ_SERVICE_EXEMPLARS_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/histogram.h"

namespace xsq::service {

class ExemplarStore {
 public:
  // Records a completed request: keeps (us, query_text) iff it is the
  // slowest seen in its bucket. Any thread.
  void Observe(uint64_t us, std::string_view query_text);

  // Appends one comment line per populated bucket, slowest bucket last:
  //   # exemplar xsq_request_latency_us bucket{le="8191"} 5321us <query>
  // Comment lines are ignored by Prometheus scrapers but make METRICS
  // self-contained for operators chasing a latency band.
  void RenderComments(std::string* out) const;

  void Clear();

 private:
  struct Slot {
    uint64_t us = 0;
    std::string query;
    bool set = false;
  };

  mutable std::mutex mu_;
  std::array<Slot, obs::Histogram::kBucketCount> slots_;
};

}  // namespace xsq::service

#endif  // XSQ_SERVICE_EXEMPLARS_H_
