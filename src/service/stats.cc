#include "service/stats.h"

namespace xsq::service {

namespace {

// The one canonical field list: ToString renders it in this order,
// Parse accepts any subset of these names, Merge folds them all.
struct FieldSpec {
  const char* name;
  uint64_t StatsSnapshot::*field;
};

constexpr FieldSpec kFields[] = {
    {"sessions_opened", &StatsSnapshot::sessions_opened},
    {"sessions_rejected", &StatsSnapshot::sessions_rejected},
    {"sessions_active", &StatsSnapshot::sessions_active},
    {"chunks_processed", &StatsSnapshot::chunks_processed},
    {"bytes_consumed", &StatsSnapshot::bytes_consumed},
    {"items_emitted", &StatsSnapshot::items_emitted},
    {"pushes_rejected", &StatsSnapshot::pushes_rejected},
    {"queue_high_water", &StatsSnapshot::queue_high_water},
    {"engine_buffered_bytes", &StatsSnapshot::engine_buffered_bytes},
    {"plan_cache_hits", &StatsSnapshot::plan_cache_hits},
    {"plan_cache_misses", &StatsSnapshot::plan_cache_misses},
    {"plan_cache_evictions", &StatsSnapshot::plan_cache_evictions},
    {"doc_cache_hits", &StatsSnapshot::doc_cache_hits},
    {"doc_cache_misses", &StatsSnapshot::doc_cache_misses},
    {"doc_cache_evictions", &StatsSnapshot::doc_cache_evictions},
    {"doc_cache_explicit_evictions",
     &StatsSnapshot::doc_cache_explicit_evictions},
    {"doc_cache_documents", &StatsSnapshot::doc_cache_documents},
    {"doc_cache_bytes", &StatsSnapshot::doc_cache_bytes},
    {"tape_replays", &StatsSnapshot::tape_replays},
    {"tape_events_replayed", &StatsSnapshot::tape_events_replayed},
    {"cancelled", &StatsSnapshot::cancelled},
    {"deadline_exceeded", &StatsSnapshot::deadline_exceeded},
    {"limit_rejected", &StatsSnapshot::limit_rejected},
    {"tape_corrupt", &StatsSnapshot::tape_corrupt},
    {"connections_accepted", &StatsSnapshot::connections_accepted},
    {"connections_shed", &StatsSnapshot::connections_shed},
    {"disconnect_cancels", &StatsSnapshot::disconnect_cancels},
    {"net_idle_closed", &StatsSnapshot::net_idle_closed},
    {"net_overrun_closed", &StatsSnapshot::net_overrun_closed},
    {"subscriptions_active", &StatsSnapshot::subscriptions_active},
    {"publishes", &StatsSnapshot::publishes},
    {"events_delivered", &StatsSnapshot::events_delivered},
    {"fanout_shed", &StatsSnapshot::fanout_shed},
    {"repl_serves", &StatsSnapshot::repl_serves},
    {"repl_ingests", &StatsSnapshot::repl_ingests},
    {"repl_ingest_corrupt", &StatsSnapshot::repl_ingest_corrupt},
};

}  // namespace

std::string StatsSnapshot::ToString() const {
  std::string out;
  for (const FieldSpec& spec : kFields) {
    out += spec.name;
    out += ' ';
    out += std::to_string(this->*spec.field);
    out += '\n';
  }
  return out;
}

Result<StatsSnapshot> StatsSnapshot::Parse(std::string_view text) {
  StatsSnapshot snap;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty()) continue;
    size_t space = line.find(' ');
    if (space == std::string_view::npos) {
      return Status::ParseError("malformed stats line: " + std::string(line));
    }
    std::string_view name = line.substr(0, space);
    std::string_view digits = line.substr(space + 1);
    uint64_t value = 0;
    if (digits.empty()) {
      return Status::ParseError("malformed stats line: " + std::string(line));
    }
    for (char c : digits) {
      if (c < '0' || c > '9') {
        return Status::ParseError("bad stats value: " + std::string(line));
      }
      value = value * 10 + static_cast<uint64_t>(c - '0');
    }
    bool known = false;
    for (const FieldSpec& spec : kFields) {
      if (name == spec.name) {
        snap.*spec.field = value;
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::ParseError("unknown stats name: " + std::string(name));
    }
  }
  return snap;
}

void StatsSnapshot::Merge(const StatsSnapshot& other) {
  for (const FieldSpec& spec : kFields) {
    if (spec.field == &StatsSnapshot::queue_high_water) {
      if (other.queue_high_water > queue_high_water) {
        queue_high_water = other.queue_high_water;
      }
    } else {
      this->*spec.field += other.*spec.field;
    }
  }
}

StatsSnapshot ServiceStats::Snapshot() const {
  StatsSnapshot snap;
  snap.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  snap.sessions_rejected = sessions_rejected_.load(std::memory_order_relaxed);
  snap.chunks_processed = chunks_processed_.load(std::memory_order_relaxed);
  snap.bytes_consumed = bytes_consumed_.load(std::memory_order_relaxed);
  snap.items_emitted = items_emitted_.load(std::memory_order_relaxed);
  snap.pushes_rejected = pushes_rejected_.load(std::memory_order_relaxed);
  snap.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  snap.engine_buffered_bytes = buffered_bytes();
  snap.tape_replays = tape_replays_.load(std::memory_order_relaxed);
  snap.tape_events_replayed =
      tape_events_replayed_.load(std::memory_order_relaxed);
  snap.cancelled = cancelled_.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  snap.limit_rejected = limit_rejected_.load(std::memory_order_relaxed);
  snap.tape_corrupt = tape_corrupt_.load(std::memory_order_relaxed);
  snap.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  snap.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  snap.disconnect_cancels =
      disconnect_cancels_.load(std::memory_order_relaxed);
  snap.net_idle_closed = net_idle_closed_.load(std::memory_order_relaxed);
  snap.net_overrun_closed =
      net_overrun_closed_.load(std::memory_order_relaxed);
  int64_t subs = subscriptions_active_.load(std::memory_order_relaxed);
  snap.subscriptions_active = subs > 0 ? static_cast<uint64_t>(subs) : 0;
  snap.publishes = publishes_.load(std::memory_order_relaxed);
  snap.events_delivered = events_delivered_.load(std::memory_order_relaxed);
  snap.fanout_shed = fanout_shed_.load(std::memory_order_relaxed);
  snap.repl_serves = repl_serves_.load(std::memory_order_relaxed);
  snap.repl_ingests = repl_ingests_.load(std::memory_order_relaxed);
  snap.repl_ingest_corrupt =
      repl_ingest_corrupt_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace xsq::service
