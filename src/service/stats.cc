#include "service/stats.h"

namespace xsq::service {

std::string StatsSnapshot::ToString() const {
  std::string out;
  auto line = [&out](const char* name, uint64_t value) {
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  line("sessions_opened", sessions_opened);
  line("sessions_rejected", sessions_rejected);
  line("sessions_active", sessions_active);
  line("chunks_processed", chunks_processed);
  line("bytes_consumed", bytes_consumed);
  line("items_emitted", items_emitted);
  line("pushes_rejected", pushes_rejected);
  line("queue_high_water", queue_high_water);
  line("engine_buffered_bytes", engine_buffered_bytes);
  line("plan_cache_hits", plan_cache_hits);
  line("plan_cache_misses", plan_cache_misses);
  line("plan_cache_evictions", plan_cache_evictions);
  line("doc_cache_hits", doc_cache_hits);
  line("doc_cache_misses", doc_cache_misses);
  line("doc_cache_evictions", doc_cache_evictions);
  line("doc_cache_explicit_evictions", doc_cache_explicit_evictions);
  line("doc_cache_documents", doc_cache_documents);
  line("doc_cache_bytes", doc_cache_bytes);
  line("tape_replays", tape_replays);
  line("tape_events_replayed", tape_events_replayed);
  line("cancelled", cancelled);
  line("deadline_exceeded", deadline_exceeded);
  line("limit_rejected", limit_rejected);
  line("tape_corrupt", tape_corrupt);
  line("connections_accepted", connections_accepted);
  line("connections_shed", connections_shed);
  line("disconnect_cancels", disconnect_cancels);
  line("net_idle_closed", net_idle_closed);
  line("net_overrun_closed", net_overrun_closed);
  line("subscriptions_active", subscriptions_active);
  line("publishes", publishes);
  line("events_delivered", events_delivered);
  line("fanout_shed", fanout_shed);
  return out;
}

StatsSnapshot ServiceStats::Snapshot() const {
  StatsSnapshot snap;
  snap.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  snap.sessions_rejected = sessions_rejected_.load(std::memory_order_relaxed);
  snap.chunks_processed = chunks_processed_.load(std::memory_order_relaxed);
  snap.bytes_consumed = bytes_consumed_.load(std::memory_order_relaxed);
  snap.items_emitted = items_emitted_.load(std::memory_order_relaxed);
  snap.pushes_rejected = pushes_rejected_.load(std::memory_order_relaxed);
  snap.queue_high_water = queue_high_water_.load(std::memory_order_relaxed);
  snap.engine_buffered_bytes = buffered_bytes();
  snap.tape_replays = tape_replays_.load(std::memory_order_relaxed);
  snap.tape_events_replayed =
      tape_events_replayed_.load(std::memory_order_relaxed);
  snap.cancelled = cancelled_.load(std::memory_order_relaxed);
  snap.deadline_exceeded = deadline_exceeded_.load(std::memory_order_relaxed);
  snap.limit_rejected = limit_rejected_.load(std::memory_order_relaxed);
  snap.tape_corrupt = tape_corrupt_.load(std::memory_order_relaxed);
  snap.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  snap.connections_shed = connections_shed_.load(std::memory_order_relaxed);
  snap.disconnect_cancels =
      disconnect_cancels_.load(std::memory_order_relaxed);
  snap.net_idle_closed = net_idle_closed_.load(std::memory_order_relaxed);
  snap.net_overrun_closed =
      net_overrun_closed_.load(std::memory_order_relaxed);
  int64_t subs = subscriptions_active_.load(std::memory_order_relaxed);
  snap.subscriptions_active = subs > 0 ? static_cast<uint64_t>(subs) : 0;
  snap.publishes = publishes_.load(std::memory_order_relaxed);
  snap.events_delivered = events_delivered_.load(std::memory_order_relaxed);
  snap.fanout_shed = fanout_shed_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace xsq::service
