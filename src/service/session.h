// Session: a long-lived, reusable evaluation of one query over a
// sequence of documents.
//
// A session wraps a StreamingQuery built from a (typically cached)
// CompiledPlan and adds what a server needs around it:
//
//   - an explicit lifecycle:  Open -> Push* -> Close -> Reset -> Push* ...
//     Reset rewinds parser and engine for the next document without
//     recompiling the plan, so the serving hot path never rebuilds an
//     engine.
//   - a per-session memory budget: after every chunk the engine's
//     buffered bytes are checked against the budget; exceeding it fails
//     the session with ResourceExhausted instead of buffering without
//     bound (Koch et al.'s buffer-minimization discipline applied as
//     admission policy).
//   - thread-safe result draining: the streaming side (Push/Close/
//     Reset) is driven by exactly one worker thread at a time, while
//     TakeItems / aggregates / buffered_bytes may be called from any
//     thread concurrently.
//
// The streaming methods themselves are NOT mutually thread-safe; the
// QueryService's per-session FIFO queue guarantees single-threaded,
// in-order delivery per session.
#ifndef XSQ_SERVICE_SESSION_H_
#define XSQ_SERVICE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/cancel_token.h"
#include "core/compiled_plan.h"
#include "core/streaming_query.h"
#include "service/metrics.h"
#include "service/stats.h"
#include "tape/tape.h"

namespace xsq::service {

class Session : private core::PhaseListener {
 public:
  // `memory_budget` bounds the engine's buffered bytes (0 = unlimited).
  // `stats`, if non-null, receives item counts and buffered-bytes gauge
  // deltas; it must outlive the session. `metrics`, if non-null,
  // receives per-document phase samples and tape replay timings (the
  // session attaches itself as the query's PhaseListener); it must also
  // outlive the session.
  // `parser_limits` (default: unlimited) hardens the session's parser
  // against hostile documents; violations fail the session with
  // kLimitExceeded like any other streaming error.
  // `cancel_check_events` sets the engine's cancellation sampling
  // interval (how many SAX events may pass between CancelToken polls);
  // it bounds the latency of Cancel() and deadline detection.
  static Result<std::unique_ptr<Session>> Create(
      std::shared_ptr<const core::CompiledPlan> plan, size_t memory_budget,
      ServiceStats* stats, ServiceMetrics* metrics = nullptr,
      const xml::ParserLimits& parser_limits = {},
      uint32_t cancel_check_events = core::CancelToken::kCheckIntervalEvents);

  ~Session();

  // --- streaming side: one thread at a time ---

  // Feeds the next chunk of the current document. On failure (malformed
  // input, engine error, memory budget exceeded) the session enters the
  // failed state and every later streaming call returns the same error.
  Status Push(std::string_view chunk);

  // Ends the current document. Idempotent once successful.
  Status Close();

  // Evaluates an entire recorded document by replaying `tape` into the
  // engine, then closes the document. Replay happens in bounded event
  // batches with the memory budget re-checked between batches, exactly
  // as Push re-checks per chunk. The session must be fresh (not closed,
  // no bytes pushed); on success it ends in the closed state with
  // results drainable as usual.
  Status RunTape(const tape::Tape& tape);

  // Rewinds for the next document, keeping the compiled plan and
  // clearing any failure. Undrained items from the previous document
  // remain drainable.
  Status Reset();

  // --- any thread ---

  // Cooperative cancellation and deadlines. Safe to call from any
  // thread while a worker streams: the engine observes the token within
  // one sampling interval (CancelToken::kCheckIntervalEvents events)
  // and the session fails with kCancelled / kDeadlineExceeded. The
  // failure frees the engine's buffered bytes immediately (the gauge
  // returns its share) without touching sibling sessions; Reset()
  // clears the token along with the failure.
  void Cancel() { cancel_.Cancel(); }
  void SetDeadlineAfterMs(uint64_t ms) { cancel_.SetDeadlineAfterMs(ms); }
  void ClearDeadline() { cancel_.ClearDeadline(); }
  bool cancelled() const { return cancel_.cancelled(); }

  // Moves out every result item produced so far and not yet taken, in
  // document order.
  std::vector<std::string> TakeItems();

  // Running / final aggregate value, for aggregation queries.
  std::optional<double> current_aggregate() const;
  std::optional<double> final_aggregate() const;

  // Engine-buffered bytes after the most recent streaming call.
  size_t buffered_bytes() const {
    return buffered_.load(std::memory_order_relaxed);
  }

  // Most recent streaming status; non-OK means the session failed and
  // must be Reset() before it can stream again.
  Status status() const;
  bool closed() const { return closed_.load(std::memory_order_relaxed); }

  uint64_t items_produced() const {
    return items_produced_.load(std::memory_order_relaxed);
  }
  const xpath::Query& query() const { return query_->query(); }

  // True when the query runs on the deterministic XSQ-NC engine (the
  // engine-kind label of the latency histograms).
  bool deterministic() const { return query_->uses_deterministic_engine(); }

  // Accumulated parse/automaton/buffer time for the current document,
  // nanoseconds. Only meaningful with metrics attached; written by the
  // streaming thread and intended to be read there too (the slow-query
  // log reads it right after Close on the same worker).
  struct PhaseTotals {
    uint64_t parse_ns = 0;
    uint64_t automaton_ns = 0;
    uint64_t buffer_ns = 0;
  };
  PhaseTotals phase_totals() const { return phases_; }

 private:
  Session(std::unique_ptr<core::StreamingQuery> query, size_t memory_budget,
          ServiceStats* stats, ServiceMetrics* metrics,
          const xml::ParserLimits& parser_limits,
          uint32_t cancel_check_events);

  // core::PhaseListener: per-chunk phase sample from the query.
  void OnPhaseSample(uint64_t parse_ns, uint64_t automaton_ns,
                     uint64_t buffer_ns) override;

  // Harvests new items/aggregates after an engine step, updates the
  // buffered-bytes gauge, and records `step` as the session status.
  Status AfterEngineStep(Status step);

  // Flushes the per-document phase totals into the phase histograms
  // (one sample per served document, mirroring Figure 18).
  void RecordPhaseHistograms();

  const size_t memory_budget_;
  ServiceStats* const stats_;      // may be null
  ServiceMetrics* const metrics_;  // may be null
  core::CancelToken cancel_;       // installed into query_ at creation
  std::unique_ptr<core::StreamingQuery> query_;
  PhaseTotals phases_;  // streaming thread only

  std::atomic<size_t> buffered_{0};
  std::atomic<uint64_t> items_produced_{0};
  std::atomic<bool> closed_{false};

  mutable std::mutex mu_;  // guards the fields below
  std::vector<std::string> pending_items_;
  std::optional<double> current_aggregate_;
  std::optional<double> final_aggregate_;
  Status status_;
};

}  // namespace xsq::service

#endif  // XSQ_SERVICE_SESSION_H_
