#include "service/query_service.h"

#include <cstdio>

#include "common/failpoints.h"
#include "common/strings.h"
#include "obs/timer.h"
#include "tape/projection.h"
#include "tape/recorder.h"

namespace xsq::service {

namespace {
uint64_t ElapsedMicros(std::chrono::steady_clock::time_point since,
                       std::chrono::steady_clock::time_point now) {
  if (now <= since) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now - since)
          .count());
}
}  // namespace

QueryService::QueryService(ServiceConfig config)
    : config_(config),
      plan_cache_(config.plan_cache_capacity),
      doc_cache_(config.doc_cache_capacity, config.doc_cache_byte_budget) {
  int workers = config_.num_workers < 1 ? 1 : config_.num_workers;
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  pubsub_.set_parser_limits(config_.parser_limits);
  int dispatchers = config_.num_dispatchers < 1 ? 1 : config_.num_dispatchers;
  dispatchers_.reserve(static_cast<size_t>(dispatchers));
  for (int i = 0; i < dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
}

QueryService::~QueryService() { Shutdown(); }

void QueryService::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !runnable_.empty(); });
    if (runnable_.empty()) {
      if (stopping_) return;  // fully drained
      continue;
    }
    std::shared_ptr<SessionState> state = std::move(runnable_.front());
    runnable_.pop_front();
    // Claim this session's entire queue; Push keeps appending while we
    // evaluate, and the re-check below picks those up.
    std::deque<WorkItem> batch = std::move(state->queue);
    state->queue.clear();
    lock.unlock();

    std::chrono::steady_clock::time_point claimed =
        std::chrono::steady_clock::now();
    for (WorkItem& item : batch) {
      metrics_.queue_wait_us->Record(ElapsedMicros(item.enqueued, claimed));
      if (item.kind == WorkItem::Kind::kChunk) {
        // Failed sessions swallow their remaining queued chunks (the
        // error is already recorded; Close reports it).
        state->session->Push(item.chunk);
        stats_.RecordChunk(item.chunk.size());
        metrics_.RecordChunkLatency(
            ElapsedMicros(item.enqueued, std::chrono::steady_clock::now()),
            state->session->deterministic());
      } else {
        state->session->Close();
        if (state->doc_started) {
          uint64_t elapsed_us = ElapsedMicros(
              state->doc_start, std::chrono::steady_clock::now());
          metrics_.RecordRequestLatency(elapsed_us,
                                        state->session->deterministic());
          exemplars_.Observe(elapsed_us, state->session->query().ToString());
          MaybeLogSlowQuery(*state, elapsed_us);
        }
      }
    }

    lock.lock();
    if (!state->queue.empty()) {
      runnable_.push_back(state);  // more work arrived while evaluating
    } else {
      state->scheduled = false;
      idle_cv_.notify_all();
    }
  }
}

void QueryService::ScheduleLocked(const std::shared_ptr<SessionState>& state) {
  if (state->scheduled) return;
  state->scheduled = true;
  runnable_.push_back(state);
  work_cv_.notify_one();
}

Result<std::shared_ptr<QueryService::SessionState>> QueryService::FindLocked(
    SessionId id) {
  auto it = sessions_.find(id);
  if (it == sessions_.end() || it->second->released) {
    return Status::InvalidArgument("unknown session id " + std::to_string(id));
  }
  return it->second;
}

void QueryService::WaitUntilIdle(std::unique_lock<std::mutex>& lock,
                                 const std::shared_ptr<SessionState>& state) {
  idle_cv_.wait(lock,
                [&] { return state->queue.empty() && !state->scheduled; });
}

Result<SessionId> QueryService::OpenSession(std::string_view query_text) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::InvalidArgument("service is shut down");
    if (sessions_.size() >= config_.max_sessions) {
      stats_.RecordSessionRejected();
      return Status::ResourceExhausted(
          "session limit reached (" + std::to_string(config_.max_sessions) +
          ")");
    }
  }
  // Compile (or hit the cache) outside the service lock.
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<const core::CompiledPlan> plan,
                       plan_cache_.GetOrCompile(query_text));
  XSQ_FAILPOINT("service.worker.alloc_fail",
                return Status::ResourceExhausted(
                    "injected session allocation failure"));
  XSQ_ASSIGN_OR_RETURN(
      std::unique_ptr<Session> session,
      Session::Create(std::move(plan), config_.per_session_memory_budget,
                      &stats_, &metrics_, config_.parser_limits,
                      config_.cancel_check_events));

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return Status::InvalidArgument("service is shut down");
  if (sessions_.size() >= config_.max_sessions) {
    stats_.RecordSessionRejected();
    return Status::ResourceExhausted(
        "session limit reached (" + std::to_string(config_.max_sessions) +
        ")");
  }
  SessionId id = next_id_++;
  auto state = std::make_shared<SessionState>();
  state->session = std::move(session);
  sessions_.emplace(id, std::move(state));
  stats_.RecordSessionOpened();
  return id;
}

Status QueryService::Push(SessionId id, std::string chunk,
                          uint64_t deadline_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return Status::InvalidArgument("service is shut down");
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<SessionState> state, FindLocked(id));
  if (state->close_requested) {
    return Status::InvalidArgument("Push after Close");
  }
  if (state->queue.size() >= config_.max_queued_chunks_per_session) {
    stats_.RecordPushRejected();
    return Status::ResourceExhausted(
        "session queue full (" +
        std::to_string(config_.max_queued_chunks_per_session) +
        " chunks); drain or retry");
  }
  if (config_.global_memory_budget > 0 &&
      stats_.buffered_bytes() > config_.global_memory_budget) {
    stats_.RecordPushRejected();
    return Status::ResourceExhausted(
        "global memory budget exceeded; retry after buffers drain");
  }
  std::chrono::steady_clock::time_point now = std::chrono::steady_clock::now();
  if (!state->doc_started) {
    state->doc_started = true;
    state->doc_start = now;
    // Arm the document deadline with the first work item: explicit
    // per-request value, else the service default. The token is atomic,
    // so arming races harmlessly with a worker already evaluating.
    uint64_t ms = deadline_ms > 0 ? deadline_ms : config_.default_deadline_ms;
    if (ms > 0) state->session->SetDeadlineAfterMs(ms);
  } else if (deadline_ms > 0) {
    state->session->SetDeadlineAfterMs(deadline_ms);  // caller re-arms
  }
  state->queue.push_back(
      WorkItem{WorkItem::Kind::kChunk, std::move(chunk), now});
  stats_.RecordQueueDepth(state->queue.size());
  ScheduleLocked(state);
  return Status::OK();
}

Status QueryService::Close(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<SessionState> state, FindLocked(id));
  if (!state->close_requested) {
    if (stopping_) return Status::InvalidArgument("service is shut down");
    state->close_requested = true;
    std::chrono::steady_clock::time_point now =
        std::chrono::steady_clock::now();
    if (!state->doc_started) {
      state->doc_started = true;
      state->doc_start = now;
      if (config_.default_deadline_ms > 0) {
        state->session->SetDeadlineAfterMs(config_.default_deadline_ms);
      }
    }
    state->queue.push_back(
        WorkItem{WorkItem::Kind::kClose, std::string(), now});
    ScheduleLocked(state);
  }
  WaitUntilIdle(lock, state);
  return state->session->status();
}

Status QueryService::ResetSession(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return Status::InvalidArgument("service is shut down");
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<SessionState> state, FindLocked(id));
  WaitUntilIdle(lock, state);
  // Claim the session so no worker can be scheduled onto it mid-reset
  // (none can be: the queue is empty and Push/Close on this id are
  // blocked on mu_, which we hold until after the claim).
  state->scheduled = true;
  lock.unlock();
  Status status = state->session->Reset();
  lock.lock();
  state->scheduled = false;
  state->close_requested = false;
  state->doc_started = false;
  if (!state->queue.empty()) ScheduleLocked(state);
  idle_cv_.notify_all();
  return status;
}

Result<std::shared_ptr<const tape::Tape>> QueryService::RecordDocument(
    std::string_view name, std::string_view document,
    const std::vector<std::string>& projection_queries) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::InvalidArgument("service is shut down");
  }
  if (name.empty()) return Status::InvalidArgument("empty document name");
  XSQ_FAILPOINT("service.record.alloc_fail",
                return Status::ResourceExhausted(
                    "injected tape allocation failure"));

  tape::ProjectionMask mask;
  if (!projection_queries.empty()) {
    std::vector<std::shared_ptr<const core::CompiledPlan>> plans;
    plans.reserve(projection_queries.size());
    for (const std::string& query_text : projection_queries) {
      XSQ_ASSIGN_OR_RETURN(std::shared_ptr<const core::CompiledPlan> plan,
                           plan_cache_.GetOrCompile(query_text));
      plans.push_back(std::move(plan));
    }
    mask = tape::ProjectionMask::FromPlans(plans);
  }
  XSQ_ASSIGN_OR_RETURN(
      tape::Tape recorded,
      tape::RecordDocument(document,
                           projection_queries.empty() ? nullptr : &mask));
  auto tape = std::make_shared<const tape::Tape>(std::move(recorded));
  doc_cache_.Put(name, tape);
  return tape;
}

Status QueryService::RunCached(SessionId id, std::string_view name,
                               uint64_t deadline_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  if (stopping_) return Status::InvalidArgument("service is shut down");
  // Session lookup precedes the cache probe so the error precedence is
  // the same whether the request reaches the service directly or via a
  // router that validates its own session table first.
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<SessionState> state, FindLocked(id));
  std::shared_ptr<const tape::Tape> tape = doc_cache_.Get(name);
  if (tape == nullptr) {
    return Status::InvalidArgument("document not recorded: " +
                                   std::string(name));
  }
  WaitUntilIdle(lock, state);
  // Claim the session so no worker can touch it while we replay inline
  // (same discipline as ResetSession; Push/Close on this id block on
  // mu_ until the claim is visible).
  state->scheduled = true;
  lock.unlock();

  // Rewind a session that already served a document (or failed) so
  // RunCached composes back to back without an explicit reset.
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  Status status = Status::OK();
  if (state->session->closed() || !state->session->status().ok()) {
    status = state->session->Reset();
  }
  // Arm after the reset (Reset clears the token along with failures).
  uint64_t ms = deadline_ms > 0 ? deadline_ms : config_.default_deadline_ms;
  if (status.ok() && ms > 0) state->session->SetDeadlineAfterMs(ms);
  if (status.ok()) status = state->session->RunTape(*tape);
  uint64_t elapsed_us =
      ElapsedMicros(started, std::chrono::steady_clock::now());
  metrics_.RecordRequestLatency(elapsed_us, state->session->deterministic());
  exemplars_.Observe(elapsed_us, state->session->query().ToString());
  MaybeLogSlowQuery(*state, elapsed_us);

  lock.lock();
  state->scheduled = false;
  state->close_requested = false;
  state->doc_started = false;
  if (!state->queue.empty()) ScheduleLocked(state);
  idle_cv_.notify_all();
  return status;
}

Status QueryService::CancelSession(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<SessionState> state, FindLocked(id));
  // Trip the token only; the worker (or the next streaming call)
  // observes it, fails the session with kCancelled, and frees its
  // buffers. Nothing here blocks on the evaluation.
  state->session->Cancel();
  return Status::OK();
}

Status QueryService::EvictDocument(std::string_view name) {
  if (!doc_cache_.Evict(name)) {
    return Status::InvalidArgument("document not recorded: " +
                                   std::string(name));
  }
  return Status::OK();
}

Result<std::shared_ptr<const tape::Tape>> QueryService::ServeTape(
    std::string_view name) {
  std::shared_ptr<const tape::Tape> tape = doc_cache_.Peek(name);
  if (tape == nullptr) {
    return Status::InvalidArgument("document not recorded: " +
                                   std::string(name));
  }
  stats_.RecordReplServe();
  return tape;
}

Result<std::shared_ptr<const tape::Tape>> QueryService::IngestTape(
    std::string_view name, std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::InvalidArgument("service is shut down");
  }
  if (name.empty()) return Status::InvalidArgument("empty document name");
  Result<tape::Tape> decoded =
      tape::Tape::FromBytes(std::move(bytes), "replpull:" + std::string(name));
  if (!decoded.ok()) {
    stats_.RecordTapeCorrupt();
    stats_.RecordReplIngestCorrupt();
    return decoded.status();
  }
  auto tape = std::make_shared<const tape::Tape>(*std::move(decoded));
  doc_cache_.Put(name, tape);
  stats_.RecordReplIngest();
  return tape;
}

std::vector<std::pair<std::string, std::shared_ptr<const tape::Tape>>>
QueryService::DocumentInventory() const {
  return doc_cache_.Snapshot();
}

std::vector<std::string> QueryService::Drain(SessionId id) {
  std::shared_ptr<SessionState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Result<std::shared_ptr<SessionState>> found = FindLocked(id);
    if (!found.ok()) return {};
    state = *std::move(found);
  }
  return state->session->TakeItems();
}

std::optional<double> QueryService::FinalAggregate(SessionId id) {
  std::shared_ptr<SessionState> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Result<std::shared_ptr<SessionState>> found = FindLocked(id);
    if (!found.ok()) return std::nullopt;
    state = *std::move(found);
  }
  return state->session->final_aggregate();
}

Status QueryService::Release(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  XSQ_ASSIGN_OR_RETURN(std::shared_ptr<SessionState> state, FindLocked(id));
  state->released = true;
  // The worker's shared_ptr keeps in-flight work safe; dropping the map
  // entry frees the admission slot immediately.
  sessions_.erase(id);
  return Status::OK();
}

// ---------------------------------------------------------------------
// Standing-query pub/sub.

Result<uint64_t> QueryService::AddSubscriber(EventSink sink) {
  if (!sink) return Status::InvalidArgument("empty event sink");
  std::lock_guard<std::mutex> lock(pub_mu_);
  if (pub_stopping_) return Status::InvalidArgument("service is shut down");
  uint64_t id = next_subscriber_id_++;
  auto sub = std::make_shared<Subscriber>();
  sub->id = id;
  sub->sink = std::move(sink);
  subscribers_.emplace(id, std::move(sub));
  return id;
}

Status QueryService::RemoveSubscriber(uint64_t subscriber_id) {
  std::unique_lock<std::mutex> lock(pub_mu_);
  auto it = subscribers_.find(subscriber_id);
  if (it == subscribers_.end()) {
    return Status::InvalidArgument("unknown subscriber id " +
                                   std::to_string(subscriber_id));
  }
  std::shared_ptr<Subscriber> sub = it->second;
  sub->removed = true;
  for (uint64_t sid : sub->subscriptions) {
    (void)pubsub_.Unsubscribe(sid);  // only fails on unknown ids
    subscription_owner_.erase(sid);
  }
  stats_.AdjustSubscriptionsActive(
      -static_cast<int64_t>(sub->subscriptions.size()));
  sub->subscriptions.clear();
  sub->frames.clear();
  subscribers_.erase(it);
  // A dispatcher may be mid-delivery outside the lock; wait it out so
  // the sink is provably never invoked after we return.
  unclaim_cv_.wait(lock, [&] { return !sub->claimed; });
  return Status::OK();
}

Result<uint64_t> QueryService::Subscribe(uint64_t subscriber_id,
                                         std::string_view query_text) {
  std::lock_guard<std::mutex> lock(pub_mu_);
  if (pub_stopping_) return Status::InvalidArgument("service is shut down");
  auto it = subscribers_.find(subscriber_id);
  if (it == subscribers_.end()) {
    return Status::InvalidArgument("unknown subscriber id " +
                                   std::to_string(subscriber_id));
  }
  if (pubsub_.subscription_count() >= config_.max_subscriptions) {
    return Status::ResourceExhausted(
        "subscription limit reached (" +
        std::to_string(config_.max_subscriptions) + ")");
  }
  XSQ_ASSIGN_OR_RETURN(uint64_t sid, pubsub_.Subscribe(query_text));
  it->second->subscriptions.insert(sid);
  subscription_owner_.emplace(sid, subscriber_id);
  stats_.AdjustSubscriptionsActive(1);
  return sid;
}

Status QueryService::Unsubscribe(uint64_t subscriber_id,
                                 uint64_t subscription_id) {
  std::lock_guard<std::mutex> lock(pub_mu_);
  auto owner = subscription_owner_.find(subscription_id);
  if (owner == subscription_owner_.end() ||
      owner->second != subscriber_id) {
    return Status::InvalidArgument(
        "unknown subscription id " + std::to_string(subscription_id) +
        " for subscriber " + std::to_string(subscriber_id));
  }
  XSQ_RETURN_IF_ERROR(pubsub_.Unsubscribe(subscription_id));
  subscription_owner_.erase(owner);
  auto it = subscribers_.find(subscriber_id);
  if (it != subscribers_.end()) {
    it->second->subscriptions.erase(subscription_id);
  }
  stats_.AdjustSubscriptionsActive(-1);
  return Status::OK();
}

Result<QueryService::PublishSummary> QueryService::Publish(
    std::string_view document) {
  std::chrono::steady_clock::time_point started =
      std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(pub_mu_);
  if (pub_stopping_) return Status::InvalidArgument("service is shut down");
  XSQ_ASSIGN_OR_RETURN(pubsub::PublishOutcome outcome,
                       pubsub_.Publish(document));
  stats_.RecordPublish();

  PublishSummary summary;
  summary.subscriptions = outcome.subscriptions;
  summary.deliveries = outcome.deliveries.size();
  summary.filter_survivors = outcome.filter_survivors;
  summary.hpdt_evaluations = outcome.hpdt_evaluations;

  // Format EVENT frames and enqueue them on the owning subscribers'
  // bounded queues. Overflow sheds the frame (never blocks a publish on
  // a slow subscriber) and queues one ERR notice per shed episode — the
  // notice rides above the bound so the subscriber always learns it
  // lost data.
  for (const pubsub::Delivery& delivery : outcome.deliveries) {
    auto owner = subscription_owner_.find(delivery.subscription_id);
    if (owner == subscription_owner_.end()) continue;
    auto sit = subscribers_.find(owner->second);
    if (sit == subscribers_.end()) continue;
    Subscriber& sub = *sit->second;
    uint64_t dropped_now = 0;
    auto offer = [&](std::string frame) {
      if (sub.frames.size() >= config_.max_subscriber_queue_frames) {
        ++dropped_now;
        return;
      }
      sub.frames.push_back(std::move(frame));
      ++summary.frames_enqueued;
    };
    std::string prefix =
        "EVENT " + std::to_string(delivery.subscription_id) + ' ';
    if (delivery.is_aggregate) {
      if (delivery.aggregate.has_value()) {
        offer(prefix + "AGG " + std::to_string(*delivery.aggregate));
      }
    } else {
      for (const std::string& item : delivery.items) {
        offer(prefix + "ITEM " + LineEscape(item));
      }
    }
    if (dropped_now > 0) {
      summary.frames_shed += dropped_now;
      stats_.RecordFanoutShed(dropped_now);
      if (!sub.shed_episode) {
        sub.shed_episode = true;
        sub.frames.push_back(
            "EVENT 0 ERR ResourceExhausted: slow subscriber; dropped " +
            std::to_string(dropped_now) + " event frames");
        ++summary.frames_enqueued;
      }
    }
    if (!sub.frames.empty()) ScheduleSubscriberLocked(sit->second);
  }

  metrics_.publish_latency_us->Record(
      ElapsedMicros(started, std::chrono::steady_clock::now()));
  return summary;
}

size_t QueryService::subscription_count() const {
  std::lock_guard<std::mutex> lock(pub_mu_);
  return pubsub_.subscription_count();
}

void QueryService::ScheduleSubscriberLocked(
    const std::shared_ptr<Subscriber>& sub) {
  // A claimed subscriber re-checks its queue when the dispatcher
  // unclaims it, so it must not be queued twice.
  if (sub->queued || sub->claimed || sub->removed) return;
  sub->queued = true;
  dispatch_queue_.push_back(sub);
  dispatch_cv_.notify_one();
}

void QueryService::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(pub_mu_);
  for (;;) {
    dispatch_cv_.wait(lock,
                      [this] { return pub_stopping_ || !dispatch_queue_.empty(); });
    if (dispatch_queue_.empty()) {
      if (pub_stopping_) return;  // fully drained
      continue;
    }
    std::shared_ptr<Subscriber> sub = std::move(dispatch_queue_.front());
    dispatch_queue_.pop_front();
    sub->queued = false;
    if (sub->removed || sub->frames.empty()) continue;
    sub->claimed = true;
    std::deque<std::string> batch = std::move(sub->frames);
    sub->frames.clear();
    lock.unlock();

    metrics_.fanout_batch->Record(batch.size());
    uint64_t delivered = 0;
    uint64_t injected_drops = 0;
    for (const std::string& frame : batch) {
      bool dropped = false;
      XSQ_FAILPOINT("pubsub.fanout.fail", dropped = true);
      if (dropped) {
        ++injected_drops;
        continue;
      }
      sub->sink(frame);
      ++delivered;
    }
    if (delivered > 0) stats_.RecordEventsDelivered(delivered);
    if (injected_drops > 0) stats_.RecordFanoutShed(injected_drops);

    lock.lock();
    sub->claimed = false;
    if (sub->frames.empty()) {
      sub->shed_episode = false;  // drained: next overflow is a new episode
    } else {
      ScheduleSubscriberLocked(sub);  // frames arrived while delivering
    }
    unclaim_cv_.notify_all();
  }
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
    // Bound the drain: give every live session the drain deadline so a
    // wedged or adversarial evaluation aborts with kDeadlineExceeded
    // instead of wedging the join below. Sessions already released but
    // still held by a worker finish on their own (their queues are
    // bounded).
    if (config_.drain_deadline_ms > 0) {
      for (auto& [id, state] : sessions_) {
        state->session->SetDeadlineAfterMs(config_.drain_deadline_ms);
      }
    }
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // Pub/sub teardown: stop publishes, let the dispatchers drain every
  // queued EVENT frame, join them.
  {
    std::lock_guard<std::mutex> lock(pub_mu_);
    pub_stopping_ = true;
  }
  dispatch_cv_.notify_all();
  for (std::thread& dispatcher : dispatchers_) {
    if (dispatcher.joinable()) dispatcher.join();
  }
  dispatchers_.clear();
}

StatsSnapshot QueryService::stats() const {
  StatsSnapshot snap = stats_.Snapshot();
  snap.sessions_active = active_sessions();
  PlanCache::Counters cache = plan_cache_.counters();
  snap.plan_cache_hits = cache.hits;
  snap.plan_cache_misses = cache.misses;
  snap.plan_cache_evictions = cache.evictions;
  DocumentCache::Counters docs = doc_cache_.counters();
  snap.doc_cache_hits = docs.hits;
  snap.doc_cache_misses = docs.misses;
  snap.doc_cache_evictions = docs.evictions;
  snap.doc_cache_explicit_evictions = docs.explicit_evictions;
  snap.doc_cache_documents = docs.resident_documents;
  snap.doc_cache_bytes = docs.resident_bytes;
  return snap;
}

std::string QueryService::MetricsText() const {
  std::string out = registry_.RenderText();
  // The STATS counters re-exposed in the same format, `xsq_` prefixed,
  // so one METRICS scrape reconciles histograms against lifetime
  // counters and gauges.
  StatsSnapshot snap = stats();
  auto counter = [&out](const char* name, uint64_t value) {
    obs::Registry::AppendScalar(&out, name, "counter", value);
  };
  auto gauge = [&out](const char* name, uint64_t value) {
    obs::Registry::AppendScalar(&out, name, "gauge", value);
  };
  // Whether the per-phase hooks were compiled in; scrapers (and the
  // smoke test) use this to know if the phase histograms can populate.
#if XSQ_OBS_ENABLED
  gauge("xsq_obs_enabled", 1);
#else
  gauge("xsq_obs_enabled", 0);
#endif
  counter("xsq_sessions_opened", snap.sessions_opened);
  counter("xsq_sessions_rejected", snap.sessions_rejected);
  gauge("xsq_sessions_active", snap.sessions_active);
  counter("xsq_chunks_processed", snap.chunks_processed);
  counter("xsq_bytes_consumed", snap.bytes_consumed);
  counter("xsq_items_emitted", snap.items_emitted);
  counter("xsq_pushes_rejected", snap.pushes_rejected);
  gauge("xsq_queue_high_water", snap.queue_high_water);
  gauge("xsq_engine_buffered_bytes", snap.engine_buffered_bytes);
  counter("xsq_plan_cache_hits", snap.plan_cache_hits);
  counter("xsq_plan_cache_misses", snap.plan_cache_misses);
  counter("xsq_plan_cache_evictions", snap.plan_cache_evictions);
  counter("xsq_doc_cache_hits", snap.doc_cache_hits);
  counter("xsq_doc_cache_misses", snap.doc_cache_misses);
  counter("xsq_doc_cache_evictions", snap.doc_cache_evictions);
  counter("xsq_doc_cache_explicit_evictions",
          snap.doc_cache_explicit_evictions);
  gauge("xsq_doc_cache_documents", snap.doc_cache_documents);
  gauge("xsq_doc_cache_bytes", snap.doc_cache_bytes);
  counter("xsq_tape_replays", snap.tape_replays);
  counter("xsq_tape_events_replayed", snap.tape_events_replayed);
  counter("xsq_cancelled", snap.cancelled);
  counter("xsq_deadline_exceeded", snap.deadline_exceeded);
  counter("xsq_limit_rejected", snap.limit_rejected);
  counter("xsq_tape_corrupt", snap.tape_corrupt);
  counter("xsq_connections_accepted", snap.connections_accepted);
  counter("xsq_connections_shed", snap.connections_shed);
  counter("xsq_disconnect_cancels", snap.disconnect_cancels);
  counter("xsq_net_idle_closed", snap.net_idle_closed);
  counter("xsq_net_overrun_closed", snap.net_overrun_closed);
  gauge("xsq_subscriptions_active", snap.subscriptions_active);
  counter("xsq_publishes", snap.publishes);
  counter("xsq_events_delivered", snap.events_delivered);
  counter("xsq_fanout_shed", snap.fanout_shed);
  counter("xsq_repl_serves", snap.repl_serves);
  counter("xsq_repl_ingests", snap.repl_ingests);
  counter("xsq_repl_ingest_corrupt", snap.repl_ingest_corrupt);
  exemplars_.RenderComments(&out);
  return out;
}

void QueryService::MaybeLogSlowQuery(const SessionState& state,
                                     uint64_t elapsed_us) const {
  if (config_.slow_query_ms == 0) return;
  if (elapsed_us < static_cast<uint64_t>(config_.slow_query_ms) * 1000) return;
  Session::PhaseTotals phases = state.session->phase_totals();
  std::fprintf(stderr,
               "[xsq] slow query: %.1f ms total "
               "(parse %.1f ms, automaton %.1f ms, buffer %.1f ms) %s\n",
               static_cast<double>(elapsed_us) / 1e3,
               static_cast<double>(phases.parse_ns) / 1e6,
               static_cast<double>(phases.automaton_ns) / 1e6,
               static_cast<double>(phases.buffer_ns) / 1e6,
               state.session->query().ToString().c_str());
}

size_t QueryService::active_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

bool QueryService::HasSession(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.find(id) != sessions_.end();
}

}  // namespace xsq::service
