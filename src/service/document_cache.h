// DocumentCache: a thread-safe, bounded LRU cache of recorded event
// tapes, keyed by caller-chosen document name.
//
// The parse-once/replay-many companion of the PlanCache: where that
// cache amortizes query compilation across sessions, this one amortizes
// document parsing across queries. A tape recorded once (optionally
// projected down at record time) serves every session that ever queries
// the same document. Entries are shared_ptr<const Tape>, so an evicted
// tape stays valid for replays already holding it.
//
// Eviction is LRU, bounded two ways: by entry count (`capacity`) and by
// total resident bytes (`byte_budget`, Tape::memory_bytes summed). For
// both bounds 0 means unlimited. A single tape larger than the whole
// byte budget is admitted alone — rejecting it would make the cache
// silently useless for the one document the caller just paid to record.
#ifndef XSQ_SERVICE_DOCUMENT_CACHE_H_
#define XSQ_SERVICE_DOCUMENT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tape/tape.h"

namespace xsq::service {

class DocumentCache {
 public:
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;           // budget pressure (LRU) only
    uint64_t explicit_evictions = 0;  // caller-requested Evict() calls
    uint64_t resident_documents = 0;
    uint64_t resident_bytes = 0;
  };

  // `capacity` is the maximum number of cached tapes; `byte_budget`
  // bounds their summed memory_bytes. For both, 0 means unlimited.
  explicit DocumentCache(size_t capacity, size_t byte_budget = 0);

  DocumentCache(const DocumentCache&) = delete;
  DocumentCache& operator=(const DocumentCache&) = delete;

  // Returns the tape recorded under `name`, refreshing its recency, or
  // null on a miss.
  std::shared_ptr<const tape::Tape> Get(std::string_view name);

  // Inserts (or replaces) `name`'s tape and evicts LRU entries until
  // both bounds hold again. Replacement does not count as an eviction.
  void Put(std::string_view name, std::shared_ptr<const tape::Tape> tape);

  // Drops `name`'s entry; false if it was not resident. Counted in
  // `explicit_evictions`, not `evictions` (that counter measures budget
  // pressure), so the two can be reconciled independently.
  bool Evict(std::string_view name);

  // Returns `name`'s tape WITHOUT refreshing recency or touching the
  // hit/miss counters, or null on a miss. The replication plane reads
  // through this so shard-to-shard repair traffic never perturbs the
  // serving-path LRU order or its statistics.
  std::shared_ptr<const tape::Tape> Peek(std::string_view name) const;

  // Every resident entry, MRU first, recency and counters untouched.
  // The anti-entropy sweep's per-shard inventory.
  std::vector<std::pair<std::string, std::shared_ptr<const tape::Tape>>>
  Snapshot() const;

  Counters counters() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  size_t byte_budget() const { return byte_budget_; }

 private:
  struct Entry {
    std::string name;
    std::shared_ptr<const tape::Tape> tape;
    size_t bytes = 0;  // memory_bytes at insert, stable for accounting
  };

  // Requires mu_: pops LRU entries until count and byte bounds hold.
  void EvictToBoundsLocked();

  const size_t capacity_;
  const size_t byte_budget_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string_view, std::list<Entry>::iterator> index_;
  size_t resident_bytes_ = 0;
  Counters counters_;
};

}  // namespace xsq::service

#endif  // XSQ_SERVICE_DOCUMENT_CACHE_H_
