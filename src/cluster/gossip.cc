#include "cluster/gossip.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/crc32c.h"
#include "common/strings.h"

namespace xsq::cluster {

namespace {

// Health rank for the equal-epoch tie break: the worse state wins, so
// two routers that disagree at the same epoch both settle on the
// conservative answer (and the next local probe pass out-epochs it if
// the shard is actually fine).
int HealthRank(ShardHealth health) { return static_cast<int>(health); }

bool ParseHealthName(std::string_view name, ShardHealth* out) {
  static constexpr ShardHealth kAll[] = {
      ShardHealth::kServing, ShardHealth::kShedding, ShardHealth::kDraining,
      ShardHealth::kDead};
  for (ShardHealth health : kAll) {
    if (name == ShardHealthName(health)) {
      *out = health;
      return true;
    }
  }
  return false;
}

std::string_view TakeWord(std::string_view* rest) {
  size_t space = rest->find(' ');
  std::string_view word = rest->substr(0, space);
  *rest = space == std::string_view::npos ? std::string_view()
                                          : rest->substr(space + 1);
  return word;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    if (value > (UINT64_MAX - static_cast<uint64_t>(c - '0')) / 10) {
      return false;
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------
// GossipDigest: the merge algebra.

bool GossipDigest::Supersedes(const ShardEntry& incoming,
                              const ShardEntry& current) {
  if (incoming.epoch != current.epoch) return incoming.epoch > current.epoch;
  return HealthRank(incoming.health) > HealthRank(current.health);
}

bool GossipDigest::Supersedes(const KeyEntry& incoming,
                              const KeyEntry& current) {
  if (incoming.epoch != current.epoch) return incoming.epoch > current.epoch;
  // Equal epoch: the tombstone wins — never resurrect an evicted key
  // on a tie.
  return incoming.deleted && !current.deleted;
}

size_t GossipDigest::MergeFrom(
    const GossipDigest& other,
    const std::function<void(size_t, const ShardEntry&)>& on_shard,
    const std::function<void(const std::string&, const KeyEntry&)>& on_key) {
  size_t adopted = 0;
  size_t common = std::min(shards.size(), other.shards.size());
  for (size_t i = 0; i < common; ++i) {
    if (Supersedes(other.shards[i], shards[i])) {
      shards[i] = other.shards[i];
      ++adopted;
      if (on_shard) on_shard(i, shards[i]);
    }
  }
  for (const auto& [key, entry] : other.keys) {
    auto it = keys.find(key);
    if (it == keys.end()) {
      keys.emplace(key, entry);
      ++adopted;
      if (on_key) on_key(key, entry);
    } else if (Supersedes(entry, it->second)) {
      it->second = entry;
      ++adopted;
      if (on_key) on_key(key, entry);
    }
  }
  return adopted;
}

bool GossipDigest::operator==(const GossipDigest& other) const {
  if (shards.size() != other.shards.size()) return false;
  for (size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].epoch != other.shards[i].epoch ||
        shards[i].health != other.shards[i].health) {
      return false;
    }
  }
  if (keys.size() != other.keys.size()) return false;
  auto a = keys.begin();
  auto b = other.keys.begin();
  for (; a != keys.end(); ++a, ++b) {
    if (a->first != b->first || a->second.epoch != b->second.epoch ||
        a->second.deleted != b->second.deleted) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Wire form.

std::string GossipDigest::Serialize() const {
  std::string out = "XSQGOSSIP v1 shards=" + std::to_string(shards.size());
  out.push_back('\n');
  for (size_t i = 0; i < shards.size(); ++i) {
    out += "S " + std::to_string(i) + " " + std::to_string(shards[i].epoch) +
           " " + ShardHealthName(shards[i].health);
    out.push_back('\n');
  }
  for (const auto& [key, entry] : keys) {
    // RECORD names are arbitrary bytes; escape them so a newline or
    // backslash in a key cannot forge or split digest lines.
    out += "K " + std::to_string(entry.epoch) + " " +
           (entry.deleted ? "1" : "0") + " " + LineEscape(key);
    out.push_back('\n');
  }
  char crc[16];
  std::snprintf(crc, sizeof(crc), "CRC %08x", Crc32c(out));
  out += crc;
  out.push_back('\n');
  return out;
}

Result<GossipDigest> GossipDigest::Parse(std::string_view text) {
  // The CRC line covers every byte before it.
  size_t crc_pos = text.rfind("CRC ");
  if (crc_pos == std::string_view::npos ||
      (crc_pos != 0 && text[crc_pos - 1] != '\n')) {
    return Status::DataCorruption("gossip digest missing CRC trailer");
  }
  std::string_view crc_text = text.substr(crc_pos + 4);
  while (!crc_text.empty() &&
         (crc_text.back() == '\n' || crc_text.back() == '\r')) {
    crc_text.remove_suffix(1);
  }
  if (crc_text.size() != 8) {
    return Status::DataCorruption("gossip digest bad CRC field");
  }
  uint32_t stated = 0;
  for (char c : crc_text) {
    uint32_t nibble;
    if (c >= '0' && c <= '9') {
      nibble = static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      nibble = static_cast<uint32_t>(c - 'a') + 10;
    } else {
      return Status::DataCorruption("gossip digest bad CRC field");
    }
    stated = (stated << 4) | nibble;
  }
  if (Crc32c(text.substr(0, crc_pos)) != stated) {
    return Status::DataCorruption("gossip digest CRC mismatch");
  }

  GossipDigest digest;
  std::string_view body = text.substr(0, crc_pos);
  size_t shard_count = 0;
  bool seen_header = false;
  size_t begin = 0;
  while (begin < body.size()) {
    size_t end = body.find('\n', begin);
    if (end == std::string_view::npos) end = body.size();
    std::string_view line = body.substr(begin, end - begin);
    begin = end + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (!seen_header) {
      std::string_view rest = line;
      std::string_view magic = TakeWord(&rest);
      std::string_view version = TakeWord(&rest);
      std::string_view shards_field = TakeWord(&rest);
      if (magic != "XSQGOSSIP" || version != "v1" ||
          shards_field.rfind("shards=", 0) != 0) {
        return Status::ParseError("gossip digest bad header");
      }
      uint64_t n = 0;
      if (!ParseU64(shards_field.substr(7), &n) || n > 4096) {
        return Status::ParseError("gossip digest bad shard count");
      }
      shard_count = static_cast<size_t>(n);
      digest.shards.resize(shard_count);
      seen_header = true;
      continue;
    }
    std::string_view rest = line;
    std::string_view tag = TakeWord(&rest);
    if (tag == "S") {
      uint64_t index = 0;
      uint64_t epoch = 0;
      ShardHealth health;
      if (!ParseU64(TakeWord(&rest), &index) || index >= shard_count ||
          !ParseU64(TakeWord(&rest), &epoch) ||
          !ParseHealthName(TakeWord(&rest), &health) || !rest.empty()) {
        return Status::ParseError("gossip digest bad shard line");
      }
      digest.shards[static_cast<size_t>(index)] = ShardEntry{epoch, health};
    } else if (tag == "K") {
      uint64_t epoch = 0;
      std::string_view deleted = "?";
      if (!ParseU64(TakeWord(&rest), &epoch)) {
        return Status::ParseError("gossip digest bad key line");
      }
      deleted = TakeWord(&rest);
      if ((deleted != "0" && deleted != "1") || rest.empty()) {
        return Status::ParseError("gossip digest bad key line");
      }
      digest.keys[LineUnescape(rest)] = KeyEntry{epoch, deleted == "1"};
    } else {
      return Status::ParseError("gossip digest unknown line tag '" +
                                std::string(tag) + "'");
    }
  }
  if (!seen_header) return Status::ParseError("gossip digest empty");
  return digest;
}

std::string GossipDigest::EncodeWire() const { return LineEscape(Serialize()); }

Result<GossipDigest> GossipDigest::DecodeWire(std::string_view token) {
  return Parse(LineUnescape(token));
}

// ---------------------------------------------------------------------
// GossipAgent.

GossipAgent::GossipAgent(std::vector<Backend*> backends,
                         Replicator* replicator, GossipConfig config)
    : backends_(std::move(backends)),
      replicator_(replicator),
      config_(std::move(config)),
      jitter_state_(config_.jitter_seed) {
  digest_.shards.resize(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    digest_.shards[i] = {0, backends_[i]->health()};
  }
  for (const ShardAddress& peer : config_.peers) AddPeer(peer);
}

GossipAgent::~GossipAgent() { Stop(); }

void GossipAgent::Start() {
  std::lock_guard<std::mutex> lock(loop_mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void GossipAgent::Stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mu_);
    stopping_ = true;
  }
  loop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void GossipAgent::AddPeer(const ShardAddress& peer) {
  std::lock_guard<std::mutex> lock(peers_mu_);
  auto entry = std::make_unique<Peer>();
  entry->address = peer;
  peers_.push_back(std::move(entry));
}

size_t GossipAgent::peer_count() const {
  std::lock_guard<std::mutex> lock(peers_mu_);
  return peers_.size();
}

void GossipAgent::LocalObservation(size_t shard, ShardHealth health) {
  if (shard >= backends_.size()) return;
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    GossipDigest::ShardEntry& entry = digest_.shards[shard];
    if (entry.health != health) {
      // Local evidence out-epochs everything this router has seen for
      // the shard, so the observation wins every merge until a peer
      // observes something newer.
      entry.epoch += 1;
      entry.health = health;
    }
  }
  backends_[shard]->set_health(health);
}

void GossipAgent::NoteKey(std::string_view key) {
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    auto it = digest_.keys.find(std::string(key));
    if (it == digest_.keys.end()) {
      digest_.keys.emplace(std::string(key), GossipDigest::KeyEntry{1, false});
    } else if (it->second.deleted) {
      it->second.epoch += 1;
      it->second.deleted = false;
    }
    // A live re-RECORD is a no-op: the entry already says what the
    // cluster needs to know, and skipping the bump keeps digests stable.
  }
  // Keep the replication plane's key universe in step with the digest
  // (set insert is idempotent, so the router's own rf>=2 call is fine).
  replicator_->NoteKey(key);
}

void GossipAgent::ForgetKey(std::string_view key) {
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    auto it = digest_.keys.find(std::string(key));
    if (it == digest_.keys.end()) {
      // Tombstone an unknown key too: a peer may hold a live entry this
      // router never saw, and the eviction must still propagate.
      digest_.keys.emplace(std::string(key), GossipDigest::KeyEntry{1, true});
    } else if (!it->second.deleted) {
      it->second.epoch += 1;
      it->second.deleted = true;
    }
  }
  replicator_->ForgetKey(key);
}

size_t GossipAgent::MergeAndApply(const GossipDigest& remote) {
  size_t adopted = 0;
  {
    std::lock_guard<std::mutex> lock(digest_mu_);
    adopted = digest_.MergeFrom(
        remote,
        [this](size_t shard, const GossipDigest::ShardEntry& entry) {
          // Adopted remote observation: route by it until the local
          // prober learns something newer (which bumps the epoch).
          if (shard < backends_.size()) {
            backends_[shard]->set_health(entry.health);
          }
        },
        [this](const std::string& key, const GossipDigest::KeyEntry& entry) {
          // Keep the replication plane's key universe in step so a
          // surviving router repairs (and sweeps) keys it never saw
          // RECORDed.
          if (entry.deleted) {
            replicator_->ForgetKey(key);
          } else {
            replicator_->NoteKey(key);
          }
        });
  }
  if (adopted > 0) merges_.fetch_add(adopted, std::memory_order_relaxed);
  return adopted;
}

Result<GossipAgent::ExchangeReply> GossipAgent::HandleExchange(
    std::string_view wire_token) {
  XSQ_ASSIGN_OR_RETURN(GossipDigest remote,
                       GossipDigest::DecodeWire(wire_token));
  if (remote.shards.size() != backends_.size()) {
    return Status::InvalidArgument(
        "gossip topology mismatch: peer has " +
        std::to_string(remote.shards.size()) + " shards, this router has " +
        std::to_string(backends_.size()));
  }
  ExchangeReply reply;
  reply.adopted = MergeAndApply(remote);
  reply.wire = Snapshot().EncodeWire();
  return reply;
}

void GossipAgent::ExchangeNow() {
  // One serialized push-pull round over a stable snapshot of the
  // roster. Network I/O happens without digest_mu_ held; replies merge
  // as they arrive.
  std::lock_guard<std::mutex> round(round_mu_);
  size_t roster = peer_count();
  for (size_t i = 0; i < roster; ++i) {
    Peer* peer = nullptr;
    {
      std::lock_guard<std::mutex> lock(peers_mu_);
      if (i >= peers_.size()) break;
      peer = peers_[i].get();
      if (peer->client == nullptr) {
        net::ClientConfig client_config;
        client_config.host = peer->address.host;
        client_config.port = peer->address.port;
        client_config.connect_timeout_ms = config_.connect_timeout_ms;
        client_config.request_timeout_ms = config_.request_timeout_ms;
        client_config.max_retries = 0;  // the next round is the retry
        peer->client = std::make_unique<net::Client>(client_config);
      }
    }
    // round_mu_ serializes all use of peer->client beyond this point.
    std::string wire = Snapshot().EncodeWire();
    Result<net::Response> response = peer->client->Request("GOSSIP " + wire);
    bool exchanged = false;
    if (response.ok() && response->status.ok()) {
      for (const std::string& line : response->lines) {
        if (line.rfind("DIGEST ", 0) != 0) continue;
        Result<GossipDigest> remote =
            GossipDigest::DecodeWire(std::string_view(line).substr(7));
        if (remote.ok() && remote->shards.size() == backends_.size()) {
          MergeAndApply(*remote);
          exchanged = true;
        }
        break;
      }
    }
    std::lock_guard<std::mutex> lock(peers_mu_);
    if (exchanged) {
      peer->consecutive_failures = 0;
      if (peer->down) {
        peer->down = false;
        peers_down_.fetch_sub(1, std::memory_order_relaxed);
      }
    } else {
      peer->client->Close();
      if (++peer->consecutive_failures >= config_.peer_fail_threshold &&
          !peer->down) {
        peer->down = true;
        peer_down_.fetch_add(1, std::memory_order_relaxed);
        peers_down_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
}

void GossipAgent::Loop() {
  for (;;) {
    uint64_t wait_ms;
    {
      std::unique_lock<std::mutex> lock(loop_mu_);
      wait_ms = net::JitterIntervalMs(config_.interval_ms, &jitter_state_);
      loop_cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                        [this] { return stopping_; });
      if (stopping_) return;
    }
    ExchangeNow();
  }
}

GossipDigest GossipAgent::Snapshot() const {
  std::lock_guard<std::mutex> lock(digest_mu_);
  return digest_;
}

GossipAgent::Counters GossipAgent::counters() const {
  Counters out;
  out.rounds = rounds_.load(std::memory_order_relaxed);
  out.merges = merges_.load(std::memory_order_relaxed);
  out.peer_down = peer_down_.load(std::memory_order_relaxed);
  out.peers_down = peers_down_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace xsq::cluster
