// Replicator: the router's asynchronous replication plane.
//
// With replication factor rf >= 2, every document tape lives on the
// key's primary ring owner AND the next rf-1 distinct live owners met
// walking the ring clockwise (ShardMap::Owners). The walk order is the
// failover order: when the primary dies, Owner() under the new mask is
// exactly the first replica, so reads keep landing on a shard that
// already holds the tape — no client re-record, byte-identical replay.
//
// Two kinds of jobs flow through one bounded queue:
//
//   fanout   RECORD accepted by the primary -> replay the full RECORD
//            line to each remaining owner. The queue entry carries the
//            wire line itself, so a fanout enqueued before the primary
//            died still delivers the bytes to the surviving replica —
//            the queue doubles as the durability buffer for the
//            ack-to-replica window.
//   repair   anti-entropy found an owner missing the tape -> send it
//            "REPLPULL <key> <host>:<port>" naming a live holder; the
//            target pulls the tape shard-to-shard and CRC-verifies it
//            on ingest.
//
// Worker threads drain the queue with per-target in-flight caps (a
// slow shard cannot monopolize the workers), bounded retries with
// exponential backoff, and a failpoint ("cluster.repl.fail") at the
// send site so fault-injection tests can exercise the retry path.
// Jobs are deduplicated per (key, target) while queued; a re-enqueue
// of a queued pair replaces its wire line, so a re-RECORD supersedes
// the stale bytes instead of racing them.
//
// Anti-entropy (SweepNow): build the key universe from the router's
// key index UNION every live shard's REPLSTATUS inventory (so
// documents recorded before a router restart are still repairable),
// compute each key's owner set under the current liveness mask, and
// enqueue a repair for every owner that is missing the tape, sourcing
// from any live holder. The router triggers a sweep (RequestSweep)
// after every health-probe pass that changed the liveness mask.
//
// Determinism hooks for tests and benches: construct with
// start_workers=false to freeze the queue (jobs accumulate, nothing
// sends), Start() to release it, SweepNow() for a synchronous sweep,
// WaitIdle() to block until the plane has fully drained.
#ifndef XSQ_CLUSTER_REPLICATION_H_
#define XSQ_CLUSTER_REPLICATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/shard_map.h"
#include "common/status.h"

namespace xsq::cluster {

struct ReplicationConfig {
  // Copies of every tape, primary included. 1 = replication off: the
  // router behaves byte-for-byte like the pre-replication tier.
  size_t factor = 1;
  // Queued jobs beyond this are dropped (counted failed); the sweep
  // re-detects and re-enqueues what mattered.
  size_t max_queue = 4096;
  // Concurrent sends per target shard.
  size_t max_inflight_per_shard = 2;
  // Send attempts per job before it is dropped (counted failed).
  int max_attempts = 4;
  // Base retry backoff; doubles per attempt.
  uint64_t retry_backoff_ms = 25;
  size_t worker_threads = 2;
  // Start worker + sweep threads immediately. Tests freeze the fanout
  // queue with false and release it later with Start().
  bool start_workers = true;
};

class Replicator {
 public:
  // `map` and `backends` outlive the replicator (both owned by the
  // Router that owns this).
  Replicator(const ShardMap* map, std::vector<Backend*> backends,
             ReplicationConfig config);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  void Start();
  void Stop();

  // --- key index ------------------------------------------------------
  // Records that `key` exists in the cluster (RECORD accepted). The
  // index seeds the sweep universe; it is advisory, not authoritative —
  // sweeps also learn keys from shard inventories.
  void NoteKey(std::string_view key);
  // EVICT accepted: stop repairing this key.
  void ForgetKey(std::string_view key);
  size_t known_keys() const;

  // --- jobs -----------------------------------------------------------
  // Replay `record_line` (a full "RECORD <key> <bytes>" wire line) to
  // shard `target`.
  void EnqueueFanout(std::string_view key, size_t target,
                     std::string_view record_line);
  // Tell shard `target` to pull `key`'s tape from `source`.
  void EnqueueRepair(std::string_view key, size_t target,
                     const ShardAddress& source);

  // --- anti-entropy ---------------------------------------------------
  // Asynchronous: the sweep thread runs SweepNow soon. Cheap enough to
  // call from the health prober's pass callback.
  void RequestSweep();
  // One synchronous sweep pass (see header comment). Safe from any
  // thread; serialized with the sweep thread.
  void SweepNow();

  // Blocks until the queue is empty, nothing is in flight, and no
  // sweep is pending or running. False on timeout.
  bool WaitIdle(uint64_t timeout_ms = 10000);

  struct Counters {
    uint64_t pending = 0;   // queued + in flight right now
    uint64_t repaired = 0;  // jobs delivered (fanouts + repairs)
    uint64_t failed = 0;    // jobs dropped after max_attempts / overflow
    uint64_t fanouts = 0;   // fanout jobs enqueued
    uint64_t sweeps = 0;    // anti-entropy passes completed
  };
  Counters counters() const;

  size_t factor() const { return config_.factor; }

 private:
  struct Job {
    std::string key;
    size_t target = 0;
    std::string line;  // the wire line to send to `target`
    int attempts = 0;
    std::chrono::steady_clock::time_point due;
  };

  void EnqueueJob(std::string_view key, size_t target, std::string line);
  // True when the job's reply was "OK ..." (failpoint and transport
  // failures and ERR replies all count as failures and retry).
  bool SendJob(const Job& job);
  // The sweep body (serialized by sweep_serial_mu_; no mu_ held).
  void SweepPass();
  void WorkerLoop();
  void SweepLoop();
  bool IdleLocked() const;

  const ShardMap* const map_;
  const std::vector<Backend*> backends_;
  const ReplicationConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;       // workers: job became available
  std::condition_variable idle_cv_;  // WaitIdle waiters
  std::deque<Job> queue_;
  std::vector<size_t> inflight_;  // per target shard
  size_t inflight_total_ = 0;
  std::vector<std::string> keys_;  // sorted unique key index
  bool stopping_ = false;
  bool sweep_requested_ = false;
  int active_sweeps_ = 0;

  std::condition_variable sweep_cv_;
  std::mutex sweep_serial_mu_;  // serializes SweepNow passes

  std::atomic<uint64_t> repaired_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> fanouts_{0};
  std::atomic<uint64_t> sweeps_{0};

  std::vector<std::thread> workers_;
  std::thread sweep_thread_;
};

}  // namespace xsq::cluster

#endif  // XSQ_CLUSTER_REPLICATION_H_
