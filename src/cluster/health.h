// HealthProber: active health checking for the shard roster.
//
// A background thread polls every shard's GET /healthz on a fixed
// cadence and flips the Backend health flag the router routes by:
//
//   200 "ok"        -> kServing    full member of the ring
//   503 "shedding"  -> kShedding   reachable but at capacity
//   503 "draining"  -> kDraining   shutting down, listener closed
//   probe failure   -> kDead after fail_threshold consecutive misses
//
// The shard serves these probes even while load-shedding protocol
// connections (net::Server defers the shed decision past the HTTP
// sniff precisely so this prober can tell "busy" from "down"), so a
// failed probe really means unreachable, not merely saturated. One
// successful probe resurrects a dead shard — the ring heals itself
// when a shard comes back.
//
// Ring rebalancing is implicit and non-disruptive: health lives in an
// atomic on the Backend, ownership is computed per request against the
// current mask (ShardMap::Owner), and nothing in flight is touched
// when the mask changes. A dead shard's keys remap within one probe
// interval (plus the threshold's worth of misses); every other
// shard's keys never move.
//
// When scrape_metrics is set the prober also fetches GET /metrics
// from reachable shards and caches the last good exposition text per
// shard, giving the router's merged cluster view a stale-but-present
// fallback for shards that drop out mid-scrape.
#ifndef XSQ_CLUSTER_HEALTH_H_
#define XSQ_CLUSTER_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/backend_pool.h"
#include "common/status.h"

namespace xsq::cluster {

// A one-shot HTTP/1.0 GET, used for /healthz and /metrics probes.
struct HttpProbeResult {
  int code = 0;
  std::string body;
};
Result<HttpProbeResult> HttpGet(const ShardAddress& address,
                                std::string_view path, uint64_t timeout_ms);

struct ProbeConfig {
  uint64_t interval_ms = 500;
  uint64_t timeout_ms = 1000;
  // Consecutive probe failures before a shard is marked dead.
  int fail_threshold = 3;
  bool scrape_metrics = true;
};

class HealthProber {
 public:
  // Backends outlive the prober; their health flags are its output.
  HealthProber(std::vector<Backend*> backends, ProbeConfig config);
  ~HealthProber();

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  void Start();
  void Stop();

  // One synchronous pass over every shard, callable with or without
  // the background thread running. Tests and benches use this to make
  // health transitions deterministic instead of sleeping.
  void ProbeNow();

  // Completed probe passes (background + ProbeNow).
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

  // Installs a callback invoked at the end of every probe pass with
  // whether the pass changed any shard's alive/dead bit (the first
  // pass always reports a change). Called from the probing thread with
  // the pass lock held — keep it cheap (set a flag, poke a cv). Must
  // be installed before Start().
  void set_on_pass(std::function<void(bool mask_changed)> on_pass) {
    on_pass_ = std::move(on_pass);
  }

  // The last successfully scraped /metrics text of shard `i` (empty
  // until the first good scrape).
  std::string last_metrics(size_t i) const;

 private:
  void Loop();
  void ProbeShard(size_t i);

  const std::vector<Backend*> backends_;
  const ProbeConfig config_;

  std::vector<int> consecutive_failures_;  // probe thread only
  std::vector<bool> last_alive_;           // guarded by probe_mu_
  std::function<void(bool)> on_pass_;      // set before Start()

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::vector<std::string> last_metrics_;  // guarded by mu_
  std::mutex probe_mu_;                    // serializes probe passes
  std::atomic<uint64_t> passes_{0};
  std::thread thread_;
};

}  // namespace xsq::cluster

#endif  // XSQ_CLUSTER_HEALTH_H_
