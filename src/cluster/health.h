// HealthProber: active health checking for the shard roster.
//
// A background thread polls every shard's GET /healthz on a jittered
// cadence (±20% of interval_ms, so several routers probing the same
// shards decorrelate instead of storming them in lockstep) and flips
// the Backend health flag the router routes by:
//
//   200 "ok"        -> kServing    full member of the ring
//   503 "shedding"  -> kShedding   reachable but at capacity
//   503 "draining"  -> kDraining   shutting down, listener closed
//   probe failure   -> kDead after fail_threshold consecutive misses
//
// The shard serves these probes even while load-shedding protocol
// connections (net::Server defers the shed decision past the HTTP
// sniff precisely so this prober can tell "busy" from "down"), so a
// failed probe really means unreachable, not merely saturated.
// Resurrection is hysteretic: a dead shard rejoins the ring only after
// rise_threshold consecutive good probes (mirroring fail_threshold on
// the way down), so a flapping shard cannot thrash the ring — its keys
// stay parked on the stable failover owner until the shard proves
// itself. The default rise_threshold of 1 preserves the historical
// one-good-probe heal.
//
// Ring rebalancing is implicit and non-disruptive: health lives in an
// atomic on the Backend, ownership is computed per request against the
// current mask (ShardMap::Owner), and nothing in flight is touched
// when the mask changes. A dead shard's keys remap within one probe
// interval (plus the threshold's worth of misses); every other
// shard's keys never move.
//
// When scrape_metrics is set the prober also fetches GET /metrics
// from reachable shards and caches the last good exposition text per
// shard, giving the router's merged cluster view a stale-but-present
// fallback for shards that drop out mid-scrape.
#ifndef XSQ_CLUSTER_HEALTH_H_
#define XSQ_CLUSTER_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/backend_pool.h"
#include "common/status.h"

namespace xsq::cluster {

// A one-shot HTTP/1.0 GET, used for /healthz and /metrics probes.
struct HttpProbeResult {
  int code = 0;
  std::string body;
};
Result<HttpProbeResult> HttpGet(const ShardAddress& address,
                                std::string_view path, uint64_t timeout_ms);

struct ProbeConfig {
  uint64_t interval_ms = 500;
  uint64_t timeout_ms = 1000;
  // Consecutive probe failures before a shard is marked dead.
  int fail_threshold = 3;
  // Consecutive probe successes before a DEAD shard rejoins the ring
  // (anti-flap hysteresis). 1 = the historical instant resurrection.
  // Health transitions among the reachable states (serving/shedding/
  // draining) stay immediate — hysteresis only guards the dead->alive
  // edge that remaps keys.
  int rise_threshold = 1;
  bool scrape_metrics = true;
  // Seed for the deterministic ±20% cadence jitter (net::JitterIntervalMs).
  uint64_t jitter_seed = 0x5851f42d4c957f2dull;
};

class HealthProber {
 public:
  // Backends outlive the prober; their health flags are its output.
  HealthProber(std::vector<Backend*> backends, ProbeConfig config);
  ~HealthProber();

  HealthProber(const HealthProber&) = delete;
  HealthProber& operator=(const HealthProber&) = delete;

  void Start();
  void Stop();

  // One synchronous pass over every shard, callable with or without
  // the background thread running. Tests and benches use this to make
  // health transitions deterministic instead of sleeping.
  void ProbeNow();

  // Completed probe passes (background + ProbeNow).
  uint64_t passes() const { return passes_.load(std::memory_order_relaxed); }

  // Installs a callback invoked at the end of every probe pass with
  // whether the pass changed any shard's alive/dead bit (the first
  // pass always reports a change). Called from the probing thread with
  // the pass lock held — keep it cheap (set a flag, poke a cv). Must
  // be installed before Start().
  void set_on_pass(std::function<void(bool mask_changed)> on_pass) {
    on_pass_ = std::move(on_pass);
  }

  // Redirects health writes: when installed, every resolved probe
  // observation goes through `apply` instead of straight to
  // Backend::set_health. The gossip layer installs this so a local
  // transition bumps the shard's epoch before the flag flips (the
  // callback itself applies the health). Must be installed before
  // Start().
  void set_apply(std::function<void(size_t shard, ShardHealth health)> apply) {
    apply_ = std::move(apply);
  }

  // The last successfully scraped /metrics text of shard `i` (empty
  // until the first good scrape).
  std::string last_metrics(size_t i) const;

 private:
  void Loop();
  void ProbeShard(size_t i);
  void Apply(size_t i, ShardHealth health);

  const std::vector<Backend*> backends_;
  const ProbeConfig config_;

  std::vector<int> consecutive_failures_;   // probe thread only
  std::vector<int> consecutive_successes_;  // probe thread only
  std::vector<bool> last_alive_;            // guarded by probe_mu_
  std::function<void(bool)> on_pass_;       // set before Start()
  std::function<void(size_t, ShardHealth)> apply_;  // set before Start()
  uint64_t jitter_state_;                   // loop thread only

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::vector<std::string> last_metrics_;  // guarded by mu_
  std::mutex probe_mu_;                    // serializes probe passes
  std::atomic<uint64_t> passes_{0};
  std::thread thread_;
};

}  // namespace xsq::cluster

#endif  // XSQ_CLUSTER_HEALTH_H_
