// ShardMap: consistent hashing with virtual nodes over document keys.
//
// The cluster places a document's tape on exactly one shard: the owner
// of its key. Ownership must be (a) stable — RECORD and the RUNCACHED
// that follows must agree on the shard without any coordination — and
// (b) minimally disrupted by membership changes: when one shard dies,
// only ITS keys may move, everything else stays put. Consistent
// hashing gives exactly that: each shard projects `vnodes` points onto
// a 64-bit ring, a key is owned by the first shard point at or after
// its own hash, and a non-serving shard is simply skipped during the
// walk — its keys fall through to the next point, which belongs to a
// healthy shard, while keys owned by healthy shards never move.
//
// The ring is immutable after construction (the shard roster is fixed
// at router start); liveness is an input to Owner(), not ring state,
// so health flips never rebuild anything and in-flight requests racing
// a flip just see one mask or the other.
#ifndef XSQ_CLUSTER_SHARD_MAP_H_
#define XSQ_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace xsq::cluster {

class ShardMap {
 public:
  // `shard_count` shards, `vnodes` ring points each. More vnodes
  // smooth the key distribution (and the re-spread of a dead shard's
  // keys across the survivors) at the cost of ring size.
  explicit ShardMap(size_t shard_count, size_t vnodes = 64);

  size_t shard_count() const { return shard_count_; }

  // The shard owning `key` among shards with serving[i] true.
  // `serving` must have shard_count entries. Returns nullopt when no
  // shard is serving.
  std::optional<size_t> Owner(std::string_view key,
                              const std::vector<bool>& serving) const;

  // Owner with every shard serving (the steady-state answer).
  std::optional<size_t> Owner(std::string_view key) const;

  // The replicated owner set: the primary plus the next rf-1 DISTINCT
  // serving shards met walking the ring clockwise from the key's hash,
  // in walk order (front() == Owner()). Fewer than rf serving shards
  // returns them all; no serving shard returns empty. The walk-order
  // property is what makes failover deterministic: when owners[0]
  // dies, Owner() under the new mask is exactly owners[1].
  std::vector<size_t> Owners(std::string_view key, size_t rf,
                             const std::vector<bool>& serving) const;

  // The stable 64-bit key hash (FNV-1a); exposed for tests that want
  // to reason about ring placement.
  static uint64_t HashKey(std::string_view key);

 private:
  struct Point {
    uint64_t hash;
    uint32_t shard;
  };

  size_t shard_count_;
  std::vector<Point> ring_;  // sorted by hash
};

}  // namespace xsq::cluster

#endif  // XSQ_CLUSTER_SHARD_MAP_H_
