#include "cluster/router.h"

#include <algorithm>
#include <set>

namespace xsq::cluster {

namespace {

// "PUSH 7 <rest>" -> id text "7", rest "<rest>".
std::string_view TakeWord(std::string_view* rest) {
  size_t space = rest->find(' ');
  std::string_view word = rest->substr(0, space);
  *rest = space == std::string_view::npos ? std::string_view()
                                          : rest->substr(space + 1);
  return word;
}

std::optional<uint64_t> ParseId(std::string_view text) {
  if (text.empty()) return std::nullopt;
  uint64_t id = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<uint64_t>(c - '0');
  }
  return id;
}

void Reply(std::string* out, std::string_view line) {
  out->append(line);
  out->push_back('\n');
}

// Re-emits a decoded backend reply block verbatim: payload lines, then
// the OK/ERR terminator reconstructed from the decoded status.
void RelayReply(std::string* out, const net::Response& response) {
  for (const std::string& line : response.lines) Reply(out, line);
  if (response.status.ok()) {
    if (response.ok_payload.empty()) {
      Reply(out, "OK");
    } else {
      Reply(out, "OK " + response.ok_payload);
    }
  } else {
    Reply(out, "ERR " + response.status.ToString());
  }
}

// A transport-level failure (no reply from the shard) rendered in the
// protocol's error grammar.
void ReplyTransportError(std::string* out, const Status& status) {
  Reply(out, "ERR " + status.ToString());
}

}  // namespace

// ---------------------------------------------------------------------
// RouterHandler: one client connection's view of the cluster.

class RouterHandler : public net::ConnectionHandler {
 public:
  explicit RouterHandler(Router* router)
      : router_(router), leases_(router->shard_count()) {}

  ~RouterHandler() override {
    // Leases close here (after the last worker touching them is done);
    // each shard sees a disconnect and cancels + releases everything
    // the lease opened. Registry entries were removed by ReleaseAll.
    leases_.clear();
  }

  bool HandleLine(std::string_view line, std::string* out) override;

  size_t CancelAll() override {
    // Poll-thread context: must not block on the network. Bindings are
    // copied into the router's cancel queue and sent by its
    // maintenance thread over pooled connections (CANCEL works from
    // any connection), which unblocks a worker stuck mid-CLOSE on the
    // lease within one cancel-check interval.
    std::lock_guard<std::mutex> lock(mu_);
    for (uint64_t id : session_ids_) router_->EnqueueCancel(id);
    return session_ids_.size();
  }

  void ReleaseAll() override {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    for (uint64_t id : session_ids_) router_->RemoveSession(id);
    session_ids_.clear();
  }

 private:
  // The dedicated session connection to `shard`, connected on demand.
  // Worker-thread only (one worker per connection at a time).
  Result<net::Client*> Lease(size_t shard);
  // The lease to `shard` failed at the transport level: the shard saw
  // a disconnect and dropped every session opened on it. Invalidate
  // the RUNCACHED bindings so they reopen on next use.
  void DropLease(size_t shard);

  bool OwnsSession(uint64_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return session_ids_.count(id) != 0;
  }

  void HandleOpen(std::string_view query, std::string* out);
  void HandleForward(uint64_t id, std::string_view verb,
                     std::string_view rest, std::string* out);
  void HandleClose(uint64_t id, std::string* out);
  void HandleRunCached(uint64_t id, std::string_view name, std::string* out);

  Router* router_;
  std::vector<std::unique_ptr<net::Client>> leases_;  // by shard

  mutable std::mutex mu_;  // session_ids_ + released_ (poll thread reads)
  std::set<uint64_t> session_ids_;
  bool released_ = false;
};

Result<net::Client*> RouterHandler::Lease(size_t shard) {
  if (leases_[shard] == nullptr) {
    XSQ_ASSIGN_OR_RETURN(leases_[shard],
                         router_->backend(shard)->LeaseExclusive());
  }
  return leases_[shard].get();
}

void RouterHandler::DropLease(size_t shard) {
  leases_[shard] = nullptr;
  std::vector<uint64_t> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.assign(session_ids_.begin(), session_ids_.end());
  }
  for (uint64_t id : ids) {
    std::optional<Router::SessionRecord> record = router_->FindSession(id);
    if (!record.has_value()) continue;
    // Primary bindings stay: the session state is genuinely lost and
    // later PUSH/CLOSE must surface that, not silently reopen.
    if (record->primary_shard != shard) {
      router_->RemoveBinding(id, shard);
    }
  }
}

void RouterHandler::HandleOpen(std::string_view query, std::string* out) {
  Result<size_t> shard = router_->PickSessionShard();
  if (!shard.ok()) {
    ReplyTransportError(out, shard.status());
    return;
  }
  Result<net::Client*> lease = Lease(*shard);
  if (!lease.ok()) {
    ReplyTransportError(out, lease.status());
    return;
  }
  Result<net::Response> response =
      (*lease)->Request("OPEN " + std::string(query));
  if (!response.ok()) {
    DropLease(*shard);
    ReplyTransportError(out, response.status());
    return;
  }
  if (!response->status.ok()) {
    RelayReply(out, *response);
    return;
  }
  uint64_t router_id = router_->RegisterSession(std::string(query), *shard,
                                                response->ok_payload);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (released_) {
      // Torn down while we were opening; the registry entry must not
      // outlive the connection.
      router_->RemoveSession(router_id);
      return;
    }
    session_ids_.insert(router_id);
  }
  router_->sessions_opened_.fetch_add(1, std::memory_order_relaxed);
  Reply(out, "OK " + std::to_string(router_id));
}

void RouterHandler::HandleForward(uint64_t id, std::string_view verb,
                                  std::string_view rest, std::string* out) {
  std::optional<Router::SessionRecord> record = router_->FindSession(id);
  if (!record.has_value() || !OwnsSession(id)) {
    Reply(out, "ERR InvalidArgument: unknown session id " +
                   std::to_string(id));
    return;
  }
  auto binding = record->bindings.find(record->primary_shard);
  if (binding == record->bindings.end()) {
    Reply(out, "ERR Internal: session has no primary binding");
    return;
  }
  Result<net::Client*> lease = Lease(record->primary_shard);
  if (!lease.ok()) {
    ReplyTransportError(out, lease.status());
    return;
  }
  std::string wire = std::string(verb) + " " + binding->second;
  if (!rest.empty()) {
    wire += ' ';
    wire.append(rest);
  }
  Result<net::Response> response = (*lease)->Request(wire);
  if (!response.ok()) {
    DropLease(record->primary_shard);
    ReplyTransportError(out, response.status());
    return;
  }
  RelayReply(out, *response);
}

void RouterHandler::HandleClose(uint64_t id, std::string* out) {
  std::optional<Router::SessionRecord> record = router_->FindSession(id);
  if (!record.has_value() || !OwnsSession(id)) {
    Reply(out, "ERR InvalidArgument: unknown session id " +
                   std::to_string(id));
    return;
  }
  // Close the RUNCACHED bindings first (their replies are empty-buffer
  // finalizations the client never asked to see), then the primary,
  // whose reply block — items, AGG, terminator — is the client's.
  for (const auto& [shard, backend_id] : record->bindings) {
    if (shard == record->primary_shard) continue;
    Result<net::Client*> lease = Lease(shard);
    if (!lease.ok()) continue;
    Result<net::Response> discard =
        (*lease)->Request("CLOSE " + backend_id);
    if (!discard.ok()) DropLease(shard);
  }
  auto primary = record->bindings.find(record->primary_shard);
  if (primary == record->bindings.end()) {
    Reply(out, "ERR Internal: session has no primary binding");
    return;
  }
  Result<net::Client*> lease = Lease(record->primary_shard);
  if (!lease.ok()) {
    router_->RemoveSession(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      session_ids_.erase(id);
    }
    ReplyTransportError(out, lease.status());
    return;
  }
  Result<net::Response> response =
      (*lease)->Request("CLOSE " + primary->second);
  router_->RemoveSession(id);
  {
    std::lock_guard<std::mutex> lock(mu_);
    session_ids_.erase(id);
  }
  if (!response.ok()) {
    DropLease(record->primary_shard);
    ReplyTransportError(out, response.status());
    return;
  }
  RelayReply(out, *response);
}

void RouterHandler::HandleRunCached(uint64_t id, std::string_view name,
                                    std::string* out) {
  std::optional<Router::SessionRecord> record = router_->FindSession(id);
  if (!record.has_value() || !OwnsSession(id)) {
    Reply(out, "ERR InvalidArgument: unknown session id " +
                   std::to_string(id));
    return;
  }
  // RUNCACHED is idempotent: fail over across ring owners on transport
  // failure. An ERR reply (e.g. document not resident after a remap)
  // is relayed — the client re-RECORDs and retries, exactly as against
  // a single node that lost its cache. With rf >= 2 there is one more
  // failover trigger: a "document not recorded" miss from one owner,
  // because the next ring owner holds a replica of the tape.
  std::vector<bool> mask = router_->AliveMask();
  Status last = Status::ResourceExhausted("no live shard owns '" +
                                          std::string(name) + "'");
  std::optional<net::Response> missed;   // first miss reply, relayed
                                         // verbatim if every owner misses
  std::vector<size_t> missed_shards;     // read-repair targets
  for (int attempt = 0; attempt <= router_->config_.max_failover_attempts;
       ++attempt) {
    std::optional<size_t> owner = router_->shard_map().Owner(name, mask);
    if (!owner.has_value()) break;
    // Bind this session on the owner shard if it is not yet there.
    record = router_->FindSession(id);
    if (!record.has_value()) {
      Reply(out, "ERR InvalidArgument: unknown session id " +
                     std::to_string(id));
      return;
    }
    std::string backend_id;
    auto binding = record->bindings.find(*owner);
    if (binding != record->bindings.end()) {
      backend_id = binding->second;
    } else {
      Result<net::Client*> lease = Lease(*owner);
      if (!lease.ok()) {
        last = lease.status();
        mask[*owner] = false;
        router_->failovers_total_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Result<net::Response> opened =
          (*lease)->Request("OPEN " + record->query);
      if (!opened.ok()) {
        DropLease(*owner);
        last = opened.status();
        mask[*owner] = false;
        router_->failovers_total_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!opened->status.ok()) {
        RelayReply(out, *opened);  // shard answered: not a failover case
        return;
      }
      backend_id = opened->ok_payload;
      router_->AddBinding(id, *owner, backend_id);
    }
    Result<net::Client*> lease = Lease(*owner);
    if (!lease.ok()) {
      last = lease.status();
      mask[*owner] = false;
      router_->failovers_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Result<net::Response> response =
        (*lease)->Request("RUNCACHED " + backend_id + " " +
                          std::string(name));
    if (!response.ok()) {
      DropLease(*owner);
      router_->RemoveBinding(id, *owner);
      last = response.status();
      mask[*owner] = false;
      router_->failovers_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (router_->replication_factor() >= 2 && !response->status.ok() &&
        response->status.code() == StatusCode::kInvalidArgument &&
        response->status.message().rfind("document not recorded", 0) == 0) {
      // Replica failover: this owner lost (or never received) the
      // tape; the next owner in walk order has a copy. Keep the miss
      // reply so an all-owners miss relays it byte-identically.
      if (!missed.has_value()) missed = *response;
      missed_shards.push_back(*owner);
      mask[*owner] = false;
      router_->failovers_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (response->status.ok() && !missed_shards.empty()) {
      // Read repair: the replica that served is the freshest live
      // holder; push its copy back to the owners that missed.
      for (size_t shard : missed_shards) {
        router_->replicator()->EnqueueRepair(
            name, shard, router_->backend(*owner)->address());
      }
    }
    // The replay (successful or not) ran on the owner shard's backend
    // session, so that is where the session's document state now lives.
    // Re-home the primary so a later CLOSE finalizes there instead of
    // closing a never-pushed session on the original shard.
    router_->PromotePrimary(id, *owner);
    RelayReply(out, *response);
    return;
  }
  if (missed.has_value()) {
    // Every reachable owner missed: the cluster genuinely does not
    // hold the tape. Same reply a single node would give.
    RelayReply(out, *missed);
    return;
  }
  ReplyTransportError(out, last);
}

bool RouterHandler::HandleLine(std::string_view input, std::string* out) {
  if (!input.empty() && input.back() == '\r') input.remove_suffix(1);
  router_->requests_total_.fetch_add(1, std::memory_order_relaxed);
  std::string_view rest = input;
  std::string_view command = TakeWord(&rest);

  if (command == "QUIT") {
    Reply(out, "OK");
    return false;
  } else if (command == "OPEN") {
    HandleOpen(rest, out);
  } else if (command == "PUSH" || command == "DRAIN") {
    std::optional<uint64_t> id = ParseId(TakeWord(&rest));
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else {
      HandleForward(*id, command, rest, out);
    }
  } else if (command == "CLOSE") {
    std::optional<uint64_t> id = ParseId(TakeWord(&rest));
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else {
      HandleClose(*id, out);
    }
  } else if (command == "RUNCACHED") {
    std::optional<uint64_t> id = ParseId(TakeWord(&rest));
    std::string_view name = TakeWord(&rest);
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else if (name.empty()) {
      Reply(out, "ERR InvalidArgument: missing document name");
    } else {
      HandleRunCached(*id, name, out);
    }
  } else if (command == "CANCEL") {
    std::optional<uint64_t> id = ParseId(TakeWord(&rest));
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else {
      // Cross-connection by design, like single-node CANCEL: routed
      // over pooled connections, not this connection's leases.
      Status status = router_->CancelSession(*id);
      if (status.ok()) {
        Reply(out, "OK");
      } else {
        Reply(out, "ERR " + status.ToString());
      }
    }
  } else if (command == "RECORD") {
    std::string_view name = TakeWord(&rest);
    if (name.empty()) {
      Reply(out, "ERR InvalidArgument: missing document name");
    } else {
      // The primary write is synchronous (the client's ACK means the
      // owner holds the tape); replica copies ride the replication
      // queue, which buffers the full RECORD line so the window
      // between ACK and fan-out survives a primary crash.
      size_t answered = 0;
      Result<net::Response> response =
          router_->OwnerRequest(name, input, &answered);
      if (!response.ok()) {
        ReplyTransportError(out, response.status());
      } else {
        if (response->status.ok()) {
          router_->replicator()->NoteKey(name);
          // Peer routers learn the key through the digest, so any of
          // them can sweep/repair it even if this router dies before
          // the next inventory scan.
          if (router_->gossip() != nullptr) router_->gossip()->NoteKey(name);
          if (router_->replication_factor() >= 2) {
            std::vector<size_t> owners = router_->shard_map().Owners(
                name, router_->replication_factor(), router_->AliveMask());
            for (size_t owner : owners) {
              if (owner == answered) continue;
              router_->replicator()->EnqueueFanout(name, owner, input);
            }
          }
        }
        RelayReply(out, *response);
      }
    }
  } else if (command == "EVICT") {
    std::string_view name = TakeWord(&rest);
    if (name.empty()) {
      Reply(out, "ERR InvalidArgument: missing document name");
    } else if (router_->replication_factor() >= 2) {
      // Every live owner may hold a copy; evict them all and relay the
      // first definitive answer (a miss everywhere relays the miss).
      std::vector<size_t> owners = router_->shard_map().Owners(
          name, router_->replication_factor(), router_->AliveMask());
      if (owners.empty()) {
        Reply(out, "ERR ResourceExhausted: no live shards");
      } else {
        router_->replicator()->ForgetKey(name);
        if (router_->gossip() != nullptr) router_->gossip()->ForgetKey(name);
        std::optional<net::Response> best;
        Status transport = Status::OK();
        for (size_t owner : owners) {
          Result<net::Response> response =
              router_->backend(owner)->Request(input);
          if (!response.ok()) {
            transport = response.status();
            continue;
          }
          if (!best.has_value() || (!best->status.ok() &&
                                    response->status.ok())) {
            best = std::move(*response);
          }
        }
        if (best.has_value()) {
          RelayReply(out, *best);
        } else {
          ReplyTransportError(out, transport);
        }
      }
    } else {
      // Non-idempotent: one attempt at the current owner, no failover.
      std::optional<size_t> owner = router_->OwnerOf(name);
      if (!owner.has_value()) {
        Reply(out, "ERR ResourceExhausted: no live shards");
      } else {
        Result<net::Response> response =
            router_->backend(*owner)->Request(input);
        if (!response.ok()) {
          ReplyTransportError(out, response.status());
        } else {
          if (response->status.ok() && router_->gossip() != nullptr) {
            router_->gossip()->ForgetKey(name);
          }
          RelayReply(out, *response);
        }
      }
    }
  } else if (command == "GOSSIP") {
    if (router_->gossip() == nullptr) {
      Reply(out, "ERR NotSupported: gossip is not enabled on this router "
                 "(start it with --peers)");
    } else if (rest.empty()) {
      Reply(out, "ERR InvalidArgument: missing gossip digest");
    } else {
      Result<GossipAgent::ExchangeReply> merged =
          router_->gossip()->HandleExchange(rest);
      if (!merged.ok()) {
        Reply(out, "ERR " + merged.status().ToString());
      } else {
        Reply(out, "DIGEST " + merged->wire);
        Reply(out, "OK adopted=" + std::to_string(merged->adopted));
      }
    }
  } else if (command == "REPLSTATUS") {
    Replicator::Counters repl = router_->replicator()->counters();
    Reply(out,
          "REPL factor=" + std::to_string(router_->replication_factor()) +
              " keys=" + std::to_string(router_->replicator()->known_keys()) +
              " pending=" + std::to_string(repl.pending) +
              " repaired=" + std::to_string(repl.repaired) +
              " failed=" + std::to_string(repl.failed) +
              " fanouts=" + std::to_string(repl.fanouts) +
              " sweeps=" + std::to_string(repl.sweeps));
    Reply(out, "OK");
  } else if (command == "STATS") {
    service::StatsSnapshot merged = router_->ClusterStats();
    std::string text = merged.ToString();
    size_t begin = 0;
    while (begin < text.size()) {
      size_t end = text.find('\n', begin);
      Reply(out, "STAT " + text.substr(begin, end - begin));
      begin = end + 1;
    }
    Reply(out, "OK");
  } else if (command == "METRICS") {
    std::string text = router_->MetricsText();
    size_t begin = 0;
    while (begin < text.size()) {
      size_t end = text.find('\n', begin);
      Reply(out, "METRIC " + text.substr(begin, end - begin));
      begin = end + 1;
    }
    Reply(out, "OK");
  } else if (command == "SUBSCRIBE" || command == "UNSUBSCRIBE" ||
             command == "PUBLISH") {
    Reply(out, "ERR NotSupported: pub/sub is per-shard state and is not "
               "routed; connect to a shard directly");
  } else if (command.empty()) {
    // Blank line: ignore.
  } else {
    Reply(out, "ERR InvalidArgument: unknown command '" +
                   std::string(command) + "'");
  }
  return true;
}

// ---------------------------------------------------------------------
// Router.

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      map_(config_.shards.size(), config_.vnodes) {}

Result<std::unique_ptr<Router>> Router::Create(RouterConfig config) {
  if (config.shards.empty()) {
    return Status::InvalidArgument("router needs at least one shard");
  }
  std::unique_ptr<Router> router(new Router(std::move(config)));
  std::vector<Backend*> raw;
  for (size_t i = 0; i < router->config_.shards.size(); ++i) {
    obs::Histogram* latency = router->registry_.GetOrCreateHistogram(
        "xsq_router_backend_request_us",
        "wall micros per pooled backend request",
        "shard=\"" + std::to_string(i) + "\"");
    BackendConfig backend = router->config_.backend;
    backend.retry_seed += i * 0x1000003ull;
    router->backends_.push_back(std::make_unique<Backend>(
        router->config_.shards[i], backend, latency));
    raw.push_back(router->backends_.back().get());
  }
  if (router->config_.replication.factor > router->backends_.size()) {
    return Status::InvalidArgument(
        "replication factor " +
        std::to_string(router->config_.replication.factor) + " exceeds " +
        std::to_string(router->backends_.size()) + " shards");
  }
  std::vector<Backend*> repl_raw = raw;
  router->prober_ =
      std::make_unique<HealthProber>(std::move(raw), router->config_.probe);
  router->replicator_ = std::make_unique<Replicator>(
      &router->map_, std::move(repl_raw), router->config_.replication);
  if (router->config_.replication.factor >= 2) {
    // Anti-entropy rides the health cadence: any probe pass that
    // changed the liveness mask schedules a sweep (including the first
    // pass, which repairs whatever a router restart forgot).
    router->prober_->set_on_pass(
        [replicator = router->replicator_.get()](bool mask_changed) {
          if (mask_changed) replicator->RequestSweep();
        });
  }
  if (router->config_.gossip.enable || !router->config_.gossip.peers.empty()) {
    std::vector<Backend*> gossip_raw;
    for (auto& backend : router->backends_) gossip_raw.push_back(backend.get());
    router->gossip_ = std::make_unique<GossipAgent>(
        std::move(gossip_raw), router->replicator_.get(),
        router->config_.gossip);
    // Locally observed health transitions flow through the digest so
    // each one gets an epoch and propagates; the agent applies the
    // Backend flag itself.
    router->prober_->set_apply(
        [agent = router->gossip_.get()](size_t shard, ShardHealth health) {
          agent->LocalObservation(shard, health);
        });
    if (router->config_.gossip.start) router->gossip_->Start();
  }
  if (router->config_.start_prober) router->prober_->Start();
  router->cancel_thread_ = std::thread([raw_router = router.get()] {
    raw_router->CancelLoop();
  });
  return router;
}

Router::~Router() {
  if (prober_ != nullptr) prober_->Stop();  // before its apply/sweep callbacks die
  if (gossip_ != nullptr) gossip_->Stop();  // before the replicator it feeds
  if (replicator_ != nullptr) replicator_->Stop();
  {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    cancel_stopping_ = true;
  }
  cancel_cv_.notify_all();
  if (cancel_thread_.joinable()) cancel_thread_.join();
}

std::unique_ptr<net::ConnectionHandler> Router::MakeHandler() {
  return std::make_unique<RouterHandler>(this);
}

net::ServerApp Router::MakeServerApp() {
  net::ServerApp app;
  app.make_handler = [this] { return MakeHandler(); };
  app.metrics_text = [this] { return MetricsText(); };
  // The router itself has no session table to saturate; each shard
  // applies its own admission control and the reply propagates.
  app.saturated = nullptr;
  app.stats = &net_stats_;
  return app;
}

std::vector<bool> Router::AliveMask() const {
  std::vector<bool> mask(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) mask[i] = backends_[i]->alive();
  return mask;
}

std::vector<bool> Router::ServingMask() const {
  std::vector<bool> mask(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    mask[i] = backends_[i]->serving();
  }
  return mask;
}

Result<size_t> Router::PickSessionShard() const {
  size_t best = backends_.size();
  size_t best_outstanding = 0;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (!backends_[i]->serving()) continue;
    size_t outstanding = backends_[i]->outstanding();
    if (best == backends_.size() || outstanding < best_outstanding) {
      best = i;
      best_outstanding = outstanding;
    }
  }
  if (best == backends_.size()) {
    return Status::ResourceExhausted("no serving shards for a new session");
  }
  return best;
}

std::optional<size_t> Router::OwnerOf(std::string_view key) const {
  return map_.Owner(key, AliveMask());
}

Result<net::Response> Router::OwnerRequest(std::string_view key,
                                           std::string_view line,
                                           size_t* shard_out) {
  std::vector<bool> mask = AliveMask();
  Status last = Status::ResourceExhausted("no live shard owns '" +
                                          std::string(key) + "'");
  for (int attempt = 0; attempt <= config_.max_failover_attempts; ++attempt) {
    std::optional<size_t> owner = map_.Owner(key, mask);
    if (!owner.has_value()) break;
    Result<net::Response> response = backends_[*owner]->Request(line);
    if (response.ok()) {
      if (shard_out != nullptr) *shard_out = *owner;
      return response;
    }
    // Transport failure (connect refused, deadline, circuit open):
    // this shard is suspect right now regardless of what the prober
    // last said. Exclude it locally and let the ring fail over.
    last = response.status();
    mask[*owner] = false;
    failovers_total_.fetch_add(1, std::memory_order_relaxed);
  }
  return last;
}

service::StatsSnapshot Router::ClusterStats() {
  service::StatsSnapshot merged;
  for (size_t i = 0; i < backends_.size(); ++i) {
    if (!backends_[i]->alive()) {
      scatter_failures_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Result<net::Response> response = backends_[i]->Request("STATS");
    if (!response.ok() || !response->status.ok()) {
      scatter_failures_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::string text;
    for (const std::string& line : response->lines) {
      if (line.rfind("STAT ", 0) == 0) {
        text.append(line, 5, std::string::npos);
        text.push_back('\n');
      }
    }
    Result<service::StatsSnapshot> snap = service::StatsSnapshot::Parse(text);
    if (!snap.ok()) {
      scatter_failures_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    merged.Merge(*snap);
  }
  return merged;
}

obs::Exposition Router::ClusterMetrics() {
  obs::Exposition merged;
  for (size_t i = 0; i < backends_.size(); ++i) {
    std::string text;
    bool live = false;
    if (backends_[i]->alive()) {
      Result<net::Response> response = backends_[i]->Request("METRICS");
      if (response.ok() && response->status.ok()) {
        for (const std::string& line : response->lines) {
          if (line.rfind("METRIC ", 0) == 0) {
            text.append(line, 7, std::string::npos);
            text.push_back('\n');
          }
        }
        live = true;
      }
    }
    if (!live) {
      // Stale-but-present beats absent for a dashboard mid-incident.
      text = prober_->last_metrics(i);
      if (text.empty()) {
        scatter_failures_total_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
    }
    Result<obs::Exposition> parsed = obs::Exposition::Parse(text);
    if (!parsed.ok()) {
      scatter_failures_total_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    merged.MergeFrom(*parsed);
  }
  return merged;
}

std::string Router::MetricsText() {
  std::string out = ClusterMetrics().Render();
  // The router's own section, distinct xsq_router_* names so the
  // merged shard families above never collide.
  obs::Registry::AppendScalar(
      &out, "xsq_router_requests_total", "counter",
      requests_total_.load(std::memory_order_relaxed));
  obs::Registry::AppendScalar(
      &out, "xsq_router_sessions_opened_total", "counter",
      sessions_opened_.load(std::memory_order_relaxed));
  obs::Registry::AppendScalar(
      &out, "xsq_router_failovers_total", "counter",
      failovers_total_.load(std::memory_order_relaxed));
  obs::Registry::AppendScalar(
      &out, "xsq_router_scatter_failures_total", "counter",
      scatter_failures_total_.load(std::memory_order_relaxed));
  obs::Registry::AppendScalar(
      &out, "xsq_router_cancels_enqueued_total", "counter",
      cancels_enqueued_.load(std::memory_order_relaxed));
  size_t serving = 0;
  size_t dead = 0;
  uint64_t breaker_opens = 0;
  for (const std::unique_ptr<Backend>& backend : backends_) {
    if (backend->serving()) ++serving;
    if (!backend->alive()) ++dead;
    breaker_opens += backend->counters().breaker_opens;
  }
  Replicator::Counters repl = replicator_->counters();
  obs::Registry::AppendScalar(&out, "xsq_router_repl_pending", "gauge",
                              repl.pending);
  obs::Registry::AppendScalar(&out, "xsq_router_repl_repaired_total",
                              "counter", repl.repaired);
  obs::Registry::AppendScalar(&out, "xsq_router_repl_failed_total", "counter",
                              repl.failed);
  obs::Registry::AppendScalar(&out, "xsq_router_repl_fanouts_total", "counter",
                              repl.fanouts);
  obs::Registry::AppendScalar(&out, "xsq_router_repl_sweeps_total", "counter",
                              repl.sweeps);
  // Gossip surface: rendered even with gossip off (all zeros) so
  // dashboards and smoke greps see a stable metric set.
  GossipAgent::Counters gsp;
  if (gossip_ != nullptr) gsp = gossip_->counters();
  obs::Registry::AppendScalar(&out, "xsq_router_gossip_rounds_total",
                              "counter", gsp.rounds);
  obs::Registry::AppendScalar(&out, "xsq_router_gossip_merges_total",
                              "counter", gsp.merges);
  obs::Registry::AppendScalar(&out, "xsq_router_gossip_peer_down_total",
                              "counter", gsp.peer_down);
  obs::Registry::AppendScalar(&out, "xsq_router_gossip_peers_down", "gauge",
                              gsp.peers_down);
  obs::Registry::AppendScalar(&out, "xsq_router_shards_serving", "gauge",
                              serving);
  obs::Registry::AppendScalar(&out, "xsq_router_shards_dead", "gauge", dead);
  obs::Registry::AppendScalar(&out, "xsq_router_breaker_opens_total",
                              "counter", breaker_opens);
  obs::Registry::AppendScalar(
      &out, "xsq_router_connections_accepted", "counter",
      net_stats_.Snapshot().connections_accepted);
  out += registry_.RenderText();
  return out;
}

uint64_t Router::RegisterSession(std::string query, size_t shard,
                                 std::string backend_id) {
  uint64_t id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  SessionRecord record;
  record.query = std::move(query);
  record.primary_shard = shard;
  record.bindings.emplace(shard, std::move(backend_id));
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.emplace(id, std::move(record));
  return id;
}

std::optional<Router::SessionRecord> Router::FindSession(
    uint64_t router_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(router_id);
  if (it == sessions_.end()) return std::nullopt;
  return it->second;
}

void Router::AddBinding(uint64_t router_id, size_t shard,
                        std::string backend_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(router_id);
  if (it != sessions_.end()) {
    it->second.bindings[shard] = std::move(backend_id);
  }
}

void Router::RemoveBinding(uint64_t router_id, size_t shard) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(router_id);
  if (it != sessions_.end()) it->second.bindings.erase(shard);
}

void Router::PromotePrimary(uint64_t router_id, size_t shard) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(router_id);
  if (it != sessions_.end()) it->second.primary_shard = shard;
}

void Router::RemoveSession(uint64_t router_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_.erase(router_id);
}

Status Router::CancelSession(uint64_t router_id) {
  std::optional<SessionRecord> record = FindSession(router_id);
  if (!record.has_value()) {
    return Status::InvalidArgument("unknown session id " +
                                   std::to_string(router_id));
  }
  Status last = Status::OK();
  for (const auto& [shard, backend_id] : record->bindings) {
    Result<net::Response> response =
        backends_[shard]->Request("CANCEL " + backend_id);
    if (!response.ok()) {
      last = response.status();
    } else if (!response->status.ok()) {
      last = response->status;
    }
  }
  return last;
}

void Router::EnqueueCancel(uint64_t router_id) {
  std::optional<SessionRecord> record = FindSession(router_id);
  if (!record.has_value() || record->bindings.empty()) return;
  std::vector<std::pair<size_t, std::string>> bindings;
  bindings.reserve(record->bindings.size());
  for (const auto& [shard, backend_id] : record->bindings) {
    bindings.emplace_back(shard, backend_id);
  }
  {
    std::lock_guard<std::mutex> lock(cancel_mu_);
    cancel_queue_.push_back(std::move(bindings));
  }
  cancels_enqueued_.fetch_add(1, std::memory_order_relaxed);
  cancel_cv_.notify_one();
}

void Router::CancelLoop() {
  std::unique_lock<std::mutex> lock(cancel_mu_);
  for (;;) {
    cancel_cv_.wait(lock, [this] {
      return cancel_stopping_ || !cancel_queue_.empty();
    });
    if (cancel_queue_.empty()) {
      if (cancel_stopping_) return;
      continue;
    }
    std::vector<std::pair<size_t, std::string>> bindings =
        std::move(cancel_queue_.front());
    cancel_queue_.pop_front();
    lock.unlock();
    for (const auto& [shard, backend_id] : bindings) {
      // Best effort: the lease closing right after will release the
      // session anyway; this just makes a blocked evaluation stop
      // within one cancel-check interval instead of running out.
      (void)backends_[shard]->Request("CANCEL " + backend_id);
    }
    lock.lock();
  }
}

Router::OwnCounters Router::own_counters() const {
  OwnCounters out;
  out.requests_total = requests_total_.load(std::memory_order_relaxed);
  out.sessions_opened = sessions_opened_.load(std::memory_order_relaxed);
  out.failovers_total = failovers_total_.load(std::memory_order_relaxed);
  out.scatter_failures_total =
      scatter_failures_total_.load(std::memory_order_relaxed);
  out.cancels_enqueued = cancels_enqueued_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace xsq::cluster
