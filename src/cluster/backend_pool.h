// Backend: one xsqd shard as seen by the router — a connection pool,
// a circuit breaker, and a health flag.
//
// Two kinds of traffic hit a shard and they need different transport
// shapes:
//
//   - Stateless verbs (RECORD, RUNCACHED bindings aside, EVICT, STATS,
//     METRICS, CANCEL) multiplex over a small pool of shared
//     connections: Request() leases one for the duration of a single
//     request/reply exchange and returns it. The pool grows on demand
//     up to max_pool_conns and callers beyond that wait briefly.
//   - Stateful sessions (OPEN..CLOSE) must live on a connection of
//     their own, because a shard ties session cleanup to connection
//     lifetime: the peer disconnecting is the cancellation signal.
//     LeaseExclusive() hands the caller a dedicated client the pool
//     never sees again; dropping it closes the socket and the shard
//     cancels + releases everything opened on it.
//
// The circuit breaker watches Request() outcomes: breaker_threshold
// consecutive transport failures open the circuit for
// breaker_cooldown_ms, during which Request() fails fast with
// ResourceExhausted instead of burning a connect timeout per call.
// After the cooldown one probe request is allowed through (half-open);
// success closes the circuit. An "ERR" reply from the shard is a
// healthy transport — it never trips the breaker.
//
// Health (set by the HealthProber, read by routing) is advisory state
// alongside the breaker: the breaker reacts in-line within
// milliseconds, the prober flips health on the probe cadence.
#ifndef XSQ_CLUSTER_BACKEND_POOL_H_
#define XSQ_CLUSTER_BACKEND_POOL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "net/client.h"
#include "obs/histogram.h"

namespace xsq::cluster {

struct ShardAddress {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

// What a new protocol request would experience on the shard, as
// reported by its /healthz endpoint.
enum class ShardHealth {
  kServing,   // 200 ok
  kShedding,  // 503 shedding: at capacity, retry elsewhere
  kDraining,  // 503 draining: listener closed, existing work finishing
  kDead,      // probes failing; presumed down until one succeeds
};

const char* ShardHealthName(ShardHealth health);

struct BackendConfig {
  // Shared connections for stateless multiplexed requests.
  size_t max_pool_conns = 4;
  uint64_t connect_timeout_ms = 1000;
  // Per-request deadline (send + full reply block).
  uint64_t request_timeout_ms = 5000;
  // Consecutive transport failures that open the circuit.
  int breaker_threshold = 3;
  uint64_t breaker_cooldown_ms = 500;
  // In-client retry budget for idempotent verbs on THIS shard (the
  // router's cross-shard failover sits above this).
  int client_max_retries = 1;
  uint64_t retry_seed = 0x9e3779b97f4a7c15ull;
};

class Backend {
 public:
  // `latency_us` (optional) records each pooled request's wall time.
  Backend(ShardAddress address, BackendConfig config,
          obs::Histogram* latency_us = nullptr);

  Backend(const Backend&) = delete;
  Backend& operator=(const Backend&) = delete;

  // One stateless request over a pooled connection. Thread-safe.
  // Fails fast with ResourceExhausted while the circuit is open.
  Result<net::Response> Request(std::string_view line);

  // A dedicated connection for a stateful session conversation; the
  // caller owns it outright. Exclusive leases are session-lifetime,
  // not request-lifetime, so they are intentionally NOT part of the
  // outstanding() load signal — session placement balances on
  // in-flight requests, not idle open sockets.
  Result<std::unique_ptr<net::Client>> LeaseExclusive();

  const ShardAddress& address() const { return address_; }

  ShardHealth health() const {
    return static_cast<ShardHealth>(health_.load(std::memory_order_relaxed));
  }
  void set_health(ShardHealth health) {
    health_.store(static_cast<int>(health), std::memory_order_relaxed);
  }
  // On the ring (reachable, possibly degraded) vs off it.
  bool alive() const { return health() != ShardHealth::kDead; }
  // Accepting new protocol work at full capacity.
  bool serving() const { return health() == ShardHealth::kServing; }

  // Pooled requests in flight right now (least-outstanding routing).
  size_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }

  struct Counters {
    uint64_t requests = 0;         // pooled requests attempted
    uint64_t failures = 0;         // transport-level failures
    uint64_t breaker_rejects = 0;  // failed fast on an open circuit
    uint64_t breaker_opens = 0;    // times the circuit tripped
  };
  Counters counters() const;

  // Breaker introspection for tests.
  bool circuit_open() const;

 private:
  std::unique_ptr<net::Client> AcquireLocked(std::unique_lock<std::mutex>* lock,
                                             Status* error);
  void ReleasePooled(std::unique_ptr<net::Client> client);
  net::ClientConfig MakeClientConfig() const;
  void RecordOutcome(bool transport_ok);

  const ShardAddress address_;
  const BackendConfig config_;
  obs::Histogram* latency_us_;

  std::atomic<int> health_{static_cast<int>(ShardHealth::kServing)};
  std::atomic<size_t> outstanding_{0};

  mutable std::mutex mu_;
  std::condition_variable pool_cv_;
  std::vector<std::unique_ptr<net::Client>> idle_;
  size_t pooled_total_ = 0;  // idle + leased-out pooled clients
  uint64_t lease_seq_ = 0;   // distinct retry seed per client

  // Breaker state, guarded by mu_.
  int consecutive_failures_ = 0;
  bool half_open_probe_ = false;  // one request allowed through
  std::chrono::steady_clock::time_point open_until_{};

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> failures_{0};
  std::atomic<uint64_t> breaker_rejects_{0};
  std::atomic<uint64_t> breaker_opens_{0};
};

}  // namespace xsq::cluster

#endif  // XSQ_CLUSTER_BACKEND_POOL_H_
