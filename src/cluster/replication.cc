#include "cluster/replication.h"

#include <algorithm>
#include <map>

#include "common/failpoints.h"

namespace xsq::cluster {

Replicator::Replicator(const ShardMap* map, std::vector<Backend*> backends,
                       ReplicationConfig config)
    : map_(map),
      backends_(std::move(backends)),
      config_(config),
      inflight_(backends_.size(), 0) {
  if (config_.start_workers && config_.factor >= 2) Start();
}

Replicator::~Replicator() { Stop(); }

void Replicator::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!workers_.empty()) return;  // already running
    stopping_ = false;
  }
  for (size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  sweep_thread_ = std::thread([this] { SweepLoop(); });
}

void Replicator::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  sweep_cv_.notify_all();
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  if (sweep_thread_.joinable()) sweep_thread_.join();
}

void Replicator::NoteKey(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) {
    keys_.insert(it, std::string(key));
  }
}

void Replicator::ForgetKey(std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it != keys_.end() && *it == key) keys_.erase(it);
}

size_t Replicator::known_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_.size();
}

void Replicator::EnqueueFanout(std::string_view key, size_t target,
                               std::string_view record_line) {
  fanouts_.fetch_add(1, std::memory_order_relaxed);
  EnqueueJob(key, target, std::string(record_line));
}

void Replicator::EnqueueRepair(std::string_view key, size_t target,
                               const ShardAddress& source) {
  std::string line = "REPLPULL ";
  line.append(key);
  line += ' ';
  line += source.host;
  line += ':';
  line += std::to_string(source.port);
  EnqueueJob(key, target, std::move(line));
}

void Replicator::EnqueueJob(std::string_view key, size_t target,
                            std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ && !workers_.empty()) return;
  // Dedupe while queued: a newer enqueue of the same (key, target)
  // replaces the waiting job's wire line, so a re-RECORD supersedes
  // stale bytes instead of delivering after them.
  for (Job& queued : queue_) {
    if (queued.key == key && queued.target == target) {
      queued.line = std::move(line);
      queued.attempts = 0;
      queued.due = std::chrono::steady_clock::now();
      cv_.notify_one();
      return;
    }
  }
  if (queue_.size() >= config_.max_queue) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Job job;
  job.key.assign(key);
  job.target = target;
  job.line = std::move(line);
  job.due = std::chrono::steady_clock::now();
  queue_.push_back(std::move(job));
  cv_.notify_one();
}

bool Replicator::SendJob(const Job& job) {
  XSQ_FAILPOINT("cluster.repl.fail", return false);
  Result<net::Response> response = backends_[job.target]->Request(job.line);
  return response.ok() && response->status.ok();
}

void Replicator::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stopping_) return;
    auto now = std::chrono::steady_clock::now();
    size_t idx = queue_.size();
    auto next_due = std::chrono::steady_clock::time_point::max();
    for (size_t i = 0; i < queue_.size(); ++i) {
      const Job& job = queue_[i];
      // The per-shard cap keeps one slow target from monopolizing the
      // workers; capped jobs re-dispatch when a send completes.
      if (inflight_[job.target] >= config_.max_inflight_per_shard) continue;
      if (job.due > now) {
        next_due = std::min(next_due, job.due);
        continue;
      }
      idx = i;
      break;
    }
    if (idx == queue_.size()) {
      if (next_due != std::chrono::steady_clock::time_point::max()) {
        cv_.wait_until(lock, next_due);
      } else {
        cv_.wait(lock);
      }
      continue;
    }
    Job job = std::move(queue_[idx]);
    queue_.erase(queue_.begin() + idx);
    ++inflight_[job.target];
    ++inflight_total_;
    lock.unlock();
    bool delivered = SendJob(job);
    lock.lock();
    --inflight_[job.target];
    --inflight_total_;
    if (delivered) {
      repaired_.fetch_add(1, std::memory_order_relaxed);
    } else if (++job.attempts >= config_.max_attempts || stopping_) {
      failed_.fetch_add(1, std::memory_order_relaxed);
    } else {
      uint64_t backoff = config_.retry_backoff_ms
                         << std::min(job.attempts - 1, 6);
      job.due = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(backoff);
      // A job enqueued for the same pair while this one was in flight
      // carries newer bytes; it supersedes the retry.
      bool superseded = false;
      for (const Job& queued : queue_) {
        if (queued.key == job.key && queued.target == job.target) {
          superseded = true;
          break;
        }
      }
      if (!superseded) queue_.push_back(std::move(job));
    }
    cv_.notify_all();  // an in-flight slot freed; capped jobs may go
    idle_cv_.notify_all();
  }
}

void Replicator::RequestSweep() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sweep_requested_ = true;
  }
  sweep_cv_.notify_one();
}

void Replicator::SweepLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    sweep_cv_.wait(lock, [this] { return stopping_ || sweep_requested_; });
    if (stopping_) return;
    sweep_requested_ = false;
    ++active_sweeps_;
    lock.unlock();
    SweepPass();
    lock.lock();
    --active_sweeps_;
    idle_cv_.notify_all();
  }
}

void Replicator::SweepNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    sweep_requested_ = false;  // a manual pass satisfies a pending request
    ++active_sweeps_;
  }
  SweepPass();
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_sweeps_;
  }
  idle_cv_.notify_all();
}

void Replicator::SweepPass() {
  std::lock_guard<std::mutex> serial(sweep_serial_mu_);
  if (config_.factor <= 1) return;  // replication off: nothing to repair
  const size_t n = backends_.size();
  std::vector<bool> alive(n);
  for (size_t i = 0; i < n; ++i) alive[i] = backends_[i]->alive();

  // The key universe: the router's index UNION what the shards report
  // holding. The union matters after a router restart — the index is
  // empty but the tapes are out there, and they still deserve repair.
  std::map<std::string, std::vector<bool>> holders;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& key : keys_) {
      holders.emplace(key, std::vector<bool>(n, false));
    }
  }
  std::vector<std::string> learned;
  for (size_t i = 0; i < n; ++i) {
    if (!alive[i]) continue;
    Result<net::Response> response = backends_[i]->Request("REPLSTATUS");
    if (!response.ok() || !response->status.ok()) continue;
    for (const std::string& line : response->lines) {
      if (line.rfind("DOC ", 0) != 0) continue;
      size_t end = line.find(' ', 4);
      std::string name = line.substr(4, end - 4);
      if (name.empty()) continue;
      auto it = holders.find(name);
      if (it == holders.end()) {
        it = holders.emplace(std::move(name), std::vector<bool>(n, false))
                 .first;
        learned.push_back(it->first);
      }
      it->second[i] = true;
    }
  }
  for (const std::string& name : learned) NoteKey(name);

  for (const auto& [key, held] : holders) {
    std::vector<size_t> owners = map_->Owners(key, config_.factor, alive);
    size_t source = n;
    for (size_t i = 0; i < n; ++i) {
      if (alive[i] && held[i]) {
        source = i;
        break;
      }
    }
    if (source == n) continue;  // no live copy anywhere: nothing to pull
    for (size_t owner : owners) {
      if (held[owner]) continue;
      EnqueueRepair(key, owner, backends_[source]->address());
    }
  }
  sweeps_.fetch_add(1, std::memory_order_relaxed);
}

bool Replicator::IdleLocked() const {
  return queue_.empty() && inflight_total_ == 0 && !sweep_requested_ &&
         active_sweeps_ == 0;
}

bool Replicator::WaitIdle(uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return IdleLocked(); });
}

Replicator::Counters Replicator::counters() const {
  Counters out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.pending = queue_.size() + inflight_total_;
  }
  out.repaired = repaired_.load(std::memory_order_relaxed);
  out.failed = failed_.load(std::memory_order_relaxed);
  out.fanouts = fanouts_.load(std::memory_order_relaxed);
  out.sweeps = sweeps_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace xsq::cluster
