#include "cluster/shard_map.h"

#include <algorithm>
#include <string>

namespace xsq::cluster {

namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t Fnv1a(std::string_view text, uint64_t hash = kFnvOffset) {
  for (char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

// Finalizer (splitmix64 mix) so vnode points spread even though their
// inputs ("3#17") share most bytes.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t ShardMap::HashKey(std::string_view key) { return Mix(Fnv1a(key)); }

ShardMap::ShardMap(size_t shard_count, size_t vnodes)
    : shard_count_(shard_count) {
  ring_.reserve(shard_count * vnodes);
  for (size_t shard = 0; shard < shard_count; ++shard) {
    for (size_t v = 0; v < vnodes; ++v) {
      std::string point =
          std::to_string(shard) + "#" + std::to_string(v);
      ring_.push_back(
          Point{Mix(Fnv1a(point)), static_cast<uint32_t>(shard)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.shard < b.shard;
            });
}

std::optional<size_t> ShardMap::Owner(
    std::string_view key, const std::vector<bool>& serving) const {
  if (ring_.empty()) return std::nullopt;
  uint64_t hash = HashKey(key);
  size_t begin = std::lower_bound(ring_.begin(), ring_.end(), hash,
                                  [](const Point& p, uint64_t h) {
                                    return p.hash < h;
                                  }) -
                 ring_.begin();
  // Walk the ring clockwise; the first serving shard point owns the
  // key. Bounded by ring size: every point dead means no owner.
  for (size_t step = 0; step < ring_.size(); ++step) {
    const Point& point = ring_[(begin + step) % ring_.size()];
    if (point.shard < serving.size() && serving[point.shard]) {
      return point.shard;
    }
  }
  return std::nullopt;
}

std::optional<size_t> ShardMap::Owner(std::string_view key) const {
  return Owner(key, std::vector<bool>(shard_count_, true));
}

std::vector<size_t> ShardMap::Owners(
    std::string_view key, size_t rf,
    const std::vector<bool>& serving) const {
  std::vector<size_t> owners;
  if (ring_.empty() || rf == 0) return owners;
  uint64_t hash = HashKey(key);
  size_t begin = std::lower_bound(ring_.begin(), ring_.end(), hash,
                                  [](const Point& p, uint64_t h) {
                                    return p.hash < h;
                                  }) -
                 ring_.begin();
  // Same clockwise walk as Owner(), collecting distinct serving shards
  // until the factor is met or the ring is exhausted.
  std::vector<bool> taken(shard_count_, false);
  for (size_t step = 0; step < ring_.size() && owners.size() < rf; ++step) {
    const Point& point = ring_[(begin + step) % ring_.size()];
    if (point.shard >= serving.size() || !serving[point.shard]) continue;
    if (taken[point.shard]) continue;
    taken[point.shard] = true;
    owners.push_back(point.shard);
  }
  return owners;
}

}  // namespace xsq::cluster
