// Gossip: anti-entropy membership exchange between xsq_router peers,
// so N >= 2 routers run active-active over the same shard set with no
// single point of failure (DESIGN.md §15).
//
// Each router's routing state is a versioned, mergeable GossipDigest:
//
//   per shard   {epoch, health}   the serving/shedding/draining/dead
//                                 flag the ring routes by, stamped with
//                                 a monotonically increasing epoch that
//                                 bumps on every locally observed
//                                 transition
//   per key     {epoch, deleted}  the RECORD key index that seeds the
//                                 replication plane's sweep universe
//                                 (deleted = EVICT tombstone)
//
// Merge is max-epoch-wins per entry with a deterministic tie break
// (equal epochs: the *worse* health wins for shards, the tombstone
// wins for keys). Each entry's merge is therefore a join in a total
// order — commutative, associative, idempotent — so any exchange
// pattern converges: two routers whose probe passes disagree agree on
// one mask after a single push-pull round, and routers that agree on
// the mask compute identical rings for every key (ShardMap is a pure
// function of topology + mask). gossip_test pins the algebra.
//
// Wire: the digest serializes to a line-oriented block guarded by a
// CRC32C trailer (same checksum discipline as the tape format), which
// is LineEscape'd onto a single "GOSSIP <payload>" protocol line — the
// verb rides the existing router port and net::Client machinery. The
// receiving router merges the remote digest and replies
// "DIGEST <its own post-merge digest>" + "OK adopted=<n>", making
// every exchange push-pull: one round converges both ends.
//
// Peer liveness is tracked by the exchange itself: a peer that stops
// answering GOSSIP for peer_fail_threshold consecutive rounds is
// marked down (xsq_router_gossip_peer_down_total); clients' multi-
// endpoint failover (net::Client endpoints) is the recovery path —
// routers never proxy for each other.
#ifndef XSQ_CLUSTER_GOSSIP_H_
#define XSQ_CLUSTER_GOSSIP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/replication.h"
#include "common/status.h"
#include "net/client.h"

namespace xsq::cluster {

// The versioned, mergeable router state. Pure value type; the merge
// algebra lives here so property tests need no agent or network.
struct GossipDigest {
  struct ShardEntry {
    uint64_t epoch = 0;
    ShardHealth health = ShardHealth::kServing;
  };
  struct KeyEntry {
    uint64_t epoch = 0;
    bool deleted = false;  // EVICT tombstone
  };

  std::vector<ShardEntry> shards;         // indexed by shard
  std::map<std::string, KeyEntry> keys;   // sorted: deterministic wire

  // True when `incoming` supersedes `current` (strictly greater epoch,
  // or equal epoch and a "worse" value — the deterministic tie break
  // that makes the merge a total-order join).
  static bool Supersedes(const ShardEntry& incoming,
                         const ShardEntry& current);
  static bool Supersedes(const KeyEntry& incoming, const KeyEntry& current);

  // Merges `other` into *this, entry-wise max-epoch-wins. Returns how
  // many entries were adopted from `other`. The optional callbacks fire
  // once per adopted entry (used by the agent to apply side effects:
  // Backend::set_health, Replicator::NoteKey/ForgetKey).
  size_t MergeFrom(
      const GossipDigest& other,
      const std::function<void(size_t, const ShardEntry&)>& on_shard = nullptr,
      const std::function<void(const std::string&, const KeyEntry&)>& on_key =
          nullptr);

  bool operator==(const GossipDigest& other) const;
  bool operator!=(const GossipDigest& other) const { return !(*this == other); }

  // Line-oriented text block with a CRC32C trailer:
  //   XSQGOSSIP v1 shards=<n>
  //   S <index> <epoch> <health>
  //   K <epoch> <0|1> <key>
  //   CRC <8 hex digits>
  std::string Serialize() const;
  static Result<GossipDigest> Parse(std::string_view text);

  // The single-token wire form carried by "GOSSIP <token>" and
  // "DIGEST <token>": Serialize() under protocol line escaping.
  std::string EncodeWire() const;
  static Result<GossipDigest> DecodeWire(std::string_view token);
};

struct GossipConfig {
  // Enable the agent even with an empty initial roster (tests and
  // benches discover peer ports after startup and AddPeer() later).
  // Peers present implies enabled.
  bool enable = false;
  // Fellow routers' protocol addresses (the same port clients use).
  std::vector<ShardAddress> peers;
  // Anti-entropy exchange cadence; jittered ±20% per round so a fleet
  // of routers never synchronizes into an exchange storm.
  uint64_t interval_ms = 500;
  uint64_t connect_timeout_ms = 1000;
  uint64_t request_timeout_ms = 2000;
  // Consecutive failed exchanges before a peer is marked down.
  int peer_fail_threshold = 3;
  // Start the background exchange thread. Tests and benches that want
  // deterministic rounds set false and call ExchangeNow().
  bool start = true;
  // Seed for the deterministic interval jitter stream.
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

// The per-router gossip endpoint: owns the digest, the peer roster,
// and the background exchange loop. Thread safe; HandleExchange is
// called from server worker threads, LocalObservation from the probe
// thread, ExchangeNow from the gossip thread or tests.
class GossipAgent {
 public:
  // `backends` and `replicator` outlive the agent (all owned by the
  // Router that owns this). `replicator` may not be null.
  GossipAgent(std::vector<Backend*> backends, Replicator* replicator,
              GossipConfig config);
  ~GossipAgent();

  GossipAgent(const GossipAgent&) = delete;
  GossipAgent& operator=(const GossipAgent&) = delete;

  void Start();
  void Stop();

  // Extends the peer roster at runtime (benches learn peer ports after
  // both routers are listening).
  void AddPeer(const ShardAddress& peer);
  size_t peer_count() const;

  // The health prober's write path when gossip is on: a locally
  // observed transition bumps the shard's epoch (out-epoching every
  // entry this router has seen) so the observation propagates; an
  // unchanged observation is a no-op. Applies the health to the
  // Backend either way.
  void LocalObservation(size_t shard, ShardHealth health);

  // Key-index writes from the RECORD / EVICT paths.
  void NoteKey(std::string_view key);
  void ForgetKey(std::string_view key);

  // Server side of the GOSSIP verb: decode + merge the remote digest
  // (applying adopted entries to backends and the replicator's key
  // index), return our post-merge digest for the "DIGEST" reply line.
  struct ExchangeReply {
    std::string wire;     // post-merge digest, EncodeWire()'d
    size_t adopted = 0;   // entries learned from the remote digest
  };
  Result<ExchangeReply> HandleExchange(std::string_view wire_token);

  // One synchronous push-pull round with every peer. Safe with or
  // without the background thread running (rounds are serialized).
  void ExchangeNow();

  GossipDigest Snapshot() const;

  struct Counters {
    uint64_t rounds = 0;      // completed exchange rounds
    uint64_t merges = 0;      // entries adopted from remote digests
    uint64_t peer_down = 0;   // up->down peer transitions observed
    uint64_t peers_down = 0;  // gauge: peers currently down
  };
  Counters counters() const;

 private:
  struct Peer {
    ShardAddress address;
    std::unique_ptr<net::Client> client;
    int consecutive_failures = 0;
    bool down = false;
  };

  // Merges `remote` into digest_ under digest_mu_, applying adopted
  // entries to the backends and the replicator key index.
  size_t MergeAndApply(const GossipDigest& remote);
  void Loop();

  const std::vector<Backend*> backends_;
  Replicator* const replicator_;
  const GossipConfig config_;

  mutable std::mutex digest_mu_;
  GossipDigest digest_;

  mutable std::mutex peers_mu_;  // roster + per-peer clients/liveness
  std::vector<std::unique_ptr<Peer>> peers_;

  std::mutex round_mu_;  // serializes ExchangeNow rounds

  std::mutex loop_mu_;
  std::condition_variable loop_cv_;
  bool stopping_ = false;
  std::thread thread_;
  uint64_t jitter_state_;

  std::atomic<uint64_t> rounds_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> peer_down_{0};
  std::atomic<uint64_t> peers_down_{0};
};

}  // namespace xsq::cluster

#endif  // XSQ_CLUSTER_GOSSIP_H_
