#include "cluster/backend_pool.h"

namespace xsq::cluster {

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kServing:
      return "serving";
    case ShardHealth::kShedding:
      return "shedding";
    case ShardHealth::kDraining:
      return "draining";
    case ShardHealth::kDead:
      return "dead";
  }
  return "unknown";
}

Backend::Backend(ShardAddress address, BackendConfig config,
                 obs::Histogram* latency_us)
    : address_(std::move(address)),
      config_(config),
      latency_us_(latency_us) {}

net::ClientConfig Backend::MakeClientConfig() const {
  net::ClientConfig client;
  client.host = address_.host;
  client.port = address_.port;
  client.connect_timeout_ms = config_.connect_timeout_ms;
  client.request_timeout_ms = config_.request_timeout_ms;
  client.max_retries = config_.client_max_retries;
  return client;
}

std::unique_ptr<net::Client> Backend::AcquireLocked(
    std::unique_lock<std::mutex>* lock, Status* error) {
  // Breaker gate. While open, fail fast; at cooldown expiry admit one
  // half-open probe and keep rejecting the rest until it reports back.
  auto now = std::chrono::steady_clock::now();
  if (consecutive_failures_ >= config_.breaker_threshold) {
    if (now < open_until_ || half_open_probe_) {
      breaker_rejects_.fetch_add(1, std::memory_order_relaxed);
      *error = Status::ResourceExhausted(
          "circuit open to shard " + address_.host + ":" +
          std::to_string(address_.port) + "; cooling down");
      return nullptr;
    }
    half_open_probe_ = true;
  }
  if (!idle_.empty()) {
    std::unique_ptr<net::Client> client = std::move(idle_.back());
    idle_.pop_back();
    return client;
  }
  if (pooled_total_ < config_.max_pool_conns) {
    ++pooled_total_;
    net::ClientConfig cc = MakeClientConfig();
    cc.retry_seed = config_.retry_seed + ++lease_seq_;
    return std::make_unique<net::Client>(cc);
  }
  // Pool exhausted: wait for a peer to return a client, bounded by the
  // request deadline so a stuck shard cannot strand callers here.
  bool got = pool_cv_.wait_for(
      *lock, std::chrono::milliseconds(config_.request_timeout_ms),
      [this] { return !idle_.empty(); });
  if (!got) {
    *error = Status::ResourceExhausted(
        "backend pool exhausted for shard " + address_.host + ":" +
        std::to_string(address_.port));
    return nullptr;
  }
  std::unique_ptr<net::Client> client = std::move(idle_.back());
  idle_.pop_back();
  return client;
}

void Backend::ReleasePooled(std::unique_ptr<net::Client> client) {
  std::lock_guard<std::mutex> lock(mu_);
  if (client != nullptr && client->connected()) {
    idle_.push_back(std::move(client));
  } else {
    // Broken connection: drop it; the next Acquire recreates a slot.
    --pooled_total_;
  }
  pool_cv_.notify_one();
}

void Backend::RecordOutcome(bool transport_ok) {
  std::lock_guard<std::mutex> lock(mu_);
  half_open_probe_ = false;
  if (transport_ok) {
    consecutive_failures_ = 0;
    return;
  }
  ++consecutive_failures_;
  if (consecutive_failures_ == config_.breaker_threshold) {
    breaker_opens_.fetch_add(1, std::memory_order_relaxed);
  }
  if (consecutive_failures_ >= config_.breaker_threshold) {
    open_until_ = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.breaker_cooldown_ms);
  }
}

Result<net::Response> Backend::Request(std::string_view line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  std::unique_ptr<net::Client> client;
  {
    std::unique_lock<std::mutex> lock(mu_);
    Status error = Status::OK();
    client = AcquireLocked(&lock, &error);
    if (client == nullptr) return error;
  }
  outstanding_.fetch_add(1, std::memory_order_relaxed);
  auto begin = std::chrono::steady_clock::now();
  Result<net::Response> result = client->Request(line);
  auto end = std::chrono::steady_clock::now();
  outstanding_.fetch_sub(1, std::memory_order_relaxed);
  if (latency_us_ != nullptr) {
    latency_us_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(end - begin)
            .count()));
  }
  bool transport_ok = result.ok();
  if (!transport_ok) failures_.fetch_add(1, std::memory_order_relaxed);
  RecordOutcome(transport_ok);
  ReleasePooled(std::move(client));
  return result;
}

Result<std::unique_ptr<net::Client>> Backend::LeaseExclusive() {
  net::ClientConfig cc = MakeClientConfig();
  // Session conversations do the router's bidding verb by verb; the
  // router decides retries, the client must not improvise.
  cc.max_retries = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cc.retry_seed = config_.retry_seed + ++lease_seq_;
  }
  auto client = std::make_unique<net::Client>(cc);
  XSQ_RETURN_IF_ERROR(client->Connect());
  return client;
}

Backend::Counters Backend::counters() const {
  Counters out;
  out.requests = requests_.load(std::memory_order_relaxed);
  out.failures = failures_.load(std::memory_order_relaxed);
  out.breaker_rejects = breaker_rejects_.load(std::memory_order_relaxed);
  out.breaker_opens = breaker_opens_.load(std::memory_order_relaxed);
  return out;
}

bool Backend::circuit_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consecutive_failures_ >= config_.breaker_threshold &&
         std::chrono::steady_clock::now() < open_until_;
}

}  // namespace xsq::cluster
