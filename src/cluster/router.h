// Router: the cluster front tier. Speaks the xsqd line protocol to
// clients and fans out to N backend xsqd shards.
//
//        clients (xsq_client, anything speaking the line protocol)
//            |
//            v
//   net::Server  --- ServerApp --->  cluster::Router
//            |                          |  ShardMap (consistent hash)
//            |                          |  Backend per shard (pool +
//            |                          |    circuit breaker + health)
//            |                          |  HealthProber (GET /healthz)
//            v                          v
//        RouterHandler  ----leases----> shard xsqd processes
//
// Placement rules:
//   - Document keys (RECORD / RUNCACHED / EVICT <name>) hash onto the
//     consistent ring: a document's tape lives on its primary ring
//     owner, so RECORD and every later RUNCACHED of that name agree on
//     the shard with zero coordination. With replication factor rf >= 2
//     the tape ALSO lives on the next rf-1 distinct ring owners
//     (ShardMap::Owners), populated asynchronously by the Replicator's
//     fanout queue; the ring walk order doubles as the failover order,
//     so when the primary dies reads land on a shard already holding
//     the tape — no client re-record. When a shard dies, only its keys
//     remap (to the next ring point), within one probe interval, and
//     anti-entropy re-replicates its keys from surviving holders.
//   - Stateless work (RECORD bytes, scatter verbs) balances by ring
//     or fan-out over pooled multiplexed connections with per-request
//     deadlines; idempotent verbs fail over to the next live owner
//     with the failure counted, non-idempotent verbs surface the
//     error to the caller who knows the conversation state.
//   - Sessions (OPEN..CLOSE) are placed on the serving shard with the
//     fewest outstanding requests and bound to a dedicated leased
//     connection, because shards tie session cleanup to connection
//     lifetime. A client disconnecting from the router cancels its
//     backend sessions (async CANCELs over the pool, then the lease
//     closes and the shard releases everything).
//
// Session verbs and routing: OPEN picks the session's primary shard;
// PUSH/DRAIN/CLOSE follow the primary binding. RUNCACHED <id> <name>
// runs on <name>'s ring owner: the router lazily opens a binding
// (same query, owner shard) and reuses it for later RUNCACHEDs of
// co-located documents. Session ids the client sees are router ids;
// backend ids never leak. Sessions are connection-scoped at the
// router (PUSH/DRAIN/CLOSE/RUNCACHED must arrive on the connection
// that OPENed) — except CANCEL, which works from any connection, like
// single-node xsqd. SUBSCRIBE/UNSUBSCRIBE/PUBLISH are not routed
// (standing queries are per-shard state; answer is NotSupported).
//
// Observability: STATS scatter-gathers every live shard's STATS and
// merges the snapshots (counters sum, queue_high_water maxes);
// METRICS and GET /metrics merge the shards' expositions via
// obs::Exposition (histograms merge bucket-wise) and append the
// router's own xsq_router_* section. A shard that cannot be scraped
// live falls back to the prober's cached exposition when available
// and is otherwise skipped, counted in
// xsq_router_scatter_failures_total.
#ifndef XSQ_CLUSTER_ROUTER_H_
#define XSQ_CLUSTER_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/backend_pool.h"
#include "cluster/gossip.h"
#include "cluster/health.h"
#include "cluster/replication.h"
#include "cluster/shard_map.h"
#include "common/status.h"
#include "net/handler.h"
#include "net/server.h"
#include "obs/exposition.h"
#include "obs/registry.h"
#include "service/stats.h"

namespace xsq::cluster {

struct RouterConfig {
  std::vector<ShardAddress> shards;
  size_t vnodes = 64;
  BackendConfig backend;
  ProbeConfig probe;
  // Cross-shard failover attempts for idempotent owner-routed verbs
  // (on top of the in-client per-shard retries).
  int max_failover_attempts = 2;
  // Start the background prober thread. Tests and benches that want
  // deterministic health transitions set false and call ProbeNow().
  bool start_prober = true;
  // The replication plane (see cluster/replication.h). factor=1 (the
  // default) keeps the tier byte-for-byte identical to unreplicated
  // routing; factor>=2 fans RECORDs to the owner set, serves reads
  // from replicas when the primary is down, and anti-entropy-repairs
  // under-replicated keys after every mask-changing probe pass.
  ReplicationConfig replication;
  // Router-to-router gossip (see cluster/gossip.h). Disabled unless
  // peers are listed or enable is set; when on, health observations
  // flow through the gossip digest (epoch per transition) and the
  // GOSSIP verb merges peer digests, so N routers over the same shard
  // set converge to one liveness mask and identical rings.
  GossipConfig gossip;
};

class Router {
 public:
  static Result<std::unique_ptr<Router>> Create(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  // --- net::Server bindings -------------------------------------------
  std::unique_ptr<net::ConnectionHandler> MakeHandler();
  // The full ServerApp: handlers, merged-metrics body, never-saturated
  // (backpressure is per shard), and the router's own net stats.
  net::ServerApp MakeServerApp();
  // Merged cluster exposition + the router's own section.
  std::string MetricsText();

  // --- topology & health ----------------------------------------------
  size_t shard_count() const { return backends_.size(); }
  Backend* backend(size_t i) { return backends_[i].get(); }
  const ShardMap& shard_map() const { return map_; }
  ShardHealth shard_health(size_t i) const { return backends_[i]->health(); }
  std::vector<bool> AliveMask() const;    // ring membership (not dead)
  std::vector<bool> ServingMask() const;  // full members
  // One synchronous probe pass (deterministic health for tests/bench).
  void ProbeNow() { prober_->ProbeNow(); }
  HealthProber* prober() { return prober_.get(); }
  Replicator* replicator() { return replicator_.get(); }
  // Null when gossip is disabled (no peers configured).
  GossipAgent* gossip() { return gossip_.get(); }
  size_t replication_factor() const { return config_.replication.factor; }

  // --- routing --------------------------------------------------------
  // The serving shard with the fewest outstanding pooled requests.
  Result<size_t> PickSessionShard() const;
  // Ring owner of `key` among live shards.
  std::optional<size_t> OwnerOf(std::string_view key) const;
  // Routes an idempotent owner-keyed request, failing over to the next
  // live owner on transport failure (never on an ERR reply). On
  // success *shard_out (optional) is the shard that answered.
  Result<net::Response> OwnerRequest(std::string_view key,
                                     std::string_view line,
                                     size_t* shard_out = nullptr);

  // --- scatter-gather -------------------------------------------------
  service::StatsSnapshot ClusterStats();
  obs::Exposition ClusterMetrics();

  // --- session registry (shared so CANCEL works cross-connection) -----
  struct SessionRecord {
    std::string query;
    size_t primary_shard = 0;
    // shard -> backend session id (as protocol text). Contains the
    // primary binding plus lazily opened RUNCACHED bindings.
    std::map<size_t, std::string> bindings;
  };
  uint64_t RegisterSession(std::string query, size_t shard,
                           std::string backend_id);
  std::optional<SessionRecord> FindSession(uint64_t router_id) const;
  void AddBinding(uint64_t router_id, size_t shard, std::string backend_id);
  void RemoveBinding(uint64_t router_id, size_t shard);
  // Re-home the session: after a RUNCACHED replay the session's current
  // document state lives on the owner shard, so subsequent CLOSE/PUSH
  // must finalize there to match single-node semantics.
  void PromotePrimary(uint64_t router_id, size_t shard);
  void RemoveSession(uint64_t router_id);
  // Cancels every backend binding of `router_id` over pooled
  // connections (works while the owning lease is blocked mid-request).
  Status CancelSession(uint64_t router_id);
  // Async variant for disconnect teardown: the bindings are copied now
  // and cancelled by the maintenance thread, so the caller (the
  // server's poll thread) never blocks on a network round trip.
  void EnqueueCancel(uint64_t router_id);

  service::ServiceStats* net_stats() { return &net_stats_; }

  struct OwnCounters {
    uint64_t requests_total = 0;
    uint64_t sessions_opened = 0;
    uint64_t failovers_total = 0;
    uint64_t scatter_failures_total = 0;
    uint64_t cancels_enqueued = 0;
  };
  OwnCounters own_counters() const;

 private:
  explicit Router(RouterConfig config);
  void CancelLoop();
  friend class RouterHandler;

  const RouterConfig config_;
  ShardMap map_;
  obs::Registry registry_;  // router-own histograms
  std::vector<std::unique_ptr<Backend>> backends_;
  std::unique_ptr<HealthProber> prober_;
  std::unique_ptr<Replicator> replicator_;
  std::unique_ptr<GossipAgent> gossip_;  // null when disabled

  service::ServiceStats net_stats_;  // the router server's conn counters

  mutable std::mutex sessions_mu_;
  std::unordered_map<uint64_t, SessionRecord> sessions_;
  std::atomic<uint64_t> next_session_id_{1};

  std::mutex cancel_mu_;
  std::condition_variable cancel_cv_;
  std::deque<std::vector<std::pair<size_t, std::string>>> cancel_queue_;
  bool cancel_stopping_ = false;
  std::thread cancel_thread_;

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> sessions_opened_{0};
  std::atomic<uint64_t> failovers_total_{0};
  std::atomic<uint64_t> scatter_failures_total_{0};
  std::atomic<uint64_t> cancels_enqueued_{0};
};

}  // namespace xsq::cluster

#endif  // XSQ_CLUSTER_ROUTER_H_
