#include "cluster/health.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "net/client.h"

namespace xsq::cluster {

namespace {

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

Result<HttpProbeResult> HttpGet(const ShardAddress& address,
                                std::string_view path, uint64_t timeout_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  FdCloser closer{fd};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(address.port);
  if (::inet_pton(AF_INET, address.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad probe host: " + address.host);
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Status::ResourceExhausted(std::string("connect: ") +
                                     std::strerror(errno));
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready <= 0) return Status::DeadlineExceeded("probe connect timed out");
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return Status::ResourceExhausted(std::string("connect: ") +
                                       std::strerror(err));
    }
  }
  std::string request = "GET ";
  request.append(path);
  request += " HTTP/1.0\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        if (std::chrono::steady_clock::now() >= deadline) {
          return Status::DeadlineExceeded("probe send timed out");
        }
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, 10);
        continue;
      }
      return Status::ResourceExhausted(std::string("send: ") +
                                       std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  // HTTP/1.0 with Connection: close — read to EOF under the deadline.
  std::string raw;
  for (;;) {
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::DeadlineExceeded("probe read timed out");
    }
    auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (ready < 0 && errno != EINTR) {
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (ready <= 0) continue;
    char buf[16 * 1024];
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // EOF: response complete
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::ResourceExhausted(std::string("recv: ") +
                                       std::strerror(errno));
    }
    raw.append(buf, static_cast<size_t>(n));
  }
  // "HTTP/1.0 <code> <reason>\r\n<headers>\r\n\r\n<body>"
  size_t space = raw.find(' ');
  if (raw.rfind("HTTP/", 0) != 0 || space == std::string::npos) {
    return Status::ParseError("not an HTTP response");
  }
  HttpProbeResult result;
  result.code = 0;
  for (size_t i = space + 1; i < raw.size() && raw[i] >= '0' && raw[i] <= '9';
       ++i) {
    result.code = result.code * 10 + (raw[i] - '0');
  }
  if (result.code == 0) return Status::ParseError("bad HTTP status line");
  size_t body = raw.find("\r\n\r\n");
  result.body = body == std::string::npos ? std::string()
                                          : raw.substr(body + 4);
  return result;
}

HealthProber::HealthProber(std::vector<Backend*> backends, ProbeConfig config)
    : backends_(std::move(backends)),
      config_(config),
      consecutive_failures_(backends_.size(), 0),
      consecutive_successes_(backends_.size(), 0),
      jitter_state_(config.jitter_seed),
      last_metrics_(backends_.size()) {}

HealthProber::~HealthProber() { Stop(); }

void HealthProber::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stopping_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void HealthProber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void HealthProber::Apply(size_t i, ShardHealth health) {
  if (apply_) {
    apply_(i, health);
  } else {
    backends_[i]->set_health(health);
  }
}

void HealthProber::ProbeShard(size_t i) {
  Backend* backend = backends_[i];
  Result<HttpProbeResult> probe =
      HttpGet(backend->address(), "/healthz", config_.timeout_ms);
  if (!probe.ok()) {
    consecutive_successes_[i] = 0;
    if (++consecutive_failures_[i] >= config_.fail_threshold) {
      Apply(i, ShardHealth::kDead);
    }
    return;
  }
  consecutive_failures_[i] = 0;
  ShardHealth observed;
  if (probe->code == 200) {
    observed = ShardHealth::kServing;
  } else if (probe->body.rfind("shedding", 0) == 0) {
    observed = ShardHealth::kShedding;
  } else if (probe->body.rfind("draining", 0) == 0) {
    observed = ShardHealth::kDraining;
  } else {
    // Answered but unwell in a way we do not recognize; treat like
    // shedding — reachable, avoid for new work.
    observed = ShardHealth::kShedding;
  }
  if (backend->health() == ShardHealth::kDead &&
      ++consecutive_successes_[i] < config_.rise_threshold) {
    // Anti-flap hysteresis: a dead shard must answer rise_threshold
    // probes in a row before its keys remap back. Until then the ring
    // stays stable on the failover owner.
    return;
  }
  consecutive_successes_[i] = 0;
  Apply(i, observed);
  if (config_.scrape_metrics) {
    Result<HttpProbeResult> metrics =
        HttpGet(backend->address(), "/metrics", config_.timeout_ms);
    if (metrics.ok() && metrics->code == 200) {
      std::lock_guard<std::mutex> lock(mu_);
      last_metrics_[i] = std::move(metrics->body);
    }
  }
}

void HealthProber::ProbeNow() {
  // Serialized with the background loop so a pass is a pass: health
  // state after ProbeNow reflects one coherent sweep.
  std::lock_guard<std::mutex> probe_lock(probe_mu_);
  for (size_t i = 0; i < backends_.size(); ++i) ProbeShard(i);
  std::vector<bool> alive(backends_.size());
  for (size_t i = 0; i < backends_.size(); ++i) {
    alive[i] = backends_[i]->alive();
  }
  bool changed = alive != last_alive_;  // first pass: empty != full
  last_alive_ = std::move(alive);
  passes_.fetch_add(1, std::memory_order_relaxed);
  if (on_pass_) on_pass_(changed);
}

void HealthProber::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      // ±20% jitter per period: a fleet of routers sharing one shard
      // set drifts apart instead of probing in synchronized bursts.
      uint64_t wait_ms =
          net::JitterIntervalMs(config_.interval_ms, &jitter_state_);
      cv_.wait_for(lock, std::chrono::milliseconds(wait_ms),
                   [this] { return stopping_; });
      if (stopping_) return;
    }
    ProbeNow();
  }
}

std::string HealthProber::last_metrics(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return i < last_metrics_.size() ? last_metrics_[i] : std::string();
}

}  // namespace xsq::cluster
