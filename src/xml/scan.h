// Byte-classification primitives for the SAX scan loop.
//
// The parser's hot loops reduce to "find the next structural byte":
//   * character data stops at '<' (markup), '&' (entity) or ']'
//     (possible forbidden "]]>"),
//   * a tag body stops at '>' (end), '<' (error) or a quote
//     (attribute value),
// plus line/column bookkeeping (newlines and UTF-8 code points). Each
// primitive classifies 8 bytes per step with SWAR word tricks, or 16
// with SSE2 when built with -DXSQ_SIMD=ON (the default; OFF removes the
// SIMD path entirely). A plain byte-at-a-time scalar implementation is
// kept for differential testing: all three must produce identical
// results on every input, and tests/benches switch between them with
// SetScanImpl.
//
// SetScanImpl swaps global function pointers and must not race a live
// parse; it exists for single-threaded differential tests and benches.
#ifndef XSQ_XML_SCAN_H_
#define XSQ_XML_SCAN_H_

#include <cstddef>
#include <string_view>

namespace xsq::xml {

enum class ScanImpl {
  kScalar,  // byte-at-a-time reference
  kSwar,    // 8-byte word classification
  kSimd,    // 16-byte SSE2 classification (when compiled in)
};

// The best implementation this build supports (kSimd when compiled
// with XSQ_SIMD on SSE2 hardware, else kSwar). Parsers use it unless a
// test overrides.
ScanImpl BestScanImpl();
bool SimdScanAvailable();

// Globally selects the implementation behind the primitives below.
// Returns false (and changes nothing) if `impl` is not available in
// this build.
bool SetScanImpl(ScanImpl impl);
ScanImpl CurrentScanImpl();

// Index of the first byte in s[from..) that is '<', '&' or ']'; npos
// when none. The character-data scan.
size_t FindTextSpecial(std::string_view s, size_t from);

// Index of the first byte in s[from..) that is '>', '<', '"' or '\'';
// npos when none. The tag-body scan.
size_t FindTagSpecial(std::string_view s, size_t from);

// Number of '\n' bytes in `s`.
size_t CountNewlines(std::string_view s);

// Number of UTF-8 code points in `s`: bytes that are not continuation
// bytes (0x80..0xBF). Column positions count code points, so multi-byte
// characters advance the column by one.
size_t CountCodepoints(std::string_view s);

}  // namespace xsq::xml

#endif  // XSQ_XML_SCAN_H_
