// A from-scratch, non-validating, incremental (push) SAX parser.
//
// This is the substrate the paper obtains from Xerces/Expat: it turns a
// byte stream into the begin/text/end event stream of events.h. It is
// incremental: bytes may arrive in arbitrary chunks (Feed), which is what
// makes the downstream engines genuinely *streaming*. The parser enforces
// well-formedness (matched tags, single root, legal names, legal entity
// references) and reports errors with line/column positions (columns
// count code points, so multi-byte UTF-8 text does not skew them).
//
// Supported syntax: elements, attributes (single or double quoted),
// character data with the five predefined entities and numeric character
// references, CDATA sections, comments, processing instructions, the XML
// declaration, and DOCTYPE declarations (skipped, including an internal
// subset). DTD-defined entities are not expanded (non-validating).
//
// The scan loop classifies bytes in 8/16-byte gulps (xml/scan.h) and the
// event path is zero-copy: tag names, text and attribute payloads are
// delivered as string_views into the input chunk when possible, or into
// the parser's reusable arenas when a token spans chunks or needed
// entity decoding. Every view is valid only for the duration of the
// handler callback (see events.h).
#ifndef XSQ_XML_SAX_PARSER_H_
#define XSQ_XML_SAX_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/arena.h"
#include "xml/events.h"

namespace xsq::xml {

// Hard resource limits on a single parsed document. A hostile or
// pathological stream cannot be rejected by well-formedness alone —
// a billion nested elements are perfectly well-formed — so the parser
// enforces these bounds and fails with StatusCode::kLimitExceeded
// (distinct from kParseError: the input may be valid XML, it is merely
// bigger than this deployment will evaluate). 0 = unlimited for every
// field; a default-constructed ParserLimits changes no behavior.
struct ParserLimits {
  size_t max_depth = 0;             // open elements at once
  size_t max_attributes = 0;        // attributes on one element
  size_t max_name_length = 0;       // element/attribute name bytes
  size_t max_entity_expansion = 0;  // total bytes produced by entity
                                    // references in one document
  size_t max_doctype_bytes = 0;     // DOCTYPE declaration size (this is
                                    // the dtd/ internal-subset path)
  size_t max_retained_markup = 0;   // unconsumed markup retained across
                                    // Feeds: an unterminated comment,
                                    // CDATA section, PI or tag cannot
                                    // grow pending_ past this

  // The serving defaults: generous enough for every real corpus in the
  // bench suite (DBLP/NASA/PSD/SHAKE and the recursive generators), but
  // finite, so one hostile document cannot wedge a shared daemon.
  // service::ServiceConfig applies these unless overridden.
  static ParserLimits Serving() {
    ParserLimits limits;
    limits.max_depth = 4096;
    limits.max_attributes = 1024;
    limits.max_name_length = 4096;
    limits.max_entity_expansion = 64u << 20;  // 64 MiB
    limits.max_doctype_bytes = 4u << 20;      // 4 MiB internal subset
    limits.max_retained_markup = 64u << 20;   // 64 MiB (legit CDATA fits)
    return limits;
  }
};

class SaxParser {
 public:
  // `handler` must outlive the parser and is not owned. `limits`
  // defaults to unlimited (library behavior); servers pass
  // ParserLimits::Serving() or their own bounds.
  explicit SaxParser(SaxHandler* handler, ParserLimits limits = {});

  SaxParser(const SaxParser&) = delete;
  SaxParser& operator=(const SaxParser&) = delete;

  // Consumes the next chunk of the document. Events for every construct
  // that is complete within the data seen so far are delivered to the
  // handler before Feed returns. Incomplete trailing constructs are
  // retained and resumed by the next Feed.
  Status Feed(std::string_view chunk);

  // Declares end-of-input. Fails if the document is incomplete.
  Status Finish();

  // Parses a complete document in one call (Feed + Finish).
  Status Parse(std::string_view document);

  // Restores the parser to its initial state for a new document.
  void Reset();

  // Total bytes accepted via Feed so far.
  size_t bytes_consumed() const { return bytes_consumed_; }

  // Position used in error messages; 1-based. Columns count code
  // points: a multi-byte UTF-8 character advances the column by one.
  int line() const { return line_; }
  int column() const { return column_; }

  // Current element nesting depth (root element = 1 while open).
  int depth() const { return static_cast<int>(open_elements_.size()); }

  // Bytes the parser itself is holding between Feeds: the unconsumed
  // pending tail plus the live arena storage (open-element names,
  // text/attribute scratch). Sessions count this against their memory
  // budget next to the engine's buffered items.
  size_t retained_bytes() const {
    return pending_.size() + stack_arena_.allocated_bytes() +
           scratch_arena_.allocated_bytes();
  }

  // Redirects event delivery to `handler` from the next Feed on. The
  // handler is not part of the parse state, so swapping between chunks
  // of one document is safe; callers that interpose a wrapper (see
  // core::StreamingQuery's phase shim) use this to pay the wrapper's
  // per-event cost only on sampled chunks. `handler` must outlive the
  // parser and must forward to the same underlying consumer, or events
  // will be split across handlers mid-document.
  void set_handler(SaxHandler* handler) { handler_ = handler; }

  // Replaces the resource limits. Takes effect immediately; call
  // between documents to avoid judging a half-parsed document by two
  // different rule sets.
  void set_limits(const ParserLimits& limits) { limits_ = limits; }
  const ParserLimits& limits() const { return limits_; }

 private:
  enum class Progress { kOk, kNeedMore };

  // Where the pending text run's bytes live. kDirect text is a single
  // contiguous entity-free span of the current input buffer — delivered
  // with zero copies when the run flushes within the same Feed, and
  // materialized into the scratch arena only when the run survives past
  // the buffer (MaterializeText).
  enum class TextState { kNone, kDirect, kOwned };

  Status ParseBuffer(std::string_view data, size_t* consumed, bool at_eof);
  Status ParseTextRun(std::string_view data, size_t* pos, bool at_eof);
  Status HandleMarkup(std::string_view data, size_t* consumed,
                      Progress* progress);
  Status ParseElementTag(std::string_view markup_body, bool self_closing);
  Status ParseEndTag(std::string_view markup_body);
  Status FlushText();
  void AppendRawText(std::string_view raw);
  void MaterializeText();
  Status AppendEntity(std::string_view name, ArenaString* out);
  Status DecodeEntities(std::string_view raw, ArenaString* out);
  Status ChargeTextRun(size_t decoded_bytes, bool saw_reference);
  // Position accounting is deferred off the hot path: during
  // ParseBuffer, line_/column_/bytes_consumed_ lag behind at `anchor_`
  // (an offset into buf_, the buffer being parsed). Hot paths only
  // store `error_anchor_` — the offset an error would point at — and
  // SyncPosition catches the counters up in one batched scan at buffer
  // end or, via ErrorHere, when an error is actually being formatted.
  void SyncPosition(size_t offset);
  Status ErrorHere(const std::string& message);
  Status LimitErrorHere(const std::string& message);

  SaxHandler* handler_;
  ParserLimits limits_;
  size_t entity_expanded_bytes_ = 0;  // per document, against the budget
  std::string pending_;               // unconsumed tail from prior Feed

  // Pending coalesced character data. Direct text aliases the current
  // input buffer; owned text lives in scratch_arena_ via text_.
  TextState text_state_ = TextState::kNone;
  bool has_pending_text_ = false;  // a text run is in progress (it may
                                   // be empty: <![CDATA[]]>)
  std::string_view text_direct_;
  Arena scratch_arena_;  // decoded text + attribute values
  ArenaString text_{&scratch_arena_};

  // Open-element names are stacked in stack_arena_; each entry rewinds
  // the arena to `mark` when popped, so storage is bounded by depth.
  struct OpenElement {
    std::string_view name;
    Arena::Mark mark;
  };
  Arena stack_arena_;
  std::vector<OpenElement> open_elements_;

  std::vector<Attribute> attributes_;  // scratch, reused per begin tag

  // Deferred-position state, valid only while ParseBuffer runs.
  std::string_view buf_;     // the buffer being parsed
  size_t anchor_ = 0;        // offset up to which line_/column_ are current
  size_t error_anchor_ = 0;  // offset an error right now would point at

  bool seen_root_ = false;
  bool document_begun_ = false;
  bool bom_checked_ = false;
  bool finished_ = false;
  size_t bytes_consumed_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// Reads a whole file and parses it. Convenience for tools and tests.
Status ParseFile(const std::string& path, SaxHandler* handler);

}  // namespace xsq::xml

#endif  // XSQ_XML_SAX_PARSER_H_
