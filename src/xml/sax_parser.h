// A from-scratch, non-validating, incremental (push) SAX parser.
//
// This is the substrate the paper obtains from Xerces/Expat: it turns a
// byte stream into the begin/text/end event stream of events.h. It is
// incremental: bytes may arrive in arbitrary chunks (Feed), which is what
// makes the downstream engines genuinely *streaming*. The parser enforces
// well-formedness (matched tags, single root, legal names, legal entity
// references) and reports errors with line/column positions.
//
// Supported syntax: elements, attributes (single or double quoted),
// character data with the five predefined entities and numeric character
// references, CDATA sections, comments, processing instructions, the XML
// declaration, and DOCTYPE declarations (skipped, including an internal
// subset). DTD-defined entities are not expanded (non-validating).
#ifndef XSQ_XML_SAX_PARSER_H_
#define XSQ_XML_SAX_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/events.h"

namespace xsq::xml {

// Hard resource limits on a single parsed document. A hostile or
// pathological stream cannot be rejected by well-formedness alone —
// a billion nested elements are perfectly well-formed — so the parser
// enforces these bounds and fails with StatusCode::kLimitExceeded
// (distinct from kParseError: the input may be valid XML, it is merely
// bigger than this deployment will evaluate). 0 = unlimited for every
// field; a default-constructed ParserLimits changes no behavior.
struct ParserLimits {
  size_t max_depth = 0;             // open elements at once
  size_t max_attributes = 0;        // attributes on one element
  size_t max_name_length = 0;       // element/attribute name bytes
  size_t max_entity_expansion = 0;  // total bytes produced by entity
                                    // references in one document
  size_t max_doctype_bytes = 0;     // DOCTYPE declaration size (this is
                                    // the dtd/ internal-subset path)

  // The serving defaults: generous enough for every real corpus in the
  // bench suite (DBLP/NASA/PSD/SHAKE and the recursive generators), but
  // finite, so one hostile document cannot wedge a shared daemon.
  // service::ServiceConfig applies these unless overridden.
  static ParserLimits Serving() {
    ParserLimits limits;
    limits.max_depth = 4096;
    limits.max_attributes = 1024;
    limits.max_name_length = 4096;
    limits.max_entity_expansion = 64u << 20;  // 64 MiB
    limits.max_doctype_bytes = 4u << 20;      // 4 MiB internal subset
    return limits;
  }
};

class SaxParser {
 public:
  // `handler` must outlive the parser and is not owned. `limits`
  // defaults to unlimited (library behavior); servers pass
  // ParserLimits::Serving() or their own bounds.
  explicit SaxParser(SaxHandler* handler, ParserLimits limits = {});

  SaxParser(const SaxParser&) = delete;
  SaxParser& operator=(const SaxParser&) = delete;

  // Consumes the next chunk of the document. Events for every construct
  // that is complete within the data seen so far are delivered to the
  // handler before Feed returns. Incomplete trailing constructs are
  // retained and resumed by the next Feed.
  Status Feed(std::string_view chunk);

  // Declares end-of-input. Fails if the document is incomplete.
  Status Finish();

  // Parses a complete document in one call (Feed + Finish).
  Status Parse(std::string_view document);

  // Restores the parser to its initial state for a new document.
  void Reset();

  // Total bytes accepted via Feed so far.
  size_t bytes_consumed() const { return bytes_consumed_; }

  // Position used in error messages; 1-based.
  int line() const { return line_; }
  int column() const { return column_; }

  // Current element nesting depth (root element = 1 while open).
  int depth() const { return static_cast<int>(open_elements_.size()); }

  // Redirects event delivery to `handler` from the next Feed on. The
  // handler is not part of the parse state, so swapping between chunks
  // of one document is safe; callers that interpose a wrapper (see
  // core::StreamingQuery's phase shim) use this to pay the wrapper's
  // per-event cost only on sampled chunks. `handler` must outlive the
  // parser and must forward to the same underlying consumer, or events
  // will be split across handlers mid-document.
  void set_handler(SaxHandler* handler) { handler_ = handler; }

  // Replaces the resource limits. Takes effect immediately; call
  // between documents to avoid judging a half-parsed document by two
  // different rule sets.
  void set_limits(const ParserLimits& limits) { limits_ = limits; }
  const ParserLimits& limits() const { return limits_; }

 private:
  enum class Progress { kOk, kNeedMore };

  Status ParseBuffer(std::string_view data, size_t* consumed, bool at_eof);
  Status HandleMarkup(std::string_view data, size_t* consumed,
                      Progress* progress);
  Status ParseElementTag(std::string_view markup_body, bool self_closing);
  Status ParseEndTag(std::string_view markup_body);
  Status FlushText();
  Status DecodeEntities(std::string_view raw, std::string* out);
  Status ErrorHere(const std::string& message) const;
  Status LimitErrorHere(const std::string& message) const;
  void AdvancePosition(std::string_view consumed_text);

  SaxHandler* handler_;
  ParserLimits limits_;
  size_t entity_expanded_bytes_ = 0;  // per document, against the budget
  std::string pending_;                   // unconsumed tail from prior Feed
  std::string text_;                      // decoded pending character data
  bool has_pending_text_ = false;         // a text run is in progress
  std::vector<std::string> open_elements_;
  std::vector<Attribute> attributes_;     // scratch, reused per begin tag
  bool seen_root_ = false;
  bool document_begun_ = false;
  bool bom_checked_ = false;
  bool finished_ = false;
  size_t bytes_consumed_ = 0;
  int line_ = 1;
  int column_ = 1;
};

// Reads a whole file and parses it. Convenience for tools and tests.
Status ParseFile(const std::string& path, SaxHandler* handler);

}  // namespace xsq::xml

#endif  // XSQ_XML_SAX_PARSER_H_
