// SAX data model for XML streams (paper Section 2.1).
//
// A stream is a sequence of begin / end / text events extended with the
// depth of the corresponding element. The root element has depth 1; a
// text event carries the tag and depth of its enclosing element.
#ifndef XSQ_XML_EVENTS_H_
#define XSQ_XML_EVENTS_H_

#include <string>
#include <string_view>
#include <vector>

namespace xsq::xml {

// One attribute of a begin event. Values are fully entity-decoded.
//
// Both fields are views into parser-owned storage (the input chunk, or
// the parser's decode arena when the value contained entity references)
// and are valid only for the duration of the OnBegin callback, exactly
// like every other string_view the handler receives. Handlers that keep
// attributes past the callback copy them into OwnedAttribute.
struct Attribute {
  std::string_view name;
  std::string_view value;
};

// A materialized attribute, for consumers that buffer begin events past
// the callback (DOM nodes, recorded Events, XSM's inter-stage tokens).
struct OwnedAttribute {
  std::string name;
  std::string value;

  OwnedAttribute() = default;
  OwnedAttribute(std::string n, std::string v)
      : name(std::move(n)), value(std::move(v)) {}
  explicit OwnedAttribute(const Attribute& a) : name(a.name), value(a.value) {}
};

// Deep-copies callback-scoped attribute views into owned storage.
inline std::vector<OwnedAttribute> CopyAttributes(
    const std::vector<Attribute>& attributes) {
  std::vector<OwnedAttribute> owned;
  owned.reserve(attributes.size());
  for (const Attribute& a : attributes) owned.emplace_back(a);
  return owned;
}

// Builds callback-style views over owned attributes (replaying recorded
// events back through a SaxHandler). The views alias `owned`, which must
// stay alive and unmodified while they are in use.
inline std::vector<Attribute> AttributeViews(
    const std::vector<OwnedAttribute>& owned) {
  std::vector<Attribute> views;
  views.reserve(owned.size());
  for (const OwnedAttribute& a : owned) views.push_back({a.name, a.value});
  return views;
}

// Receives the event stream produced by SaxParser. All string_views are
// only valid for the duration of the callback; handlers that need the
// data later must copy it (this is the read-once discipline of streaming
// data the paper is built around).
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  // Called once before the first event of a document.
  virtual void OnDocumentBegin() {}

  // Called for a <!DOCTYPE name [internal subset]> declaration, before
  // the root element's begin event. `internal_subset` is the raw text
  // between '[' and ']' (empty when absent); it can be handed to
  // dtd::Dtd::Parse for validation or schema-aware optimization.
  virtual void OnDoctype(std::string_view /*name*/,
                         std::string_view /*internal_subset*/) {}

  // Begin event (tag, attrs, depth). Root element has depth == 1.
  virtual void OnBegin(std::string_view tag,
                       const std::vector<Attribute>& attributes,
                       int depth) = 0;

  // End event (/tag, depth).
  virtual void OnEnd(std::string_view tag, int depth) = 0;

  // Text event (tag, text(), depth): text content of the element `tag`
  // at depth `depth`. Consecutive character data (including CDATA and
  // data separated only by comments/PIs) is coalesced into one event, so
  // the event sequence is independent of input chunking.
  virtual void OnText(std::string_view enclosing_tag, std::string_view text,
                      int depth) = 0;

  // Called once after the last end event.
  virtual void OnDocumentEnd() {}
};

// Materialized event, used by tests and by engines that buffer. Covers
// the complete SaxHandler surface — document markers and doctype
// included — so recorded streams can be compared in full (the tape
// subsystem's round-trip tests rely on this).
struct Event {
  enum class Type {
    kBegin,
    kEnd,
    kText,
    kDocumentBegin,
    kDocumentEnd,
    kDoctype,
  };

  Type type;
  std::string tag;                     // element tag (enclosing tag for
                                       // text, doctype name for doctype)
  std::vector<OwnedAttribute> attributes;  // begin only
  std::string text;                    // text content / doctype subset
  int depth = 0;

  static Event Begin(std::string tag, std::vector<OwnedAttribute> attrs,
                     int depth) {
    Event e;
    e.type = Type::kBegin;
    e.tag = std::move(tag);
    e.attributes = std::move(attrs);
    e.depth = depth;
    return e;
  }
  static Event End(std::string tag, int depth) {
    Event e;
    e.type = Type::kEnd;
    e.tag = std::move(tag);
    e.depth = depth;
    return e;
  }
  static Event Text(std::string tag, std::string text, int depth) {
    Event e;
    e.type = Type::kText;
    e.tag = std::move(tag);
    e.text = std::move(text);
    e.depth = depth;
    return e;
  }
  static Event DocumentBegin() {
    Event e;
    e.type = Type::kDocumentBegin;
    return e;
  }
  static Event DocumentEnd() {
    Event e;
    e.type = Type::kDocumentEnd;
    return e;
  }
  static Event Doctype(std::string name, std::string internal_subset) {
    Event e;
    e.type = Type::kDoctype;
    e.tag = std::move(name);
    e.text = std::move(internal_subset);
    return e;
  }

  bool IsElementEvent() const {
    return type == Type::kBegin || type == Type::kEnd || type == Type::kText;
  }

  bool operator==(const Event& other) const {
    if (type != other.type || tag != other.tag || text != other.text ||
        depth != other.depth ||
        attributes.size() != other.attributes.size()) {
      return false;
    }
    for (size_t i = 0; i < attributes.size(); ++i) {
      if (attributes[i].name != other.attributes[i].name ||
          attributes[i].value != other.attributes[i].value) {
        return false;
      }
    }
    return true;
  }
};

// Fans one event stream out to several handlers in registration order.
// Lets independent consumers (e.g. a query engine and a DTD validator)
// share a single parse of the stream.
class TeeHandler : public SaxHandler {
 public:
  TeeHandler() = default;
  explicit TeeHandler(std::vector<SaxHandler*> targets)
      : targets_(std::move(targets)) {}

  // `target` is not owned and must outlive the tee.
  void AddTarget(SaxHandler* target) { targets_.push_back(target); }

  void OnDocumentBegin() override {
    for (SaxHandler* t : targets_) t->OnDocumentBegin();
  }
  void OnDoctype(std::string_view name,
                 std::string_view internal_subset) override {
    for (SaxHandler* t : targets_) t->OnDoctype(name, internal_subset);
  }
  void OnBegin(std::string_view tag, const std::vector<Attribute>& attributes,
               int depth) override {
    for (SaxHandler* t : targets_) t->OnBegin(tag, attributes, depth);
  }
  void OnEnd(std::string_view tag, int depth) override {
    for (SaxHandler* t : targets_) t->OnEnd(tag, depth);
  }
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override {
    for (SaxHandler* t : targets_) t->OnText(enclosing_tag, text, depth);
  }
  void OnDocumentEnd() override {
    for (SaxHandler* t : targets_) t->OnDocumentEnd();
  }

 private:
  std::vector<SaxHandler*> targets_;
};

// A handler that records every event — including document markers and
// doctype declarations, so `events` is the complete stream and two
// recorded parses can be compared element-for-element.
class RecordingHandler : public SaxHandler {
 public:
  void OnDocumentBegin() override { events.push_back(Event::DocumentBegin()); }
  void OnDoctype(std::string_view name,
                 std::string_view internal_subset) override {
    events.push_back(
        Event::Doctype(std::string(name), std::string(internal_subset)));
  }
  void OnBegin(std::string_view tag, const std::vector<Attribute>& attributes,
               int depth) override {
    events.push_back(
        Event::Begin(std::string(tag), CopyAttributes(attributes), depth));
  }
  void OnEnd(std::string_view tag, int depth) override {
    events.push_back(Event::End(std::string(tag), depth));
  }
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override {
    events.push_back(
        Event::Text(std::string(enclosing_tag), std::string(text), depth));
  }
  void OnDocumentEnd() override { events.push_back(Event::DocumentEnd()); }

  // The begin/end/text subsequence, for consumers that only care about
  // element structure.
  std::vector<Event> element_events() const {
    std::vector<Event> filtered;
    for (const Event& event : events) {
      if (event.IsElementEvent()) filtered.push_back(event);
    }
    return filtered;
  }

  std::vector<Event> events;
};

}  // namespace xsq::xml

#endif  // XSQ_XML_EVENTS_H_
