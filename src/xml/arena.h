// Bump-allocation arena for the parser's per-document transient state
// (the query_arena idiom): open-element names, decoded attribute values
// and coalesced text live in reusable blocks instead of one std::string
// allocation per element/attribute/run.
//
// Allocation discipline:
//   * Alloc/Store never move previously returned memory, so views into
//     the arena stay valid until the region holding them is rewound.
//   * Mark/Rewind give stack-shaped reclamation: the open-element stack
//     marks on push and rewinds on pop, so a document's name storage is
//     bounded by its *depth*, not its element count.
//   * Reset (between documents) keeps one block of the high-water size
//     (capped) so steady-state parsing allocates nothing.
//
// Not thread-safe; each parser owns its arenas.
#ifndef XSQ_XML_ARENA_H_
#define XSQ_XML_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

namespace xsq::xml {

class Arena {
 public:
  static constexpr size_t kMinBlockBytes = 4096;
  // Reset() retains at most this much capacity between documents; one
  // pathological document does not pin its peak forever.
  static constexpr size_t kMaxRetainedBytes = 256 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `n` writable bytes. The returned region is stable until the
  // arena is rewound past it or Reset.
  char* Alloc(size_t n) {
    if (blocks_.empty() || blocks_[block_].size - used_ < n) Grow(n);
    char* out = blocks_[block_].data.get() + used_;
    used_ += n;
    return out;
  }

  // Copies `s` into the arena and returns the stable view.
  std::string_view Store(std::string_view s) {
    char* dst = Alloc(s.size());
    std::memcpy(dst, s.data(), s.size());
    return std::string_view(dst, s.size());
  }

  // Watermark for stack-shaped reclamation. Only valid to Rewind to a
  // mark taken from this arena with no intervening Rewind below it.
  struct Mark {
    size_t block = 0;
    size_t used = 0;
  };
  Mark mark() const { return Mark{block_, used_}; }
  void Rewind(Mark m) {
    block_ = m.block;
    used_ = m.used;
  }
  void RewindAll() {
    block_ = 0;
    used_ = 0;
  }

  // Between documents: keep one block sized to the (capped) high-water
  // mark so the next document reuses it without allocating.
  void Reset() {
    size_t high_water = 0;
    for (const Block& b : blocks_) high_water += b.size;
    if (blocks_.size() > 1 || high_water > kMaxRetainedBytes) {
      size_t keep = high_water < kMaxRetainedBytes ? high_water
                                                   : kMaxRetainedBytes;
      if (keep < kMinBlockBytes) keep = kMinBlockBytes;
      blocks_.clear();
      blocks_.push_back(Block{std::make_unique<char[]>(keep), keep});
    }
    block_ = 0;
    used_ = 0;
  }

  // Bytes currently allocated (live), for buffer accounting.
  size_t allocated_bytes() const {
    size_t total = 0;
    for (size_t i = 0; i < block_ && i < blocks_.size(); ++i) {
      total += blocks_[i].size;
    }
    return total + used_;
  }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  void Grow(size_t n) {
    // Advance into an existing block if one fits; otherwise append a new
    // block that doubles the arena (at least).
    if (!blocks_.empty()) {
      size_t next = block_ + 1;
      if (next < blocks_.size() && blocks_[next].size >= n) {
        block_ = next;
        used_ = 0;
        return;
      }
      // Drop too-small successor blocks (stale from a previous shape).
      blocks_.resize(block_ + 1);
    }
    size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    size_t size = total < kMinBlockBytes ? kMinBlockBytes : total;
    if (size < n) size = n;
    blocks_.push_back(Block{std::make_unique<char[]>(size), size});
    block_ = blocks_.size() - 1;
    used_ = 0;
  }

  std::vector<Block> blocks_;
  size_t block_ = 0;  // current block index
  size_t used_ = 0;   // bytes used in the current block
};

// A contiguous growable byte buffer carved from an Arena: the parser's
// decoded-entity scratch and text-coalescing buffer. Growth reallocates
// within the arena (geometric), so the final view is contiguous; stale
// regions are reclaimed when the owner rewinds the arena.
class ArenaString {
 public:
  explicit ArenaString(Arena* arena) : arena_(arena) {}

  void Clear() {
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  void Append(std::string_view s) {
    if (size_ + s.size() > capacity_) Reserve(size_ + s.size());
    std::memcpy(data_ + size_, s.data(), s.size());
    size_ += s.size();
  }

  void PushBack(char c) {
    if (size_ + 1 > capacity_) Reserve(size_ + 1);
    data_[size_++] = c;
  }

  std::string_view view() const { return std::string_view(data_, size_); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Reserve(size_t need) {
    size_t cap = capacity_ < 64 ? 64 : capacity_ * 2;
    if (cap < need) cap = need;
    char* fresh = arena_->Alloc(cap);
    if (size_ != 0) std::memcpy(fresh, data_, size_);
    data_ = fresh;
    capacity_ = cap;
  }

  Arena* arena_;
  char* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace xsq::xml

#endif  // XSQ_XML_ARENA_H_
