#include "xml/scan.h"

#include <cstdint>
#include <cstring>

#if defined(XSQ_SIMD_ENABLED) && (defined(__SSE2__) || defined(_M_X64))
#define XSQ_SCAN_HAVE_SSE2 1
#include <emmintrin.h>
#else
#define XSQ_SCAN_HAVE_SSE2 0
#endif

namespace xsq::xml {

namespace {

constexpr size_t npos = std::string_view::npos;

// ------------------------------------------------------------- scalar

template <char A, char B, char C>
size_t FindAny3Scalar(std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    char c = s[i];
    if (c == A || c == B || c == C) return i;
  }
  return npos;
}

template <char A, char B, char C, char D>
size_t FindAny4Scalar(std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    char c = s[i];
    if (c == A || c == B || c == C || c == D) return i;
  }
  return npos;
}

size_t FindTextSpecialScalar(std::string_view s, size_t from) {
  return FindAny3Scalar<'<', '&', ']'>(s, from);
}

size_t FindTagSpecialScalar(std::string_view s, size_t from) {
  return FindAny4Scalar<'>', '<', '"', '\''>(s, from);
}

size_t CountNewlinesScalar(std::string_view s) {
  size_t n = 0;
  for (char c : s) n += c == '\n' ? 1 : 0;
  return n;
}

size_t CountCodepointsScalar(std::string_view s) {
  size_t n = 0;
  for (char c : s) {
    n += (static_cast<unsigned char>(c) & 0xc0) != 0x80 ? 1 : 0;
  }
  return n;
}

// --------------------------------------------------------------- SWAR
//
// The classic zero-byte trick: for word w, (w - 0x01..01) & ~w & 0x80..80
// has the high bit set exactly in bytes of w that are zero. XOR-ing the
// word with a broadcast byte turns "find byte c" into "find zero byte";
// OR-ing the per-target masks classifies against the whole set in one
// pass. Loads are memcpy (no alignment assumption); the first match
// index is the lowest set high bit (little-endian: count trailing
// zeros / 8).

constexpr uint64_t kOnes = 0x0101010101010101ull;
constexpr uint64_t kHighs = 0x8080808080808080ull;

inline uint64_t Broadcast(char c) {
  return kOnes * static_cast<unsigned char>(c);
}

inline uint64_t ZeroBytes(uint64_t w) { return (w - kOnes) & ~w & kHighs; }

inline uint64_t LoadWord(const char* p) {
  uint64_t w;
  std::memcpy(&w, p, sizeof(w));
  return w;
}

template <char A, char B, char C>
size_t FindAny3Swar(std::string_view s, size_t from) {
  const char* data = s.data();
  size_t i = from;
  const size_t n = s.size();
  while (i + 8 <= n) {
    uint64_t w = LoadWord(data + i);
    uint64_t hit = ZeroBytes(w ^ Broadcast(A)) | ZeroBytes(w ^ Broadcast(B)) |
                   ZeroBytes(w ^ Broadcast(C));
    if (hit != 0) {
      return i + (static_cast<size_t>(__builtin_ctzll(hit)) >> 3);
    }
    i += 8;
  }
  return FindAny3Scalar<A, B, C>(s, i);
}

template <char A, char B, char C, char D>
size_t FindAny4Swar(std::string_view s, size_t from) {
  const char* data = s.data();
  size_t i = from;
  const size_t n = s.size();
  while (i + 8 <= n) {
    uint64_t w = LoadWord(data + i);
    uint64_t hit = ZeroBytes(w ^ Broadcast(A)) | ZeroBytes(w ^ Broadcast(B)) |
                   ZeroBytes(w ^ Broadcast(C)) | ZeroBytes(w ^ Broadcast(D));
    if (hit != 0) {
      return i + (static_cast<size_t>(__builtin_ctzll(hit)) >> 3);
    }
    i += 8;
  }
  return FindAny4Scalar<A, B, C, D>(s, i);
}

size_t FindTextSpecialSwar(std::string_view s, size_t from) {
  return FindAny3Swar<'<', '&', ']'>(s, from);
}

size_t FindTagSpecialSwar(std::string_view s, size_t from) {
  return FindAny4Swar<'>', '<', '"', '\''>(s, from);
}

// Counting avoids popcount (a libcall on baseline x86-64 builds): each
// matching byte contributes 0x80 to the hit mask, so `hit >> 7` adds one
// per match into each 8-bit lane. The fold (acc * kOnes, top byte) sums
// all eight lanes, so the *total* per block must stay below 256: blocks
// are capped at 31 words (8 lanes x 31 = 248 max).
template <typename MatchFn>
size_t CountBytesSwar(std::string_view s, MatchFn match,
                      bool (*scalar_match)(unsigned char)) {
  const char* data = s.data();
  const size_t n = s.size();
  size_t i = 0;
  size_t count = 0;
  while (i + 8 <= n) {
    uint64_t acc = 0;
    size_t block_end = i + 8 * 31;
    if (block_end > n) block_end = n;
    for (; i + 8 <= block_end; i += 8) {
      acc += match(LoadWord(data + i)) >> 7;
    }
    count += (acc * kOnes) >> 56;
  }
  for (; i < n; ++i) {
    count += scalar_match(static_cast<unsigned char>(data[i])) ? 1 : 0;
  }
  return count;
}

size_t CountNewlinesSwar(std::string_view s) {
  return CountBytesSwar(
      s, [](uint64_t w) { return ZeroBytes(w ^ Broadcast('\n')); },
      [](unsigned char c) { return c == '\n'; });
}

size_t CountCodepointsSwar(std::string_view s) {
  // A continuation byte has the bit pattern 10xxxxxx: masking with 0xC0
  // and XOR-ing with 0x80 yields zero exactly for continuation bytes.
  size_t continuations = CountBytesSwar(
      s, [](uint64_t w) { return ZeroBytes((w & (kOnes * 0xc0)) ^ kHighs); },
      [](unsigned char c) { return (c & 0xc0) == 0x80; });
  return s.size() - continuations;
}

// --------------------------------------------------------------- SSE2

#if XSQ_SCAN_HAVE_SSE2

template <char A, char B, char C>
size_t FindAny3Simd(std::string_view s, size_t from) {
  const char* data = s.data();
  size_t i = from;
  const size_t n = s.size();
  const __m128i va = _mm_set1_epi8(A);
  const __m128i vb = _mm_set1_epi8(B);
  const __m128i vc = _mm_set1_epi8(C);
  while (i + 16 <= n) {
    __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    __m128i hit = _mm_or_si128(_mm_or_si128(_mm_cmpeq_epi8(w, va),
                                            _mm_cmpeq_epi8(w, vb)),
                               _mm_cmpeq_epi8(w, vc));
    int mask = _mm_movemask_epi8(hit);
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
    i += 16;
  }
  return FindAny3Scalar<A, B, C>(s, i);
}

template <char A, char B, char C, char D>
size_t FindAny4Simd(std::string_view s, size_t from) {
  const char* data = s.data();
  size_t i = from;
  const size_t n = s.size();
  const __m128i va = _mm_set1_epi8(A);
  const __m128i vb = _mm_set1_epi8(B);
  const __m128i vc = _mm_set1_epi8(C);
  const __m128i vd = _mm_set1_epi8(D);
  while (i + 16 <= n) {
    __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    __m128i hit = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(w, va), _mm_cmpeq_epi8(w, vb)),
        _mm_or_si128(_mm_cmpeq_epi8(w, vc), _mm_cmpeq_epi8(w, vd)));
    int mask = _mm_movemask_epi8(hit);
    if (mask != 0) {
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
    i += 16;
  }
  return FindAny4Scalar<A, B, C, D>(s, i);
}

size_t FindTextSpecialSimd(std::string_view s, size_t from) {
  return FindAny3Simd<'<', '&', ']'>(s, from);
}

size_t FindTagSpecialSimd(std::string_view s, size_t from) {
  return FindAny4Simd<'>', '<', '"', '\''>(s, from);
}

// Counting via PSADBW instead of movemask+popcount: _mm_cmpeq_epi8
// yields -1 per matching byte, so subtracting it accumulates one per
// match into each 8-bit lane. Lanes hold up to 255 vectors; blocks are
// folded with one _mm_sad_epu8 (two 16-bit lane sums, max 8*255 each).
template <typename MatchFn>
size_t CountBytesSimd(std::string_view s, MatchFn match,
                      bool (*scalar_match)(unsigned char)) {
  const char* data = s.data();
  const size_t n = s.size();
  const __m128i zero = _mm_setzero_si128();
  size_t i = 0;
  size_t count = 0;
  while (i + 16 <= n) {
    __m128i acc = zero;
    size_t block_end = i + 16 * 255;
    if (block_end > n) block_end = n;
    for (; i + 16 <= block_end; i += 16) {
      __m128i w = _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
      acc = _mm_sub_epi8(acc, match(w));
    }
    __m128i sums = _mm_sad_epu8(acc, zero);
    count += static_cast<size_t>(_mm_cvtsi128_si64(sums)) +
             static_cast<size_t>(_mm_extract_epi16(sums, 4));
  }
  for (; i < n; ++i) {
    count += scalar_match(static_cast<unsigned char>(data[i])) ? 1 : 0;
  }
  return count;
}

size_t CountNewlinesSimd(std::string_view s) {
  const __m128i nl = _mm_set1_epi8('\n');
  return CountBytesSimd(
      s, [nl](__m128i w) { return _mm_cmpeq_epi8(w, nl); },
      [](unsigned char c) { return c == '\n'; });
}

size_t CountCodepointsSimd(std::string_view s) {
  const __m128i mask_c0 = _mm_set1_epi8(static_cast<char>(0xc0));
  const __m128i cont = _mm_set1_epi8(static_cast<char>(0x80));
  size_t continuations = CountBytesSimd(
      s,
      [mask_c0, cont](__m128i w) {
        return _mm_cmpeq_epi8(_mm_and_si128(w, mask_c0), cont);
      },
      [](unsigned char c) { return (c & 0xc0) == 0x80; });
  return s.size() - continuations;
}

#endif  // XSQ_SCAN_HAVE_SSE2

// ----------------------------------------------------------- dispatch

struct ScanVtable {
  size_t (*find_text_special)(std::string_view, size_t);
  size_t (*find_tag_special)(std::string_view, size_t);
  size_t (*count_newlines)(std::string_view);
  size_t (*count_codepoints)(std::string_view);
};

constexpr ScanVtable kScalarVtable = {
    FindTextSpecialScalar, FindTagSpecialScalar, CountNewlinesScalar,
    CountCodepointsScalar};
constexpr ScanVtable kSwarVtable = {FindTextSpecialSwar, FindTagSpecialSwar,
                                    CountNewlinesSwar, CountCodepointsSwar};
#if XSQ_SCAN_HAVE_SSE2
constexpr ScanVtable kSimdVtable = {FindTextSpecialSimd, FindTagSpecialSimd,
                                    CountNewlinesSimd, CountCodepointsSimd};
#endif

const ScanVtable* active_vtable =
#if XSQ_SCAN_HAVE_SSE2
    &kSimdVtable;
#else
    &kSwarVtable;
#endif
ScanImpl active_impl =
#if XSQ_SCAN_HAVE_SSE2
    ScanImpl::kSimd;
#else
    ScanImpl::kSwar;
#endif

}  // namespace

ScanImpl BestScanImpl() {
#if XSQ_SCAN_HAVE_SSE2
  return ScanImpl::kSimd;
#else
  return ScanImpl::kSwar;
#endif
}

bool SimdScanAvailable() { return XSQ_SCAN_HAVE_SSE2 != 0; }

bool SetScanImpl(ScanImpl impl) {
  switch (impl) {
    case ScanImpl::kScalar:
      active_vtable = &kScalarVtable;
      break;
    case ScanImpl::kSwar:
      active_vtable = &kSwarVtable;
      break;
    case ScanImpl::kSimd:
#if XSQ_SCAN_HAVE_SSE2
      active_vtable = &kSimdVtable;
      break;
#else
      return false;
#endif
  }
  active_impl = impl;
  return true;
}

ScanImpl CurrentScanImpl() { return active_impl; }

size_t FindTextSpecial(std::string_view s, size_t from) {
  return active_vtable->find_text_special(s, from);
}

size_t FindTagSpecial(std::string_view s, size_t from) {
  return active_vtable->find_tag_special(s, from);
}

size_t CountNewlines(std::string_view s) {
  return active_vtable->count_newlines(s);
}

size_t CountCodepoints(std::string_view s) {
  return active_vtable->count_codepoints(s);
}

}  // namespace xsq::xml
