#include "xml/sax_parser.h"

#include <cstring>
#include <fstream>

#include "common/failpoints.h"
#include "common/strings.h"
#include "xml/scan.h"

namespace xsq::xml {

namespace {

// Name-character classes as 256-entry tables: one load per byte beats
// the chained range compares in the per-byte tag-name scan.
struct NameCharTable {
  bool start[256] = {};
  bool part[256] = {};
  constexpr NameCharTable() {
    for (int c = 0; c < 256; ++c) {
      start[c] = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                 c == '_' || c == ':' || c >= 0x80;
      part[c] = start[c] || (c >= '0' && c <= '9') || c == '-' || c == '.';
    }
  }
};
constexpr NameCharTable kNameChars;

inline bool IsNameStartChar(unsigned char c) { return kNameChars.start[c]; }

inline bool IsNameChar(unsigned char c) { return kNameChars.part[c]; }

bool IsValidName(std::string_view name) {
  if (name.empty() || !IsNameStartChar(name[0])) return false;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!IsNameChar(name[i])) return false;
  }
  return true;
}

// Appends the UTF-8 encoding of `codepoint` to `out`. Returns false for
// values outside the Unicode scalar range.
bool AppendUtf8(uint32_t codepoint, ArenaString* out) {
  if (codepoint <= 0x7f) {
    out->PushBack(static_cast<char>(codepoint));
  } else if (codepoint <= 0x7ff) {
    out->PushBack(static_cast<char>(0xc0 | (codepoint >> 6)));
    out->PushBack(static_cast<char>(0x80 | (codepoint & 0x3f)));
  } else if (codepoint <= 0xffff) {
    if (codepoint >= 0xd800 && codepoint <= 0xdfff) return false;
    out->PushBack(static_cast<char>(0xe0 | (codepoint >> 12)));
    out->PushBack(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f)));
    out->PushBack(static_cast<char>(0x80 | (codepoint & 0x3f)));
  } else if (codepoint <= 0x10ffff) {
    out->PushBack(static_cast<char>(0xf0 | (codepoint >> 18)));
    out->PushBack(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3f)));
    out->PushBack(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3f)));
    out->PushBack(static_cast<char>(0x80 | (codepoint & 0x3f)));
  } else {
    return false;
  }
  return true;
}

// Finds the first '>' in `s` that is not inside a quoted attribute value.
// Returns npos if none. Sets *saw_lt if a raw '<' occurs before it.
// Structural bytes ('>', '<', quotes) are located in 8/16-byte gulps;
// a quoted value is skipped to its closing quote in one memchr.
size_t FindTagEnd(std::string_view s, bool* saw_lt) {
  *saw_lt = false;
  size_t i = 1;  // s[0] is '<'
  while (true) {
    size_t pos = FindTagSpecial(s, i);
    if (pos == std::string_view::npos) return std::string_view::npos;
    char c = s[pos];
    if (c == '>') return pos;
    if (c == '<') {
      *saw_lt = true;
      return std::string_view::npos;
    }
    size_t close = s.find(c, pos + 1);
    if (close == std::string_view::npos) {
      return std::string_view::npos;  // quote still open: need more
    }
    i = close + 1;
  }
}

bool IsWhitespaceOnly(std::string_view s) {
  for (char c : s) {
    if (!IsXmlWhitespace(c)) return false;
  }
  return true;
}

}  // namespace

SaxParser::SaxParser(SaxHandler* handler, ParserLimits limits)
    : handler_(handler), limits_(limits) {}

void SaxParser::Reset() {
  entity_expanded_bytes_ = 0;
  pending_.clear();
  text_state_ = TextState::kNone;
  has_pending_text_ = false;
  text_direct_ = std::string_view();
  text_.Clear();
  scratch_arena_.Reset();
  stack_arena_.Reset();
  open_elements_.clear();
  attributes_.clear();
  buf_ = std::string_view();
  anchor_ = 0;
  error_anchor_ = 0;
  seen_root_ = false;
  document_begun_ = false;
  bom_checked_ = false;
  finished_ = false;
  bytes_consumed_ = 0;
  line_ = 1;
  column_ = 1;
}

void SaxParser::SyncPosition(size_t offset) {
  if (offset <= anchor_) return;
  std::string_view span = buf_.substr(anchor_, offset - anchor_);
  anchor_ = offset;
  bytes_consumed_ += span.size();
  size_t newlines = CountNewlines(span);
  if (newlines == 0) {
    // Columns advance by code points: continuation bytes are part of
    // the preceding character, not a column of their own.
    column_ += static_cast<int>(CountCodepoints(span));
    return;
  }
  line_ += static_cast<int>(newlines);
  size_t last_newline = span.rfind('\n');
  column_ =
      1 + static_cast<int>(CountCodepoints(span.substr(last_newline + 1)));
}

Status SaxParser::ErrorHere(const std::string& message) {
  SyncPosition(error_anchor_);
  buf_ = std::string_view();  // dies with the enclosing ParseBuffer
  anchor_ = error_anchor_ = 0;
  return Status::ParseError(message + " at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_));
}

Status SaxParser::LimitErrorHere(const std::string& message) {
  SyncPosition(error_anchor_);
  buf_ = std::string_view();
  anchor_ = error_anchor_ = 0;
  return Status::LimitExceeded(message + " at line " + std::to_string(line_) +
                               ", column " + std::to_string(column_));
}

// ------------------------------------------------------------- entities

Status SaxParser::AppendEntity(std::string_view name, ArenaString* out) {
  if (name == "#" || name == "#x" || name == "#X") {
    return ErrorHere("empty character reference '&" + std::string(name) +
                     ";'");
  }
  if (name == "lt") {
    out->PushBack('<');
  } else if (name == "gt") {
    out->PushBack('>');
  } else if (name == "amp") {
    out->PushBack('&');
  } else if (name == "apos") {
    out->PushBack('\'');
  } else if (name == "quot") {
    out->PushBack('"');
  } else if (!name.empty() && name[0] == '#') {
    uint32_t code = 0;
    bool valid = name.size() > 1;
    if (name.size() > 2 && (name[1] == 'x' || name[1] == 'X')) {
      for (size_t i = 2; i < name.size() && valid; ++i) {
        char c = name[i];
        uint32_t digit;
        if (c >= '0' && c <= '9') {
          digit = static_cast<uint32_t>(c - '0');
        } else if (c >= 'a' && c <= 'f') {
          digit = static_cast<uint32_t>(c - 'a' + 10);
        } else if (c >= 'A' && c <= 'F') {
          digit = static_cast<uint32_t>(c - 'A' + 10);
        } else {
          valid = false;
          break;
        }
        code = code * 16 + digit;
        if (code > 0x10ffff) valid = false;
      }
      valid = valid && name.size() > 2;
    } else {
      for (size_t i = 1; i < name.size() && valid; ++i) {
        char c = name[i];
        if (c < '0' || c > '9') {
          valid = false;
          break;
        }
        code = code * 10 + static_cast<uint32_t>(c - '0');
        if (code > 0x10ffff) valid = false;
      }
    }
    if (!valid || !AppendUtf8(code, out)) {
      return ErrorHere("invalid character reference '&" + std::string(name) +
                       ";'");
    }
  } else {
    return ErrorHere("unknown entity reference '&" + std::string(name) +
                     ";'");
  }
  return Status::OK();
}

Status SaxParser::DecodeEntities(std::string_view raw, ArenaString* out) {
  const size_t out_size_before = out->size();
  bool saw_reference = false;
  size_t pos = 0;
  while (pos < raw.size()) {
    const char* amp = static_cast<const char*>(
        memchr(raw.data() + pos, '&', raw.size() - pos));
    if (amp == nullptr) {
      out->Append(raw.substr(pos));
      break;
    }
    size_t amp_pos = static_cast<size_t>(amp - raw.data());
    out->Append(raw.substr(pos, amp_pos - pos));
    size_t semi = raw.find(';', amp_pos + 1);
    if (semi == std::string_view::npos) {
      return ErrorHere("unterminated entity reference");
    }
    // A terminator exists, so "unterminated" would be wrong; references
    // longer than any legal name or character code get their own error.
    // The bound is generous on purpose: zero-padded forms like
    // "&#0000000000000065;" are valid XML and must decode.
    if (semi - amp_pos - 1 > 64) {
      return ErrorHere("entity reference too long");
    }
    XSQ_RETURN_IF_ERROR(
        AppendEntity(raw.substr(amp_pos + 1, semi - amp_pos - 1), out));
    pos = semi + 1;
    saw_reference = true;
  }
  return ChargeTextRun(out->size() - out_size_before, saw_reference);
}

// Any run that contained references counts in full against the
// per-document expansion budget. DTD-declared entities are never
// expanded here (non-validating), so classic billion-laughs cannot
// amplify; the budget bounds how much reference-bearing text a single
// document may make the parser decode and buffer downstream.
Status SaxParser::ChargeTextRun(size_t decoded_bytes, bool saw_reference) {
  if (!saw_reference || limits_.max_entity_expansion == 0) {
    return Status::OK();
  }
  entity_expanded_bytes_ += decoded_bytes;
  if (entity_expanded_bytes_ > limits_.max_entity_expansion) {
    return LimitErrorHere("entity expansion budget exceeded (" +
                          std::to_string(limits_.max_entity_expansion) +
                          " bytes)");
  }
  return Status::OK();
}

// ----------------------------------------------------- text coalescing

void SaxParser::AppendRawText(std::string_view raw) {
  has_pending_text_ = true;
  if (raw.empty()) return;
  if (text_state_ == TextState::kNone) {
    text_state_ = TextState::kDirect;
    text_direct_ = raw;
    return;
  }
  if (text_state_ == TextState::kDirect &&
      raw.data() == text_direct_.data() + text_direct_.size()) {
    text_direct_ =
        std::string_view(text_direct_.data(), text_direct_.size() + raw.size());
    return;
  }
  MaterializeText();
  text_.Append(raw);
}

void SaxParser::MaterializeText() {
  if (text_state_ == TextState::kOwned) return;
  text_.Clear();
  if (text_state_ == TextState::kDirect) text_.Append(text_direct_);
  text_state_ = TextState::kOwned;
}

Status SaxParser::FlushText() {
  if (!has_pending_text_) return Status::OK();
  has_pending_text_ = false;
  std::string_view text;
  if (text_state_ == TextState::kDirect) {
    text = text_direct_;
  } else if (text_state_ == TextState::kOwned) {
    text = text_.view();
  }
  text_state_ = TextState::kNone;
  if (open_elements_.empty()) {
    text_.Clear();
    scratch_arena_.RewindAll();
    return ErrorHere("character data outside the root element");
  }
  handler_->OnText(open_elements_.back().name, text,
                   static_cast<int>(open_elements_.size()));
  text_.Clear();
  scratch_arena_.RewindAll();
  return Status::OK();
}

// --------------------------------------------------------------- tags

Status SaxParser::ParseElementTag(std::string_view markup_body,
                                  bool self_closing) {
  XSQ_RETURN_IF_ERROR(FlushText());
  size_t pos = 0;
  while (pos < markup_body.size() &&
         IsNameChar(static_cast<unsigned char>(markup_body[pos]))) {
    ++pos;
  }
  std::string_view name = markup_body.substr(0, pos);
  // The scan above admitted only name chars, so validity reduces to a
  // non-empty name whose first byte may start one.
  if (name.empty() || !IsNameStartChar(static_cast<unsigned char>(name[0]))) {
    return ErrorHere("invalid element name '" + std::string(name) + "'");
  }
  if (limits_.max_name_length != 0 && name.size() > limits_.max_name_length) {
    return LimitErrorHere("element name exceeds " +
                          std::to_string(limits_.max_name_length) + " bytes");
  }
  if (limits_.max_depth != 0 && open_elements_.size() >= limits_.max_depth) {
    return LimitErrorHere("element nesting exceeds depth limit " +
                          std::to_string(limits_.max_depth));
  }

  attributes_.clear();
  while (true) {
    while (pos < markup_body.size() && IsXmlWhitespace(markup_body[pos])) {
      ++pos;
    }
    if (pos >= markup_body.size()) break;
    size_t name_start = pos;
    while (pos < markup_body.size() &&
           IsNameChar(static_cast<unsigned char>(markup_body[pos]))) {
      ++pos;
    }
    std::string_view attr_name = markup_body.substr(name_start, pos - name_start);
    if (attr_name.empty() ||
        !IsNameStartChar(static_cast<unsigned char>(attr_name[0]))) {
      return ErrorHere("invalid attribute name in element '" +
                       std::string(name) + "'");
    }
    if (limits_.max_name_length != 0 &&
        attr_name.size() > limits_.max_name_length) {
      return LimitErrorHere("attribute name exceeds " +
                            std::to_string(limits_.max_name_length) +
                            " bytes");
    }
    if (limits_.max_attributes != 0 &&
        attributes_.size() >= limits_.max_attributes) {
      return LimitErrorHere("element '" + std::string(name) +
                            "' exceeds attribute limit " +
                            std::to_string(limits_.max_attributes));
    }
    while (pos < markup_body.size() && IsXmlWhitespace(markup_body[pos])) ++pos;
    if (pos >= markup_body.size() || markup_body[pos] != '=') {
      return ErrorHere("expected '=' after attribute '" +
                       std::string(attr_name) + "'");
    }
    ++pos;
    while (pos < markup_body.size() && IsXmlWhitespace(markup_body[pos])) ++pos;
    if (pos >= markup_body.size() ||
        (markup_body[pos] != '"' && markup_body[pos] != '\'')) {
      return ErrorHere("expected quoted value for attribute '" +
                       std::string(attr_name) + "'");
    }
    char quote = markup_body[pos];
    ++pos;
    size_t value_end = markup_body.find(quote, pos);
    if (value_end == std::string_view::npos) {
      return ErrorHere("unterminated value for attribute '" +
                       std::string(attr_name) + "'");
    }
    std::string_view raw_value = markup_body.substr(pos, value_end - pos);
    if (raw_value.find('<') != std::string_view::npos) {
      return ErrorHere("'<' is not allowed in attribute values");
    }
    for (const Attribute& existing : attributes_) {
      if (existing.name == attr_name) {
        return ErrorHere("duplicate attribute '" + std::string(attr_name) +
                         "'");
      }
    }
    Attribute attr;
    attr.name = attr_name;
    if (memchr(raw_value.data(), '&', raw_value.size()) == nullptr) {
      attr.value = raw_value;  // zero-copy: view straight into the input
    } else {
      ArenaString decoded(&scratch_arena_);
      XSQ_RETURN_IF_ERROR(DecodeEntities(raw_value, &decoded));
      attr.value = decoded.view();
    }
    attributes_.push_back(attr);
    pos = value_end + 1;
    if (pos < markup_body.size() && !IsXmlWhitespace(markup_body[pos])) {
      return ErrorHere("missing whitespace between attributes");
    }
  }

  if (open_elements_.empty()) {
    if (seen_root_) return ErrorHere("multiple root elements");
    seen_root_ = true;
  }
  // A self-closing element is popped before the input buffer can die, so
  // its stack entry may alias the buffer; anything longer-lived is
  // copied into the stack arena (rewound on pop, so storage ~ depth).
  Arena::Mark mark = stack_arena_.mark();
  std::string_view stored_name = self_closing ? name : stack_arena_.Store(name);
  open_elements_.push_back(OpenElement{stored_name, mark});
  int depth = static_cast<int>(open_elements_.size());
  handler_->OnBegin(name, attributes_, depth);
  if (self_closing) {
    handler_->OnEnd(name, depth);
    open_elements_.pop_back();
    stack_arena_.Rewind(mark);
  }
  // Decoded attribute values die with the callback.
  attributes_.clear();
  scratch_arena_.RewindAll();
  return Status::OK();
}

Status SaxParser::ParseEndTag(std::string_view markup_body) {
  XSQ_RETURN_IF_ERROR(FlushText());
  // Fast path: "</name>" with no stray whitespace matching the innermost
  // open element. The name was validated when its start tag opened, so
  // equality makes re-validation redundant.
  if (!open_elements_.empty() && markup_body == open_elements_.back().name) {
    handler_->OnEnd(markup_body, static_cast<int>(open_elements_.size()));
    stack_arena_.Rewind(open_elements_.back().mark);
    open_elements_.pop_back();
    return Status::OK();
  }
  std::string_view name = TrimWhitespace(markup_body);
  if (!IsValidName(name)) {
    return ErrorHere("invalid end tag '</" + std::string(markup_body) + ">'");
  }
  if (open_elements_.empty()) {
    return ErrorHere("end tag '</" + std::string(name) +
                     ">' with no open element");
  }
  if (open_elements_.back().name != name) {
    return ErrorHere("end tag '</" + std::string(name) +
                     ">' does not match open element '<" +
                     std::string(open_elements_.back().name) + ">'");
  }
  handler_->OnEnd(name, static_cast<int>(open_elements_.size()));
  stack_arena_.Rewind(open_elements_.back().mark);
  open_elements_.pop_back();
  return Status::OK();
}

// -------------------------------------------------------------- markup

Status SaxParser::HandleMarkup(std::string_view data, size_t* consumed,
                               Progress* progress) {
  *progress = Progress::kNeedMore;
  *consumed = 0;
  if (data.size() < 2) return Status::OK();

  char kind = data[1];
  if (kind == '/') {
    bool saw_lt = false;
    size_t gt = FindTagEnd(data, &saw_lt);
    if (saw_lt) return ErrorHere("'<' inside end tag");
    if (gt == std::string_view::npos) return Status::OK();
    XSQ_RETURN_IF_ERROR(ParseEndTag(data.substr(2, gt - 2)));
    *consumed = gt + 1;
    *progress = Progress::kOk;
    return Status::OK();
  }

  if (kind == '!') {
    static constexpr std::string_view kComment = "<!--";
    static constexpr std::string_view kCdata = "<![CDATA[";
    if (data.size() < kComment.size() &&
        kComment.substr(0, data.size()) == data) {
      return Status::OK();  // could still become a comment
    }
    if (data.substr(0, kComment.size()) == kComment) {
      size_t end = data.find("-->", kComment.size());
      if (end == std::string_view::npos) return Status::OK();
      std::string_view body = data.substr(kComment.size(),
                                          end - kComment.size());
      // XML 1.0 §2.5: the string "--" must not occur within comments,
      // and the content may not end with '-' (which would abut the
      // terminator as another "--").
      size_t double_hyphen = body.find("--");
      if (double_hyphen != std::string_view::npos) {
        // error_anchor_ holds the markup start; point it at the "--".
        error_anchor_ += kComment.size() + double_hyphen;
        return ErrorHere("'--' is not allowed within a comment");
      }
      if (!body.empty() && body.back() == '-') {
        error_anchor_ += end - 1;
        return ErrorHere("comment content may not end with '-'");
      }
      *consumed = end + 3;
      *progress = Progress::kOk;
      return Status::OK();
    }
    if (data.size() < kCdata.size() && kCdata.substr(0, data.size()) == data) {
      return Status::OK();
    }
    if (data.substr(0, kCdata.size()) == kCdata) {
      size_t end = data.find("]]>", kCdata.size());
      if (end == std::string_view::npos) return Status::OK();
      if (open_elements_.empty()) {
        return ErrorHere("CDATA section outside the root element");
      }
      AppendRawText(data.substr(kCdata.size(), end - kCdata.size()));
      *consumed = end + 3;
      *progress = Progress::kOk;
      return Status::OK();
    }
    // DOCTYPE or other declaration: skip to the matching '>', honoring a
    // bracketed internal subset and quoted strings. DOCTYPE name and
    // internal subset are reported to the handler.
    char quote = '\0';
    bool in_subset = false;
    size_t subset_begin = 0;
    size_t subset_end = 0;
    for (size_t i = 2; i < data.size(); ++i) {
      char c = data[i];
      if (quote != '\0') {
        if (c == quote) quote = '\0';
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '[') {
        in_subset = true;
        if (subset_begin == 0) subset_begin = i + 1;
      } else if (c == ']') {
        in_subset = false;
        subset_end = i;
      } else if (c == '>' && !in_subset) {
        if (limits_.max_doctype_bytes != 0 &&
            i + 1 > limits_.max_doctype_bytes) {
          return LimitErrorHere("declaration exceeds " +
                                std::to_string(limits_.max_doctype_bytes) +
                                " bytes");
        }
        static constexpr std::string_view kDoctype = "<!DOCTYPE";
        if (data.substr(0, kDoctype.size()) == kDoctype) {
          size_t name_begin = kDoctype.size();
          while (name_begin < i && IsXmlWhitespace(data[name_begin])) {
            ++name_begin;
          }
          size_t name_end = name_begin;
          while (name_end < i && IsNameChar(static_cast<unsigned char>(
                                     data[name_end]))) {
            ++name_end;
          }
          std::string_view subset =
              subset_end > subset_begin
                  ? data.substr(subset_begin, subset_end - subset_begin)
                  : std::string_view();
          handler_->OnDoctype(data.substr(name_begin, name_end - name_begin),
                              subset);
        }
        *consumed = i + 1;
        *progress = Progress::kOk;
        return Status::OK();
      }
    }
    // Still waiting for the closing '>'. The unconsumed declaration is
    // retained across Feeds, so an unterminated DOCTYPE would otherwise
    // grow pending_ without bound — the cap fails it as soon as the
    // retained prefix alone exceeds the budget. (The general
    // max_retained_markup cap in ParseBuffer covers every other markup
    // kind; DOCTYPE keeps its own, usually tighter, budget.)
    if (limits_.max_doctype_bytes != 0 &&
        data.size() > limits_.max_doctype_bytes) {
      return LimitErrorHere("declaration exceeds " +
                            std::to_string(limits_.max_doctype_bytes) +
                            " bytes");
    }
    return Status::OK();  // need more input
  }

  if (kind == '?') {
    size_t end = data.find("?>", 2);
    if (end == std::string_view::npos) return Status::OK();
    *consumed = end + 2;
    *progress = Progress::kOk;
    return Status::OK();
  }

  // Ordinary element start tag.
  bool saw_lt = false;
  size_t gt = FindTagEnd(data, &saw_lt);
  if (saw_lt) return ErrorHere("'<' inside element tag");
  if (gt == std::string_view::npos) return Status::OK();
  std::string_view body = data.substr(1, gt - 1);
  bool self_closing = !body.empty() && body.back() == '/';
  if (self_closing) body.remove_suffix(1);
  XSQ_RETURN_IF_ERROR(ParseElementTag(body, self_closing));
  *consumed = gt + 1;
  *progress = Progress::kOk;
  return Status::OK();
}

// ---------------------------------------------------------- scan loop

// Consumes one contiguous run of character data starting at *pos (which
// is not '<'). Structural bytes are found in 8/16-byte gulps; raw spans
// between them become (ideally zero-copy) text segments. On return *pos
// is either at a '<', at the end of the buffer, or at a held-back tail
// (an unterminated entity, or a ']' that may start a split "]]>").
Status SaxParser::ParseTextRun(std::string_view data, size_t* pos,
                               bool at_eof) {
  size_t seg_start = *pos;  // start of the unappended raw segment
  size_t scan = *pos;
  size_t run_decoded_bytes = 0;
  bool run_saw_reference = false;

  auto append_segment = [&](size_t end) {
    std::string_view raw = data.substr(seg_start, end - seg_start);
    AppendRawText(raw);
    run_decoded_bytes += raw.size();
  };

  while (true) {
    size_t stop = FindTextSpecial(data, scan);
    if (stop == std::string_view::npos) {
      // No structural byte to the end of the buffer: the whole tail is
      // plain text (and cannot contain ']', so no "]]>"-split concern).
      append_segment(data.size());
      *pos = data.size();
      break;
    }
    char c = data[stop];
    if (c == '<') {
      append_segment(stop);
      *pos = stop;
      break;
    }
    if (c == '&') {
      error_anchor_ = stop;  // errors below point at the '&'
      size_t semi = data.find(';', stop + 1);
      if (semi == std::string_view::npos) {
        if (data.size() - stop - 1 > 64) {
          // No terminator within any legal reference length: fail now
          // instead of retaining an ever-growing "&aaaa..." tail.
          return ErrorHere("entity reference too long");
        }
        if (at_eof) {
          return ErrorHere("unterminated entity reference");
        }
        append_segment(stop);  // hold the '&' back for the next chunk
        *pos = stop;
        break;
      }
      if (semi - stop - 1 > 64) {
        return ErrorHere("entity reference too long");
      }
      append_segment(stop);
      MaterializeText();
      size_t before = text_.size();
      XSQ_RETURN_IF_ERROR(
          AppendEntity(data.substr(stop + 1, semi - stop - 1), &text_));
      has_pending_text_ = true;
      run_decoded_bytes += text_.size() - before;
      run_saw_reference = true;
      // Trip the budget as soon as it is exceeded, not at run end: a
      // single buffer can hold an arbitrarily long reference flood.
      if (limits_.max_entity_expansion != 0 &&
          entity_expanded_bytes_ + run_decoded_bytes >
              limits_.max_entity_expansion) {
        return ChargeTextRun(run_decoded_bytes, true);
      }
      seg_start = scan = semi + 1;
      continue;
    }
    // c == ']': forbidden "]]>" detection (XML 1.0 §2.4). A lone ']' is
    // ordinary text and does not split the raw segment.
    if (data.size() - stop >= 3) {
      if (data.compare(stop, 3, "]]>") == 0) {
        error_anchor_ = stop;
        return ErrorHere("']]>' is not allowed in character data");
      }
      scan = stop + 1;
      continue;
    }
    if (at_eof) {
      scan = stop + 1;  // too short to ever become "]]>"
      continue;
    }
    // "]" or "]]" at the buffer edge: hold it back until the next chunk
    // decides whether it completes the forbidden sequence.
    append_segment(stop);
    *pos = stop;
    break;
  }
  error_anchor_ = *pos;  // a budget trip points at the end of the run
  return ChargeTextRun(run_decoded_bytes, run_saw_reference);
}

Status SaxParser::ParseBuffer(std::string_view data, size_t* consumed,
                              bool at_eof) {
  size_t pos = 0;
  buf_ = data;
  anchor_ = 0;
  if (!bom_checked_) {
    // A UTF-8 byte order mark may precede the document.
    if (!data.empty() && data[0] == '\xef') {
      if (data.size() < 3 && !at_eof) {
        *consumed = 0;
        buf_ = std::string_view();
        return Status::OK();  // wait for the full mark
      }
      if (data.substr(0, 3) == "\xef\xbb\xbf") {
        pos = 3;
        bytes_consumed_ += 3;
        anchor_ = 3;  // the mark occupies no line or column
      }
    }
    bom_checked_ = true;
  }
  error_anchor_ = anchor_;
  while (pos < data.size()) {
    if (data[pos] == '<') {
      size_t markup_consumed = 0;
      Progress progress = Progress::kNeedMore;
      error_anchor_ = pos;  // markup errors point at the '<'
      XSQ_RETURN_IF_ERROR(
          HandleMarkup(data.substr(pos), &markup_consumed, &progress));
      if (progress == Progress::kNeedMore) {
        if (at_eof) {
          return ErrorHere("unexpected end of document inside markup");
        }
        // The unconsumed construct is retained across Feeds; a comment,
        // CDATA section, PI or tag that never terminates would grow
        // pending_ without bound, so every markup kind is capped (the
        // DOCTYPE path additionally enforces its own budget above).
        if (limits_.max_retained_markup != 0 &&
            data.size() - pos > limits_.max_retained_markup) {
          return LimitErrorHere(
              "unterminated markup exceeds retained budget of " +
              std::to_string(limits_.max_retained_markup) + " bytes");
        }
        break;
      }
      pos += markup_consumed;
      continue;
    }

    if (open_elements_.empty()) {
      // Prolog/epilog: only whitespace may appear outside the root.
      const char* lt = static_cast<const char*>(
          memchr(data.data() + pos, '<', data.size() - pos));
      size_t run_end =
          lt == nullptr ? data.size() : static_cast<size_t>(lt - data.data());
      std::string_view raw = data.substr(pos, run_end - pos);
      if (!IsWhitespaceOnly(raw)) {
        error_anchor_ = pos;
        return ErrorHere("character data outside the root element");
      }
      pos = run_end;
      continue;
    }

    size_t before = pos;
    XSQ_RETURN_IF_ERROR(ParseTextRun(data, &pos, at_eof));
    if (pos < data.size() && data[pos] != '<') {
      break;  // held-back tail (entity or ']' split): need more input
    }
    if (pos == before && pos < data.size()) {
      break;  // no progress possible without more input
    }
  }
  SyncPosition(pos);
  buf_ = std::string_view();
  anchor_ = error_anchor_ = 0;
  *consumed = pos;
  return Status::OK();
}

Status SaxParser::Feed(std::string_view chunk) {
  XSQ_FAILPOINT("xml.parse.io_error",
                return Status::Internal("injected I/O error reading input"));
  if (finished_) {
    return Status::Internal("Feed called after Finish");
  }
  if (!document_begun_) {
    document_begun_ = true;
    handler_->OnDocumentBegin();
  }
  size_t consumed = 0;
  if (pending_.empty()) {
    XSQ_RETURN_IF_ERROR(ParseBuffer(chunk, &consumed, /*at_eof=*/false));
    // Direct text aliases `chunk`, which dies when Feed returns.
    if (text_state_ == TextState::kDirect) MaterializeText();
    pending_.assign(chunk.substr(consumed));
  } else {
    pending_.append(chunk);
    XSQ_RETURN_IF_ERROR(ParseBuffer(pending_, &consumed, /*at_eof=*/false));
    // Direct text aliases pending_, whose bytes shift in the erase below.
    if (text_state_ == TextState::kDirect) MaterializeText();
    pending_.erase(0, consumed);
  }
  return Status::OK();
}

Status SaxParser::Finish() {
  if (finished_) return Status::Internal("Finish called twice");
  if (!document_begun_) {
    document_begun_ = true;
    handler_->OnDocumentBegin();
  }
  size_t consumed = 0;
  XSQ_RETURN_IF_ERROR(ParseBuffer(pending_, &consumed, /*at_eof=*/true));
  if (text_state_ == TextState::kDirect) MaterializeText();
  pending_.erase(0, consumed);
  if (!pending_.empty()) {
    return ErrorHere("unexpected end of document inside markup");
  }
  if (!open_elements_.empty()) {
    return ErrorHere("unexpected end of document: element '<" +
                     std::string(open_elements_.back().name) +
                     ">' is not closed");
  }
  if (!seen_root_) {
    return ErrorHere("document has no root element");
  }
  finished_ = true;
  handler_->OnDocumentEnd();
  return Status::OK();
}

Status SaxParser::Parse(std::string_view document) {
  XSQ_RETURN_IF_ERROR(Feed(document));
  return Finish();
}

Status ParseFile(const std::string& path, SaxHandler* handler) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open file '" + path + "'");
  }
  SaxParser parser(handler);
  std::string buffer(1 << 20, '\0');
  while (in) {
    in.read(buffer.data(), static_cast<std::streamsize>(buffer.size()));
    std::streamsize got = in.gcount();
    if (got <= 0) break;
    XSQ_RETURN_IF_ERROR(
        parser.Feed(std::string_view(buffer.data(), static_cast<size_t>(got))));
  }
  return parser.Finish();
}

}  // namespace xsq::xml
