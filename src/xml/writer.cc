#include "xml/writer.h"

#include "common/strings.h"

namespace xsq::xml {

void XmlWriter::Indent() {
  if (!pretty_) return;
  if (!out_.empty()) out_.push_back('\n');
  out_.append(static_cast<size_t>(depth_) * 2, ' ');
}

void XmlWriter::BeginElement(std::string_view tag,
                             const std::vector<Attribute>& attributes) {
  Indent();
  out_.push_back('<');
  out_.append(tag);
  for (const Attribute& attr : attributes) {
    out_.push_back(' ');
    out_.append(attr.name);
    out_.append("=\"");
    out_.append(XmlEscape(attr.value));
    out_.push_back('"');
  }
  out_.push_back('>');
  ++depth_;
  needs_indent_ = true;
}

void XmlWriter::EndElement(std::string_view tag) {
  --depth_;
  if (needs_indent_) {
    // The element had nested children; close on its own line.
    Indent();
  }
  out_.append("</");
  out_.append(tag);
  out_.push_back('>');
  needs_indent_ = true;
}

void XmlWriter::Text(std::string_view text) {
  out_.append(XmlEscape(text));
  needs_indent_ = false;
}

void XmlWriter::TextElement(std::string_view tag, std::string_view text) {
  Indent();
  out_.push_back('<');
  out_.append(tag);
  out_.push_back('>');
  out_.append(XmlEscape(text));
  out_.append("</");
  out_.append(tag);
  out_.push_back('>');
  needs_indent_ = true;
}

void XmlWriter::Doctype(std::string_view name,
                        std::string_view internal_subset) {
  Indent();
  out_.append("<!DOCTYPE ");
  out_.append(name);
  if (!internal_subset.empty()) {
    out_.append(" [");
    out_.append(internal_subset);
    out_.append("]");
  }
  out_.push_back('>');
  needs_indent_ = true;
}

std::string SerializeEvents(const std::vector<Event>& events) {
  XmlWriter writer;
  for (const Event& event : events) {
    switch (event.type) {
      case Event::Type::kBegin:
        writer.BeginElement(event.tag, AttributeViews(event.attributes));
        break;
      case Event::Type::kEnd:
        writer.EndElement(event.tag);
        break;
      case Event::Type::kText:
        writer.Text(event.text);
        break;
      case Event::Type::kDoctype:
        writer.Doctype(event.tag, event.text);
        break;
      case Event::Type::kDocumentBegin:
      case Event::Type::kDocumentEnd:
        break;  // markers have no textual form
    }
  }
  return writer.TakeString();
}

}  // namespace xsq::xml
