// XML serialization: used by the engines' catchall output (queries with no
// output expression return whole elements), by the subtree-buffering
// baseline, and by the data generators.
#ifndef XSQ_XML_WRITER_H_
#define XSQ_XML_WRITER_H_

#include <string>
#include <string_view>
#include <vector>

#include "xml/events.h"

namespace xsq::xml {

// Incrementally builds a serialized XML fragment or document.
// Attribute values and text are escaped; tags are written verbatim.
class XmlWriter {
 public:
  XmlWriter() = default;

  // When true, elements are written one per line with two-space indent.
  explicit XmlWriter(bool pretty) : pretty_(pretty) {}

  void BeginElement(std::string_view tag,
                    const std::vector<Attribute>& attributes = {});
  void EndElement(std::string_view tag);
  void Text(std::string_view text);

  // Writes <tag>text</tag> in one call.
  void TextElement(std::string_view tag, std::string_view text);

  // Writes <!DOCTYPE name> or <!DOCTYPE name [subset]>. The subset is
  // written verbatim (it is raw DTD text, not character data).
  void Doctype(std::string_view name, std::string_view internal_subset);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }
  size_t size() const { return out_.size(); }
  void Clear() {
    out_.clear();
    depth_ = 0;
    needs_indent_ = false;
  }

 private:
  void Indent();

  std::string out_;
  bool pretty_ = false;
  int depth_ = 0;
  bool needs_indent_ = false;
};

// Serializes a recorded event sequence (a well-formed fragment) to text.
std::string SerializeEvents(const std::vector<Event>& events);

}  // namespace xsq::xml

#endif  // XSQ_XML_WRITER_H_
