// SymbolTable: interning of tag and attribute names to dense ids.
//
// XML streams repeat a tiny vocabulary of names millions of times (the
// paper's Figure 15 corpora average ~5-7 byte tags over a few dozen
// distinct names). The tape stores each distinct name once and encodes
// every event occurrence as a varint id, which is both the main source
// of the tape's compactness and what makes replay cheap: comparing or
// dispatching on a uint32_t instead of re-hashing a string.
//
// Ids are dense (0..size-1) in first-seen order, so a tape's symbol
// table round-trips through Save/Load as a plain string list and id
// assignments are deterministic for a given event stream.
#ifndef XSQ_TAPE_SYMBOL_TABLE_H_
#define XSQ_TAPE_SYMBOL_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace xsq::tape {

using SymbolId = uint32_t;

class SymbolTable {
 public:
  static constexpr SymbolId kInvalid = UINT32_MAX;

  // Returns the id for `name`, interning it on first sight.
  SymbolId Intern(std::string_view name);

  // Returns the id for `name`, or kInvalid when it was never interned.
  SymbolId Find(std::string_view name) const;

  // The interned name for `id`. The view stays valid for the lifetime
  // of the table (names are never removed).
  std::string_view Name(SymbolId id) const { return names_[id]; }

  size_t size() const { return names_.size(); }

  // Approximate heap footprint, for cache accounting.
  size_t memory_bytes() const;

 private:
  // deque: growth must not move the strings, the index_ views point at
  // their (possibly inline, SSO) buffers.
  std::deque<std::string> names_;
  std::unordered_map<std::string_view, SymbolId> index_;  // views into names_
};

}  // namespace xsq::tape

#endif  // XSQ_TAPE_SYMBOL_TABLE_H_
