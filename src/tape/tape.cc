#include "tape/tape.h"

#include <cstdio>
#include <limits>

#include "common/crc32c.h"
#include "common/failpoints.h"

namespace xsq::tape {
namespace {

// Unsigned LEB128.
void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

// Reads a varint from data[*pos...); false on truncation/overflow.
bool GetVarint(const uint8_t* data, size_t size, size_t* pos,
               uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < size && shift < 64) {
    uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

void Tape::AppendDocumentBegin() {
  records_.push_back(static_cast<uint8_t>(Op::kDocumentBegin));
  ++event_count_;
}

void Tape::AppendDoctype(std::string_view name,
                         std::string_view internal_subset) {
  records_.push_back(static_cast<uint8_t>(Op::kDoctype));
  PutVarint(&records_, name.size());
  PutVarint(&records_, internal_subset.size());
  blob_.append(name);
  blob_.append(internal_subset);
  ++event_count_;
}

void Tape::AppendBegin(std::string_view tag,
                       const std::vector<xml::Attribute>& attributes,
                       int depth) {
  records_.push_back(static_cast<uint8_t>(Op::kBegin));
  PutVarint(&records_, symbols_.Intern(tag));
  PutVarint(&records_, static_cast<uint64_t>(depth));
  PutVarint(&records_, attributes.size());
  for (const xml::Attribute& attr : attributes) {
    PutVarint(&records_, symbols_.Intern(attr.name));
    PutVarint(&records_, attr.value.size());
    blob_.append(attr.value);
  }
  ++event_count_;
  ++stats_.begin_events;
  stats_.attribute_count += attributes.size();
}

void Tape::AppendBeginNoAttributes(std::string_view tag, int depth) {
  records_.push_back(static_cast<uint8_t>(Op::kBegin));
  PutVarint(&records_, symbols_.Intern(tag));
  PutVarint(&records_, static_cast<uint64_t>(depth));
  PutVarint(&records_, 0);
  ++event_count_;
  ++stats_.begin_events;
}

void Tape::AppendEnd(std::string_view tag, int depth) {
  records_.push_back(static_cast<uint8_t>(Op::kEnd));
  PutVarint(&records_, symbols_.Intern(tag));
  PutVarint(&records_, static_cast<uint64_t>(depth));
  ++event_count_;
  ++stats_.end_events;
}

void Tape::AppendText(std::string_view tag, std::string_view text,
                      int depth) {
  records_.push_back(static_cast<uint8_t>(Op::kText));
  PutVarint(&records_, symbols_.Intern(tag));
  PutVarint(&records_, static_cast<uint64_t>(depth));
  PutVarint(&records_, text.size());
  blob_.append(text);
  ++event_count_;
  ++stats_.text_events;
}

void Tape::AppendDocumentEnd() {
  records_.push_back(static_cast<uint8_t>(Op::kDocumentEnd));
  ++event_count_;
}

size_t Tape::memory_bytes() const {
  return records_.capacity() + blob_.capacity() + symbols_.memory_bytes() +
         sizeof(Tape);
}

Tape::Cursor::Cursor(const Tape& tape) : tape_(tape) {}

void Tape::Cursor::Rewind() {
  record_pos_ = 0;
  blob_pos_ = 0;
  status_ = Status::OK();
}

bool Tape::Cursor::Next(EventView* out) {
  if (!status_.ok() || record_pos_ >= tape_.records_.size()) return false;
  const uint8_t* rec = tape_.records_.data();
  const size_t rec_size = tape_.records_.size();
  const std::string& blob = tape_.blob_;

  auto fail = [this] {
    status_ = Status::DataCorruption("malformed tape record stream");
    return false;
  };
  auto take_span = [&](uint64_t len, std::string_view* span) {
    if (len > blob.size() - blob_pos_) return false;
    *span = std::string_view(blob).substr(blob_pos_, len);
    blob_pos_ += len;
    return true;
  };

  Op op = static_cast<Op>(rec[record_pos_++]);
  out->op = op;
  out->tag = SymbolTable::kInvalid;
  out->depth = 0;
  out->text = {};
  out->doctype_name = {};
  out->attributes = nullptr;

  switch (op) {
    case Op::kDocumentBegin:
    case Op::kDocumentEnd:
      return true;
    case Op::kDoctype: {
      uint64_t name_len = 0, subset_len = 0;
      if (!GetVarint(rec, rec_size, &record_pos_, &name_len) ||
          !GetVarint(rec, rec_size, &record_pos_, &subset_len) ||
          !take_span(name_len, &out->doctype_name) ||
          !take_span(subset_len, &out->text)) {
        return fail();
      }
      return true;
    }
    case Op::kBegin: {
      uint64_t tag = 0, depth = 0, nattrs = 0;
      if (!GetVarint(rec, rec_size, &record_pos_, &tag) ||
          !GetVarint(rec, rec_size, &record_pos_, &depth) ||
          !GetVarint(rec, rec_size, &record_pos_, &nattrs) ||
          tag >= tape_.symbols_.size()) {
        return fail();
      }
      out->tag = static_cast<SymbolId>(tag);
      out->depth = static_cast<int>(depth);
      attrs_.resize(static_cast<size_t>(nattrs));
      for (uint64_t i = 0; i < nattrs; ++i) {
        uint64_t name = 0, value_len = 0;
        if (!GetVarint(rec, rec_size, &record_pos_, &name) ||
            !GetVarint(rec, rec_size, &record_pos_, &value_len) ||
            name >= tape_.symbols_.size() ||
            !take_span(value_len, &attrs_[i].value)) {
          return fail();
        }
        attrs_[i].name = static_cast<SymbolId>(name);
      }
      out->attributes = &attrs_;
      return true;
    }
    case Op::kEnd: {
      uint64_t tag = 0, depth = 0;
      if (!GetVarint(rec, rec_size, &record_pos_, &tag) ||
          !GetVarint(rec, rec_size, &record_pos_, &depth) ||
          tag >= tape_.symbols_.size()) {
        return fail();
      }
      out->tag = static_cast<SymbolId>(tag);
      out->depth = static_cast<int>(depth);
      return true;
    }
    case Op::kText: {
      uint64_t tag = 0, depth = 0, text_len = 0;
      if (!GetVarint(rec, rec_size, &record_pos_, &tag) ||
          !GetVarint(rec, rec_size, &record_pos_, &depth) ||
          !GetVarint(rec, rec_size, &record_pos_, &text_len) ||
          tag >= tape_.symbols_.size() ||
          !take_span(text_len, &out->text)) {
        return fail();
      }
      out->tag = static_cast<SymbolId>(tag);
      out->depth = static_cast<int>(depth);
      return true;
    }
  }
  return fail();  // unknown opcode
}

namespace {

constexpr char kMagicV1[8] = {'X', 'S', 'Q', 'T', 'A', 'P', 'E', '1'};
constexpr char kMagicV2[8] = {'X', 'S', 'Q', 'T', 'A', 'P', 'E', '2'};

// Little-endian CRC32C trailer appended after each v2 section.
void PutCrc(std::string* out, uint32_t crc) {
  out->push_back(static_cast<char>(crc & 0xff));
  out->push_back(static_cast<char>((crc >> 8) & 0xff));
  out->push_back(static_cast<char>((crc >> 16) & 0xff));
  out->push_back(static_cast<char>((crc >> 24) & 0xff));
}

uint32_t GetCrc(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void PutVarintString(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(value) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(static_cast<uint8_t>(value)));
}

bool GetVarintString(const std::string& data, size_t* pos, uint64_t* value) {
  return GetVarint(reinterpret_cast<const uint8_t*>(data.data()), data.size(),
                   pos, value);
}

}  // namespace

std::string Tape::SerializeHeaderBody() const {
  std::string header;
  PutVarintString(&header, symbols_.size());
  for (size_t i = 0; i < symbols_.size(); ++i) {
    std::string_view name = symbols_.Name(static_cast<SymbolId>(i));
    PutVarintString(&header, name.size());
    header.append(name);
  }
  const uint64_t counters[] = {
      event_count_,          stats_.begin_events,    stats_.end_events,
      stats_.text_events,    stats_.attribute_count, stats_.source_bytes,
      stats_.dropped_subtrees, stats_.dropped_text_events,
      stats_.dropped_attributes};
  for (uint64_t counter : counters) PutVarintString(&header, counter);
  PutVarintString(&header, records_.size());
  PutVarintString(&header, blob_.size());
  return header;
}

std::string Tape::Serialize() const {
  std::string out;
  std::string header = SerializeHeaderBody();
  out.reserve(sizeof(kMagicV2) + header.size() + records_.size() +
              blob_.size() + 12);
  out.append(kMagicV2, sizeof(kMagicV2));
  out.append(header);
  PutCrc(&out, Crc32c(header.data(), header.size()));
  out.append(reinterpret_cast<const char*>(records_.data()), records_.size());
  PutCrc(&out, Crc32c(records_.data(), records_.size()));
  out.append(blob_);
  PutCrc(&out, Crc32c(blob_.data(), blob_.size()));
  return out;
}

namespace {

Status WriteFile(const std::string& path, const std::string& image) {
  XSQ_FAILPOINT("tape.save.short_write",
                return Status::Internal("injected short write saving tape to " +
                                        path));
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  if ((!image.empty() &&
       std::fwrite(image.data(), 1, image.size(), file.get()) !=
           image.size()) ||
      std::fflush(file.get()) != 0) {
    return Status::Internal("short write saving tape to " + path);
  }
  return Status::OK();
}

}  // namespace

Status Tape::Save(const std::string& path) const {
  return WriteFile(path, Serialize());
}

Status Tape::SaveLegacyV1(const std::string& path) const {
  std::string image(kMagicV1, sizeof(kMagicV1));
  image.append(SerializeHeaderBody());
  image.append(reinterpret_cast<const char*>(records_.data()),
               records_.size());
  image.append(blob_);
  return WriteFile(path, image);
}

Result<Tape> Tape::FromBytes(std::string data, const std::string& origin) {
  auto corrupt = [&origin](const char* what) {
    return Status::DataCorruption(std::string("corrupt tape file ") + origin +
                                  ": " + what);
  };
  bool checksummed;
  if (data.size() >= sizeof(kMagicV2) &&
      data.compare(0, sizeof(kMagicV2), kMagicV2, sizeof(kMagicV2)) == 0) {
    checksummed = true;
  } else if (data.size() >= sizeof(kMagicV1) &&
             data.compare(0, sizeof(kMagicV1), kMagicV1, sizeof(kMagicV1)) ==
                 0) {
    checksummed = false;  // legacy v1: no section checksums
  } else {
    return corrupt("bad magic");
  }
  size_t pos = sizeof(kMagicV2);
  const size_t header_begin = pos;

  Tape tape;
  uint64_t symbol_count = 0;
  if (!GetVarintString(data, &pos, &symbol_count)) return corrupt("header");
  if (symbol_count > data.size()) return corrupt("symbol count");
  for (uint64_t i = 0; i < symbol_count; ++i) {
    uint64_t len = 0;
    if (!GetVarintString(data, &pos, &len) || len > data.size() - pos) {
      return corrupt("symbol table");
    }
    SymbolId id = tape.symbols_.Intern(std::string_view(data).substr(pos, len));
    pos += len;
    if (id != i) return corrupt("duplicate symbol");
  }
  uint64_t counters[9];
  for (uint64_t& counter : counters) {
    if (!GetVarintString(data, &pos, &counter)) return corrupt("counters");
  }
  tape.event_count_ = counters[0];
  tape.stats_.begin_events = counters[1];
  tape.stats_.end_events = counters[2];
  tape.stats_.text_events = counters[3];
  tape.stats_.attribute_count = counters[4];
  tape.stats_.source_bytes = counters[5];
  tape.stats_.dropped_subtrees = counters[6];
  tape.stats_.dropped_text_events = counters[7];
  tape.stats_.dropped_attributes = counters[8];

  uint64_t record_size = 0, blob_size = 0;
  if (!GetVarintString(data, &pos, &record_size) ||
      !GetVarintString(data, &pos, &blob_size)) {
    return corrupt("section sizes");
  }
  // The parsed header declares the section sizes; with checksums, every
  // section is followed by its 4-byte CRC32C trailer.
  const size_t trailer = checksummed ? 4 : 0;
  const size_t tail = data.size() - pos;  // bytes after the header body
  if (record_size > tail || tail - record_size < 3 * trailer ||
      blob_size != tail - record_size - 3 * trailer) {
    return corrupt("section sizes");
  }
  if (checksummed) {
    uint32_t header_crc =
        Crc32c(data.data() + header_begin, pos - header_begin);
    if (header_crc != GetCrc(data.data() + pos)) {
      return corrupt("header checksum mismatch");
    }
    pos += 4;
  }
  const char* records = data.data() + pos;
  if (checksummed &&
      Crc32c(records, record_size) != GetCrc(records + record_size)) {
    return corrupt("record section checksum mismatch");
  }
  const char* blob = records + record_size + trailer;
  if (checksummed && Crc32c(blob, blob_size) != GetCrc(blob + blob_size)) {
    return corrupt("blob section checksum mismatch");
  }
  tape.records_.assign(reinterpret_cast<const uint8_t*>(records),
                       reinterpret_cast<const uint8_t*>(records) + record_size);
  tape.blob_.assign(blob, blob_size);

  XSQ_RETURN_IF_ERROR(tape.Validate());
  return tape;
}

Result<Tape> Tape::Load(const std::string& path) {
  XSQ_FAILPOINT("tape.load.short_read",
                return Status::DataCorruption(
                    "injected short read loading tape from " + path));
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open tape file: " + path);
  }
  std::string data;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    data.append(buffer, got);
  }
  if (std::ferror(file.get()) != 0) {
    return Status::Internal("read error loading tape from " + path);
  }
  return FromBytes(std::move(data), path);
}

Status Tape::Validate() const {
  Cursor cursor(*this);
  EventView event;
  uint64_t events = 0;
  int open_depth = 0;
  bool document_open = false;
  while (cursor.Next(&event)) {
    ++events;
    switch (event.op) {
      case Op::kDocumentBegin:
        if (document_open) return Status::ParseError("tape: nested document");
        document_open = true;
        break;
      case Op::kDoctype:
        break;
      case Op::kBegin:
        // Holds for projected tapes too: projection drops whole
        // subtrees, so every kept element's parent is kept and depths
        // stay contiguous (the engines insist on this).
        if (event.depth != open_depth + 1) {
          return Status::ParseError("tape: begin depth out of order");
        }
        open_depth = event.depth;
        break;
      case Op::kEnd:
        if (event.depth != open_depth || open_depth < 1) {
          return Status::ParseError("tape: unmatched end event");
        }
        open_depth = event.depth - 1;
        break;
      case Op::kText:
        if (event.depth != open_depth) {
          return Status::ParseError("tape: text outside its element");
        }
        break;
      case Op::kDocumentEnd:
        if (!document_open || open_depth != 0) {
          return Status::ParseError("tape: document end with open elements");
        }
        document_open = false;
        break;
    }
  }
  XSQ_RETURN_IF_ERROR(cursor.status());
  if (document_open || open_depth != 0) {
    return Status::ParseError("tape: truncated event stream");
  }
  if (events != event_count_) {
    return Status::ParseError("tape: event count mismatch");
  }
  return Status::OK();
}

}  // namespace xsq::tape
