#include "tape/tape.h"

#include <cstdio>
#include <limits>

namespace xsq::tape {
namespace {

// Unsigned LEB128.
void PutVarint(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

// Reads a varint from data[*pos...); false on truncation/overflow.
bool GetVarint(const uint8_t* data, size_t size, size_t* pos,
               uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (*pos < size && shift < 64) {
    uint8_t byte = data[(*pos)++];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

void Tape::AppendDocumentBegin() {
  records_.push_back(static_cast<uint8_t>(Op::kDocumentBegin));
  ++event_count_;
}

void Tape::AppendDoctype(std::string_view name,
                         std::string_view internal_subset) {
  records_.push_back(static_cast<uint8_t>(Op::kDoctype));
  PutVarint(&records_, name.size());
  PutVarint(&records_, internal_subset.size());
  blob_.append(name);
  blob_.append(internal_subset);
  ++event_count_;
}

void Tape::AppendBegin(std::string_view tag,
                       const std::vector<xml::Attribute>& attributes,
                       int depth) {
  records_.push_back(static_cast<uint8_t>(Op::kBegin));
  PutVarint(&records_, symbols_.Intern(tag));
  PutVarint(&records_, static_cast<uint64_t>(depth));
  PutVarint(&records_, attributes.size());
  for (const xml::Attribute& attr : attributes) {
    PutVarint(&records_, symbols_.Intern(attr.name));
    PutVarint(&records_, attr.value.size());
    blob_.append(attr.value);
  }
  ++event_count_;
  ++stats_.begin_events;
  stats_.attribute_count += attributes.size();
}

void Tape::AppendBeginNoAttributes(std::string_view tag, int depth) {
  records_.push_back(static_cast<uint8_t>(Op::kBegin));
  PutVarint(&records_, symbols_.Intern(tag));
  PutVarint(&records_, static_cast<uint64_t>(depth));
  PutVarint(&records_, 0);
  ++event_count_;
  ++stats_.begin_events;
}

void Tape::AppendEnd(std::string_view tag, int depth) {
  records_.push_back(static_cast<uint8_t>(Op::kEnd));
  PutVarint(&records_, symbols_.Intern(tag));
  PutVarint(&records_, static_cast<uint64_t>(depth));
  ++event_count_;
  ++stats_.end_events;
}

void Tape::AppendText(std::string_view tag, std::string_view text,
                      int depth) {
  records_.push_back(static_cast<uint8_t>(Op::kText));
  PutVarint(&records_, symbols_.Intern(tag));
  PutVarint(&records_, static_cast<uint64_t>(depth));
  PutVarint(&records_, text.size());
  blob_.append(text);
  ++event_count_;
  ++stats_.text_events;
}

void Tape::AppendDocumentEnd() {
  records_.push_back(static_cast<uint8_t>(Op::kDocumentEnd));
  ++event_count_;
}

size_t Tape::memory_bytes() const {
  return records_.capacity() + blob_.capacity() + symbols_.memory_bytes() +
         sizeof(Tape);
}

Tape::Cursor::Cursor(const Tape& tape) : tape_(tape) {}

void Tape::Cursor::Rewind() {
  record_pos_ = 0;
  blob_pos_ = 0;
  status_ = Status::OK();
}

bool Tape::Cursor::Next(EventView* out) {
  if (!status_.ok() || record_pos_ >= tape_.records_.size()) return false;
  const uint8_t* rec = tape_.records_.data();
  const size_t rec_size = tape_.records_.size();
  const std::string& blob = tape_.blob_;

  auto fail = [this] {
    status_ = Status::Internal("malformed tape record stream");
    return false;
  };
  auto take_span = [&](uint64_t len, std::string_view* span) {
    if (len > blob.size() - blob_pos_) return false;
    *span = std::string_view(blob).substr(blob_pos_, len);
    blob_pos_ += len;
    return true;
  };

  Op op = static_cast<Op>(rec[record_pos_++]);
  out->op = op;
  out->tag = SymbolTable::kInvalid;
  out->depth = 0;
  out->text = {};
  out->doctype_name = {};
  out->attributes = nullptr;

  switch (op) {
    case Op::kDocumentBegin:
    case Op::kDocumentEnd:
      return true;
    case Op::kDoctype: {
      uint64_t name_len = 0, subset_len = 0;
      if (!GetVarint(rec, rec_size, &record_pos_, &name_len) ||
          !GetVarint(rec, rec_size, &record_pos_, &subset_len) ||
          !take_span(name_len, &out->doctype_name) ||
          !take_span(subset_len, &out->text)) {
        return fail();
      }
      return true;
    }
    case Op::kBegin: {
      uint64_t tag = 0, depth = 0, nattrs = 0;
      if (!GetVarint(rec, rec_size, &record_pos_, &tag) ||
          !GetVarint(rec, rec_size, &record_pos_, &depth) ||
          !GetVarint(rec, rec_size, &record_pos_, &nattrs) ||
          tag >= tape_.symbols_.size()) {
        return fail();
      }
      out->tag = static_cast<SymbolId>(tag);
      out->depth = static_cast<int>(depth);
      attrs_.resize(static_cast<size_t>(nattrs));
      for (uint64_t i = 0; i < nattrs; ++i) {
        uint64_t name = 0, value_len = 0;
        if (!GetVarint(rec, rec_size, &record_pos_, &name) ||
            !GetVarint(rec, rec_size, &record_pos_, &value_len) ||
            name >= tape_.symbols_.size() ||
            !take_span(value_len, &attrs_[i].value)) {
          return fail();
        }
        attrs_[i].name = static_cast<SymbolId>(name);
      }
      out->attributes = &attrs_;
      return true;
    }
    case Op::kEnd: {
      uint64_t tag = 0, depth = 0;
      if (!GetVarint(rec, rec_size, &record_pos_, &tag) ||
          !GetVarint(rec, rec_size, &record_pos_, &depth) ||
          tag >= tape_.symbols_.size()) {
        return fail();
      }
      out->tag = static_cast<SymbolId>(tag);
      out->depth = static_cast<int>(depth);
      return true;
    }
    case Op::kText: {
      uint64_t tag = 0, depth = 0, text_len = 0;
      if (!GetVarint(rec, rec_size, &record_pos_, &tag) ||
          !GetVarint(rec, rec_size, &record_pos_, &depth) ||
          !GetVarint(rec, rec_size, &record_pos_, &text_len) ||
          tag >= tape_.symbols_.size() ||
          !take_span(text_len, &out->text)) {
        return fail();
      }
      out->tag = static_cast<SymbolId>(tag);
      out->depth = static_cast<int>(depth);
      return true;
    }
  }
  return fail();  // unknown opcode
}

namespace {

constexpr char kMagic[8] = {'X', 'S', 'Q', 'T', 'A', 'P', 'E', '1'};

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

void PutVarintString(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>(static_cast<uint8_t>(value) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(static_cast<uint8_t>(value)));
}

bool GetVarintString(const std::string& data, size_t* pos, uint64_t* value) {
  return GetVarint(reinterpret_cast<const uint8_t*>(data.data()), data.size(),
                   pos, value);
}

}  // namespace

Status Tape::Save(const std::string& path) const {
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  PutVarintString(&header, symbols_.size());
  for (size_t i = 0; i < symbols_.size(); ++i) {
    std::string_view name = symbols_.Name(static_cast<SymbolId>(i));
    PutVarintString(&header, name.size());
    header.append(name);
  }
  const uint64_t counters[] = {
      event_count_,          stats_.begin_events,    stats_.end_events,
      stats_.text_events,    stats_.attribute_count, stats_.source_bytes,
      stats_.dropped_subtrees, stats_.dropped_text_events,
      stats_.dropped_attributes};
  for (uint64_t counter : counters) PutVarintString(&header, counter);
  PutVarintString(&header, records_.size());
  PutVarintString(&header, blob_.size());

  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  auto write_all = [&file](const void* data, size_t size) {
    return size == 0 || std::fwrite(data, 1, size, file.get()) == size;
  };
  if (!write_all(header.data(), header.size()) ||
      !write_all(records_.data(), records_.size()) ||
      !write_all(blob_.data(), blob_.size()) ||
      std::fflush(file.get()) != 0) {
    return Status::Internal("short write saving tape to " + path);
  }
  return Status::OK();
}

Result<Tape> Tape::Load(const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::InvalidArgument("cannot open tape file: " + path);
  }
  std::string data;
  char buffer[1 << 16];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file.get())) > 0) {
    data.append(buffer, got);
  }
  if (std::ferror(file.get()) != 0) {
    return Status::Internal("read error loading tape from " + path);
  }

  auto corrupt = [&path](const char* what) {
    return Status::ParseError(std::string("corrupt tape file ") + path + ": " +
                              what);
  };
  if (data.size() < sizeof(kMagic) ||
      data.compare(0, sizeof(kMagic), kMagic, sizeof(kMagic)) != 0) {
    return corrupt("bad magic");
  }
  size_t pos = sizeof(kMagic);

  Tape tape;
  uint64_t symbol_count = 0;
  if (!GetVarintString(data, &pos, &symbol_count)) return corrupt("header");
  if (symbol_count > data.size()) return corrupt("symbol count");
  for (uint64_t i = 0; i < symbol_count; ++i) {
    uint64_t len = 0;
    if (!GetVarintString(data, &pos, &len) || len > data.size() - pos) {
      return corrupt("symbol table");
    }
    SymbolId id = tape.symbols_.Intern(std::string_view(data).substr(pos, len));
    pos += len;
    if (id != i) return corrupt("duplicate symbol");
  }
  uint64_t counters[9];
  for (uint64_t& counter : counters) {
    if (!GetVarintString(data, &pos, &counter)) return corrupt("counters");
  }
  tape.event_count_ = counters[0];
  tape.stats_.begin_events = counters[1];
  tape.stats_.end_events = counters[2];
  tape.stats_.text_events = counters[3];
  tape.stats_.attribute_count = counters[4];
  tape.stats_.source_bytes = counters[5];
  tape.stats_.dropped_subtrees = counters[6];
  tape.stats_.dropped_text_events = counters[7];
  tape.stats_.dropped_attributes = counters[8];

  uint64_t record_size = 0, blob_size = 0;
  if (!GetVarintString(data, &pos, &record_size) ||
      !GetVarintString(data, &pos, &blob_size) ||
      record_size > data.size() - pos ||
      blob_size != data.size() - pos - record_size) {
    return corrupt("section sizes");
  }
  const uint8_t* records = reinterpret_cast<const uint8_t*>(data.data()) + pos;
  tape.records_.assign(records, records + record_size);
  tape.blob_.assign(data, pos + record_size, blob_size);

  XSQ_RETURN_IF_ERROR(tape.Validate());
  return tape;
}

Status Tape::Validate() const {
  Cursor cursor(*this);
  EventView event;
  uint64_t events = 0;
  int open_depth = 0;
  bool document_open = false;
  while (cursor.Next(&event)) {
    ++events;
    switch (event.op) {
      case Op::kDocumentBegin:
        if (document_open) return Status::ParseError("tape: nested document");
        document_open = true;
        break;
      case Op::kDoctype:
        break;
      case Op::kBegin:
        // Holds for projected tapes too: projection drops whole
        // subtrees, so every kept element's parent is kept and depths
        // stay contiguous (the engines insist on this).
        if (event.depth != open_depth + 1) {
          return Status::ParseError("tape: begin depth out of order");
        }
        open_depth = event.depth;
        break;
      case Op::kEnd:
        if (event.depth != open_depth || open_depth < 1) {
          return Status::ParseError("tape: unmatched end event");
        }
        open_depth = event.depth - 1;
        break;
      case Op::kText:
        if (event.depth != open_depth) {
          return Status::ParseError("tape: text outside its element");
        }
        break;
      case Op::kDocumentEnd:
        if (!document_open || open_depth != 0) {
          return Status::ParseError("tape: document end with open elements");
        }
        document_open = false;
        break;
    }
  }
  XSQ_RETURN_IF_ERROR(cursor.status());
  if (document_open || open_depth != 0) {
    return Status::ParseError("tape: truncated event stream");
  }
  if (events != event_count_) {
    return Status::ParseError("tape: event count mismatch");
  }
  return Status::OK();
}

}  // namespace xsq::tape
