#include "tape/projection.h"

namespace xsq::tape {

ProjectionMask ProjectionMask::FromPlans(
    const std::vector<std::shared_ptr<const core::CompiledPlan>>& plans) {
  std::vector<xpath::Query> queries;
  queries.reserve(plans.size());
  for (const auto& plan : plans) {
    if (plan != nullptr) queries.push_back(plan->query);
  }
  return FromQueries(queries);
}

ProjectionMask ProjectionMask::FromQueries(
    const std::vector<xpath::Query>& queries) {
  ProjectionMask mask;
  if (queries.empty()) return mask;  // nothing known: keep everything
  mask.keep_all_ = false;
  for (const xpath::Query& query : queries) mask.AddQuery(query);
  return mask;
}

void ProjectionMask::AddQuery(const xpath::Query& query) {
  AddPath(query);
  for (const xpath::Query& branch : query.union_branches) AddPath(branch);
}

void ProjectionMask::AddPath(const xpath::Query& path) {
  // Element-valued output serializes whole subtrees below matches; any
  // event may end up in the output, so no pruning is sound.
  if (path.output.kind == xpath::OutputKind::kElement) {
    keep_all_ = true;
    return;
  }

  const std::vector<xpath::LocationStep>& steps = path.steps;
  const size_t k = steps.size();

  // First closure step (1-based); k+1 when the path is closure-free.
  size_t first_closure = k + 1;
  for (size_t i = 0; i < k; ++i) {
    if (steps[i].axis == xpath::Axis::kClosure) {
      first_closure = i + 1;
      break;
    }
  }

  QueryShape shape;
  shape.open_tail = first_closure <= k;
  // Anchored prefix: depth d (1-based) admits step d's node test plus
  // the child tags referenced by step d-1's predicates. Closure-free
  // paths get one extra level for the last step's predicate children.
  const size_t prefix = shape.open_tail ? first_closure - 1 : k + 1;
  shape.levels.resize(prefix);
  for (size_t d = 1; d <= prefix; ++d) {
    if (d <= k) shape.levels[d - 1].Add(steps[d - 1].node_test);
    if (d >= 2) {
      for (const xpath::Predicate& pred : steps[d - 2].predicates) {
        if (!pred.child_tag.empty()) shape.levels[d - 1].Add(pred.child_tag);
      }
    }
  }
  shapes_.push_back(std::move(shape));

  // Payload relevance is name-based and global (sound at any depth).
  for (const xpath::LocationStep& step : steps) {
    for (const xpath::Predicate& pred : step.predicates) {
      switch (pred.kind) {
        case xpath::PredicateKind::kText:
          text_names_.Add(step.node_test);
          break;
        case xpath::PredicateKind::kChildText:
          text_names_.Add(pred.child_tag);
          break;
        case xpath::PredicateKind::kAttribute:
          attr_names_.Add(step.node_test);
          break;
        case xpath::PredicateKind::kChildAttribute:
          attr_names_.Add(pred.child_tag);
          break;
        case xpath::PredicateKind::kChild:
          break;  // existence is decided by the begin event alone
      }
    }
  }
  switch (path.output.kind) {
    case xpath::OutputKind::kText:
    case xpath::OutputKind::kSum:
    case xpath::OutputKind::kAvg:
    case xpath::OutputKind::kMin:
    case xpath::OutputKind::kMax:
      // All read the matched element's text content.
      if (!steps.empty()) text_names_.Add(steps.back().node_test);
      break;
    case xpath::OutputKind::kAttribute:
      if (!steps.empty()) attr_names_.Add(steps.back().node_test);
      break;
    case xpath::OutputKind::kCount:
    case xpath::OutputKind::kElement:  // handled above
      break;
  }
}

bool ProjectionMask::KeepElement(std::string_view tag, int depth) const {
  if (keep_all_) return true;
  const size_t d = static_cast<size_t>(depth);
  for (const QueryShape& shape : shapes_) {
    if (d <= shape.levels.size()) {
      if (shape.levels[d - 1].Matches(tag)) return true;
    } else if (shape.open_tail) {
      return true;
    }
  }
  return false;
}

bool ProjectionMask::KeepText(std::string_view tag) const {
  return keep_all_ || text_names_.Matches(tag);
}

bool ProjectionMask::KeepAttributes(std::string_view tag) const {
  return keep_all_ || attr_names_.Matches(tag);
}

}  // namespace xsq::tape
