#include "tape/replayer.h"

namespace xsq::tape {

TapeReplayer::TapeReplayer(const Tape& tape) : tape_(tape), cursor_(tape) {}

void TapeReplayer::Rewind() {
  cursor_.Rewind();
  events_emitted_ = 0;
}

bool TapeReplayer::Step(xml::SaxHandler* handler, size_t max_events) {
  Tape::EventView event;
  const SymbolTable& symbols = tape_.symbols();
  for (size_t emitted = 0; emitted < max_events; ++emitted) {
    if (!cursor_.Next(&event)) return false;
    ++events_emitted_;
    switch (event.op) {
      case Op::kDocumentBegin:
        handler->OnDocumentBegin();
        break;
      case Op::kDoctype:
        handler->OnDoctype(event.doctype_name, event.text);
        break;
      case Op::kBegin: {
        const std::vector<Tape::Attr>& attrs = *event.attributes;
        attr_scratch_.resize(attrs.size());
        for (size_t i = 0; i < attrs.size(); ++i) {
          attr_scratch_[i].name = symbols.Name(attrs[i].name);
          attr_scratch_[i].value = attrs[i].value;
        }
        handler->OnBegin(symbols.Name(event.tag), attr_scratch_, event.depth);
        break;
      }
      case Op::kEnd:
        handler->OnEnd(symbols.Name(event.tag), event.depth);
        break;
      case Op::kText:
        handler->OnText(symbols.Name(event.tag), event.text, event.depth);
        break;
      case Op::kDocumentEnd:
        handler->OnDocumentEnd();
        break;
    }
  }
  return true;  // budget exhausted; more events may remain
}

Status Replay(const Tape& tape, xml::SaxHandler* handler) {
  TapeReplayer replayer(tape);
  while (replayer.Step(handler)) {
  }
  return replayer.status();
}

}  // namespace xsq::tape
