// Record-time projection: drop events a query set provably cannot
// observe (Koch et al.'s buffer/stream minimization applied at the
// tape boundary).
//
// The mask is derived from compiled plans and is conservative — it may
// keep irrelevant events, never drop relevant ones. Three levels of
// pruning, each with a simple soundness argument (DESIGN.md spells the
// full argument out):
//
//   1. Subtree drops. For a query whose steps before the first closure
//      axis are all child-axis, an element at depth d can only
//      participate if its tag matches that query's depth-d name set
//      (step node test at depth d, plus child tags of the previous
//      step's predicates); every element of a match and every element a
//      predicate inspects passes this test, so a begin event failing it
//      for EVERY query roots a subtree no engine will touch, and the
//      whole subtree is dropped. Dropping whole subtrees keeps depths
//      contiguous, which the engines require.
//   2. Text drops. An engine only reads text() of elements it matches
//      (text/aggregation output, [text() op c]) or of predicate child
//      tags ([tag op c]); those names are collected into a text set and
//      every other element's text events are dropped.
//   3. Attribute drops. Same, for @attr output and [@attr] / [tag@attr]
//      predicates.
//
// Conservatism under `//`: from the first closure step on, a query can
// match at any depth under any ancestors, so such queries keep all
// structure (subtree pruning disabled beyond the anchored prefix) and
// pruning falls back to the payload (text/attribute) level. Wildcard
// node tests make the corresponding name set match everything, and an
// element-valued output (`//a` returning serialized subtrees) disables
// projection entirely — serialization may need any event below a match.
#ifndef XSQ_TAPE_PROJECTION_H_
#define XSQ_TAPE_PROJECTION_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "core/compiled_plan.h"
#include "xpath/ast.h"

namespace xsq::tape {

class ProjectionMask {
 public:
  // Keeps every event (recording with a null mask is equivalent).
  ProjectionMask() = default;

  // Conservative mask for a query set. Every query any consumer might
  // run over the tape must be in `plans`.
  static ProjectionMask FromPlans(
      const std::vector<std::shared_ptr<const core::CompiledPlan>>& plans);
  static ProjectionMask FromQueries(const std::vector<xpath::Query>& queries);

  bool keeps_everything() const { return keep_all_; }

  // Should the element (and, transitively, its subtree when false) be
  // kept? Only meaningful when every ancestor was kept, which the
  // recorder guarantees by skipping dropped subtrees wholesale.
  bool KeepElement(std::string_view tag, int depth) const;
  bool KeepText(std::string_view tag) const;
  bool KeepAttributes(std::string_view tag) const;

 private:
  // Heterogeneous hashing so the per-event lookups take string_views
  // without materializing a std::string.
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  struct NameSet {
    bool any = false;  // wildcard: matches every name
    std::unordered_set<std::string, SvHash, SvEq> names;

    bool Matches(std::string_view tag) const {
      return any || names.find(tag) != names.end();
    }
    void Add(std::string_view name) {
      if (name == "*") {
        any = true;
      } else {
        names.emplace(name);
      }
    }
  };

  // Per-query structural shape: name sets for the anchored child-axis
  // prefix (levels[d-1] constrains depth d), then `open_tail` tells
  // whether depths beyond the prefix are all kept (closure present) or
  // all dropped (the query simply ends).
  struct QueryShape {
    std::vector<NameSet> levels;
    bool open_tail = false;
  };

  void AddQuery(const xpath::Query& query);
  void AddPath(const xpath::Query& path);

  bool keep_all_ = true;  // no pruning at all (element output / empty set)
  std::vector<QueryShape> shapes_;
  NameSet text_names_;
  NameSet attr_names_;
};

}  // namespace xsq::tape

#endif  // XSQ_TAPE_PROJECTION_H_
