// TapeReplayer: re-emits a recorded tape into any xml::SaxHandler.
//
// Replaying an unprojected tape reproduces the original parse's event
// sequence exactly — same tags, attributes, text, depths, doctype and
// document markers — so engines, validators and tees cannot tell a
// replay from a live parse (the tape differential tests assert this on
// every corpus). What replay skips is everything that made the parse
// expensive: tokenization, well-formedness checking, entity decoding
// and attribute materialization. Tag and text payloads are emitted as
// string_views directly into the tape's blob and symbol table, and the
// attribute vector handed to OnBegin reuses one scratch buffer, so a
// steady-state replay performs no per-event allocation.
//
// Step() bounds work per call, which lets the service layer interleave
// replay with memory-budget checks the same way it meters Push chunks.
#ifndef XSQ_TAPE_REPLAYER_H_
#define XSQ_TAPE_REPLAYER_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "tape/tape.h"
#include "xml/events.h"

namespace xsq::tape {

class TapeReplayer {
 public:
  // `tape` is borrowed and must outlive the replayer.
  explicit TapeReplayer(const Tape& tape);

  // Emits up to `max_events` events into `handler`; returns true while
  // events remain. Pass SIZE_MAX (the default) to drain in one call.
  bool Step(xml::SaxHandler* handler, size_t max_events = SIZE_MAX);

  // Restarts from the first event (tapes are replay-many by design).
  void Rewind();

  // Events emitted since construction/Rewind.
  uint64_t events_emitted() const { return events_emitted_; }

  // Non-OK only for a corrupt tape that bypassed Load validation.
  const Status& status() const { return cursor_.status(); }

 private:
  const Tape& tape_;
  Tape::Cursor cursor_;
  // Scratch for OnBegin: assign() into the same strings every event,
  // reusing their capacity.
  std::vector<xml::Attribute> attr_scratch_;
  uint64_t events_emitted_ = 0;
};

// Replays the whole tape into `handler` in one call.
Status Replay(const Tape& tape, xml::SaxHandler* handler);

}  // namespace xsq::tape

#endif  // XSQ_TAPE_REPLAYER_H_
