// Tape: a compact binary recording of one document's SAX event stream,
// built to be parsed once and replayed many times.
//
// Section 6 of the paper shows parsing dominating end-to-end cost (the
// engines run at 0.5-0.85x of a bare parse), so any workload that
// evaluates the same document repeatedly — the xsqd service's cached
// documents, multi-query batches, benchmark reruns — pays the parse tax
// per run. A tape pays it once: XMLTK's binary-token pipeline (the
// paper's fastest competitor) is the model, with tag/attribute names
// interned in a SymbolTable and every event encoded as a varint record:
//
//   record   := op:byte payload
//   begin    := tag_id depth nattrs (attr_name_id value_len)*
//   end      := tag_id depth
//   text     := tag_id depth text_len
//   doctype  := name_len subset_len
//   docbegin / docend := (no payload)
//
// All varints are unsigned LEB128. Variable-length payloads (attribute
// values, text, doctype strings) live in a single shared blob in event
// order, so records carry only lengths — offsets are implicit in a
// sequential scan, which is the only access pattern replay needs. A
// replayed tape re-emits the exact event sequence of the original parse
// (verified differentially in tests), and Cursor exposes the interned
// view (ids + spans into the blob) for consumers that want to skip
// string re-materialization entirely.
//
// Tapes are immutable once recorded and contain no pointers, so they
// are safely shared across threads and persist byte-for-byte via
// Save/Load across daemon restarts.
#ifndef XSQ_TAPE_TAPE_H_
#define XSQ_TAPE_TAPE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "tape/symbol_table.h"
#include "xml/events.h"

namespace xsq::tape {

// Record opcodes. Values are part of the on-disk format; append only.
enum class Op : uint8_t {
  kDocumentBegin = 0,
  kDoctype = 1,
  kBegin = 2,
  kEnd = 3,
  kText = 4,
  kDocumentEnd = 5,
};

struct TapeStats {
  uint64_t begin_events = 0;
  uint64_t end_events = 0;
  uint64_t text_events = 0;
  uint64_t attribute_count = 0;
  // Source document size in bytes, when known (RecordDocument sets it);
  // the compression/amortization ratios in bench/ext_tape divide by it.
  uint64_t source_bytes = 0;
  // Projection counters: what the mask dropped at record time.
  uint64_t dropped_subtrees = 0;     // elements pruned with their subtrees
  uint64_t dropped_text_events = 0;  // text of kept-but-payload-free elements
  uint64_t dropped_attributes = 0;

  uint64_t element_events() const { return begin_events + end_events; }
};

class Tape {
 public:
  Tape() = default;
  Tape(Tape&&) = default;
  Tape& operator=(Tape&&) = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- building (TapeRecorder uses these; order must be a legal SAX
  // stream, which the recorder guarantees) ---
  void AppendDocumentBegin();
  void AppendDoctype(std::string_view name, std::string_view internal_subset);
  void AppendBegin(std::string_view tag,
                   const std::vector<xml::Attribute>& attributes, int depth);
  // Begin with the attribute list suppressed (projection).
  void AppendBeginNoAttributes(std::string_view tag, int depth);
  void AppendEnd(std::string_view tag, int depth);
  void AppendText(std::string_view tag, std::string_view text, int depth);
  void AppendDocumentEnd();

  // --- reading ---

  // One decoded record. Views point into the tape (symbol table and
  // blob) and stay valid for the tape's lifetime.
  struct Attr {
    SymbolId name = SymbolTable::kInvalid;
    std::string_view value;
  };
  struct EventView {
    Op op = Op::kDocumentBegin;
    SymbolId tag = SymbolTable::kInvalid;  // begin / end / text
    int depth = 0;
    std::string_view text;          // text payload, or doctype subset
    std::string_view doctype_name;  // doctype only
    const std::vector<Attr>* attributes = nullptr;  // begin only
  };

  // Sequential scan over the records. The cursor holds the attribute
  // scratch vector, so iteration allocates only while an event carries
  // more attributes than any previous one.
  class Cursor {
   public:
    explicit Cursor(const Tape& tape);

    // Decodes the next record into `out`; false at end of tape.
    // A malformed tape (only possible via a corrupt Load bypassing
    // validation) stops the scan and sets status().
    bool Next(EventView* out);

    void Rewind();
    const Status& status() const { return status_; }

   private:
    const Tape& tape_;
    size_t record_pos_ = 0;
    size_t blob_pos_ = 0;
    std::vector<Attr> attrs_;
    Status status_;
  };

  const SymbolTable& symbols() const { return symbols_; }
  const TapeStats& stats() const { return stats_; }
  TapeStats& mutable_stats() { return stats_; }

  uint64_t event_count() const { return event_count_; }
  size_t record_bytes() const { return records_.size(); }
  size_t blob_bytes() const { return blob_.size(); }

  // Total footprint: records + blob + symbol table. This is what the
  // DocumentCache's byte budget accounts.
  size_t memory_bytes() const;

  // --- persistence ---
  //
  // On-disk format v2 ("XSQTAPE2"): the v1 layout (varint header with
  // symbol table, counters and section sizes, then records, then blob)
  // with a 4-byte little-endian CRC32C trailer after each of the three
  // sections. CRC32C detects every single-bit error, so Load rejects
  // any tape a storage layer flipped a bit in — verified exhaustively
  // in tests. v1 tapes ("XSQTAPE1", no checksums) still load.

  // The complete v2 byte image (what Save writes).
  std::string Serialize() const;
  Status Save(const std::string& path) const;

  // Parses and fully validates a serialized tape (either version):
  // magic, per-section checksums (v2), symbol ids, payload spans,
  // depth/nesting sanity — so replay never needs to re-validate.
  // `origin` names the source (a path, "<memory>") in error messages.
  // Corruption fails with StatusCode::kDataCorruption.
  static Result<Tape> FromBytes(std::string data, const std::string& origin);
  static Result<Tape> Load(const std::string& path);

  // Writes the legacy checksum-free v1 image; kept so tests can prove
  // v1 tapes remain loadable. New code has no reason to call this.
  Status SaveLegacyV1(const std::string& path) const;

 private:
  // Walks every record checking structural invariants; used by Load.
  Status Validate() const;

  // The shared varint header (everything between magic and records).
  std::string SerializeHeaderBody() const;

  SymbolTable symbols_;
  std::vector<uint8_t> records_;
  std::string blob_;
  uint64_t event_count_ = 0;
  TapeStats stats_;
};

}  // namespace xsq::tape

#endif  // XSQ_TAPE_TAPE_H_
