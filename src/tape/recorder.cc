#include "tape/recorder.h"

#include "xml/sax_parser.h"

namespace xsq::tape {

TapeRecorder::TapeRecorder(Tape* tape, const ProjectionMask* mask)
    : tape_(tape), mask_(mask) {
  if (mask_ != nullptr && mask_->keeps_everything()) mask_ = nullptr;
}

void TapeRecorder::OnDocumentBegin() {
  drop_depth_ = 0;
  tape_->AppendDocumentBegin();
}

void TapeRecorder::OnDoctype(std::string_view name,
                             std::string_view internal_subset) {
  tape_->AppendDoctype(name, internal_subset);
}

void TapeRecorder::OnBegin(std::string_view tag,
                           const std::vector<xml::Attribute>& attributes,
                           int depth) {
  if (Dropping(depth)) return;
  if (mask_ != nullptr && !mask_->KeepElement(tag, depth)) {
    drop_depth_ = depth;
    ++tape_->mutable_stats().dropped_subtrees;
    return;
  }
  if (mask_ != nullptr && !attributes.empty() &&
      !mask_->KeepAttributes(tag)) {
    tape_->mutable_stats().dropped_attributes += attributes.size();
    tape_->AppendBeginNoAttributes(tag, depth);
    return;
  }
  tape_->AppendBegin(tag, attributes, depth);
}

void TapeRecorder::OnEnd(std::string_view tag, int depth) {
  if (drop_depth_ != 0) {
    if (depth > drop_depth_) return;
    // This end event closes the dropped subtree's root.
    drop_depth_ = 0;
    return;
  }
  tape_->AppendEnd(tag, depth);
}

void TapeRecorder::OnText(std::string_view enclosing_tag,
                          std::string_view text, int depth) {
  if (Dropping(depth)) return;
  if (mask_ != nullptr && !mask_->KeepText(enclosing_tag)) {
    ++tape_->mutable_stats().dropped_text_events;
    return;
  }
  tape_->AppendText(enclosing_tag, text, depth);
}

void TapeRecorder::OnDocumentEnd() { tape_->AppendDocumentEnd(); }

Result<Tape> RecordDocument(std::string_view document,
                            const ProjectionMask* mask) {
  Tape tape;
  TapeRecorder recorder(&tape, mask);
  xml::SaxParser parser(&recorder);
  XSQ_RETURN_IF_ERROR(parser.Parse(document));
  tape.mutable_stats().source_bytes = document.size();
  return tape;
}

}  // namespace xsq::tape
