// TapeRecorder: captures any SAX parse onto a Tape.
//
// It is a xml::SaxHandler, so it can sit anywhere a query engine can:
// behind a SaxParser, inside a TeeHandler next to a live engine (record
// while serving), or behind a TapeReplayer (re-projecting an existing
// tape under a narrower mask). With a ProjectionMask it drops provably
// irrelevant events at capture time; with none it records the complete
// stream bit-for-bit.
#ifndef XSQ_TAPE_RECORDER_H_
#define XSQ_TAPE_RECORDER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "tape/projection.h"
#include "tape/tape.h"
#include "xml/events.h"

namespace xsq::tape {

class TapeRecorder : public xml::SaxHandler {
 public:
  // `tape` receives the events; `mask` (optional) filters them. Both
  // are borrowed and must outlive the recorder.
  explicit TapeRecorder(Tape* tape, const ProjectionMask* mask = nullptr);

  void OnDocumentBegin() override;
  void OnDoctype(std::string_view name,
                 std::string_view internal_subset) override;
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

 private:
  bool Dropping(int depth) const {
    return drop_depth_ != 0 && depth >= drop_depth_;
  }

  Tape* tape_;
  const ProjectionMask* mask_;  // may be null: keep everything
  // Depth of the shallowest element of the subtree being dropped; 0
  // when not inside a dropped subtree.
  int drop_depth_ = 0;
};

// Convenience: parses `document` and records it in one step, filling
// in stats().source_bytes.
Result<Tape> RecordDocument(std::string_view document,
                            const ProjectionMask* mask = nullptr);

}  // namespace xsq::tape

#endif  // XSQ_TAPE_RECORDER_H_
