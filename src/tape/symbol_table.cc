#include "tape/symbol_table.h"

namespace xsq::tape {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(std::string_view(names_.back()), id);
  return id;
}

SymbolId SymbolTable::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kInvalid : it->second;
}

size_t SymbolTable::memory_bytes() const {
  size_t bytes = 0;
  for (const std::string& name : names_) {
    bytes += sizeof(std::string) + name.capacity();
  }
  // Hash table: one bucket pointer plus one node per entry, roughly.
  bytes += index_.size() * (sizeof(void*) * 3 + sizeof(SymbolId));
  return bytes;
}

}  // namespace xsq::tape
