#include <cstddef>
#include <string>
#include <string_view>

#include "common/strings.h"
#include "xpath/ast.h"

namespace xsq::xpath {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "%";
  }
  return "?";
}

std::string Predicate::ToString() const {
  std::string out = "[";
  switch (kind) {
    case PredicateKind::kAttribute:
      out += "@" + attribute;
      break;
    case PredicateKind::kText:
      out += "text()";
      break;
    case PredicateKind::kChild:
    case PredicateKind::kChildText:
      out += child_tag;
      break;
    case PredicateKind::kChildAttribute:
      out += child_tag + "@" + attribute;
      break;
  }
  if (has_comparison) {
    out += CompareOpName(op);
    if (literal_number.has_value()) {
      out += literal;
    } else {
      out += "\"" + literal + "\"";
    }
  }
  out += "]";
  return out;
}

std::string LocationStep::ToString() const {
  std::string out = axis == Axis::kClosure ? "//" : "/";
  out += node_test;
  for (const Predicate& p : predicates) out += p.ToString();
  return out;
}

std::string OutputExpr::ToString() const {
  switch (kind) {
    case OutputKind::kElement:
      return "";
    case OutputKind::kAttribute:
      return "/@" + attribute;
    case OutputKind::kText:
      return "/text()";
    case OutputKind::kCount:
      return "/count()";
    case OutputKind::kSum:
      return "/sum()";
    case OutputKind::kAvg:
      return "/avg()";
    case OutputKind::kMin:
      return "/min()";
    case OutputKind::kMax:
      return "/max()";
  }
  return "";
}

bool Query::HasClosure() const {
  for (const LocationStep& step : steps) {
    if (step.axis == Axis::kClosure) return true;
  }
  for (const Query& branch : union_branches) {
    if (branch.HasClosure()) return true;
  }
  return false;
}

bool Query::HasPredicates() const {
  for (const LocationStep& step : steps) {
    if (!step.predicates.empty()) return true;
  }
  for (const Query& branch : union_branches) {
    if (branch.HasPredicates()) return true;
  }
  return false;
}

std::string Query::ToString() const {
  std::string out;
  for (const LocationStep& step : steps) out += step.ToString();
  out += output.ToString();
  for (const Query& branch : union_branches) {
    out += " | ";
    out += branch.ToString();
  }
  return out;
}

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == ':' || static_cast<unsigned char>(c) >= 0x80;
}

// Recursive-descent parser over the query text.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Query> Parse() {
    Query query;
    SkipWhitespace();
    if (AtEnd()) return Error("empty query");
    while (true) {
      SkipWhitespace();
      if (AtEnd()) break;
      Axis axis;
      if (!ParseAxis(&axis)) {
        return Error("expected '/' or '//'");
      }
      SkipWhitespace();
      if (AtEnd()) return Error("dangling '/' at end of query");

      // Output expressions terminate the query.
      if (Peek() == '@') {
        ++pos_;
        std::string attr = ParseName();
        if (attr.empty()) return Error("expected attribute name after '@'");
        SkipWhitespace();
        if (!AtEnd()) return Error("output expression must end the query");
        if (axis != Axis::kChild) {
          return Error("output expression cannot use the '//' axis");
        }
        query.output.kind = OutputKind::kAttribute;
        query.output.attribute = std::move(attr);
        break;
      }
      size_t saved = pos_;
      std::string name = ParseName();
      if (!name.empty() && TryConsume("()")) {
        OutputKind kind;
        if (name == "text") {
          kind = OutputKind::kText;
        } else if (name == "count") {
          kind = OutputKind::kCount;
        } else if (name == "sum") {
          kind = OutputKind::kSum;
        } else if (name == "avg") {
          kind = OutputKind::kAvg;
        } else if (name == "min") {
          kind = OutputKind::kMin;
        } else if (name == "max") {
          kind = OutputKind::kMax;
        } else {
          return Error("unknown output function '" + name + "()'");
        }
        SkipWhitespace();
        if (!AtEnd()) return Error("output expression must end the query");
        if (axis != Axis::kChild) {
          return Error("output expression cannot use the '//' axis");
        }
        query.output.kind = kind;
        break;
      }
      pos_ = saved;

      LocationStep step;
      step.axis = axis;
      if (Peek() == '*') {
        ++pos_;
        step.node_test = "*";
      } else if (Peek() == '.') {
        // Reverse/self abbreviations '..' and '.': parsed as pseudo
        // steps here and rewritten into forward-only form below
        // (the approach of Olteanu et al., "XPath: Looking Forward").
        ++pos_;
        if (!AtEnd() && Peek() == '.') {
          ++pos_;
          step.node_test = "..";
        } else {
          step.node_test = ".";
        }
        if (!AtEnd() && Peek() == '[') {
          return Error("predicates on '.' or '..' steps are not supported");
        }
        if (axis != Axis::kChild) {
          return Error("'//' cannot precede '.' or '..'");
        }
        query.steps.push_back(std::move(step));
        continue;
      } else {
        step.node_test = ParseName();
        if (step.node_test.empty()) {
          return Error("expected element name or '*'");
        }
      }
      SkipWhitespace();
      while (!AtEnd() && Peek() == '[') {
        Predicate predicate;
        XSQ_RETURN_IF_ERROR(ParsePredicate(&predicate));
        step.predicates.push_back(std::move(predicate));
        SkipWhitespace();
      }
      query.steps.push_back(std::move(step));
    }
    if (query.steps.empty()) {
      return Error("query has no location steps");
    }
    return query;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (pos_ < text_.size() && IsXmlWhitespace(text_[pos_])) ++pos_;
  }

  bool TryConsume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  bool ParseAxis(Axis* axis) {
    if (AtEnd() || Peek() != '/') return false;
    ++pos_;
    if (!AtEnd() && Peek() == '/') {
      ++pos_;
      *axis = Axis::kClosure;
    } else {
      *axis = Axis::kChild;
    }
    return true;
  }

  std::string ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() && IsNameChar(text_[pos_])) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  // Parses an optional comparison ("OP constant") ending at ']'.
  Status ParseComparison(Predicate* predicate) {
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated predicate").status();
    if (Peek() == ']') {
      ++pos_;
      return Status::OK();
    }
    CompareOp op;
    if (TryConsume("!=")) {
      op = CompareOp::kNe;
    } else if (TryConsume(">=")) {
      op = CompareOp::kGe;
    } else if (TryConsume("<=")) {
      op = CompareOp::kLe;
    } else if (TryConsume(">")) {
      op = CompareOp::kGt;
    } else if (TryConsume("<")) {
      op = CompareOp::kLt;
    } else if (TryConsume("=")) {
      op = CompareOp::kEq;
    } else if (TryConsume("%")) {
      op = CompareOp::kContains;
    } else if (TryConsume("contains")) {
      op = CompareOp::kContains;
    } else {
      return Error("expected comparison operator or ']' in predicate")
          .status();
    }
    predicate->has_comparison = true;
    predicate->op = op;
    SkipWhitespace();
    if (AtEnd()) return Error("missing comparison constant").status();
    char quote = Peek();
    if (quote == '"' || quote == '\'') {
      ++pos_;
      size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Error("unterminated string literal").status();
      }
      predicate->literal = std::string(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
      SkipWhitespace();
      if (AtEnd() || Peek() != ']') {
        return Error("expected ']' after string literal").status();
      }
      ++pos_;
    } else {
      size_t end = text_.find(']', pos_);
      if (end == std::string_view::npos) {
        return Error("unterminated predicate").status();
      }
      std::string_view raw = TrimWhitespace(text_.substr(pos_, end - pos_));
      if (raw.empty()) return Error("missing comparison constant").status();
      predicate->literal = std::string(raw);
      pos_ = end + 1;
    }
    predicate->literal_number = ParseNumber(predicate->literal);
    return Status::OK();
  }

  Status ParsePredicate(Predicate* predicate) {
    ++pos_;  // consume '['
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated predicate").status();
    if (Peek() == '@') {
      ++pos_;
      predicate->kind = PredicateKind::kAttribute;
      predicate->attribute = ParseName();
      if (predicate->attribute.empty()) {
        return Error("expected attribute name after '@'").status();
      }
      return ParseComparison(predicate);
    }
    if (Peek() == '*') {
      ++pos_;
      predicate->child_tag.assign(1, '*');  // assign: GCC12 -Wrestrict FP
      if (!AtEnd() && Peek() == '@') {
        ++pos_;
        predicate->kind = PredicateKind::kChildAttribute;
        predicate->attribute = ParseName();
        if (predicate->attribute.empty()) {
          return Error("expected attribute name after '@'").status();
        }
        return ParseComparison(predicate);
      }
      predicate->kind = PredicateKind::kChild;
      XSQ_RETURN_IF_ERROR(ParseComparison(predicate));
      if (predicate->has_comparison) {
        predicate->kind = PredicateKind::kChildText;
      }
      return Status::OK();
    }
    size_t saved = pos_;
    std::string name = ParseName();
    if (name.empty()) {
      return Error("expected '@attr', 'text()', or child tag in predicate")
          .status();
    }
    if (name == "text" && TryConsume("()")) {
      predicate->kind = PredicateKind::kText;
      return ParseComparison(predicate);
    }
    pos_ = saved;
    name = ParseName();  // re-read: 'text' without '()' is a child tag
    if (!AtEnd() && Peek() == '@') {
      ++pos_;
      predicate->kind = PredicateKind::kChildAttribute;
      predicate->child_tag = std::move(name);
      predicate->attribute = ParseName();
      if (predicate->attribute.empty()) {
        return Error("expected attribute name after '@'").status();
      }
      return ParseComparison(predicate);
    }
    predicate->child_tag = std::move(name);
    predicate->kind = PredicateKind::kChild;
    XSQ_RETURN_IF_ERROR(ParseComparison(predicate));
    if (predicate->has_comparison) {
      predicate->kind = PredicateKind::kChildText;
    }
    return Status::OK();
  }

  Result<Query> Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " (offset " + std::to_string(pos_) + " in query '" +
        std::string(text_) + "')");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

namespace {

// Splits on '|' characters at the top level (outside predicate brackets
// and string literals).
std::vector<std::string_view> SplitUnionBranches(std::string_view text) {
  std::vector<std::string_view> branches;
  size_t start = 0;
  int bracket_depth = 0;
  char quote = '\0';
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (quote != '\0') {
      if (c == quote) quote = '\0';
    } else if (c == '"' || c == '\'') {
      quote = c;
    } else if (c == '[') {
      ++bracket_depth;
    } else if (c == ']') {
      --bracket_depth;
    } else if (c == '|' && bracket_depth == 0) {
      branches.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  branches.push_back(text.substr(start));
  return branches;
}

}  // namespace

namespace {

// Rewrites '.' (self) and '..' (parent) pseudo steps into forward-only
// form: '.' disappears; 'X/..' folds into a child-existence predicate
// on the step before X ("XPath: Looking Forward" [Olteanu et al. 2002]).
// E.g. /a/b/.. == /a[b] and //x/y/.. == //x[y].
Status RewriteReverseSteps(Query* query) {
  std::vector<LocationStep> rewritten;
  for (LocationStep& step : query->steps) {
    if (step.node_test == ".") {
      continue;  // self step: no effect
    }
    if (step.node_test != "..") {
      rewritten.push_back(std::move(step));
      continue;
    }
    // Fold the previous step into a predicate of its own predecessor.
    if (rewritten.empty()) {
      return Status::NotSupported(
          "'..' stepping above the first location step is not supported");
    }
    LocationStep child = std::move(rewritten.back());
    rewritten.pop_back();
    if (child.axis == Axis::kClosure) {
      return Status::NotSupported(
          "'..' after a '//' step is not supported (the parent is not "
          "expressible as a child-existence predicate)");
    }
    if (!child.predicates.empty()) {
      return Status::NotSupported(
          "'..' after a predicated step is not supported");
    }
    if (rewritten.empty()) {
      return Status::NotSupported(
          "'..' reaching the document node is not supported");
    }
    Predicate folded;
    folded.kind = PredicateKind::kChild;
    folded.child_tag = child.node_test;
    rewritten.back().predicates.push_back(std::move(folded));
  }
  if (rewritten.empty()) {
    return Status::NotSupported("query reduces to the document node");
  }
  query->steps = std::move(rewritten);
  return Status::OK();
}

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  std::vector<std::string_view> branch_texts = SplitUnionBranches(text);
  if (branch_texts.size() == 1) {
    XSQ_ASSIGN_OR_RETURN(Query query, Parser(text).Parse());
    XSQ_RETURN_IF_ERROR(RewriteReverseSteps(&query));
    return query;
  }
  XSQ_ASSIGN_OR_RETURN(Query query, Parser(branch_texts.front()).Parse());
  XSQ_RETURN_IF_ERROR(RewriteReverseSteps(&query));
  for (size_t i = 1; i < branch_texts.size(); ++i) {
    XSQ_ASSIGN_OR_RETURN(Query branch, Parser(branch_texts[i]).Parse());
    XSQ_RETURN_IF_ERROR(RewriteReverseSteps(&branch));
    if (branch.output.kind != query.output.kind ||
        branch.output.attribute != query.output.attribute) {
      return Status::InvalidArgument(
          "union branches must share the same output expression (in '" +
          std::string(text) + "')");
    }
    query.union_branches.push_back(std::move(branch));
  }
  return query;
}

}  // namespace xsq::xpath
