// Shared comparison semantics for predicate evaluation.
//
// Every engine (XSQ-F, XSQ-NC, naive, DOM oracle) routes comparisons
// through this single function so they agree exactly. Semantics follow
// XPath 1.0 number coercion: relational operators (<, <=, >, >=) compare
// numerically and are false when either side is not a number; = compares
// numerically when both sides are numbers and as strings otherwise;
// != is the negation of =; contains is a substring test.
#ifndef XSQ_XPATH_VALUE_COMPARE_H_
#define XSQ_XPATH_VALUE_COMPARE_H_

#include <string_view>

#include "xpath/ast.h"

namespace xsq::xpath {

// Compares an observed string value (attribute value or text content)
// against a predicate's comparison constant.
bool CompareValue(std::string_view observed, const Predicate& predicate);

// Generic form used by code that does not have a Predicate at hand.
bool CompareValue(std::string_view observed, CompareOp op,
                  std::string_view literal, bool literal_is_number,
                  double literal_number);

}  // namespace xsq::xpath

#endif  // XSQ_XPATH_VALUE_COMPARE_H_
