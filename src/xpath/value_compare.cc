#include "xpath/value_compare.h"

#include <optional>

#include "common/strings.h"

namespace xsq::xpath {

bool CompareValue(std::string_view observed, CompareOp op,
                  std::string_view literal, bool literal_is_number,
                  double literal_number) {
  if (op == CompareOp::kContains) {
    return Contains(observed, literal);
  }

  std::optional<double> observed_number = ParseNumber(observed);
  bool both_numeric = literal_is_number && observed_number.has_value();

  switch (op) {
    case CompareOp::kLt:
      return both_numeric && *observed_number < literal_number;
    case CompareOp::kLe:
      return both_numeric && *observed_number <= literal_number;
    case CompareOp::kGt:
      return both_numeric && *observed_number > literal_number;
    case CompareOp::kGe:
      return both_numeric && *observed_number >= literal_number;
    case CompareOp::kEq:
      if (both_numeric) return *observed_number == literal_number;
      return observed == literal;
    case CompareOp::kNe:
      if (both_numeric) return *observed_number != literal_number;
      return observed != literal;
    case CompareOp::kContains:
      break;  // handled above
  }
  return false;
}

bool CompareValue(std::string_view observed, const Predicate& predicate) {
  return CompareValue(observed, predicate.op, predicate.literal,
                      predicate.literal_number.has_value(),
                      predicate.literal_number.value_or(0.0));
}

}  // namespace xsq::xpath
