// Abstract syntax for the XPath fragment of the paper (Figure 3).
//
// A query is a location path (a sequence of location steps, each with an
// axis, a node test, and optional predicates) followed by an optional
// output expression. Extensions beyond the figure, all exercised by
// tests: `*` wildcard node tests, multiple predicates per step
// (conjunction), and the avg()/min()/max() aggregations.
#ifndef XSQ_XPATH_AST_H_
#define XSQ_XPATH_AST_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace xsq::xpath {

// `/` is the child axis; `//` is the closure (descendant-or-self) axis.
enum class Axis { kChild, kClosure };

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains };

const char* CompareOpName(CompareOp op);

// The five predicate categories of paper Section 3.2, which determine the
// BPDT template used for the step and the SAX events at which the
// predicate is decided.
enum class PredicateKind {
  kAttribute,       // [@attr] / [@attr OP c]      - decided at begin event
  kText,            // [text()] / [text() OP c]    - decided at text events
  kChild,           // [tag]                       - decided at child begin
  kChildAttribute,  // [tag@attr] / [tag@attr OP c]- decided at child begin
  kChildText,       // [tag OP c] / [tag text op]  - decided at child text
};

struct Predicate {
  PredicateKind kind;
  std::string child_tag;   // kChild / kChildAttribute / kChildText
  std::string attribute;   // kAttribute / kChildAttribute
  bool has_comparison = false;
  CompareOp op = CompareOp::kEq;
  std::string literal;                    // comparison constant (raw text)
  std::optional<double> literal_number;   // set when `literal` is numeric

  std::string ToString() const;
};

struct LocationStep {
  Axis axis = Axis::kChild;
  std::string node_test;  // element tag, or "*" for any element
  std::vector<Predicate> predicates;

  bool IsWildcard() const { return node_test == "*"; }
  std::string ToString() const;
};

enum class OutputKind {
  kElement,    // no output expression: return the matching elements
  kAttribute,  // @attr of the matching element
  kText,       // text() of the matching element
  kCount,      // count() of matching elements
  kSum,        // sum() of the numeric content of matching elements
  kAvg,        // extension
  kMin,        // extension
  kMax,        // extension
};

inline bool IsAggregation(OutputKind kind) {
  return kind == OutputKind::kCount || kind == OutputKind::kSum ||
         kind == OutputKind::kAvg || kind == OutputKind::kMin ||
         kind == OutputKind::kMax;
}

struct OutputExpr {
  OutputKind kind = OutputKind::kElement;
  std::string attribute;  // kAttribute only

  std::string ToString() const;
};

struct Query {
  std::vector<LocationStep> steps;
  OutputExpr output;

  // Union queries (XPath 1.0 '|', an extension beyond the paper's
  // grammar): additional location paths whose matched elements are
  // unioned with this one's, with set semantics (an element matched by
  // several branches appears once) and document-order output. Every
  // branch must carry the same output expression. Branch queries have
  // no nested unions. Supported by XSQ-F and the DOM evaluator.
  std::vector<Query> union_branches;

  bool IsUnion() const { return !union_branches.empty(); }

  // True if any step (of any branch) uses the closure axis.
  bool HasClosure() const;
  // True if any step (of any branch) carries a predicate.
  bool HasPredicates() const;

  std::string ToString() const;
};

// Parses the textual form, e.g.
//   //pub[year>2000]//book[author]//name/text()
//   /PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()   (% = contains)
// Comparison constants may be numbers, quoted strings, or bare words.
Result<Query> ParseQuery(std::string_view text);

}  // namespace xsq::xpath

#endif  // XSQ_XPATH_AST_H_
