#include "dtd/content_automaton.h"

#include <algorithm>

namespace xsq::dtd {

ContentAutomaton ContentAutomaton::Compile(const Particle& particle) {
  ContentAutomaton automaton;
  automaton.start_ = automaton.AddState();
  automaton.accept_ = automaton.AddState();
  automaton.Build(particle, automaton.start_, automaton.accept_);
  return automaton;
}

void ContentAutomaton::Build(const Particle& particle, int from, int to) {
  // Wrap repetition around an inner fragment [inner_from, inner_to].
  int inner_from = from;
  int inner_to = to;
  switch (particle.repeat) {
    case Particle::Repeat::kOne:
      break;
    case Particle::Repeat::kOptional:
      states_[static_cast<size_t>(from)].epsilon.push_back(to);
      break;
    case Particle::Repeat::kStar:
      inner_from = AddState();
      inner_to = AddState();
      states_[static_cast<size_t>(from)].epsilon.push_back(inner_from);
      states_[static_cast<size_t>(from)].epsilon.push_back(to);
      states_[static_cast<size_t>(inner_to)].epsilon.push_back(inner_from);
      states_[static_cast<size_t>(inner_to)].epsilon.push_back(to);
      break;
    case Particle::Repeat::kPlus:
      inner_from = AddState();
      inner_to = AddState();
      states_[static_cast<size_t>(from)].epsilon.push_back(inner_from);
      states_[static_cast<size_t>(inner_to)].epsilon.push_back(inner_from);
      states_[static_cast<size_t>(inner_to)].epsilon.push_back(to);
      break;
  }

  switch (particle.kind) {
    case Particle::Kind::kName:
      states_[static_cast<size_t>(inner_from)].arcs[particle.name].push_back(
          inner_to);
      break;
    case Particle::Kind::kSequence: {
      int current = inner_from;
      for (size_t i = 0; i < particle.children.size(); ++i) {
        int next = i + 1 == particle.children.size() ? inner_to : AddState();
        Build(particle.children[i], current, next);
        current = next;
      }
      if (particle.children.empty()) {
        states_[static_cast<size_t>(inner_from)].epsilon.push_back(inner_to);
      }
      break;
    }
    case Particle::Kind::kChoice:
      for (const Particle& child : particle.children) {
        Build(child, inner_from, inner_to);
      }
      if (particle.children.empty()) {
        states_[static_cast<size_t>(inner_from)].epsilon.push_back(inner_to);
      }
      break;
  }
}

void ContentAutomaton::CloseOverEpsilon(std::vector<int>* states) const {
  std::vector<int> pending = *states;
  while (!pending.empty()) {
    int state = pending.back();
    pending.pop_back();
    for (int next : states_[static_cast<size_t>(state)].epsilon) {
      if (std::find(states->begin(), states->end(), next) == states->end()) {
        states->push_back(next);
        pending.push_back(next);
      }
    }
  }
  std::sort(states->begin(), states->end());
}

std::vector<int> ContentAutomaton::Start() const {
  std::vector<int> states = {start_};
  CloseOverEpsilon(&states);
  return states;
}

std::vector<int> ContentAutomaton::Advance(const std::vector<int>& states,
                                           std::string_view name) const {
  std::vector<int> next;
  const std::string key(name);
  for (int state : states) {
    auto it = states_[static_cast<size_t>(state)].arcs.find(key);
    if (it == states_[static_cast<size_t>(state)].arcs.end()) continue;
    for (int target : it->second) {
      if (std::find(next.begin(), next.end(), target) == next.end()) {
        next.push_back(target);
      }
    }
  }
  if (!next.empty()) CloseOverEpsilon(&next);
  return next;
}

bool ContentAutomaton::Accepts(const std::vector<int>& states) const {
  return std::find(states.begin(), states.end(), accept_) != states.end();
}

}  // namespace xsq::dtd
