#include "dtd/validator.h"

#include "common/strings.h"
#include "xml/sax_parser.h"

namespace xsq::dtd {

namespace {

bool IsWhitespaceOnly(std::string_view text) {
  for (char c : text) {
    if (!IsXmlWhitespace(c)) return false;
  }
  return true;
}

}  // namespace

DtdValidator::DtdValidator(const Dtd& dtd, std::string expected_root)
    : dtd_(dtd), expected_root_(std::move(expected_root)) {}

void DtdValidator::Fail(const std::string& message) {
  if (status_.ok()) {
    status_ = Status::InvalidArgument("document invalid: " + message);
  }
}

const ContentAutomaton* DtdValidator::AutomatonFor(const ElementDecl& decl) {
  auto it = automata_.find(&decl);
  if (it != automata_.end()) return it->second.get();
  auto automaton = std::make_unique<ContentAutomaton>(
      ContentAutomaton::Compile(decl.model.particle));
  const ContentAutomaton* raw = automaton.get();
  automata_.emplace(&decl, std::move(automaton));
  return raw;
}

void DtdValidator::OnDocumentBegin() {
  stack_.clear();
  status_ = Status::OK();
  elements_checked_ = 0;
}

void DtdValidator::OnBegin(std::string_view tag,
                           const std::vector<xml::Attribute>& attributes,
                           int /*depth*/) {
  if (!status_.ok()) return;
  ++elements_checked_;

  if (stack_.empty()) {
    if (!expected_root_.empty() && tag != expected_root_) {
      Fail("root element is '" + std::string(tag) + "', DOCTYPE says '" +
           expected_root_ + "'");
      return;
    }
  } else {
    // The parent's content model must allow this child here.
    Frame& parent = stack_.back();
    if (parent.decl != nullptr) {
      switch (parent.decl->model.kind) {
        case ContentModel::Kind::kEmpty:
          Fail("element '" + parent.decl->name +
               "' is declared EMPTY but has a child '" + std::string(tag) +
               "'");
          return;
        case ContentModel::Kind::kAny:
          break;
        case ContentModel::Kind::kMixed: {
          bool allowed = false;
          for (const std::string& name : parent.decl->model.mixed_names) {
            if (name == tag) {
              allowed = true;
              break;
            }
          }
          if (!allowed) {
            Fail("element '" + std::string(tag) +
                 "' is not allowed in mixed content of '" +
                 parent.decl->name + "'");
            return;
          }
          break;
        }
        case ContentModel::Kind::kChildren: {
          parent.states = parent.automaton->Advance(parent.states, tag);
          if (parent.states.empty()) {
            Fail("element '" + std::string(tag) +
                 "' is not allowed at this position in '" +
                 parent.decl->name + "' (content model " +
                 parent.decl->model.ToString() + ")");
            return;
          }
          break;
        }
      }
    }
  }

  const ElementDecl* decl = dtd_.FindElement(tag);
  if (decl == nullptr) {
    Fail("element '" + std::string(tag) + "' is not declared");
    return;
  }

  // Attribute validity: every attribute declared; #REQUIRED present;
  // #FIXED values match.
  for (const xml::Attribute& attr : attributes) {
    const AttributeDecl* found = nullptr;
    for (const AttributeDecl& declared : decl->attributes) {
      if (declared.name == attr.name) {
        found = &declared;
        break;
      }
    }
    if (found == nullptr) {
      Fail("attribute '" + std::string(attr.name) + "' of element '" +
           std::string(tag) + "' is not declared");
      return;
    }
    if (found->presence == AttributeDecl::Presence::kFixed &&
        attr.value != found->default_value) {
      Fail("attribute '" + std::string(attr.name) + "' is #FIXED to \"" +
           found->default_value + "\"");
      return;
    }
  }
  for (const AttributeDecl& declared : decl->attributes) {
    if (declared.presence != AttributeDecl::Presence::kRequired) continue;
    bool present = false;
    for (const xml::Attribute& attr : attributes) {
      if (attr.name == declared.name) {
        present = true;
        break;
      }
    }
    if (!present) {
      Fail("required attribute '" + declared.name + "' missing on '" +
           std::string(tag) + "'");
      return;
    }
  }

  Frame frame;
  frame.decl = decl;
  if (decl->model.kind == ContentModel::Kind::kChildren) {
    frame.automaton = AutomatonFor(*decl);
    frame.states = frame.automaton->Start();
  }
  stack_.push_back(std::move(frame));
}

void DtdValidator::OnText(std::string_view /*enclosing_tag*/,
                          std::string_view text, int /*depth*/) {
  if (!status_.ok() || stack_.empty()) return;
  const Frame& frame = stack_.back();
  if (frame.decl == nullptr) return;
  switch (frame.decl->model.kind) {
    case ContentModel::Kind::kAny:
    case ContentModel::Kind::kMixed:
      return;
    case ContentModel::Kind::kEmpty:
      if (!IsWhitespaceOnly(text)) {
        Fail("element '" + frame.decl->name +
             "' is declared EMPTY but contains text");
      }
      return;
    case ContentModel::Kind::kChildren:
      // Whitespace between children ("element content whitespace") is
      // permitted; other character data is not.
      if (!IsWhitespaceOnly(text)) {
        Fail("element '" + frame.decl->name +
             "' has element content but contains text");
      }
      return;
  }
}

void DtdValidator::OnEnd(std::string_view /*tag*/, int /*depth*/) {
  if (!status_.ok() || stack_.empty()) return;
  const Frame& frame = stack_.back();
  if (frame.decl != nullptr &&
      frame.decl->model.kind == ContentModel::Kind::kChildren &&
      !frame.automaton->Accepts(frame.states)) {
    Fail("content of element '" + frame.decl->name +
         "' is incomplete (content model " + frame.decl->model.ToString() +
         ")");
  }
  stack_.pop_back();
}

void DtdValidator::OnDocumentEnd() {}

Status ValidateDocument(const Dtd& dtd, std::string_view xml_text,
                        std::string expected_root) {
  DtdValidator validator(dtd, std::move(expected_root));
  xml::SaxParser parser(&validator);
  XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
  return validator.status();
}

}  // namespace xsq::dtd
