// Schema-aware query analysis and optimization - the future work named
// at the end of the paper's Section 5 ("automatically incorporate
// schema information, if available, into the system for optimization").
//
// Given a DTD and a query, the analyzer computes which element names
// can possibly match each location step. This yields two optimizations:
//
//  1. Unsatisfiability: a query whose step (or predicate) can never be
//     satisfied under the schema is answered empty without reading a
//     single byte of the stream.
//
//  2. Closure elimination: when the DTD's element graph admits exactly
//     one path for a '//' step, the step is rewritten into explicit
//     child steps. A fully rewritten query is closure-free, so the
//     deterministic XSQ-NC engine can run instead of the
//     nondeterministic XSQ-F (the throughput gap of Figure 16). E.g.
//     with the SHAKE DTD, //ACT//SPEAKER becomes
//     /PLAY/ACT/SCENE/SPEECH/SPEAKER - the paper's Q3 turned into Q2.
#ifndef XSQ_DTD_OPTIMIZER_H_
#define XSQ_DTD_OPTIMIZER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dtd/dtd.h"
#include "xpath/ast.h"

namespace xsq::dtd {

struct QueryAnalysis {
  // False when the schema proves the result is empty.
  bool satisfiable = true;
  std::string unsatisfiable_reason;

  // Element names that can match each location step (sorted).
  std::vector<std::vector<std::string>> step_tags;

  // Present when every closure step expanded to a unique child path;
  // the rewrite is equivalent on every document valid under the DTD.
  std::optional<xpath::Query> closure_free_rewrite;
};

// Analyzes `query` against `dtd` with the given document root element.
Result<QueryAnalysis> AnalyzeQuery(const Dtd& dtd,
                                   const std::string& root_element,
                                   const xpath::Query& query);

}  // namespace xsq::dtd

#endif  // XSQ_DTD_OPTIMIZER_H_
