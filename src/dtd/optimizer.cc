#include "dtd/optimizer.h"

#include <algorithm>
#include <unordered_set>

namespace xsq::dtd {

namespace {

constexpr int kMaxPathDepth = 16;
constexpr size_t kMaxPaths = 32;

bool TagMatches(const xpath::LocationStep& step, const std::string& tag) {
  return step.IsWildcard() || step.node_test == tag;
}

// True when `predicate` can possibly hold for an element named `tag` in
// a document that is valid with respect to `dtd`.
bool PredicateFeasible(const Dtd& dtd, const std::string& tag,
                       const xpath::Predicate& predicate) {
  const ElementDecl* decl = dtd.FindElement(tag);
  if (decl == nullptr) return false;  // valid docs contain declared elements

  auto has_attribute = [](const ElementDecl& d, const std::string& name) {
    for (const AttributeDecl& attr : d.attributes) {
      if (attr.name == name) return true;
    }
    return false;
  };

  switch (predicate.kind) {
    case xpath::PredicateKind::kAttribute:
      return has_attribute(*decl, predicate.attribute);
    case xpath::PredicateKind::kText:
      return dtd.AllowsText(tag);
    case xpath::PredicateKind::kChild:
    case xpath::PredicateKind::kChildText:
    case xpath::PredicateKind::kChildAttribute: {
      std::vector<std::string> children = dtd.PossibleChildren(tag);
      for (const std::string& child : children) {
        if (predicate.child_tag != "*" && child != predicate.child_tag) {
          continue;
        }
        if (predicate.kind == xpath::PredicateKind::kChildText &&
            !dtd.AllowsText(child)) {
          continue;
        }
        if (predicate.kind == xpath::PredicateKind::kChildAttribute) {
          const ElementDecl* child_decl = dtd.FindElement(child);
          if (child_decl == nullptr ||
              !has_attribute(*child_decl, predicate.attribute)) {
            continue;
          }
        }
        return true;
      }
      return false;
    }
  }
  return false;
}

bool StepFeasible(const Dtd& dtd, const std::string& tag,
                  const xpath::LocationStep& step) {
  for (const xpath::Predicate& predicate : step.predicates) {
    if (!PredicateFeasible(dtd, tag, predicate)) return false;
  }
  return true;
}

// Enumerates the distinct tag sequences leading from `source` (or from
// the document node when source is empty) to an element accepted by
// `step`. Returns false when enumeration is abandoned (cycle or limits).
bool EnumeratePaths(const Dtd& dtd, const std::string& root_element,
                    const std::string& source,
                    const xpath::LocationStep& step,
                    std::vector<std::vector<std::string>>* paths) {
  std::vector<std::string> current;
  std::unordered_set<std::string> on_path;

  // Iterative DFS with an explicit stack of (tag, child index).
  struct Level {
    std::vector<std::string> children;
    size_t next = 0;
  };
  std::vector<Level> stack;
  auto children_of = [&](const std::string& tag) {
    if (tag.empty()) return std::vector<std::string>{root_element};
    return dtd.PossibleChildren(tag);
  };
  stack.push_back({children_of(source), 0});

  while (!stack.empty()) {
    Level& level = stack.back();
    if (level.next >= level.children.size()) {
      stack.pop_back();
      if (!current.empty()) {
        on_path.erase(current.back());
        current.pop_back();
      }
      continue;
    }
    const std::string tag = level.children[level.next++];
    if (on_path.count(tag) > 0) {
      return false;  // cycle: infinitely many paths possible
    }
    current.push_back(tag);
    on_path.insert(tag);
    if (TagMatches(step, tag) && StepFeasible(dtd, tag, step)) {
      paths->push_back(current);
      if (paths->size() > kMaxPaths) return false;
    }
    if (static_cast<int>(current.size()) >= kMaxPathDepth) {
      on_path.erase(current.back());
      current.pop_back();
      continue;
    }
    stack.push_back({children_of(tag), 0});
  }
  return true;
}

}  // namespace

Result<QueryAnalysis> AnalyzeQuery(const Dtd& dtd,
                                   const std::string& root_element,
                                   const xpath::Query& query) {
  if (query.steps.empty()) {
    return Status::InvalidArgument("query has no location steps");
  }
  if (query.IsUnion()) {
    return Status::NotSupported(
        "schema analysis does not support union queries yet");
  }
  if (dtd.FindElement(root_element) == nullptr) {
    return Status::InvalidArgument("root element '" + root_element +
                                   "' is not declared in the DTD");
  }

  QueryAnalysis analysis;

  // Possible tags per step.
  std::vector<std::string> frontier;  // tags matching the previous step
  bool at_document_node = true;
  for (const xpath::LocationStep& step : query.steps) {
    std::unordered_set<std::string> candidates;
    if (step.axis == xpath::Axis::kChild) {
      if (at_document_node) {
        candidates.insert(root_element);
      } else {
        for (const std::string& tag : frontier) {
          for (const std::string& child : dtd.PossibleChildren(tag)) {
            candidates.insert(child);
          }
        }
      }
    } else {
      if (at_document_node) {
        candidates.insert(root_element);
        for (const std::string& tag :
             dtd.ReachableDescendants(root_element)) {
          candidates.insert(tag);
        }
      } else {
        for (const std::string& tag : frontier) {
          for (const std::string& descendant :
               dtd.ReachableDescendants(tag)) {
            candidates.insert(descendant);
          }
        }
      }
    }
    std::vector<std::string> surviving;
    for (const std::string& tag : candidates) {
      if (TagMatches(step, tag) && StepFeasible(dtd, tag, step)) {
        surviving.push_back(tag);
      }
    }
    std::sort(surviving.begin(), surviving.end());
    if (surviving.empty()) {
      analysis.satisfiable = false;
      analysis.unsatisfiable_reason =
          "no element can match step " + step.ToString() +
          " under this DTD";
    }
    analysis.step_tags.push_back(surviving);
    frontier = analysis.step_tags.back();
    at_document_node = false;
  }
  if (!analysis.satisfiable) return analysis;

  // Closure elimination: rewrite each '//' step whose expansion is a
  // unique child path.
  if (query.HasClosure()) {
    xpath::Query rewrite;
    rewrite.output = query.output;
    bool ok = true;
    std::vector<std::string> sources = {""};  // "" = document node
    for (size_t i = 0; i < query.steps.size() && ok; ++i) {
      const xpath::LocationStep& step = query.steps[i];
      if (step.axis == xpath::Axis::kChild) {
        rewrite.steps.push_back(step);
        sources = analysis.step_tags[i];
        continue;
      }
      std::vector<std::vector<std::string>> paths;
      for (const std::string& source : sources) {
        if (!EnumeratePaths(dtd, root_element, source, step, &paths)) {
          ok = false;
          break;
        }
      }
      if (!ok) break;
      std::sort(paths.begin(), paths.end());
      paths.erase(std::unique(paths.begin(), paths.end()), paths.end());
      if (paths.size() != 1) {
        ok = false;
        break;
      }
      const std::vector<std::string>& path = paths.front();
      for (size_t k = 0; k + 1 < path.size(); ++k) {
        xpath::LocationStep intermediate;
        intermediate.axis = xpath::Axis::kChild;
        intermediate.node_test = path[k];
        rewrite.steps.push_back(std::move(intermediate));
      }
      xpath::LocationStep final_step = step;
      final_step.axis = xpath::Axis::kChild;
      final_step.node_test = path.back();  // resolves wildcards too
      rewrite.steps.push_back(std::move(final_step));
      sources = analysis.step_tags[i];
    }
    if (ok) {
      analysis.closure_free_rewrite = std::move(rewrite);
    }
  }
  return analysis;
}

}  // namespace xsq::dtd
