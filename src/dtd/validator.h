// Streaming DTD validation with a pushdown automaton.
//
// The paper's related work cites Segoufin & Vianu's "Validating
// Streaming XML documents" (PODS 2002): validity against a DTD can be
// checked in a single pass with a stack of content-model automaton
// configurations. This validator does exactly that: one stack entry per
// open element holding the state set of the element's content-model
// automaton; begin events advance the parent's automaton, end events
// check acceptance, text events check the PCDATA permission, and
// attribute lists are checked against ATTLIST declarations.
#ifndef XSQ_DTD_VALIDATOR_H_
#define XSQ_DTD_VALIDATOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dtd/content_automaton.h"
#include "dtd/dtd.h"
#include "xml/events.h"

namespace xsq::dtd {

class DtdValidator : public xml::SaxHandler {
 public:
  // `dtd` must outlive the validator. When `expected_root` is non-empty
  // the document's root element must carry that name (the DOCTYPE name).
  explicit DtdValidator(const Dtd& dtd, std::string expected_root = "");

  void OnDocumentBegin() override;
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

  // OK while the stream is valid so far; the first violation otherwise.
  const Status& status() const { return status_; }
  bool valid() const { return status_.ok(); }

  uint64_t elements_checked() const { return elements_checked_; }

 private:
  struct Frame {
    const ElementDecl* decl = nullptr;
    const ContentAutomaton* automaton = nullptr;  // kChildren models only
    std::vector<int> states;
  };

  void Fail(const std::string& message);
  const ContentAutomaton* AutomatonFor(const ElementDecl& decl);

  const Dtd& dtd_;
  std::string expected_root_;
  std::vector<Frame> stack_;
  std::unordered_map<const ElementDecl*, std::unique_ptr<ContentAutomaton>>
      automata_;
  Status status_;
  uint64_t elements_checked_ = 0;
};

// Convenience: validates a whole document string against a DTD.
Status ValidateDocument(const Dtd& dtd, std::string_view xml_text,
                        std::string expected_root = "");

}  // namespace xsq::dtd

#endif  // XSQ_DTD_VALIDATOR_H_
