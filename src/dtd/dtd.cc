#include "dtd/dtd.h"

#include <deque>

#include "common/strings.h"

namespace xsq::dtd {

namespace {

const char* RepeatSuffix(Particle::Repeat repeat) {
  switch (repeat) {
    case Particle::Repeat::kOne:
      return "";
    case Particle::Repeat::kOptional:
      return "?";
    case Particle::Repeat::kStar:
      return "*";
    case Particle::Repeat::kPlus:
      return "+";
  }
  return "";
}

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.' ||
         c == ':';
}

// Recursive-descent parser over the declaration text.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Dtd> Parse(Dtd* dtd,
                    std::unordered_map<std::string, ElementDecl>* elements,
                    std::vector<std::string>* order) {
    while (true) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      if (TryConsume("<!ELEMENT")) {
        XSQ_RETURN_IF_ERROR(ParseElementDecl(elements, order));
      } else if (TryConsume("<!ATTLIST")) {
        XSQ_RETURN_IF_ERROR(ParseAttlistDecl(elements, order));
      } else if (TryConsume("<!ENTITY") || TryConsume("<!NOTATION") ||
                 TryConsume("<?")) {
        XSQ_RETURN_IF_ERROR(SkipDeclaration());
      } else {
        return Error("expected declaration");
      }
    }
    return std::move(*dtd);
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWhitespace() {
    while (!AtEnd() && IsXmlWhitespace(Peek())) ++pos_;
  }

  void SkipWhitespaceAndComments() {
    while (true) {
      SkipWhitespace();
      if (text_.substr(pos_, 4) == "<!--") {
        size_t end = text_.find("-->", pos_ + 4);
        pos_ = end == std::string_view::npos ? text_.size() : end + 3;
        continue;
      }
      break;
    }
  }

  bool TryConsume(std::string_view token) {
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  std::string ParseName() {
    size_t start = pos_;
    while (!AtEnd() && IsNameChar(Peek())) ++pos_;
    return std::string(text_.substr(start, pos_ - start));
  }

  Status SkipDeclaration() {
    // Already past the opening token; skip to '>' honoring quotes.
    char quote = '\0';
    while (!AtEnd()) {
      char c = text_[pos_++];
      if (quote != '\0') {
        if (c == quote) quote = '\0';
      } else if (c == '"' || c == '\'') {
        quote = c;
      } else if (c == '>') {
        return Status::OK();
      }
    }
    return Error("unterminated declaration").status();
  }

  Status ParseElementDecl(
      std::unordered_map<std::string, ElementDecl>* elements,
      std::vector<std::string>* order) {
    SkipWhitespace();
    std::string name = ParseName();
    if (name.empty()) return Error("expected element name").status();
    SkipWhitespace();
    ContentModel model;
    if (TryConsume("EMPTY")) {
      model.kind = ContentModel::Kind::kEmpty;
    } else if (TryConsume("ANY")) {
      model.kind = ContentModel::Kind::kAny;
    } else if (!AtEnd() && Peek() == '(') {
      XSQ_RETURN_IF_ERROR(ParseModelGroup(&model));
    } else {
      return Error("expected EMPTY, ANY, or '(' in element declaration")
          .status();
    }
    SkipWhitespace();
    if (!TryConsume(">")) {
      return Error("expected '>' after element declaration").status();
    }
    ElementDecl& decl = (*elements)[name];
    if (decl.name.empty()) {
      decl.name = name;
      order->push_back(name);
    }
    decl.model = std::move(model);
    return Status::OK();
  }

  // Parses "( ... )" which is either mixed content or a children model.
  Status ParseModelGroup(ContentModel* model) {
    size_t saved = pos_;
    ++pos_;  // consume '('
    SkipWhitespace();
    if (TryConsume("#PCDATA")) {
      model->kind = ContentModel::Kind::kMixed;
      SkipWhitespace();
      while (TryConsume("|")) {
        SkipWhitespace();
        std::string alt = ParseName();
        if (alt.empty()) return Error("expected name after '|'").status();
        model->mixed_names.push_back(std::move(alt));
        SkipWhitespace();
      }
      if (!TryConsume(")")) {
        return Error("expected ')' in mixed content model").status();
      }
      TryConsume("*");  // (#PCDATA)* and (#PCDATA|a)* forms
      return Status::OK();
    }
    pos_ = saved;
    model->kind = ContentModel::Kind::kChildren;
    return ParseParticle(&model->particle);
  }

  // particle := name repeat | '(' particle ((',' particle)* | ('|'
  // particle)*) ')' repeat
  Status ParseParticle(Particle* particle) {
    SkipWhitespace();
    if (AtEnd()) return Error("unexpected end of content model").status();
    if (Peek() == '(') {
      ++pos_;
      std::vector<Particle> children(1);
      XSQ_RETURN_IF_ERROR(ParseParticle(&children.back()));
      SkipWhitespace();
      char separator = '\0';
      while (!AtEnd() && (Peek() == ',' || Peek() == '|')) {
        if (separator == '\0') {
          separator = Peek();
        } else if (Peek() != separator) {
          return Error("cannot mix ',' and '|' in one group").status();
        }
        ++pos_;
        children.emplace_back();
        XSQ_RETURN_IF_ERROR(ParseParticle(&children.back()));
        SkipWhitespace();
      }
      if (!TryConsume(")")) {
        return Error("expected ')' in content model").status();
      }
      if (children.size() == 1 && separator == '\0') {
        *particle = std::move(children.front());
        // A repetition on the group wraps the single child's own.
        Particle::Repeat group_repeat = ParseRepeat();
        if (group_repeat != Particle::Repeat::kOne) {
          if (particle->repeat == Particle::Repeat::kOne) {
            particle->repeat = group_repeat;
          } else {
            // e.g. (a?)* - fold conservatively to '*'.
            particle->repeat = Particle::Repeat::kStar;
          }
        }
        return Status::OK();
      }
      particle->kind = separator == '|' ? Particle::Kind::kChoice
                                        : Particle::Kind::kSequence;
      particle->children = std::move(children);
      particle->repeat = ParseRepeat();
      return Status::OK();
    }
    std::string name = ParseName();
    if (name.empty()) {
      return Error("expected element name in content model").status();
    }
    particle->kind = Particle::Kind::kName;
    particle->name = std::move(name);
    particle->repeat = ParseRepeat();
    return Status::OK();
  }

  Particle::Repeat ParseRepeat() {
    if (TryConsume("?")) return Particle::Repeat::kOptional;
    if (TryConsume("*")) return Particle::Repeat::kStar;
    if (TryConsume("+")) return Particle::Repeat::kPlus;
    return Particle::Repeat::kOne;
  }

  Status ParseAttlistDecl(
      std::unordered_map<std::string, ElementDecl>* elements,
      std::vector<std::string>* order) {
    SkipWhitespace();
    std::string element = ParseName();
    if (element.empty()) return Error("expected element name").status();
    ElementDecl& decl = (*elements)[element];
    if (decl.name.empty()) {
      decl.name = element;
      order->push_back(element);
    }
    while (true) {
      SkipWhitespace();
      if (TryConsume(">")) return Status::OK();
      AttributeDecl attr;
      attr.name = ParseName();
      if (attr.name.empty()) {
        return Error("expected attribute name in ATTLIST").status();
      }
      SkipWhitespace();
      if (!AtEnd() && Peek() == '(') {
        // Enumerated type: (a|b|c).
        size_t end = text_.find(')', pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated enumeration").status();
        }
        attr.type = std::string(text_.substr(pos_, end - pos_ + 1));
        pos_ = end + 1;
      } else {
        attr.type = ParseName();
        if (attr.type.empty()) {
          return Error("expected attribute type").status();
        }
      }
      SkipWhitespace();
      if (TryConsume("#REQUIRED")) {
        attr.presence = AttributeDecl::Presence::kRequired;
      } else if (TryConsume("#IMPLIED")) {
        attr.presence = AttributeDecl::Presence::kImplied;
      } else {
        if (TryConsume("#FIXED")) {
          attr.presence = AttributeDecl::Presence::kFixed;
          SkipWhitespace();
        } else {
          attr.presence = AttributeDecl::Presence::kDefault;
        }
        if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
          return Error("expected quoted default value").status();
        }
        char quote = Peek();
        ++pos_;
        size_t end = text_.find(quote, pos_);
        if (end == std::string_view::npos) {
          return Error("unterminated default value").status();
        }
        attr.default_value = std::string(text_.substr(pos_, end - pos_));
        pos_ = end + 1;
      }
      decl.attributes.push_back(std::move(attr));
    }
  }

  Result<Dtd> Error(const std::string& message) const {
    return Status::ParseError(message + " (offset " + std::to_string(pos_) +
                              " in DTD)");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void CollectNames(const Particle& particle,
                  std::vector<std::string>* names) {
  if (particle.kind == Particle::Kind::kName) {
    names->push_back(particle.name);
    return;
  }
  for (const Particle& child : particle.children) {
    CollectNames(child, names);
  }
}

}  // namespace

std::string Particle::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kName:
      out = name;
      break;
    case Kind::kSequence:
    case Kind::kChoice: {
      out.assign(1, '(');  // assign: GCC12 -Wrestrict FP
      const char* sep = kind == Kind::kSequence ? "," : "|";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += sep;
        out += children[i].ToString();
      }
      out += ")";
      break;
    }
  }
  out += RepeatSuffix(repeat);
  return out;
}

std::string ContentModel::ToString() const {
  switch (kind) {
    case Kind::kEmpty:
      return "EMPTY";
    case Kind::kAny:
      return "ANY";
    case Kind::kMixed: {
      std::string out = "(#PCDATA";
      for (const std::string& name : mixed_names) {
        out.push_back('|');
        out.append(name);
      }
      out.append(")*");
      return out;
    }
    case Kind::kChildren:
      if (particle.kind == Particle::Kind::kName) {
        std::string out;
        out.push_back('(');
        out.append(particle.ToString());
        out.push_back(')');
        return out;
      }
      return particle.ToString();
  }
  return "";
}

Result<Dtd> Dtd::Parse(std::string_view dtd_text) {
  Dtd dtd;
  Parser parser(dtd_text);
  return parser.Parse(&dtd, &dtd.elements_, &dtd.order_);
}

const ElementDecl* Dtd::FindElement(std::string_view name) const {
  auto it = elements_.find(std::string(name));
  return it == elements_.end() ? nullptr : &it->second;
}

std::vector<std::string> Dtd::PossibleChildren(
    std::string_view element) const {
  const ElementDecl* decl = FindElement(element);
  if (decl == nullptr) return {};
  switch (decl->model.kind) {
    case ContentModel::Kind::kEmpty:
      return {};
    case ContentModel::Kind::kAny:
      return order_;
    case ContentModel::Kind::kMixed:
      return decl->model.mixed_names;
    case ContentModel::Kind::kChildren: {
      std::vector<std::string> names;
      CollectNames(decl->model.particle, &names);
      return names;
    }
  }
  return {};
}

bool Dtd::AllowsText(std::string_view element) const {
  const ElementDecl* decl = FindElement(element);
  if (decl == nullptr) return true;  // undeclared: no constraint
  return decl->model.kind == ContentModel::Kind::kMixed ||
         decl->model.kind == ContentModel::Kind::kAny;
}

std::unordered_set<std::string> Dtd::ReachableDescendants(
    std::string_view element) const {
  std::unordered_set<std::string> reachable;
  std::deque<std::string> frontier;
  for (const std::string& child : PossibleChildren(element)) {
    if (reachable.insert(child).second) frontier.push_back(child);
  }
  while (!frontier.empty()) {
    std::string current = std::move(frontier.front());
    frontier.pop_front();
    for (const std::string& child : PossibleChildren(current)) {
      if (reachable.insert(child).second) frontier.push_back(child);
    }
  }
  return reachable;
}

bool Dtd::IsRecursive() const {
  for (const std::string& name : order_) {
    if (ReachableDescendants(name).count(name) > 0) return true;
  }
  return false;
}

std::string Dtd::ToString() const {
  std::string out;
  for (const std::string& name : order_) {
    const ElementDecl& decl = elements_.at(name);
    out += "<!ELEMENT " + name + " " + decl.model.ToString() + ">\n";
    if (!decl.attributes.empty()) {
      out += "<!ATTLIST " + name;
      for (const AttributeDecl& attr : decl.attributes) {
        out += " " + attr.name + " " + attr.type + " ";
        switch (attr.presence) {
          case AttributeDecl::Presence::kRequired:
            out += "#REQUIRED";
            break;
          case AttributeDecl::Presence::kImplied:
            out += "#IMPLIED";
            break;
          case AttributeDecl::Presence::kFixed:
            out += "#FIXED \"" + attr.default_value + "\"";
            break;
          case AttributeDecl::Presence::kDefault:
            out += "\"" + attr.default_value + "\"";
            break;
        }
      }
      out += ">\n";
    }
  }
  return out;
}

}  // namespace xsq::dtd
