// Compiles a DTD content-model particle into a finite automaton over
// child element names, used by the streaming validator. Standard
// Thompson construction with epsilon edges; the run keeps a state set
// and computes epsilon closures on the fly (content models are tiny).
#ifndef XSQ_DTD_CONTENT_AUTOMATON_H_
#define XSQ_DTD_CONTENT_AUTOMATON_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dtd/dtd.h"

namespace xsq::dtd {

class ContentAutomaton {
 public:
  // Builds the automaton for a kChildren content model.
  static ContentAutomaton Compile(const Particle& particle);

  // Initial state set (epsilon-closed).
  std::vector<int> Start() const;

  // Advances on one child element name; returns the new state set,
  // empty when the child is not allowed at this position.
  std::vector<int> Advance(const std::vector<int>& states,
                           std::string_view name) const;

  // True when the state set contains the accepting state, i.e. the
  // children seen so far form a complete instance of the model.
  bool Accepts(const std::vector<int>& states) const;

  size_t state_count() const { return states_.size(); }

 private:
  struct State {
    std::unordered_map<std::string, std::vector<int>> arcs;
    std::vector<int> epsilon;
  };

  int AddState() {
    states_.emplace_back();
    return static_cast<int>(states_.size()) - 1;
  }

  // Builds the fragment for `particle` between `from` and `to`.
  void Build(const Particle& particle, int from, int to);

  void CloseOverEpsilon(std::vector<int>* states) const;

  std::vector<State> states_;
  int start_ = 0;
  int accept_ = 0;
};

}  // namespace xsq::dtd

#endif  // XSQ_DTD_CONTENT_AUTOMATON_H_
