// DTD substrate: document type definitions parsed from the internal
// subset syntax, a streaming validator, and the schema model used by the
// query optimizer.
//
// The paper closes Section 5 with: "Currently the XSQ system is
// schema-unaware. It is an interesting topic to automatically
// incorporate schema information, if available, into the system for
// optimization." This module implements that future work: the Dtd class
// models element content models and attribute lists; validator.h checks
// streams against it with a pushdown automaton (the approach of the
// related work [Segoufin & Vianu 2002]); optimizer.h uses the element
// graph to decide query satisfiability and to rewrite closure axes into
// child axes so XSQ-NC can run instead of XSQ-F.
#ifndef XSQ_DTD_DTD_H_
#define XSQ_DTD_DTD_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"

namespace xsq::dtd {

// One particle of an element content model, e.g. in
// <!ELEMENT book (title, (author | editor)+, price?)>.
struct Particle {
  enum class Kind { kName, kSequence, kChoice };
  enum class Repeat { kOne, kOptional, kStar, kPlus };  // '', '?', '*', '+'

  Kind kind = Kind::kName;
  Repeat repeat = Repeat::kOne;
  std::string name;                 // kName
  std::vector<Particle> children;   // kSequence / kChoice

  std::string ToString() const;
};

// The content model of one element declaration.
struct ContentModel {
  enum class Kind {
    kEmpty,     // <!ELEMENT x EMPTY>
    kAny,       // <!ELEMENT x ANY>
    kMixed,     // <!ELEMENT x (#PCDATA | a | b)*>
    kChildren,  // <!ELEMENT x (regular expression of names)>
  };

  Kind kind = Kind::kAny;
  std::vector<std::string> mixed_names;  // kMixed alternatives
  Particle particle;                     // kChildren root particle

  std::string ToString() const;
};

struct AttributeDecl {
  enum class Presence { kRequired, kImplied, kFixed, kDefault };

  std::string name;
  std::string type = "CDATA";  // CDATA / ID / IDREF / NMTOKEN / enumeration
  Presence presence = Presence::kImplied;
  std::string default_value;  // kFixed / kDefault
};

struct ElementDecl {
  std::string name;
  ContentModel model;
  std::vector<AttributeDecl> attributes;
};

class Dtd {
 public:
  // Parses a sequence of <!ELEMENT ...> and <!ATTLIST ...> declarations
  // (comments and <!ENTITY>/<?...?> declarations are skipped).
  static Result<Dtd> Parse(std::string_view dtd_text);

  const ElementDecl* FindElement(std::string_view name) const;

  // Names of elements that may appear as children of `element`
  // according to its content model. ANY yields every declared element.
  std::vector<std::string> PossibleChildren(std::string_view element) const;

  // True when `element` may directly contain character data.
  bool AllowsText(std::string_view element) const;

  // True when some element can (transitively) contain itself -
  // the "recursive DTD" property the paper cites (35 of 60 real DTDs).
  bool IsRecursive() const;

  // Elements reachable as strict descendants of `element`.
  std::unordered_set<std::string> ReachableDescendants(
      std::string_view element) const;

  size_t element_count() const { return order_.size(); }
  const std::vector<std::string>& element_names() const { return order_; }

  std::string ToString() const;

 private:
  std::unordered_map<std::string, ElementDecl> elements_;
  std::vector<std::string> order_;  // declaration order, for printing
};

}  // namespace xsq::dtd

#endif  // XSQ_DTD_DTD_H_
