// LineProtocol: the xsqd wire protocol, factored out of the daemon so
// one dispatcher serves both transports byte-for-byte identically:
//
//   stdin/stdout  (examples/xsqd.cpp, the original scriptable path)
//   TCP           (net::Server, one LineProtocol per connection)
//
// One command per line, one or more reply lines per command, every
// reply block terminated by "OK ..." or "ERR <Code>: <message>". Chunk
// and item payloads are escaped so arbitrary document bytes fit on one
// line: "\n" = newline, "\t" = tab, "\\" = backslash.
//
// Verbs (see examples/xsqd.cpp for the full transcript grammar):
//   OPEN PUSH DRAIN CLOSE RECORD RUNCACHED EVICT CANCEL STATS METRICS
//   SUBSCRIBE UNSUBSCRIBE PUBLISH REPLPULL REPLSTATUS QUIT
//
// Replication verbs (shard-to-shard tape transfer, driven by the
// router's replication plane):
//   REPLPULL <name>              serve mode: stream the resident tape
//                                as "TAPE <escaped bytes>" then
//                                "OK <events> <bytes>"
//   REPLPULL <name> <host>:<port> pull mode: fetch <name>'s tape FROM
//                                the named peer shard, CRC-verify,
//                                install it locally, reply
//                                "OK <events> <bytes>"
//   REPLSTATUS                   one "DOC <name> <events> <bytes>" line
//                                per resident document, then an OK line
//                                with the replica-ingest counters
//
// Pub/sub: SUBSCRIBE registers a standing query and replies
// "OK <sub-id>"; PUBLISH matches a document against every standing
// query in the service and replies with a one-line summary. Matches
// arrive asynchronously as "EVENT <sub-id> ..." frames pushed through
// the transport's event sink (SetEventSink) — interleaved between
// reply blocks, never inside one. Transports that cannot push frames
// (no sink installed) reject SUBSCRIBE.
//
// EVENT ordering guarantee (asserted by net_test's pooled-connection
// parity suite): a reply block is appended to the transport's output
// atomically, so an EVENT frame can appear *between* two reply blocks
// but never inside one — a client reading line-by-line can always
// attribute payload lines to the command block in flight and treat
// EVENT lines as out-of-band. Per subscriber, frames preserve publish
// order: all frames of PUBLISH n precede all frames of PUBLISH n+1
// (the service's per-subscriber FIFO queue), and within one publish,
// frames of one subscription arrive in document order. No ordering is
// promised *across* connections: two subscribers on different
// connections may observe the same publish at different times.
//
// Beyond dispatch, a LineProtocol instance tracks which sessions *it*
// opened. That ownership is what makes disconnect-driven cancellation
// work: when the transport notices the peer is gone it calls
// CancelAll() — every in-flight evaluation this connection started
// aborts with kCancelled within one engine sampling interval — and then
// ReleaseAll() to free the admission slots. The stdin daemon uses the
// same hooks at EOF.
//
// Thread safety: HandleLine must be externally serialized per instance
// (the server's per-connection FIFO guarantees it; stdin is single
// threaded). CancelAll/ReleaseAll/owned_sessions are safe to call from
// any thread concurrently with HandleLine — that is the point: the
// poll thread cancels while a protocol worker is still blocked inside
// service::QueryService::Close.
#ifndef XSQ_NET_LINE_PROTOCOL_H_
#define XSQ_NET_LINE_PROTOCOL_H_

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>

#include "net/handler.h"
#include "service/query_service.h"

namespace xsq::net {

class LineProtocol : public ConnectionHandler {
 public:
  explicit LineProtocol(service::QueryService* service) : service_(service) {}
  ~LineProtocol() override { ReleaseAll(); }

  LineProtocol(const LineProtocol&) = delete;
  LineProtocol& operator=(const LineProtocol&) = delete;

  // Handles one protocol line (without its trailing newline; a trailing
  // '\r' is tolerated and stripped). Appends newline-terminated reply
  // lines to *out. Returns false when the command asks the transport to
  // end the conversation (QUIT) — the "OK" reply is still appended.
  bool HandleLine(std::string_view line, std::string* out) override;

  // Installs the transport's asynchronous event path: dispatcher
  // threads call `sink` with one "EVENT ..." frame (no newline) per
  // delivery. Must be installed before the first SUBSCRIBE; the sink
  // must be callable from any thread and must not call back into this
  // protocol or its server. The connection is registered with the
  // service lazily, on the first SUBSCRIBE.
  void SetEventSink(EventSink sink) override;

  // Cancels every session this instance opened: in-flight evaluations
  // abort with kCancelled within one sampling interval; idle sessions
  // are left tripped. Returns how many sessions were cancelled. Safe
  // from any thread, including concurrently with HandleLine.
  size_t CancelAll() override;

  // Releases every session this instance opened, freeing their
  // admission slots, and deregisters this connection's subscriber (all
  // its standing queries drop; the event sink is never invoked again
  // after this returns). In-flight work finishes first (the service
  // keeps the session alive); no new work is accepted. Idempotent.
  void ReleaseAll() override;

  // Sessions currently owned (opened and not yet closed/released).
  size_t owned_sessions() const;

  // The reply the daemon gives for a line that exceeded the transport's
  // line bound: the bounded reader discarded the command, the daemon
  // keeps serving. Shared so stdin and TCP emit identical text.
  static std::string OversizedLineReply(size_t max_line_bytes);

  // Payload escaping, exposed for clients and tests. Thin wrappers over
  // common LineEscape/LineUnescape (shared with the EVENT frame path).
  static std::string Escape(std::string_view text);
  static std::string Unescape(std::string_view text);

 private:
  void Reply(std::string* out, std::string_view line) const;
  void ReplyStatus(std::string* out, const Status& status) const;
  void PrintItems(std::string* out, service::SessionId id) const;
  // Registers this connection's subscriber on first use. Requires mu_.
  Result<uint64_t> EnsureSubscriberLocked();

  service::QueryService* const service_;

  mutable std::mutex mu_;
  std::unordered_set<service::SessionId> owned_;
  service::QueryService::EventSink event_sink_;  // empty until installed
  uint64_t subscriber_id_ = 0;  // 0 = not registered yet
};

}  // namespace xsq::net

#endif  // XSQ_NET_LINE_PROTOCOL_H_
