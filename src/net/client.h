// net::Client: a blocking TCP client for the xsqd line protocol with
// timeouts, safe retries, and multi-endpoint failover.
//
// One Request() sends one protocol line and reads reply lines until the
// terminating "OK ..." or "ERR <Code>: <message>", all under a single
// request deadline; connect() itself is bounded by a connect timeout
// (non-blocking connect + poll). Transport failures — refused or timed
// out connects, resets, a deadline with no terminator — are retried
// with jittered exponential backoff, but ONLY for idempotent verbs.
// The classification is a per-verb table (RetryClassFor):
//
//   kIdempotent    RUNCACHED METRICS STATS RECORD REPLPULL REPLSTATUS —
//                  replaying leaves the server in the same state.
//                  RECORD and REPLPULL are idempotent *by key*:
//                  re-installing the same name with the same bytes
//                  replaces the tape with an identical one, so a lost
//                  reply is safe to retry.
//   kNonIdempotent OPEN PUSH CLOSE DRAIN EVICT CANCEL — a replay
//                  changes state (a retried PUSH feeds the document
//                  bytes twice; a retried OPEN leaks a session). The
//                  transport error surfaces to the caller, who knows
//                  the conversation state.
//   kNeverRetry    PUBLISH SUBSCRIBE UNSUBSCRIBE — a replay is not
//                  just stateful but *externally visible*: a retried
//                  PUBLISH double-delivers EVENT frames to every
//                  subscriber, a retried SUBSCRIBE registers a
//                  duplicate standing query. These must never be
//                  auto-retried under any policy.
//
// An "ERR" reply is NOT retried regardless of verb: the server
// answered; the request failed for a reason retrying will not change
// (except ResourceExhausted shed replies, which ARE retried for
// idempotent verbs — that is exactly what load shedding asks of a
// client).
//
// The jitter source is a deterministic splitmix64 stream seeded from
// ClientConfig::retry_seed, so tests get reproducible backoff
// schedules without any wall-clock or global RNG dependence.
//
// Failover: ClientConfig::endpoints may list several HOST:PORT targets
// (e.g. two active-active routers). Every transport failure advances
// the client to the next endpoint in round-robin order before the next
// connect, so an idempotent verb's automatic retry lands on the
// survivor, and a NON-idempotent verb — which still surfaces its
// transport error after one attempt — leaves the client pointed at the
// next endpoint: the caller's recovery (re-OPEN, replay the session)
// transparently runs against the surviving router. An ERR reply never
// advances the endpoint: the server answered; moving would just forfeit
// session affinity.
//
// Not thread safe; one Client per conversation, like one socket.
#ifndef XSQ_NET_CLIENT_H_
#define XSQ_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xsq::net {

// How a verb behaves when its request is replayed after a transport
// failure (see the table in the header comment).
enum class VerbRetryClass {
  kIdempotent,     // safe to auto-retry (reconnect + resend)
  kNonIdempotent,  // caller must decide; never auto-retried
  kNeverRetry,     // externally visible replay; never retried, period
};

// One HOST:PORT target for multi-endpoint failover.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Failover targets. When non-empty this list replaces host/port
  // entirely; the client starts at endpoints[0] and advances
  // round-robin on every transport failure.
  std::vector<Endpoint> endpoints;
  uint64_t connect_timeout_ms = 2000;
  // Deadline for one attempt of one request (send + replies).
  uint64_t request_timeout_ms = 5000;
  // Extra attempts after the first, idempotent verbs only.
  int max_retries = 2;
  uint64_t backoff_base_ms = 20;
  uint64_t backoff_max_ms = 500;
  // Seed for the deterministic jitter stream.
  uint64_t retry_seed = 0x9e3779b97f4a7c15ull;
};

// One decoded reply block.
struct Response {
  // OK() for an "OK ..." terminator; the decoded code/message for
  // "ERR <Code>: <message>".
  Status status;
  // Payload lines before the terminator, verbatim (ITEM/AGG/STAT/
  // METRIC ... still carrying their tag and escaping).
  std::vector<std::string> lines;
  // The text after "OK " on the terminator (e.g. the session id for
  // OPEN, "<events> <bytes>" for RECORD). Empty for a bare "OK".
  std::string ok_payload;
  // Attempts used (1 = no retry).
  int attempts = 1;
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Establishes the connection (bounded by connect_timeout_ms). The
  // first Request() connects implicitly; this exists for callers that
  // want the connect error eagerly.
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Sends `line` (newline appended) and reads the reply block. Decodes
  // the terminator into Response::status; transport errors are returned
  // as the Result's status (after retries when the verb allows them).
  Result<Response> Request(std::string_view line);

  // The retry class of `line`'s verb (the word before the first
  // space). Unknown verbs classify as kNonIdempotent: a server newer
  // than this client gets the conservative treatment.
  static VerbRetryClass RetryClassFor(std::string_view line);

  // True for verbs whose replay cannot change server state.
  // Equivalent to RetryClassFor(line) == kIdempotent.
  static bool IsIdempotent(std::string_view line);

  // Lifetime transport counters, for pools and tests that need to see
  // how hard this client has been fighting the network.
  struct Counters {
    uint64_t connects = 0;      // successful ConnectOnce calls
    uint64_t reconnects = 0;    // connects after the first
    uint64_t retries = 0;       // request attempts beyond the first
    uint64_t shed_retries = 0;  // retries honoring an ERR ResourceExhausted
    uint64_t failovers = 0;     // endpoint advances on transport failure
  };
  const Counters& counters() const { return counters_; }

  // The endpoint the next connect will target (index into the resolved
  // endpoint list; a single-endpoint client always reports 0).
  size_t endpoint_index() const { return endpoint_index_; }
  size_t endpoint_count() const { return endpoints_.size(); }

 private:
  Status ConnectOnce();
  Result<Response> RequestOnce(std::string_view line);
  Status ReadLine(std::string* line,
                  std::chrono::steady_clock::time_point deadline);
  uint64_t NextBackoffMs(int attempt);
  void AdvanceEndpoint();

  ClientConfig config_;
  std::vector<Endpoint> endpoints_;  // resolved: config endpoints or host/port
  size_t endpoint_index_ = 0;
  int fd_ = -1;
  std::string read_buffer_;
  uint64_t rng_state_;
  Counters counters_;
};

// A jittered interval in [0.8 * base_ms, 1.2 * base_ms), driven by the
// same deterministic splitmix64 stream the retry backoff uses. Shared
// by the periodic loops that must not synchronize across processes —
// health probing, gossip anti-entropy — so a fleet of routers probing
// the same shards decorrelates instead of storming them in lockstep.
uint64_t JitterIntervalMs(uint64_t base_ms, uint64_t* rng_state);

}  // namespace xsq::net

#endif  // XSQ_NET_CLIENT_H_
