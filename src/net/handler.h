// ConnectionHandler: what net::Server needs from the application layer
// for one connection's conversation.
//
// The server owns transport mechanics — accept, buffering, timeouts,
// shedding, HTTP sniffing, teardown — and delegates the *meaning* of
// each protocol line to one handler per connection. The single-node
// daemon binds this to net::LineProtocol over a service::QueryService;
// the cluster front tier (src/cluster/) binds it to a router that
// forwards verbs to backend shards. Both get the same hardened
// transport for free.
//
// Contract (mirrors LineProtocol, which is the reference
// implementation):
//   - HandleLine is externally serialized per instance by the server's
//     per-connection FIFO; it may block.
//   - CancelAll / ReleaseAll may be called from any thread concurrently
//     with HandleLine — CancelAll must make a blocked HandleLine return
//     promptly, ReleaseAll frees everything the conversation acquired
//     and is idempotent.
//   - SetEventSink installs the transport's asynchronous frame path
//     (pub/sub EVENT frames); handlers that never push frames can keep
//     the default no-op.
#ifndef XSQ_NET_HANDLER_H_
#define XSQ_NET_HANDLER_H_

#include <functional>
#include <string>
#include <string_view>

namespace xsq::net {

// One asynchronous "EVENT ..." frame (no trailing newline) per call;
// must be callable from any thread.
using EventSink = std::function<void(std::string_view frame)>;

class ConnectionHandler {
 public:
  virtual ~ConnectionHandler() = default;

  // Handles one protocol line (no trailing newline); appends
  // newline-terminated reply lines to *out. Returns false when the
  // conversation should end (QUIT).
  virtual bool HandleLine(std::string_view line, std::string* out) = 0;

  // Installs the transport's asynchronous event path. Default: this
  // handler never pushes frames.
  virtual void SetEventSink(EventSink sink) { (void)sink; }

  // Aborts in-flight work started by this conversation; returns how
  // many units were cancelled. Safe from any thread.
  virtual size_t CancelAll() { return 0; }

  // Releases everything this conversation acquired (sessions, leases,
  // subscriber registrations). Idempotent; safe from any thread.
  virtual void ReleaseAll() {}
};

}  // namespace xsq::net

#endif  // XSQ_NET_HANDLER_H_
