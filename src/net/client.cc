#include "net/client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace xsq::net {

namespace {

// splitmix64: a tiny deterministic stream for backoff jitter.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Decodes the "<Code>" of an "ERR <Code>: <message>" reply back into a
// StatusCode. Unknown names decode as kInternal (a server newer than
// this client).
StatusCode CodeFromName(std::string_view name) {
  static constexpr StatusCode kCodes[] = {
      StatusCode::kInvalidArgument, StatusCode::kParseError,
      StatusCode::kNotSupported,    StatusCode::kOutOfRange,
      StatusCode::kResourceExhausted, StatusCode::kInternal,
      StatusCode::kCancelled,       StatusCode::kDeadlineExceeded,
      StatusCode::kLimitExceeded,   StatusCode::kDataCorruption,
  };
  for (StatusCode code : kCodes) {
    if (name == StatusCodeName(code)) return code;
  }
  return StatusCode::kInternal;
}

Status DecodeErr(std::string_view rest) {
  // rest = "<Code>: <message>"
  size_t colon = rest.find(": ");
  if (colon == std::string_view::npos) {
    return Status::Internal("malformed ERR reply: " + std::string(rest));
  }
  return Status(CodeFromName(rest.substr(0, colon)),
                std::string(rest.substr(colon + 2)));
}

}  // namespace

uint64_t JitterIntervalMs(uint64_t base_ms, uint64_t* rng_state) {
  if (base_ms == 0) return 0;
  // Uniform in [0.8, 1.2) of the base: wide enough to decorrelate a
  // fleet, narrow enough that cadence-derived bounds (probe intervals,
  // gossip convergence) stay within one nominal period.
  uint64_t r = SplitMix64(rng_state) % 1024;
  return (base_ms * 4) / 5 + (base_ms * 2 * r) / 5120;
}

Client::Client(ClientConfig config)
    : config_(std::move(config)), rng_state_(config_.retry_seed) {
  if (config_.endpoints.empty()) {
    endpoints_.push_back(Endpoint{config_.host, config_.port});
  } else {
    endpoints_ = config_.endpoints;
  }
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
}

VerbRetryClass Client::RetryClassFor(std::string_view line) {
  size_t space = line.find(' ');
  std::string_view verb = line.substr(0, space);
  // The verb table. Every protocol verb appears here; anything else is
  // an unknown (future) verb and gets the conservative class.
  struct VerbEntry {
    std::string_view verb;
    VerbRetryClass retry_class;
  };
  static constexpr VerbEntry kVerbTable[] = {
      {"RUNCACHED", VerbRetryClass::kIdempotent},
      {"METRICS", VerbRetryClass::kIdempotent},
      {"STATS", VerbRetryClass::kIdempotent},
      {"RECORD", VerbRetryClass::kIdempotent},  // idempotent by key
      // Replication verbs: REPLPULL re-installs the same tape under the
      // same key (idempotent by key, like RECORD); REPLSTATUS only
      // reads. Both safe to retry across shard-to-shard transfers.
      {"REPLPULL", VerbRetryClass::kIdempotent},
      {"REPLSTATUS", VerbRetryClass::kIdempotent},
      {"OPEN", VerbRetryClass::kNonIdempotent},
      {"PUSH", VerbRetryClass::kNonIdempotent},
      {"DRAIN", VerbRetryClass::kNonIdempotent},
      {"CLOSE", VerbRetryClass::kNonIdempotent},
      {"EVICT", VerbRetryClass::kNonIdempotent},
      {"CANCEL", VerbRetryClass::kNonIdempotent},
      {"QUIT", VerbRetryClass::kNonIdempotent},
      // GOSSIP carries a CRDT-style digest whose merge is idempotent:
      // delivering the same digest twice leaves the peer unchanged, so
      // a lost reply is safe to retry (on the next endpoint, if any).
      {"GOSSIP", VerbRetryClass::kIdempotent},
      {"PUBLISH", VerbRetryClass::kNeverRetry},
      {"SUBSCRIBE", VerbRetryClass::kNeverRetry},
      {"UNSUBSCRIBE", VerbRetryClass::kNeverRetry},
  };
  for (const VerbEntry& entry : kVerbTable) {
    if (verb == entry.verb) return entry.retry_class;
  }
  return VerbRetryClass::kNonIdempotent;
}

bool Client::IsIdempotent(std::string_view line) {
  return RetryClassFor(line) == VerbRetryClass::kIdempotent;
}

uint64_t Client::NextBackoffMs(int attempt) {
  uint64_t backoff = config_.backoff_base_ms;
  for (int i = 0; i < attempt && backoff < config_.backoff_max_ms; ++i) {
    backoff *= 2;
  }
  if (backoff > config_.backoff_max_ms) backoff = config_.backoff_max_ms;
  // Jitter in [0.5, 1.0): decorrelates a retrying fleet without ever
  // shortening the base below half.
  uint64_t r = SplitMix64(&rng_state_) % 512;
  return backoff / 2 + (backoff * r) / 1024;
}

void Client::AdvanceEndpoint() {
  if (endpoints_.size() < 2) return;
  endpoint_index_ = (endpoint_index_ + 1) % endpoints_.size();
  ++counters_.failovers;
}

Status Client::ConnectOnce() {
  Close();
  const Endpoint& target = endpoints_[endpoint_index_];
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(target.port);
  if (::inet_pton(AF_INET, target.host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address: " + target.host);
  }
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status status = Status::ResourceExhausted(std::string("connect: ") +
                                              std::strerror(errno));
    Close();
    return status;
  }
  if (rc != 0) {
    pollfd pfd{fd_, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(config_.connect_timeout_ms));
    if (ready <= 0) {
      Close();
      return Status::DeadlineExceeded("connect timed out after " +
                                      std::to_string(config_.connect_timeout_ms) +
                                      "ms");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Close();
      return Status::ResourceExhausted(std::string("connect: ") +
                                       std::strerror(err));
    }
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (counters_.connects > 0) ++counters_.reconnects;
  ++counters_.connects;
  return Status::OK();
}

Status Client::Connect() {
  if (fd_ >= 0) return Status::OK();
  return ConnectOnce();
}

Status Client::ReadLine(std::string* line,
                        std::chrono::steady_clock::time_point deadline) {
  for (;;) {
    size_t newline = read_buffer_.find('\n');
    if (newline != std::string::npos) {
      line->assign(read_buffer_, 0, newline);
      read_buffer_.erase(0, newline + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return Status::OK();
    }
    auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      return Status::DeadlineExceeded("request timed out waiting for reply");
    }
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    pollfd pfd{fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()) + 1);
    if (ready < 0 && errno != EINTR) {
      return Status::Internal(std::string("poll: ") + std::strerror(errno));
    }
    if (ready <= 0) continue;  // deadline re-checked at loop top
    char buf[64 * 1024];
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::ResourceExhausted("server closed the connection");
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      return Status::ResourceExhausted(std::string("recv: ") +
                                       std::strerror(errno));
    }
    read_buffer_.append(buf, static_cast<size_t>(n));
  }
}

Result<Response> Client::RequestOnce(std::string_view line) {
  if (fd_ < 0) {
    XSQ_RETURN_IF_ERROR(ConnectOnce());
  }
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(config_.request_timeout_ms);
  std::string wire(line);
  wire.push_back('\n');
  size_t sent = 0;
  while (sent < wire.size()) {
    ssize_t n =
        ::send(fd_, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
        if (std::chrono::steady_clock::now() >= deadline) {
          return Status::DeadlineExceeded("request timed out sending");
        }
        pollfd pfd{fd_, POLLOUT, 0};
        ::poll(&pfd, 1, 10);
        continue;
      }
      return Status::ResourceExhausted(std::string("send: ") +
                                       std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  Response response;
  std::string reply;
  for (;;) {
    XSQ_RETURN_IF_ERROR(ReadLine(&reply, deadline));
    if (reply == "OK" || reply.rfind("OK ", 0) == 0) {
      response.ok_payload = reply.size() > 3 ? reply.substr(3) : std::string();
      response.status = Status::OK();
      return response;
    }
    if (reply.rfind("ERR ", 0) == 0) {
      response.status = DecodeErr(std::string_view(reply).substr(4));
      return response;
    }
    response.lines.push_back(std::move(reply));
  }
}

Result<Response> Client::Request(std::string_view line) {
  const bool retryable = IsIdempotent(line);
  const int attempts_allowed = retryable ? config_.max_retries + 1 : 1;
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts_allowed; ++attempt) {
    if (attempt > 0) {
      ++counters_.retries;
      std::this_thread::sleep_for(
          std::chrono::milliseconds(NextBackoffMs(attempt - 1)));
    }
    Result<Response> result = RequestOnce(line);
    if (result.ok()) {
      // A shed reply ("ERR ResourceExhausted") is the server asking the
      // client to back off and retry — honor it for idempotent verbs.
      if (retryable && !result->status.ok() &&
          result->status.code() == StatusCode::kResourceExhausted &&
          attempt + 1 < attempts_allowed) {
        last = result->status;
        ++counters_.shed_retries;
        Close();
        continue;
      }
      (*result).attempts = attempt + 1;
      return result;
    }
    last = result.status();
    // Transport failure: the connection is in an unknown state; retries
    // always reconnect — against the NEXT endpoint when several are
    // configured, so an idempotent retry (this loop) or the caller's
    // own recovery (non-idempotent verbs return after this attempt)
    // lands on a surviving router.
    Close();
    AdvanceEndpoint();
  }
  return last;
}

}  // namespace xsq::net
