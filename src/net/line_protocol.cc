#include "net/line_protocol.h"

#include <cstdlib>
#include <optional>
#include <vector>

#include "common/strings.h"
#include "net/client.h"

namespace xsq::net {

namespace {

using service::SessionId;

// "PUSH 7 <abc>" -> id=7, rest="<abc>". Returns nullopt on a bad id.
std::optional<SessionId> ParseId(std::string_view* rest) {
  size_t space = rest->find(' ');
  std::string_view id_text = rest->substr(0, space);
  *rest = space == std::string_view::npos ? std::string_view()
                                          : rest->substr(space + 1);
  if (id_text.empty()) return std::nullopt;
  SessionId id = 0;
  for (char c : id_text) {
    if (c < '0' || c > '9') return std::nullopt;
    id = id * 10 + static_cast<SessionId>(c - '0');
  }
  return id;
}

// "RECORD shake <doc>" -> name="shake", rest="<doc>". Empty on no name.
std::string_view TakeWord(std::string_view* rest) {
  size_t space = rest->find(' ');
  std::string_view word = rest->substr(0, space);
  *rest = space == std::string_view::npos ? std::string_view()
                                          : rest->substr(space + 1);
  return word;
}

// "127.0.0.1:9101" -> host/port. False on a malformed or zero port.
bool ParseHostPort(std::string_view spec, std::string* host,
                   uint16_t* port) {
  size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    return false;
  }
  unsigned long value =
      std::strtoul(std::string(spec.substr(colon + 1)).c_str(), nullptr, 10);
  if (value == 0 || value > 65535) return false;
  host->assign(spec.substr(0, colon));
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace

std::string LineProtocol::Unescape(std::string_view text) {
  return LineUnescape(text);
}

std::string LineProtocol::Escape(std::string_view text) {
  return LineEscape(text);
}

std::string LineProtocol::OversizedLineReply(size_t max_line_bytes) {
  return "ERR LimitExceeded: line exceeds --max-line-bytes=" +
         std::to_string(max_line_bytes) + "; command discarded";
}

void LineProtocol::Reply(std::string* out, std::string_view line) const {
  out->append(line);
  out->push_back('\n');
}

void LineProtocol::ReplyStatus(std::string* out, const Status& status) const {
  if (status.ok()) {
    Reply(out, "OK");
  } else {
    Reply(out, "ERR " + status.ToString());
  }
}

void LineProtocol::PrintItems(std::string* out, SessionId id) const {
  for (const std::string& item : service_->Drain(id)) {
    Reply(out, "ITEM " + Escape(item));
  }
}

size_t LineProtocol::CancelAll() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t cancelled = 0;
  for (SessionId id : owned_) {
    if (service_->CancelSession(id).ok()) ++cancelled;
  }
  return cancelled;
}

void LineProtocol::SetEventSink(EventSink sink) {
  std::lock_guard<std::mutex> lock(mu_);
  event_sink_ = std::move(sink);
}

Result<uint64_t> LineProtocol::EnsureSubscriberLocked() {
  if (subscriber_id_ != 0) return subscriber_id_;
  if (!event_sink_) {
    return Status::NotSupported(
        "this transport cannot deliver EVENT frames");
  }
  XSQ_ASSIGN_OR_RETURN(uint64_t id, service_->AddSubscriber(event_sink_));
  subscriber_id_ = id;
  return id;
}

void LineProtocol::ReleaseAll() {
  uint64_t subscriber = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (SessionId id : owned_) {
      service_->Release(id);
    }
    owned_.clear();
    subscriber = subscriber_id_;
    subscriber_id_ = 0;
  }
  // Outside mu_: RemoveSubscriber blocks until no dispatcher is
  // mid-delivery to this connection's sink.
  if (subscriber != 0) service_->RemoveSubscriber(subscriber);
}

size_t LineProtocol::owned_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return owned_.size();
}

bool LineProtocol::HandleLine(std::string_view input, std::string* out) {
  if (!input.empty() && input.back() == '\r') input.remove_suffix(1);
  size_t space = input.find(' ');
  std::string_view command = input.substr(0, space);
  std::string_view rest = space == std::string_view::npos
                              ? std::string_view()
                              : input.substr(space + 1);

  if (command == "QUIT") {
    Reply(out, "OK");
    return false;
  } else if (command == "OPEN") {
    auto id = service_->OpenSession(rest);
    if (id.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        owned_.insert(*id);
      }
      Reply(out, "OK " + std::to_string(*id));
    } else {
      Reply(out, "ERR " + id.status().ToString());
    }
  } else if (command == "PUSH") {
    std::optional<SessionId> id = ParseId(&rest);
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else {
      ReplyStatus(out, service_->Push(*id, Unescape(rest)));
    }
  } else if (command == "DRAIN") {
    std::optional<SessionId> id = ParseId(&rest);
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else if (!service_->HasSession(*id)) {
      Reply(out,
            "ERR InvalidArgument: unknown session id " + std::to_string(*id));
    } else {
      PrintItems(out, *id);
      Reply(out, "OK");
    }
  } else if (command == "CLOSE") {
    std::optional<SessionId> id = ParseId(&rest);
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else {
      Status status = service_->Close(*id);
      PrintItems(out, *id);
      if (status.ok()) {
        if (std::optional<double> agg = service_->FinalAggregate(*id)) {
          Reply(out, "AGG " + std::to_string(*agg));
        }
      }
      service_->Release(*id);
      {
        std::lock_guard<std::mutex> lock(mu_);
        owned_.erase(*id);
      }
      ReplyStatus(out, status);
    }
  } else if (command == "RECORD") {
    std::string_view name = TakeWord(&rest);
    if (name.empty()) {
      Reply(out, "ERR InvalidArgument: missing document name");
    } else {
      auto tape = service_->RecordDocument(name, Unescape(rest));
      if (tape.ok()) {
        Reply(out, "OK " + std::to_string((*tape)->event_count()) + " " +
                       std::to_string((*tape)->memory_bytes()));
      } else {
        Reply(out, "ERR " + tape.status().ToString());
      }
    }
  } else if (command == "RUNCACHED") {
    std::optional<SessionId> id = ParseId(&rest);
    std::string_view name = TakeWord(&rest);
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else if (name.empty()) {
      Reply(out, "ERR InvalidArgument: missing document name");
    } else {
      Status status = service_->RunCached(*id, name);
      PrintItems(out, *id);
      if (status.ok()) {
        if (std::optional<double> agg = service_->FinalAggregate(*id)) {
          Reply(out, "AGG " + std::to_string(*agg));
        }
      }
      ReplyStatus(out, status);
    }
  } else if (command == "CANCEL") {
    std::optional<SessionId> id = ParseId(&rest);
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad session id");
    } else {
      ReplyStatus(out, service_->CancelSession(*id));
    }
  } else if (command == "EVICT") {
    std::string_view name = TakeWord(&rest);
    if (name.empty()) {
      Reply(out, "ERR InvalidArgument: missing document name");
    } else {
      ReplyStatus(out, service_->EvictDocument(name));
    }
  } else if (command == "REPLPULL") {
    std::string_view name = TakeWord(&rest);
    std::string_view source = TakeWord(&rest);
    if (name.empty()) {
      Reply(out, "ERR InvalidArgument: missing document name");
    } else if (source.empty()) {
      // Serve mode: stream the resident tape to the requesting peer.
      const size_t max_tape = service_->config().max_tape_bytes;
      auto tape = service_->ServeTape(name);
      if (!tape.ok()) {
        Reply(out, "ERR " + tape.status().ToString());
      } else {
        std::string bytes = (*tape)->Serialize();
        if (max_tape != 0 && bytes.size() > max_tape) {
          // Refuse at the source too: a transfer the puller would
          // reject anyway should not ship the bytes across shards.
          Reply(out, "ERR LimitExceeded: tape '" + std::string(name) +
                         "' is " + std::to_string(bytes.size()) +
                         " bytes, over the " + std::to_string(max_tape) +
                         "-byte replication transfer cap");
        } else {
          Reply(out, "TAPE " + Escape(bytes));
          Reply(out, "OK " + std::to_string((*tape)->event_count()) + " " +
                         std::to_string((*tape)->memory_bytes()));
        }
      }
    } else {
      // Pull mode: fetch the tape FROM the named peer and install it,
      // bounded by the transfer deadline and the tape byte cap. The cap
      // is checked before IngestTape touches the cache, so an oversized
      // transfer fails clean — never a half-installed tape.
      ClientConfig peer;
      if (!ParseHostPort(source, &peer.host, &peer.port)) {
        Reply(out, "ERR InvalidArgument: bad replication source '" +
                       std::string(source) + "' (want HOST:PORT)");
      } else {
        const size_t max_tape = service_->config().max_tape_bytes;
        peer.max_retries = 1;  // REPLPULL is idempotent by key
        peer.request_timeout_ms = service_->config().replpull_deadline_ms;
        peer.connect_timeout_ms = service_->config().replpull_deadline_ms;
        Client client(peer);
        Result<Response> pulled =
            client.Request("REPLPULL " + std::string(name));
        if (!pulled.ok()) {
          Reply(out, "ERR " + pulled.status().ToString());
        } else if (!pulled->status.ok()) {
          // The peer answered: relay its error (e.g. not resident).
          Reply(out, "ERR " + pulled->status.ToString());
        } else {
          std::string bytes;
          bool have_tape = false;
          for (const std::string& line : pulled->lines) {
            if (line.rfind("TAPE ", 0) == 0) {
              bytes = Unescape(std::string_view(line).substr(5));
              have_tape = true;
              break;
            }
          }
          if (!have_tape) {
            Reply(out, "ERR DataCorruption: peer reply carried no TAPE "
                       "line");
          } else if (max_tape != 0 && bytes.size() > max_tape) {
            Reply(out, "ERR LimitExceeded: peer tape for '" +
                           std::string(name) + "' is " +
                           std::to_string(bytes.size()) +
                           " bytes, over the " + std::to_string(max_tape) +
                           "-byte replication transfer cap");
          } else {
            auto tape = service_->IngestTape(name, std::move(bytes));
            if (tape.ok()) {
              Reply(out,
                    "OK " + std::to_string((*tape)->event_count()) + " " +
                        std::to_string((*tape)->memory_bytes()));
            } else {
              Reply(out, "ERR " + tape.status().ToString());
            }
          }
        }
      }
    }
  } else if (command == "REPLSTATUS") {
    service::StatsSnapshot snap = service_->stats();
    for (const auto& [name, tape] : service_->DocumentInventory()) {
      Reply(out, "DOC " + name + " " + std::to_string(tape->event_count()) +
                     " " + std::to_string(tape->memory_bytes()));
    }
    Reply(out, "OK docs=" + std::to_string(snap.doc_cache_documents) +
                   " serves=" + std::to_string(snap.repl_serves) +
                   " ingests=" + std::to_string(snap.repl_ingests) +
                   " corrupt=" + std::to_string(snap.repl_ingest_corrupt));
  } else if (command == "SUBSCRIBE") {
    if (rest.empty()) {
      Reply(out, "ERR InvalidArgument: missing query text");
    } else {
      Result<uint64_t> sub = [&]() -> Result<uint64_t> {
        uint64_t subscriber = 0;
        {
          std::lock_guard<std::mutex> lock(mu_);
          XSQ_ASSIGN_OR_RETURN(subscriber, EnsureSubscriberLocked());
        }
        return service_->Subscribe(subscriber, rest);
      }();
      if (sub.ok()) {
        Reply(out, "OK " + std::to_string(*sub));
      } else {
        Reply(out, "ERR " + sub.status().ToString());
      }
    }
  } else if (command == "UNSUBSCRIBE") {
    std::optional<SessionId> id = ParseId(&rest);
    if (!id.has_value()) {
      Reply(out, "ERR InvalidArgument: bad subscription id");
    } else {
      uint64_t subscriber = 0;
      {
        std::lock_guard<std::mutex> lock(mu_);
        subscriber = subscriber_id_;
      }
      if (subscriber == 0) {
        Reply(out, "ERR InvalidArgument: unknown subscription id " +
                       std::to_string(*id));
      } else {
        ReplyStatus(out, service_->Unsubscribe(subscriber, *id));
      }
    }
  } else if (command == "PUBLISH") {
    if (rest.empty()) {
      Reply(out, "ERR InvalidArgument: missing document");
    } else {
      auto summary = service_->Publish(Unescape(rest));
      if (summary.ok()) {
        Reply(out, "OK matched=" + std::to_string(summary->deliveries) +
                       " survivors=" +
                       std::to_string(summary->filter_survivors) +
                       " hpdt=" + std::to_string(summary->hpdt_evaluations) +
                       " enqueued=" +
                       std::to_string(summary->frames_enqueued) +
                       " shed=" + std::to_string(summary->frames_shed));
      } else {
        Reply(out, "ERR " + summary.status().ToString());
      }
    }
  } else if (command == "STATS") {
    service::StatsSnapshot snap = service_->stats();
    std::string text = snap.ToString();
    size_t begin = 0;
    while (begin < text.size()) {
      size_t end = text.find('\n', begin);
      Reply(out, "STAT " + text.substr(begin, end - begin));
      begin = end + 1;
    }
    Reply(out, "OK");
  } else if (command == "METRICS") {
    std::string text = service_->MetricsText();
    size_t begin = 0;
    while (begin < text.size()) {
      size_t end = text.find('\n', begin);
      Reply(out, "METRIC " + text.substr(begin, end - begin));
      begin = end + 1;
    }
    Reply(out, "OK");
  } else if (command.empty()) {
    // Blank line: ignore.
  } else {
    Reply(out,
          "ERR InvalidArgument: unknown command '" + std::string(command) +
              "'");
  }
  return true;
}

}  // namespace xsq::net
