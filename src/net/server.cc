#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoints.h"

namespace xsq::net {

namespace {

// The accept-side shed reply uses the protocol's error grammar so a
// protocol client can decode it like any other failure.
constexpr char kShedReply[] =
    "ERR ResourceExhausted: server at capacity; retry later\n";

// HTTP requests are tiny (request line + a few headers); anything
// larger is not a metrics scraper.
constexpr size_t kMaxHttpRequestBytes = 16 * 1024;

std::string HttpResponse(int code, const char* reason,
                         const std::string& body) {
  std::string out = "HTTP/1.0 ";
  out += std::to_string(code);
  out += ' ';
  out += reason;
  out +=
      "\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8"
      "\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Server::Server(ServerApp app, ServerConfig config)
    : app_(std::move(app)), config_(std::move(config)) {}

Result<std::unique_ptr<Server>> Server::Create(service::QueryService* service,
                                               ServerConfig config) {
  if (service == nullptr) {
    return Status::InvalidArgument("net::Server needs a QueryService");
  }
  ServerApp app;
  app.make_handler = [service] {
    return std::make_unique<LineProtocol>(service);
  };
  app.metrics_text = [service] { return service->MetricsText(); };
  app.saturated = [service] {
    return service->active_sessions() >= service->config().max_sessions;
  };
  app.stats = service->stats_sink();
  return Create(std::move(app), std::move(config));
}

Result<std::unique_ptr<Server>> Server::Create(ServerApp app,
                                               ServerConfig config) {
  if (!app.make_handler) {
    return Status::InvalidArgument("ServerApp needs a handler factory");
  }
  if (app.stats == nullptr) {
    return Status::InvalidArgument("ServerApp needs a stats sink");
  }
  std::unique_ptr<Server> server(new Server(std::move(app), std::move(config)));
  XSQ_RETURN_IF_ERROR(server->Listen());
  int workers =
      server->config_.protocol_workers < 1 ? 1 : server->config_.protocol_workers;
  server->workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    server->workers_.emplace_back([raw = server.get()] { raw->WorkerLoop(); });
  }
  server->poll_thread_ = std::thread([raw = server.get()] { raw->PollLoop(); });
  return server;
}

Server::~Server() {
  Stop();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
}

Status Server::Listen() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Internal(std::string("bind: ") + std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC | O_NONBLOCK) != 0) {
    return Status::Internal(std::string("pipe2: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  return Status::OK();
}

void Server::WakePoll() {
  char byte = 1;
  // Best effort: a full pipe already guarantees a pending wakeup.
  ssize_t ignored = ::write(wake_write_fd_, &byte, 1);
  (void)ignored;
}

void Server::BeginDrain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  WakePoll();
}

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !poll_thread_.joinable()) return;  // already stopped
    draining_ = true;
  }
  WakePoll();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (config_.drain_deadline_ms > 0) {
      drain_cv_.wait_for(lock,
                         std::chrono::milliseconds(config_.drain_deadline_ms),
                         [this] { return conns_.empty(); });
    }
    stopping_ = true;
  }
  WakePoll();
  work_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
}

size_t Server::connection_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

void Server::ScheduleLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->executing || conn->dead || conn->pending_lines.empty()) return;
  conn->executing = true;
  runnable_.push_back(conn);
  work_cv_.notify_one();
}

void Server::QueueOutputLocked(const std::shared_ptr<Connection>& conn,
                               std::string_view reply) {
  if (conn->dead || reply.empty()) return;
  if (conn->out_buffer.empty()) {
    conn->out_since = std::chrono::steady_clock::now();
  }
  conn->out_buffer.append(reply);
  if (conn->out_buffer.size() > config_.max_output_buffer_bytes) {
    // Slow (or absent) reader: shed the backlog instead of buffering
    // without bound. The grace line may land mid-reply — the peer is
    // being terminated for falling behind, framing is best effort.
    conn->out_buffer =
        "ERR ResourceExhausted: output buffer overflow; closing\n";
    conn->pending_lines.clear();
    conn->closing = true;
    conn->protocol->CancelAll();
    app_.stats->RecordNetOverrunClosed();
  }
}

void Server::TeardownLocked(const std::shared_ptr<Connection>& conn,
                            bool abrupt) {
  if (conn->dead) return;
  conn->dead = true;
  conn->pending_lines.clear();
  if (conn->events != nullptr) {
    std::lock_guard<std::mutex> events_lock(conn->events->mu);
    conn->events->closed = true;
    conn->events->pending.clear();
  }
  size_t cancelled = conn->protocol->CancelAll();
  if (abrupt && cancelled > 0) {
    app_.stats->RecordDisconnectCancels(cancelled);
  }
  // ReleaseAll deregisters the connection's subscriber, blocking until
  // no dispatcher is mid-delivery. Safe under mu_: the event sink only
  // ever takes the EventBuffer mutex, never ours.
  conn->protocol->ReleaseAll();
  if (conn->counted_http) {
    conn->counted_http = false;
    --http_conns_;
  }
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conns_.erase(conn->fd);
    conn->fd = -1;
  }
  drain_cv_.notify_all();
}

bool Server::SheddingLocked() const {
  // Only protocol conversations consume capacity slots; HTTP probes
  // (metrics scrapers, health checkers) are excluded so observability
  // keeps working exactly when the operator needs it most.
  size_t protocol_conns = conns_.size() - http_conns_;
  if (protocol_conns >= config_.max_connections) return true;
  return app_.saturated && app_.saturated();
}

void Server::AcceptPendingLocked() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or a transient accept error: try later
    // The shed *decision* is deferred until the transport is sniffed
    // (SplitLinesLocked) so HTTP probes are served even at capacity.
    // Only the hard fd cap — capacity plus the probe allowance — sheds
    // at accept, bounding descriptors a flood can pin.
    bool shed =
        conns_.size() >= config_.max_connections + config_.probe_slack;
    XSQ_FAILPOINT("net.accept.shed", shed = true);
    if (shed) {
      // Best effort: tell the peer why before closing. A full socket
      // buffer just means the close is the message.
      ssize_t ignored = ::send(fd, kShedReply, sizeof(kShedReply) - 1,
                               MSG_NOSIGNAL | MSG_DONTWAIT);
      (void)ignored;
      ::close(fd);
      app_.stats->RecordConnectionShed();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->protocol = app_.make_handler();
    conn->events = std::make_shared<EventBuffer>();
    // The sink runs on service dispatcher threads: append to the
    // side-channel under its own mutex, then nudge the poll thread so
    // the frame ships on the next tick. It must not touch server mu_.
    conn->protocol->SetEventSink(
        [this, events = conn->events](std::string_view frame) {
          {
            std::lock_guard<std::mutex> events_lock(events->mu);
            if (events->closed) return;
            std::string line(frame);
            line.push_back('\n');
            events->pending.push_back(std::move(line));
          }
          WakePoll();
        });
    conn->last_activity = std::chrono::steady_clock::now();
    conns_.emplace(fd, std::move(conn));
    app_.stats->RecordConnectionAccepted();
  }
}

void Server::DrainEventsLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->dead || conn->events == nullptr) return;
  std::vector<std::string> frames;
  {
    std::lock_guard<std::mutex> events_lock(conn->events->mu);
    if (conn->events->pending.empty()) return;
    frames.swap(conn->events->pending);
  }
  for (const std::string& frame : frames) {
    QueueOutputLocked(conn, frame);
    if (conn->dead || conn->closing) break;  // overflow shed the rest
  }
}

void Server::HandleHttpLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->closing) return;
  if (conn->in_buffer.size() > kMaxHttpRequestBytes) {
    app_.stats->RecordNetOverrunClosed();
    TeardownLocked(conn, false);
    return;
  }
  size_t end = conn->in_buffer.find("\r\n\r\n");
  size_t lf = conn->in_buffer.find("\n\n");
  if (end == std::string::npos &&
      lf == std::string::npos) {
    // Headers not complete yet; but a bare "GET /path HTTP/1.0\n" with
    // no further headers is also a complete HTTP/1.0 request once a
    // newline arrives and the peer pauses — accept the common curl/nc
    // shapes by requiring only the request line.
    if (conn->in_buffer.find('\n') == std::string::npos) return;
  }
  size_t line_end = conn->in_buffer.find('\n');
  std::string_view request_line(conn->in_buffer.data(), line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }
  // "GET /metrics HTTP/1.0" -> path between the two spaces.
  size_t first_space = request_line.find(' ');
  size_t second_space = request_line.find(' ', first_space + 1);
  std::string_view path =
      first_space == std::string_view::npos
          ? std::string_view()
          : request_line.substr(
                first_space + 1,
                second_space == std::string_view::npos
                    ? std::string_view::npos
                    : second_space - first_space - 1);
  std::string response;
  if (path == "/metrics" && app_.metrics_text) {
    response = HttpResponse(200, "OK", app_.metrics_text());
  } else if (path == "/healthz") {
    // Health tracks what a new protocol client would experience right
    // now: draining means the listener is gone, shedding means a
    // protocol conversation would be turned away (connection slots or
    // session slots exhausted — the same SheddingLocked condition the
    // sniff enforces). The probe's own connection is HTTP-counted, so
    // it never tips the scale it is reading.
    if (draining_) {
      response = HttpResponse(503, "Service Unavailable", "draining\n");
    } else if (SheddingLocked()) {
      response = HttpResponse(503, "Service Unavailable", "shedding\n");
    } else {
      response = HttpResponse(200, "OK", "ok\n");
    }
  } else {
    response = HttpResponse(404, "Not Found", "not found\n");
  }
  conn->in_buffer.clear();
  QueueOutputLocked(conn, response);
  conn->closing = true;
}

void Server::SplitLinesLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->dead || conn->closing || conn->overran) {
    conn->in_buffer.clear();
    return;
  }
  if (!conn->sniffed) {
    if (conn->in_buffer.size() >= 4) {
      conn->sniffed = true;
      conn->http = conn->in_buffer.compare(0, 4, "GET ") == 0;
    } else if (conn->in_buffer.find('\n') != std::string::npos) {
      conn->sniffed = true;  // a full (tiny) protocol line before 4 bytes
    } else {
      return;  // wait for more bytes before deciding the transport
    }
    if (conn->http) {
      // Probes don't occupy capacity slots — see SheddingLocked.
      conn->counted_http = true;
      ++http_conns_;
    } else {
      // Deferred shed: the peer revealed itself as a protocol client,
      // so the capacity decision formerly made at accept applies now.
      // Exclude this connection from the count — it IS the candidate.
      bool over = (conns_.size() - http_conns_ - 1) >=
                      config_.max_connections ||
                  (app_.saturated && app_.saturated());
      if (over) {
        conn->in_buffer.clear();
        conn->pending_lines.clear();
        conn->closing = true;
        QueueOutputLocked(conn, kShedReply);
        app_.stats->RecordConnectionShed();
        return;
      }
    }
  }
  if (conn->http) {
    HandleHttpLocked(conn);
    return;
  }
  size_t begin = 0;
  for (;;) {
    size_t newline = conn->in_buffer.find('\n', begin);
    if (newline == std::string::npos) break;
    size_t length = newline - begin;
    if (length > config_.max_line_bytes) {
      conn->overran = true;
      break;
    }
    conn->pending_lines.emplace_back(conn->in_buffer, begin, length);
    begin = newline + 1;
  }
  conn->in_buffer.erase(0, begin);
  if (!conn->overran && conn->in_buffer.size() > config_.max_line_bytes) {
    conn->overran = true;  // unbounded line still streaming in
  }
  if (!conn->overran &&
      conn->pending_lines.size() > config_.max_pending_lines) {
    conn->overran = true;  // command flood: the peer is not reading replies
  }
  if (conn->overran) {
    // Unlike the stdin transport (which discards the command and keeps
    // serving its one trusted caller), a socket peer that overruns the
    // line bound is assumed broken or hostile: reply, then close.
    conn->in_buffer.clear();
    conn->pending_lines.clear();
    conn->closing = true;
    QueueOutputLocked(conn,
                      LineProtocol::OversizedLineReply(config_.max_line_bytes) +
                          "\n");
    app_.stats->RecordNetOverrunClosed();
    return;
  }
  ScheduleLocked(conn);
}

void Server::ReadFromLocked(const std::shared_ptr<Connection>& conn) {
  char buf[64 * 1024];
  for (;;) {
    XSQ_FAILPOINT("net.read.fail", {
      TeardownLocked(conn, true);
      return;
    });
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      // Peer closed. If we were already finishing the conversation
      // (QUIT or an error close) this is the expected end; otherwise it
      // is an abandonment — cancel everything the peer started.
      TeardownLocked(conn, /*abrupt=*/!conn->closing);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      TeardownLocked(conn, true);
      return;
    }
    conn->last_activity = std::chrono::steady_clock::now();
    if (!conn->closing && !conn->dead) {
      conn->in_buffer.append(buf, static_cast<size_t>(n));
    }
    if (static_cast<size_t>(n) < sizeof(buf)) break;
  }
  SplitLinesLocked(conn);
}

void Server::WriteToLocked(const std::shared_ptr<Connection>& conn) {
  if (conn->dead || conn->out_buffer.empty()) return;
  XSQ_FAILPOINT("net.write.fail", {
    TeardownLocked(conn, true);
    return;
  });
  ssize_t n = ::send(conn->fd, conn->out_buffer.data(),
                     conn->out_buffer.size(), MSG_NOSIGNAL);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
    TeardownLocked(conn, true);
    return;
  }
  conn->out_buffer.erase(0, static_cast<size_t>(n));
  conn->last_activity = std::chrono::steady_clock::now();
  if (!conn->out_buffer.empty()) {
    conn->out_since = conn->last_activity;
  }
}

void Server::SweepTimeoutsLocked(std::chrono::steady_clock::time_point now) {
  std::vector<std::shared_ptr<Connection>> idle_victims;
  std::vector<std::shared_ptr<Connection>> write_victims;
  for (auto& [fd, conn] : conns_) {
    if (conn->dead) continue;
    if (config_.write_timeout_ms > 0 && !conn->out_buffer.empty() &&
        now - conn->out_since >
            std::chrono::milliseconds(config_.write_timeout_ms)) {
      write_victims.push_back(conn);
      continue;
    }
    // A connection whose command is still executing (or queued) is not
    // idle — the peer is legitimately waiting for a long evaluation.
    if (config_.idle_timeout_ms > 0 && !conn->executing &&
        conn->pending_lines.empty() && conn->out_buffer.empty() &&
        now - conn->last_activity >
            std::chrono::milliseconds(config_.idle_timeout_ms)) {
      idle_victims.push_back(conn);
    }
  }
  for (auto& conn : write_victims) {
    app_.stats->RecordNetOverrunClosed();
    TeardownLocked(conn, false);
  }
  for (auto& conn : idle_victims) {
    app_.stats->RecordNetIdleClosed();
    TeardownLocked(conn, false);
  }
}

void Server::PollLoop() {
  std::vector<pollfd> fds;
  std::vector<std::shared_ptr<Connection>> polled;
  for (;;) {
    fds.clear();
    polled.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (draining_ && listen_fd_ >= 0) {
        ::close(listen_fd_);  // frees the port immediately
        listen_fd_ = -1;
      }
      if (stopping_) {
        std::vector<std::shared_ptr<Connection>> all;
        all.reserve(conns_.size());
        for (auto& [fd, conn] : conns_) all.push_back(conn);
        for (auto& conn : all) TeardownLocked(conn, false);
        return;
      }
      fds.push_back(pollfd{wake_read_fd_, POLLIN, 0});
      if (listen_fd_ >= 0) {
        fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      }
      for (auto& [fd, conn] : conns_) {
        short events = POLLIN;
        if (!conn->out_buffer.empty()) events |= POLLOUT;
        fds.push_back(pollfd{fd, events, 0});
        polled.push_back(conn);
      }
    }
    ::poll(fds.data(), fds.size(), 50);
    {
      std::lock_guard<std::mutex> lock(mu_);
      size_t index = 0;
      if (fds[index].revents & POLLIN) {
        char drain[256];
        while (::read(wake_read_fd_, drain, sizeof(drain)) > 0) {
        }
      }
      ++index;
      if (listen_fd_ >= 0) {
        if (fds[index].revents & POLLIN) AcceptPendingLocked();
        ++index;
      }
      for (size_t i = 0; i < polled.size(); ++i, ++index) {
        const std::shared_ptr<Connection>& conn = polled[i];
        if (conn->dead) continue;
        short revents = fds[index].revents;
        if (revents & POLLOUT) WriteToLocked(conn);
        if (conn->dead) continue;
        if (revents & (POLLIN | POLLHUP | POLLERR)) ReadFromLocked(conn);
      }
      // Ship asynchronous EVENT frames queued by dispatcher sinks.
      for (auto& [fd, conn] : conns_) DrainEventsLocked(conn);
      // Reap conversations that are over: everything executed, every
      // reply delivered, close requested.
      std::vector<std::shared_ptr<Connection>> done;
      for (auto& [fd, conn] : conns_) {
        if (!conn->dead && conn->closing && conn->out_buffer.empty() &&
            !conn->executing && conn->pending_lines.empty()) {
          done.push_back(conn);
        }
      }
      for (auto& conn : done) TeardownLocked(conn, false);
      SweepTimeoutsLocked(std::chrono::steady_clock::now());
    }
  }
}

void Server::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !runnable_.empty(); });
    if (runnable_.empty()) {
      if (stopping_) return;
      continue;
    }
    std::shared_ptr<Connection> conn = std::move(runnable_.front());
    runnable_.pop_front();
    while (!conn->dead && !conn->pending_lines.empty()) {
      std::string line = std::move(conn->pending_lines.front());
      conn->pending_lines.pop_front();
      lock.unlock();
      // Unlocked: HandleLine may block inside the service (CLOSE waits
      // for the evaluation; that is when disconnect-cancellation from
      // the poll thread matters).
      std::string replies;
      bool keep_going = conn->protocol->HandleLine(line, &replies);
      lock.lock();
      QueueOutputLocked(conn, replies);
      if (!keep_going) {
        conn->pending_lines.clear();
        conn->closing = true;
        break;
      }
    }
    conn->executing = false;
    WakePoll();  // deliver replies; reap if the conversation ended
  }
}

}  // namespace xsq::net
