// net::Server: a fault-tolerant TCP front-end for the query service.
//
//        peers (any number)                     GET /metrics scrapers
//            |                                        |
//            v                                        v
//   +----------------- net::Server ------------------------+
//   | poll thread: accept, read, write, timeouts, reaping  |
//   |   - admission control + load shedding at accept      |
//   |   - bounded input lines / bounded output buffer      |
//   |   - idle + write deadlines (slowloris, half-open)    |
//   |   - disconnect => LineProtocol::CancelAll            |
//   | protocol workers: run LineProtocol per connection    |
//   +------------------------------------------------------+
//            |  1 LineProtocol per connection
//            v
//       service::QueryService (its own worker pool)
//
// Threading model. ONE poll thread owns every file descriptor: it
// accepts, reads bytes into per-connection input buffers, splits them
// into protocol lines, writes response bytes out, enforces deadlines
// and closes sockets. It never executes a command. N protocol workers
// claim connections with pending lines (per-connection FIFO, one
// worker per connection at a time — the protocol is stateful) and run
// LineProtocol::HandleLine, which may block inside the service (CLOSE
// waits for evaluation). Responses are appended to the connection's
// output buffer and the poll thread is woken through a self-pipe.
//
// This split is what makes disconnect-driven cancellation work: while
// a worker is blocked in service::Close evaluating an expensive query,
// the poll thread is still watching the socket. The moment the peer
// disconnects it calls CancelAll on that connection's protocol, the
// engine's sampled cancel check fires within one interval
// (ServiceConfig::cancel_check_events events), and the worker unblocks
// with kCancelled — no abandoned query runs to completion.
//
// Failure containment per connection:
//   - input line > max_line_bytes       -> ERR + close  (overrun)
//   - output buffer > max_output_bytes  -> ERR + close  (slow reader)
//   - no bytes either way for idle_timeout_ms    -> close (idle/half-open)
//   - output pending for > write_timeout_ms      -> close (write deadline)
//   - accept beyond max_connections or a saturated service -> best-effort
//     "ERR ResourceExhausted" + close (load shedding; never queues)
// Every such event is counted in ServiceStats (connections_accepted,
// connections_shed, disconnect_cancels, net_idle_closed,
// net_overrun_closed) and therefore visible via STATS, METRICS and
// GET /metrics.
//
// HTTP: a connection whose first bytes are "GET " is served as a
// one-shot HTTP/1.0 exchange; GET /metrics returns exactly
// QueryService::MetricsText() (the Prometheus text exposition),
// GET /healthz reports serving health — 200 "ok" normally, 503
// "draining" once BeginDrain ran, 503 "shedding" while a new
// *protocol* connection would be shed (connection or session
// capacity) — and any other path returns 404. The response ends the
// connection.
//
// Probes are not query sessions: the shed decision is deferred from
// accept to transport sniff, and only protocol connections count
// against max_connections. A health prober or metrics scraper arriving
// while the server sheds still gets its HTTP answer (503 "shedding" /
// 200 with the exposition) instead of a raw "ERR ResourceExhausted" +
// close — exactly what a cluster front tier needs to tell "shedding"
// apart from "dead". A hard ceiling of max_connections + probe_slack
// total sockets still bounds fd usage; beyond it everything sheds at
// accept, probes included.
//
// Applications: the server is protocol-agnostic above the transport.
// It asks its ServerApp for a ConnectionHandler per connection, for
// the GET /metrics body, and for an app-side saturation signal folded
// into the shed/healthz decision. Server::Create(QueryService*, ...)
// wires the classic single-node app (LineProtocol, MetricsText,
// session-slot saturation); src/cluster/ wires a router app over the
// same transport.
//
// Pub/sub transport: SUBSCRIBE/UNSUBSCRIBE/PUBLISH flow through
// LineProtocol like any verb; asynchronous "EVENT ..." frames from the
// service's dispatcher threads land in a per-connection EventBuffer
// side-channel (never touching server state) and the poll thread folds
// them into the ordinary output buffer each tick, so event frames
// interleave between reply blocks but never inside one.
//
// Reply-delivery contract: responses for commands already parsed are
// dropped when the peer disconnects — a client must keep its socket
// open until it has read the replies it wants. Disconnecting early is
// precisely the cancellation signal.
//
// Shutdown: BeginDrain() stops accepting (the listen socket closes, so
// the port frees immediately) while live connections keep being
// served; Stop() drains for up to drain_deadline_ms, then cancels and
// closes whatever remains, and joins all threads. SIGTERM handling in
// xsqd maps onto exactly this pair.
#ifndef XSQ_NET_SERVER_H_
#define XSQ_NET_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/handler.h"
#include "net/line_protocol.h"
#include "service/query_service.h"

namespace xsq::net {

// The application behind the transport. `make_handler` and `stats` are
// required; empty `metrics_text` answers GET /metrics with 404, empty
// `saturated` means the app never saturates.
struct ServerApp {
  // One handler per connection; called on the poll thread at accept.
  std::function<std::unique_ptr<ConnectionHandler>()> make_handler;
  // Body for GET /metrics.
  std::function<std::string()> metrics_text;
  // App-side shed signal (e.g. session slots exhausted), folded into
  // accept-side shedding and /healthz.
  std::function<bool()> saturated;
  // Counter block for connection-level events (accepts, sheds, idle
  // closes, disconnect cancels).
  service::ServiceStats* stats = nullptr;
};

struct ServerConfig {
  // Listen address. Tests and the default deployment bind loopback.
  std::string bind_address = "127.0.0.1";
  // 0 picks an ephemeral port; read it back with port().
  uint16_t port = 0;
  // Admission control: *protocol* connections beyond this are shed
  // (the reply-then-close happens at transport sniff, so HTTP probes
  // are still served while shedding).
  size_t max_connections = 64;
  // Extra sockets beyond max_connections kept available for HTTP
  // probes (health checks, metrics scrapers) and not-yet-sniffed
  // peers. Total sockets are hard-capped at max_connections +
  // probe_slack; beyond that everything sheds at accept.
  size_t probe_slack = 8;
  // A protocol line larger than this closes the connection with ERR
  // (the stdin transport discards the command but keeps serving; a
  // socket peer that overruns is assumed broken or hostile).
  size_t max_line_bytes = 16u << 20;  // 16 MiB
  // Buffered-but-unsent response bytes beyond this close the
  // connection (slow reader / unread METRICS floods).
  size_t max_output_buffer_bytes = 4u << 20;  // 4 MiB
  // Parsed-but-unexecuted command lines beyond this close the
  // connection (a peer must not use the server as an unbounded queue).
  size_t max_pending_lines = 1024;
  // No bytes read or written for this long closes the connection
  // (idle peers, half-open TCP). 0 disables.
  uint64_t idle_timeout_ms = 30000;
  // Responses still undelivered after this long close the connection
  // (write deadline; counts as an overrun close). 0 disables.
  uint64_t write_timeout_ms = 10000;
  // Threads running LineProtocol commands. At least 1. Sized like a
  // thread-per-request pool: a worker is held for the full duration of
  // a blocking CLOSE/RUNCACHED.
  int protocol_workers = 4;
  // Bound on Stop()'s graceful drain before remaining connections are
  // cancelled and closed.
  uint64_t drain_deadline_ms = 2000;
};

class Server {
 public:
  // Binds, listens and starts the poll + worker threads. On success the
  // server is live and port() is the bound port.
  static Result<std::unique_ptr<Server>> Create(
      ServerApp app, ServerConfig config = ServerConfig());

  // The classic single-node binding: LineProtocol handlers over
  // `service`, MetricsText for scrapes, session-slot saturation.
  static Result<std::unique_ptr<Server>> Create(
      service::QueryService* service, ServerConfig config = ServerConfig());

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }

  // Stops accepting new connections (sheds nothing — the listen socket
  // simply closes); established connections keep being served.
  // Idempotent, safe from signal-adjacent contexts (locks, no I/O
  // beyond a pipe write).
  void BeginDrain();

  // BeginDrain, then waits up to config.drain_deadline_ms for live
  // connections to finish; whatever remains is cancelled (sessions
  // abort kCancelled) and closed. Joins all threads. Idempotent.
  void Stop();

  // Live established connections (excludes the listener).
  size_t connection_count() const;

 private:
  // The async EVENT path between the service's dispatcher threads and
  // the poll thread. A dispatcher delivering a frame must never need
  // the server's mu_ (teardown holds mu_ while blocking on the
  // dispatcher unclaiming the subscriber — touching mu_ from the sink
  // would deadlock), so the sink appends into this side-channel under
  // its own tiny mutex and the poll thread folds pending frames into
  // the connection's output buffer on its next tick.
  struct EventBuffer {
    std::mutex mu;
    std::vector<std::string> pending;  // newline-terminated frames
    bool closed = false;               // connection torn down: drop frames
  };

  struct Connection {
    int fd = -1;
    std::unique_ptr<ConnectionHandler> protocol;
    std::shared_ptr<EventBuffer> events;
    // Bytes read but not yet split into lines. Poll thread only.
    std::string in_buffer;
    // True once in_buffer overran max_line_bytes; remaining input is
    // discarded. Poll thread only.
    bool overran = false;
    // Parsed lines waiting for a protocol worker. Guarded by mu_.
    std::deque<std::string> pending_lines;
    // Response bytes waiting for the socket. Guarded by mu_.
    std::string out_buffer;
    // A worker currently owns pending_lines. Guarded by mu_.
    bool executing = false;
    // Close once out_buffer drains and no worker is executing.
    bool closing = false;
    // Torn down: fd closed, pending dropped; workers must not touch
    // the service for it again. Guarded by mu_.
    bool dead = false;
    // This connection is a one-shot HTTP exchange.
    bool http = false;
    // Transport sniffing done (first bytes decide HTTP vs protocol).
    bool sniffed = false;
    // Counted in http_conns_ (sniffed as HTTP; excluded from the
    // protocol-connection shed accounting).
    bool counted_http = false;
    std::chrono::steady_clock::time_point last_activity;
    // Set while out_buffer is non-empty: when delivery began.
    std::chrono::steady_clock::time_point out_since;
  };

  Server(ServerApp app, ServerConfig config);
  Status Listen();
  void PollLoop();
  void WorkerLoop();

  // All Requires-mu_ helpers run on the poll thread unless noted.
  // True when a new protocol connection would be shed right now
  // (protocol-connection slots or the app's own saturation signal).
  bool SheddingLocked() const;
  void AcceptPendingLocked();
  void ReadFromLocked(const std::shared_ptr<Connection>& conn);
  void WriteToLocked(const std::shared_ptr<Connection>& conn);
  void SplitLinesLocked(const std::shared_ptr<Connection>& conn);
  // Folds frames queued by dispatcher sinks into the output buffer.
  void DrainEventsLocked(const std::shared_ptr<Connection>& conn);
  void HandleHttpLocked(const std::shared_ptr<Connection>& conn);
  void SweepTimeoutsLocked(std::chrono::steady_clock::time_point now);
  // Cancels (counting disconnect_cancels when `abrupt`), releases,
  // closes and unmaps the connection. Any thread holding mu_.
  void TeardownLocked(const std::shared_ptr<Connection>& conn, bool abrupt);
  // Appends `reply` to the connection's output buffer, enforcing the
  // output bound. Any thread holding mu_.
  void QueueOutputLocked(const std::shared_ptr<Connection>& conn,
                         std::string_view reply);
  void ScheduleLocked(const std::shared_ptr<Connection>& conn);
  void WakePoll();

  const ServerApp app_;
  const ServerConfig config_;
  uint16_t port_ = 0;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: runnable non-empty
  std::condition_variable drain_cv_;  // Stop(): connection count changes
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  std::deque<std::shared_ptr<Connection>> runnable_;
  // Connections sniffed as HTTP; conns_.size() - http_conns_ is the
  // protocol-connection count the shed accounting uses.
  size_t http_conns_ = 0;
  bool draining_ = false;
  bool stopping_ = false;

  std::thread poll_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace xsq::net

#endif  // XSQ_NET_SERVER_H_
