#include "textindex/text_index_engine.h"

#include <algorithm>

#include "dom/builder.h"

namespace xsq::textindex {

namespace {

char FoldCase(char c) {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

bool IsWordChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9');
}

// Document-order intersection of two sorted posting lists.
std::vector<uint32_t> Intersect(const std::vector<uint32_t>& a,
                                const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

std::vector<uint32_t> Union(const std::vector<uint32_t>& a,
                            const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

}  // namespace

std::vector<std::string> TokenizeText(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (IsWordChar(c)) {
      current.push_back(FoldCase(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void TextIndexEngine::IndexNode(const dom::Node& node) {
  if (node.is_element() && node.parent() != nullptr) {  // skip doc node
    ++element_count_;
    nodes_by_index_.emplace(static_cast<uint32_t>(node.order_index()), &node);
  } else {
    const dom::Node* parent = node.parent();
    if (parent != nullptr) {
      uint32_t id = static_cast<uint32_t>(parent->order_index());
      for (std::string& token : TokenizeText(node.text())) {
        std::vector<uint32_t>& list = postings_[std::move(token)];
        if (list.empty() || list.back() != id) {
          list.push_back(id);
          postings_bytes_ += sizeof(uint32_t);
        }
      }
    }
  }
  for (const auto& child : node.children()) {
    IndexNode(*child);
  }
}

Result<std::unique_ptr<TextIndexEngine>> TextIndexEngine::Build(
    std::string_view xml) {
  XSQ_ASSIGN_OR_RETURN(dom::Document document, dom::BuildFromString(xml));
  auto engine = std::unique_ptr<TextIndexEngine>(new TextIndexEngine());
  engine->document_ = std::move(document);
  engine->IndexNode(*engine->document_.document_node());
  if (engine->element_count_ > kMaxElements) {
    return Status::NotSupported(
        "document has " + std::to_string(engine->element_count_) +
        " elements; the text-index engine supports only " +
        std::to_string(kMaxElements) + " per document (like XQEngine 0.56)");
  }
  return engine;
}

const std::vector<uint32_t>* TextIndexEngine::Postings(
    std::string_view word) const {
  std::string folded;
  folded.reserve(word.size());
  for (char c : word) folded.push_back(FoldCase(c));
  auto it = postings_.find(folded);
  return it == postings_.end() ? nullptr : &it->second;
}

std::vector<const dom::Node*> TextIndexEngine::SearchWord(
    std::string_view word) const {
  std::vector<const dom::Node*> out;
  const std::vector<uint32_t>* list = Postings(word);
  if (list == nullptr) return out;
  out.reserve(list->size());
  for (uint32_t id : *list) {
    auto it = nodes_by_index_.find(id);
    if (it != nodes_by_index_.end()) out.push_back(it->second);
  }
  return out;
}

std::vector<const dom::Node*> TextIndexEngine::SearchAll(
    const std::vector<std::string>& words) const {
  std::vector<const dom::Node*> out;
  if (words.empty()) return out;
  const std::vector<uint32_t>* first = Postings(words.front());
  if (first == nullptr) return out;
  std::vector<uint32_t> ids = *first;
  for (size_t i = 1; i < words.size() && !ids.empty(); ++i) {
    const std::vector<uint32_t>* next = Postings(words[i]);
    if (next == nullptr) return out;
    ids = Intersect(ids, *next);
  }
  for (uint32_t id : ids) {
    auto it = nodes_by_index_.find(id);
    if (it != nodes_by_index_.end()) out.push_back(it->second);
  }
  return out;
}

std::vector<const dom::Node*> TextIndexEngine::SearchAny(
    const std::vector<std::string>& words) const {
  std::vector<uint32_t> ids;
  for (const std::string& word : words) {
    const std::vector<uint32_t>* list = Postings(word);
    if (list != nullptr) ids = Union(ids, *list);
  }
  std::vector<const dom::Node*> out;
  for (uint32_t id : ids) {
    auto it = nodes_by_index_.find(id);
    if (it != nodes_by_index_.end()) out.push_back(it->second);
  }
  return out;
}

Result<dom::EvalResult> TextIndexEngine::Evaluate(
    const xpath::Query& query) const {
  // Index short-circuit: a contains() constant that tokenizes to words
  // none of which occur anywhere makes the result trivially empty -
  // "if the query contains a tag that is not in the data, XQEngine
  // returns the empty result set immediately" (Section 6.4).
  for (const xpath::LocationStep& step : query.steps) {
    for (const xpath::Predicate& predicate : step.predicates) {
      if (!predicate.has_comparison ||
          predicate.op != xpath::CompareOp::kContains) {
        continue;
      }
      // The short-circuit is only sound for literals that are a single
      // run of word characters: such a substring must lie inside one
      // token, so if no indexed token contains it (case-folded, which
      // over-approximates the case-sensitive contains), the result is
      // empty.
      std::vector<std::string> words = TokenizeText(predicate.literal);
      if (words.size() != 1 || words.front().size() != predicate.literal.size()) {
        continue;
      }
      bool might_occur = false;
      for (const auto& [word, list] : postings_) {
        if (word.find(words.front()) != std::string::npos) {
          might_occur = true;
          break;
        }
      }
      if (!might_occur) {
        dom::EvalResult empty;
        if (query.output.kind == xpath::OutputKind::kCount ||
            query.output.kind == xpath::OutputKind::kSum) {
          empty.aggregate = 0.0;
        }
        return empty;
      }
    }
  }
  return dom::Evaluate(document_, query);
}

size_t TextIndexEngine::ApproxBytes() const {
  size_t bytes = document_.ApproxBytes() + postings_bytes_;
  for (const auto& [word, list] : postings_) {
    bytes += word.capacity() + sizeof(list);
  }
  bytes += nodes_by_index_.size() * (sizeof(uint32_t) + sizeof(void*));
  return bytes;
}

}  // namespace xsq::textindex
