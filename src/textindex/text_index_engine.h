// Full-text-indexed XML query engine: the stand-in for XQEngine
// [Katz 2002] in the paper's study.
//
// XQEngine preprocesses a document collection into a full-text index
// and answers keyword/XPath queries against the index. That profile is
// what the paper measures: a large preprocessing phase (Figure 18),
// index memory comparable to the document (Figure 19), instant empty
// results when a queried keyword does not occur at all (Section 6.4),
// and a hard limit of 32K elements per document (Figure 19, footnote 2)
// - all reproduced here.
//
// The engine tokenizes every text node (lowercased alphanumeric words)
// into an inverted index of postings sorted in document order, supports
// boolean keyword search, and evaluates the XPath subset by delegating
// to the DOM evaluator after index-based short-circuits.
#ifndef XSQ_TEXTINDEX_TEXT_INDEX_ENGINE_H_
#define XSQ_TEXTINDEX_TEXT_INDEX_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "dom/evaluator.h"
#include "dom/node.h"
#include "xpath/ast.h"

namespace xsq::textindex {

class TextIndexEngine {
 public:
  // XQEngine version 0.56 "currently supports only 32K elements per
  // document" - kept so the paper's footnotes reproduce.
  static constexpr size_t kMaxElements = 32768;

  // Preprocesses `xml`: parses, builds the DOM and the inverted index.
  // Fails with NotSupported when the document exceeds kMaxElements.
  static Result<std::unique_ptr<TextIndexEngine>> Build(
      std::string_view xml);

  // Elements with a direct text node containing `word` (case-folded,
  // whole-word), in document order.
  std::vector<const dom::Node*> SearchWord(std::string_view word) const;

  // Elements matching ALL words (boolean AND), document order.
  std::vector<const dom::Node*> SearchAll(
      const std::vector<std::string>& words) const;

  // Elements matching ANY word (boolean OR), document order.
  std::vector<const dom::Node*> SearchAny(
      const std::vector<std::string>& words) const;

  // Evaluates an XPath query. Single-word contains() constants are
  // checked against the index first: a query mentioning a word that
  // never occurs returns empty immediately (the Section 6.4 behavior).
  Result<dom::EvalResult> Evaluate(const xpath::Query& query) const;

  size_t element_count() const { return element_count_; }
  size_t distinct_words() const { return postings_.size(); }

  // Approximate bytes held: DOM + postings (the Figure 19 quantity).
  size_t ApproxBytes() const;

 private:
  TextIndexEngine() = default;

  void IndexNode(const dom::Node& node);
  const std::vector<uint32_t>* Postings(std::string_view word) const;

  dom::Document document_;
  // word -> sorted, deduplicated element order-indexes.
  std::unordered_map<std::string, std::vector<uint32_t>> postings_;
  std::unordered_map<uint32_t, const dom::Node*> nodes_by_index_;
  size_t element_count_ = 0;
  size_t postings_bytes_ = 0;
};

// Splits text into lowercase alphanumeric tokens (exposed for tests).
std::vector<std::string> TokenizeText(std::string_view text);

}  // namespace xsq::textindex

#endif  // XSQ_TEXTINDEX_TEXT_INDEX_ENGINE_H_
