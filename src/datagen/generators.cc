#include "datagen/generators.h"

#include <array>
#include <string_view>
#include <vector>

#include "common/strings.h"
#include "xml/sax_parser.h"

namespace xsq::datagen {

namespace {

constexpr std::array<std::string_view, 24> kWords = {
    "the",   "and",    "to",     "of",    "my",     "that",  "is",   "with",
    "what",  "noble",  "king",   "night", "sword",  "crown", "fair", "blood",
    "honor", "battle", "ghost",  "queen", "heaven", "storm", "fate", "throne"};

constexpr std::array<std::string_view, 12> kSpeakers = {
    "MACBETH", "HAMLET",   "OTHELLO", "IAGO",    "ROSALIND", "PORTIA",
    "BRUTUS",  "CLEOPATRA", "FALSTAFF", "OBERON", "VIOLA",    "PROSPERO"};

constexpr std::array<std::string_view, 16> kNames = {
    "Smith",  "Chen",  "Garcia", "Patel", "Kim",    "Olsen", "Rossi", "Sato",
    "Kumar",  "Novak", "Silva",  "Weber", "Dubois", "Ali",   "Ivanov", "Park"};

// Appends `count` space-separated words; with probability
// `special_probability` one of them is `special_word`.
void AppendWords(std::string* out, SplitMix64* rng, int count,
                 std::string_view special_word = {},
                 double special_probability = 0.0) {
  int special_at = -1;
  if (!special_word.empty() && rng->Chance(special_probability)) {
    special_at = static_cast<int>(rng->Below(static_cast<uint64_t>(count)));
  }
  for (int i = 0; i < count; ++i) {
    if (i > 0) out->push_back(' ');
    if (i == special_at) {
      out->append(special_word);
    } else {
      out->append(kWords[rng->Below(kWords.size())]);
    }
  }
}

void OpenTag(std::string* out, std::string_view tag) {
  out->push_back('<');
  out->append(tag);
  out->push_back('>');
}

void CloseTag(std::string* out, std::string_view tag) {
  out->append("</");
  out->append(tag);
  out->push_back('>');
}

void TextElement(std::string* out, std::string_view tag,
                 std::string_view text) {
  OpenTag(out, tag);
  out->append(text);
  CloseTag(out, tag);
}

}  // namespace

std::string GenerateShake(size_t target_bytes, uint64_t seed) {
  SplitMix64 rng(seed ^ 0x5a5a5a5aULL);
  std::string out;
  out.reserve(target_bytes + 4096);
  OpenTag(&out, "PLAY");
  TextElement(&out, "TITLE", "The Tragedy of Synthetic Data");
  while (out.size() < target_bytes) {
    OpenTag(&out, "ACT");
    TextElement(&out, "TITLE", "ACT");
    int scenes = 3 + static_cast<int>(rng.Below(4));
    for (int s = 0; s < scenes; ++s) {
      OpenTag(&out, "SCENE");
      TextElement(&out, "TITLE", "SCENE");
      int speeches = 10 + static_cast<int>(rng.Below(20));
      for (int p = 0; p < speeches; ++p) {
        OpenTag(&out, "SPEECH");
        TextElement(&out, "SPEAKER", kSpeakers[rng.Below(kSpeakers.size())]);
        int lines = 1 + static_cast<int>(rng.Below(5));
        for (int l = 0; l < lines; ++l) {
          OpenTag(&out, "LINE");
          AppendWords(&out, &rng, 6 + static_cast<int>(rng.Below(6)), "love",
                      0.03);
          CloseTag(&out, "LINE");
        }
        CloseTag(&out, "SPEECH");
      }
      CloseTag(&out, "SCENE");
    }
    CloseTag(&out, "ACT");
  }
  CloseTag(&out, "PLAY");
  return out;
}

std::string GenerateNasa(size_t target_bytes, uint64_t seed) {
  SplitMix64 rng(seed ^ 0xa5a5a5a5ULL);
  std::string out;
  out.reserve(target_bytes + 4096);
  OpenTag(&out, "datasets");
  size_t index = 0;
  while (out.size() < target_bytes) {
    ++index;
    out.append("<dataset subject=\"astronomy\">");
    TextElement(&out, "title", "Catalog " + std::to_string(index));
    OpenTag(&out, "altname");
    AppendWords(&out, &rng, 3);
    CloseTag(&out, "altname");
    int references = 1 + static_cast<int>(rng.Below(3));
    for (int r = 0; r < references; ++r) {
      OpenTag(&out, "reference");
      OpenTag(&out, "source");
      OpenTag(&out, "other");
      TextElement(&out, "name", kNames[rng.Below(kNames.size())]);
      TextElement(&out, "year",
                  std::to_string(1970 + rng.Below(35)));
      CloseTag(&out, "other");
      CloseTag(&out, "source");
      CloseTag(&out, "reference");
    }
    OpenTag(&out, "tableHead");
    int fields = 2 + static_cast<int>(rng.Below(6));
    for (int f = 0; f < fields; ++f) {
      OpenTag(&out, "field");
      TextElement(&out, "name", "col" + std::to_string(f));
      OpenTag(&out, "definition");
      AppendWords(&out, &rng, 8);
      CloseTag(&out, "definition");
      CloseTag(&out, "field");
    }
    CloseTag(&out, "tableHead");
    CloseTag(&out, "dataset");
  }
  CloseTag(&out, "datasets");
  return out;
}

std::string GenerateDblp(size_t target_bytes, uint64_t seed) {
  SplitMix64 rng(seed ^ 0x3c3c3c3cULL);
  std::string out;
  out.reserve(target_bytes + 4096);
  OpenTag(&out, "dblp");
  size_t key = 0;
  while (out.size() < target_bytes) {
    ++key;
    bool inproceedings = rng.Chance(0.55);
    const char* record = inproceedings ? "inproceedings" : "article";
    out.push_back('<');
    out.append(record);
    out.append(" key=\"rec/");
    out.append(std::to_string(key));
    out.append("\">");
    // ~10% of inproceedings lack authors, so [author] sometimes fails.
    int authors = inproceedings && rng.Chance(0.1)
                      ? 0
                      : 1 + static_cast<int>(rng.Below(4));
    for (int a = 0; a < authors; ++a) {
      std::string name(kNames[rng.Below(kNames.size())]);
      name += " ";
      name += kNames[rng.Below(kNames.size())];
      TextElement(&out, "author", name);
    }
    OpenTag(&out, "title");
    AppendWords(&out, &rng, 5 + static_cast<int>(rng.Below(8)));
    CloseTag(&out, "title");
    TextElement(&out, "year", std::to_string(1985 + rng.Below(20)));
    if (inproceedings) {
      OpenTag(&out, "booktitle");
      AppendWords(&out, &rng, 3);
      CloseTag(&out, "booktitle");
    } else {
      OpenTag(&out, "journal");
      AppendWords(&out, &rng, 3);
      CloseTag(&out, "journal");
    }
    TextElement(&out, "pages", std::to_string(rng.Below(400)) + "-" +
                                   std::to_string(400 + rng.Below(30)));
    CloseTag(&out, record);
  }
  CloseTag(&out, "dblp");
  return out;
}

std::string GeneratePsd(size_t target_bytes, uint64_t seed) {
  SplitMix64 rng(seed ^ 0xc3c3c3c3ULL);
  std::string out;
  out.reserve(target_bytes + 8192);
  OpenTag(&out, "ProteinDatabase");
  size_t id = 0;
  static constexpr char kAminoAcids[] = "ACDEFGHIKLMNPQRSTVWY";
  while (out.size() < target_bytes) {
    ++id;
    out.append("<ProteinEntry id=\"PSD");
    out.append(std::to_string(id));
    out.append("\">");
    OpenTag(&out, "header");
    TextElement(&out, "uid", std::to_string(id));
    std::string accession = "A";
    accession += std::to_string(10000 + id);
    TextElement(&out, "accession", accession);
    CloseTag(&out, "header");
    OpenTag(&out, "protein");
    OpenTag(&out, "name");
    AppendWords(&out, &rng, 4);
    CloseTag(&out, "name");
    CloseTag(&out, "protein");
    int references = 1 + static_cast<int>(rng.Below(3));
    for (int r = 0; r < references; ++r) {
      OpenTag(&out, "reference");
      OpenTag(&out, "refinfo");
      OpenTag(&out, "authors");
      int authors = 1 + static_cast<int>(rng.Below(5));
      for (int a = 0; a < authors; ++a) {
        TextElement(&out, "author", kNames[rng.Below(kNames.size())]);
      }
      CloseTag(&out, "authors");
      TextElement(&out, "year", std::to_string(1980 + rng.Below(25)));
      CloseTag(&out, "refinfo");
      CloseTag(&out, "reference");
    }
    OpenTag(&out, "sequence");
    int length = 120 + static_cast<int>(rng.Below(400));
    for (int c = 0; c < length; ++c) {
      out.push_back(kAminoAcids[rng.Below(sizeof(kAminoAcids) - 1)]);
    }
    CloseTag(&out, "sequence");
    CloseTag(&out, "ProteinEntry");
  }
  CloseTag(&out, "ProteinDatabase");
  return out;
}

namespace {

// Recursive helper for GenerateRecursivePubs.
void EmitPub(std::string* out, SplitMix64* rng, const RecursiveOptions& opts,
             size_t target_bytes, int depth) {
  OpenTag(out, "pub");
  if (rng->Chance(opts.year_probability)) {
    TextElement(out, "year", std::to_string(1990 + rng->Below(20)));
  }
  int children = 1 + static_cast<int>(
                         rng->Below(static_cast<uint64_t>(opts.max_repeats)));
  for (int c = 0; c < children && out->size() < target_bytes; ++c) {
    // Deeper nesting becomes progressively less likely.
    bool nest = depth < opts.nested_levels && rng->Chance(0.25);
    if (nest) {
      EmitPub(out, rng, opts, target_bytes, depth + 1);
      continue;
    }
    if (rng->Chance(opts.book_id_probability)) {
      out->append("<book id=\"");
      out->append(std::to_string(rng->Below(100000)));
      out->append("\">");
    } else {
      OpenTag(out, "book");
    }
    OpenTag(out, "title");
    AppendWords(out, rng, 4 + static_cast<int>(rng->Below(5)));
    CloseTag(out, "title");
    TextElement(out, "price",
                std::to_string(5 + rng->Below(95)) + "." +
                    std::to_string(rng->Below(100)));
    CloseTag(out, "book");
  }
  CloseTag(out, "pub");
}

}  // namespace

std::string GenerateRecursivePubs(size_t target_bytes, uint64_t seed,
                                  const RecursiveOptions& options) {
  SplitMix64 rng(seed ^ 0x77777777ULL);
  std::string out;
  out.reserve(target_bytes + 4096);
  OpenTag(&out, "pubs");
  while (out.size() < target_bytes) {
    EmitPub(&out, &rng, options, target_bytes, 1);
  }
  CloseTag(&out, "pubs");
  return out;
}

namespace {

void EmitGenericElement(std::string* out, SplitMix64* rng,
                        const GenericOptions& options, size_t target_bytes,
                        int depth) {
  const std::string& tag = options.tags[rng->Below(options.tags.size())];
  out->push_back('<');
  out->append(tag);
  if (rng->Chance(options.attribute_probability)) {
    out->append(" id=\"");
    out->append(std::to_string(rng->Below(10000)));
    out->push_back('"');
  }
  out->push_back('>');
  if (rng->Chance(options.text_probability)) {
    AppendWords(out, rng, 1 + static_cast<int>(rng->Below(6)));
  }
  if (depth < options.nested_levels) {
    int children = static_cast<int>(
        rng->Below(static_cast<uint64_t>(options.max_repeats) + 1));
    for (int i = 0; i < children && out->size() < target_bytes; ++i) {
      EmitGenericElement(out, rng, options, target_bytes, depth + 1);
    }
  }
  out->append("</");
  out->append(tag);
  out->push_back('>');
}

}  // namespace

std::string GenerateGeneric(size_t target_bytes, uint64_t seed,
                            const GenericOptions& options) {
  SplitMix64 rng(seed ^ 0x2468aceULL);
  std::string out;
  out.reserve(target_bytes + 4096);
  out.append("<gen>");
  while (out.size() < target_bytes) {
    EmitGenericElement(&out, &rng, options, target_bytes, 2);
  }
  out.append("</gen>");
  return out;
}

std::string GenerateOrderingDataset(size_t target_bytes, int foo_repeats) {
  std::string out;
  out.reserve(target_bytes + 4096);
  OpenTag(&out, "data");
  size_t id = 0;
  while (out.size() < target_bytes) {
    ++id;
    out.append("<a id=\"");
    out.append(std::to_string(id));
    out.append("\">");
    TextElement(&out, "prior", "1");
    for (int f = 0; f < foo_repeats; ++f) {
      TextElement(&out, "foo", "1");
    }
    TextElement(&out, "posterior", "1");
    CloseTag(&out, "a");
  }
  CloseTag(&out, "data");
  return out;
}

std::string GenerateColorDataset(size_t target_bytes, uint64_t seed) {
  SplitMix64 rng(seed ^ 0x11111111ULL);
  std::string out;
  out.reserve(target_bytes + 1024);
  OpenTag(&out, "a");
  while (out.size() < target_bytes) {
    double roll = rng.NextDouble();
    const char* tag = roll < 0.1 ? "Red" : (roll < 0.4 ? "Green" : "Blue");
    std::string c(1, static_cast<char>('a' + rng.Below(26)));
    TextElement(&out, tag, c);
  }
  CloseTag(&out, "a");
  return out;
}

namespace {

class StatsHandler : public xml::SaxHandler {
 public:
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& /*attributes*/,
               int depth) override {
    ++stats.element_count;
    depth_sum_ += static_cast<size_t>(depth);
    tag_length_sum_ += tag.size();
    if (depth > stats.max_depth) stats.max_depth = depth;
  }
  void OnEnd(std::string_view /*tag*/, int /*depth*/) override {}
  void OnText(std::string_view /*tag*/, std::string_view text,
              int /*depth*/) override {
    stats.text_bytes += text.size();
  }

  void Finalize() {
    if (stats.element_count > 0) {
      stats.avg_depth = static_cast<double>(depth_sum_) /
                        static_cast<double>(stats.element_count);
      stats.avg_tag_length = static_cast<double>(tag_length_sum_) /
                             static_cast<double>(stats.element_count);
    }
  }

  DatasetStats stats;

 private:
  size_t depth_sum_ = 0;
  size_t tag_length_sum_ = 0;
};

}  // namespace

Result<DatasetStats> ComputeStats(std::string_view xml_text) {
  StatsHandler handler;
  xml::SaxParser parser(&handler);
  XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
  handler.Finalize();
  handler.stats.bytes = xml_text.size();
  return handler.stats;
}

}  // namespace xsq::datagen
