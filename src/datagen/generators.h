// Deterministic synthetic XML corpora.
//
// The paper evaluates on four real datasets (Figure 15: SHAKE, NASA,
// DBLP, PSD), on IBM XML Generator output (recursive structure,
// Figure 20), and on two ToXgene templates (Figures 21 and 22). None of
// those corpora can be redistributed here, so each generator below
// synthesizes a structurally equivalent corpus: same element vocabulary
// and nesting shape, comparable tag lengths, text fraction, and depth
// profile, scaled to any requested size. All generators are seeded and
// deterministic, so benchmark runs are reproducible.
#ifndef XSQ_DATAGEN_GENERATORS_H_
#define XSQ_DATAGEN_GENERATORS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace xsq::datagen {

// Shakespeare play (SHAKE): PLAY/ACT/SCENE/SPEECH/{SPEAKER,LINE+}.
// About 3% of LINE elements contain the word "love" (query Q1).
std::string GenerateShake(size_t target_bytes, uint64_t seed);

// NASA ADC repository: datasets/dataset/.../reference/source/other/name.
std::string GenerateNasa(size_t target_bytes, uint64_t seed);

// DBLP records: dblp/{article,inproceedings}/{author*,title,year,...}.
// A small fraction of inproceedings have no author, so the Figure 19
// query /dblp/inproceedings[author]/title/text() exercises buffering.
std::string GenerateDblp(size_t target_bytes, uint64_t seed);

// Protein Sequence Database: ProteinDatabase/ProteinEntry/... with long
// sequence text (PSD has the largest text fraction of the four).
std::string GeneratePsd(size_t target_bytes, uint64_t seed);

// IBM XML Generator stand-in (Figure 20): recursive pub/book structure,
// pubs nested inside pubs up to `nested_levels` deep with up to
// `max_repeats` children per element. Exercises closure queries such as
// //pub[year]//book[@id]/title/text() on recursive data.
struct RecursiveOptions {
  int nested_levels = 15;
  int max_repeats = 20;
  double book_id_probability = 0.8;  // books carrying an id attribute
  double year_probability = 0.9;     // pubs carrying a year child
};
std::string GenerateRecursivePubs(size_t target_bytes, uint64_t seed,
                                  const RecursiveOptions& options = {});

// General IBM XML Generator stand-in: random trees driven by the same
// parameters the original exposes (number of levels, maximum repeats,
// tag pool, attribute/text probabilities). GenerateRecursivePubs above
// is the shaped instance used by Figure 20; this one generates
// arbitrary vocabularies for stress and property tests.
struct GenericOptions {
  int nested_levels = 8;        // maximum tree depth
  int max_repeats = 6;          // maximum children per element
  std::vector<std::string> tags = {"n0", "n1", "n2", "n3", "n4"};
  double attribute_probability = 0.3;
  double text_probability = 0.4;
};
std::string GenerateGeneric(size_t target_bytes, uint64_t seed,
                            const GenericOptions& options = {});

// ToXgene template of Figure 21 (data-ordering sensitivity): repeated
//   <a id="k"><prior>1</prior><foo>1</foo>*N<posterior>1</posterior></a>
// under a single <data> root. All of /*/a[prior=0], /*/a[posterior=0]
// and /*/a[@id=0] return empty results, but the position of the
// deciding element differs.
std::string GenerateOrderingDataset(size_t target_bytes, int foo_repeats);

// ToXgene template of Figure 22 (result-size sensitivity): a root <a>
// with 10% <Red>, 30% <Green>, 60% <Blue> children, one character each.
std::string GenerateColorDataset(size_t target_bytes, uint64_t seed);

// Dataset statistics in the shape of the paper's Figure 15.
struct DatasetStats {
  size_t bytes = 0;
  size_t text_bytes = 0;
  size_t element_count = 0;
  double avg_depth = 0.0;
  int max_depth = 0;
  double avg_tag_length = 0.0;
};
Result<DatasetStats> ComputeStats(std::string_view xml_text);

}  // namespace xsq::datagen

#endif  // XSQ_DATAGEN_GENERATORS_H_
