#include "xsm/xsm_engine.h"

#include "common/strings.h"
#include "xpath/value_compare.h"

namespace xsq::xsm {

namespace {

bool TagMatches(const xpath::LocationStep& step, std::string_view tag) {
  return step.IsWildcard() || step.node_test == tag;
}

bool ChildTagMatches(const xpath::Predicate& predicate, std::string_view tag) {
  return predicate.child_tag == "*" || predicate.child_tag == tag;
}

bool AttributePredicateHolds(const xpath::Predicate& predicate,
                             const std::vector<xml::OwnedAttribute>& attributes) {
  for (const xml::OwnedAttribute& attr : attributes) {
    if (attr.name == predicate.attribute) {
      return !predicate.has_comparison ||
             xpath::CompareValue(attr.value, predicate);
    }
  }
  return false;
}

void AppendBeginTag(std::string* out, const Token& token) {
  out->push_back('<');
  out->append(token.tag);
  for (const xml::OwnedAttribute& attr : token.attributes) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(XmlEscape(attr.value));
    out->push_back('"');
  }
  out->push_back('>');
}

}  // namespace

size_t Token::ApproxBytes() const {
  size_t bytes = sizeof(Token) + tag.size() + text.size();
  for (const xml::OwnedAttribute& attr : attributes) {
    bytes += attr.name.size() + attr.value.size();
  }
  return bytes;
}

// Receives the output token stream of a stage.
class TokenSinkBase {
 public:
  virtual ~TokenSinkBase() = default;
  virtual void Process(const Token& token) = 0;
};

// The terminal machine: applies the output expression to the matched
// element subtrees the last stage forwards.
class XsmEngine::OutputCollector : public TokenSinkBase {
 public:
  OutputCollector(const xpath::OutputExpr& output, core::ResultSink* sink)
      : output_(output), sink_(sink), aggregator_(output.kind) {}

  void Process(const Token& token) override {
    switch (token.type) {
      case Token::Type::kBegin:
        ++depth_;
        if (depth_ == 1) {
          StartElement(token);
        } else if (output_.kind == xpath::OutputKind::kElement) {
          AppendBeginTag(&serialized_, token);
        }
        break;
      case Token::Type::kText:
        if (output_.kind == xpath::OutputKind::kElement) {
          serialized_ += XmlEscape(token.text);
        } else if (depth_ == 1) {
          if (output_.kind == xpath::OutputKind::kText) {
            sink_->OnItem(token.text);
          } else if (xpath::IsAggregation(output_.kind)) {
            element_text_ += token.text;
          }
        }
        break;
      case Token::Type::kEnd:
        if (output_.kind == xpath::OutputKind::kElement) {
          serialized_ += "</";
          serialized_ += token.tag;
          serialized_ += ">";
        }
        if (depth_ == 1) FinishElement();
        --depth_;
        break;
    }
  }

  void FinishDocument() {
    if (xpath::IsAggregation(output_.kind)) {
      sink_->OnAggregateFinal(aggregator_.Final());
    }
  }

  void Reset() {
    depth_ = 0;
    serialized_.clear();
    element_text_.clear();
    aggregator_ = core::Aggregator(output_.kind);
  }

 private:
  void StartElement(const Token& token) {
    switch (output_.kind) {
      case xpath::OutputKind::kElement:
        serialized_.clear();
        AppendBeginTag(&serialized_, token);
        break;
      case xpath::OutputKind::kAttribute:
        for (const xml::OwnedAttribute& attr : token.attributes) {
          if (attr.name == output_.attribute) {
            sink_->OnItem(attr.value);
            break;
          }
        }
        break;
      case xpath::OutputKind::kText:
        break;
      default:  // aggregations accumulate the element's direct text
        element_text_.clear();
        break;
    }
  }

  void FinishElement() {
    if (output_.kind == xpath::OutputKind::kElement) {
      sink_->OnItem(serialized_);
      serialized_.clear();
    } else if (xpath::IsAggregation(output_.kind)) {
      if (aggregator_.Update(element_text_)) {
        std::optional<double> current = aggregator_.Current();
        if (current.has_value()) sink_->OnAggregateUpdate(*current);
      }
      element_text_.clear();
    }
  }

  const xpath::OutputExpr& output_;
  core::ResultSink* sink_;
  core::Aggregator aggregator_;
  int depth_ = 0;
  std::string serialized_;
  std::string element_text_;
};

// One transducer of the chain: selects elements matching its location
// step among the depth-1 elements of its input stream, evaluates the
// step's predicates, and forwards accepted content downstream.
class XsmEngine::Stage : public TokenSinkBase {
 public:
  Stage(const xpath::LocationStep& step, bool forward_self,
        XsmEngine* engine, TokenSinkBase* next)
      : step_(step), forward_self_(forward_self), engine_(engine),
        next_(next) {}

  void Process(const Token& token) override {
    switch (token.type) {
      case Token::Type::kBegin:
        ++depth_;
        if (depth_ == 1) {
          BeginCandidate(token);
        } else if (in_candidate_) {
          if (depth_ == 2 && pending_mask_ != 0) {
            CheckChildBeginPredicates(token);
          }
          Emit(token);
        }
        break;
      case Token::Type::kText:
        if (in_candidate_) {
          if (pending_mask_ != 0) {
            if (depth_ == 1) CheckTextPredicates(token);
            if (depth_ == 2) CheckChildTextPredicates(token);
          }
          Emit(token);
        }
        break;
      case Token::Type::kEnd:
        if (in_candidate_) {
          if (depth_ > 1 || forward_self_) Emit(token);
          if (depth_ == 1) {
            if (pending_mask_ != 0) DropBuffer();  // predicate failed
            in_candidate_ = false;
          }
        }
        --depth_;
        break;
    }
  }

  void Reset() {
    depth_ = 0;
    in_candidate_ = false;
    pending_mask_ = 0;
    DropBuffer();
  }

 private:
  void BeginCandidate(const Token& token) {
    in_candidate_ = false;
    if (!TagMatches(step_, token.tag)) return;
    uint32_t pending = 0;
    for (size_t j = 0; j < step_.predicates.size(); ++j) {
      const xpath::Predicate& p = step_.predicates[j];
      if (p.kind == xpath::PredicateKind::kAttribute) {
        if (!AttributePredicateHolds(p, token.attributes)) return;  // dead
      } else {
        pending |= 1u << j;
      }
    }
    in_candidate_ = true;
    pending_mask_ = pending;
    if (forward_self_) Emit(token);
  }

  void CheckChildBeginPredicates(const Token& token) {
    const auto& predicates = step_.predicates;
    for (size_t j = 0; j < predicates.size(); ++j) {
      if ((pending_mask_ >> j & 1u) == 0) continue;
      const xpath::Predicate& p = predicates[j];
      if (p.kind == xpath::PredicateKind::kChild) {
        if (ChildTagMatches(p, token.tag)) Satisfy(static_cast<uint32_t>(j));
      } else if (p.kind == xpath::PredicateKind::kChildAttribute) {
        if (ChildTagMatches(p, token.tag) &&
            AttributePredicateHolds(p, token.attributes)) {
          Satisfy(static_cast<uint32_t>(j));
        }
      }
    }
  }

  void CheckTextPredicates(const Token& token) {
    const auto& predicates = step_.predicates;
    for (size_t j = 0; j < predicates.size(); ++j) {
      if ((pending_mask_ >> j & 1u) == 0) continue;
      const xpath::Predicate& p = predicates[j];
      if (p.kind != xpath::PredicateKind::kText) continue;
      if (!p.has_comparison || xpath::CompareValue(token.text, p)) {
        Satisfy(static_cast<uint32_t>(j));
      }
    }
  }

  void CheckChildTextPredicates(const Token& token) {
    const auto& predicates = step_.predicates;
    for (size_t j = 0; j < predicates.size(); ++j) {
      if ((pending_mask_ >> j & 1u) == 0) continue;
      const xpath::Predicate& p = predicates[j];
      if (p.kind != xpath::PredicateKind::kChildText) continue;
      // token.tag carries the enclosing (child) element's tag.
      if (ChildTagMatches(p, token.tag) &&
          xpath::CompareValue(token.text, p)) {
        Satisfy(static_cast<uint32_t>(j));
      }
    }
  }

  void Satisfy(uint32_t bit) {
    pending_mask_ &= ~(1u << bit);
    if (pending_mask_ != 0) return;
    // Flush the stage queue downstream, then stream the rest live.
    for (const Token& buffered : buffer_) {
      Forward(buffered);
    }
    ReleaseBufferBytes();
    buffer_.clear();
  }

  void Emit(const Token& token) {
    if (pending_mask_ != 0) {
      buffer_.push_back(token);
      size_t bytes = token.ApproxBytes();
      buffered_bytes_ += bytes;
      engine_->memory_.Add(bytes);
    } else {
      Forward(token);
    }
  }

  void Forward(const Token& token) {
    ++engine_->tokens_forwarded_;
    next_->Process(token);
  }

  void DropBuffer() {
    ReleaseBufferBytes();
    buffer_.clear();
  }

  void ReleaseBufferBytes() {
    engine_->memory_.Release(buffered_bytes_);
    buffered_bytes_ = 0;
  }

  const xpath::LocationStep& step_;
  const bool forward_self_;  // last stage forwards the element itself
  XsmEngine* engine_;
  TokenSinkBase* next_;
  int depth_ = 0;
  bool in_candidate_ = false;
  uint32_t pending_mask_ = 0;
  std::vector<Token> buffer_;
  size_t buffered_bytes_ = 0;
};

XsmEngine::XsmEngine(xpath::Query query, core::ResultSink* sink)
    : query_(std::move(query)), sink_(sink) {
  collector_ = std::make_unique<OutputCollector>(query_.output, sink_);
  TokenSinkBase* next = collector_.get();
  for (size_t i = query_.steps.size(); i > 0; --i) {
    bool is_last = i == query_.steps.size();
    stages_.insert(stages_.begin(),
                   std::make_unique<Stage>(query_.steps[i - 1], is_last,
                                           this, next));
    next = stages_.front().get();
  }
}

XsmEngine::~XsmEngine() = default;

Result<std::unique_ptr<XsmEngine>> XsmEngine::Create(
    const xpath::Query& query, core::ResultSink* sink) {
  if (query.steps.empty()) {
    return Status::InvalidArgument("query has no location steps");
  }
  if (query.HasClosure()) {
    return Status::NotSupported(
        "the XSM-style chained transducer does not handle closures");
  }
  if (query.IsUnion()) {
    return Status::NotSupported(
        "the XSM-style chained transducer does not handle union queries");
  }
  if (query.steps.size() > 32) {
    return Status::NotSupported("too many location steps");
  }
  return std::unique_ptr<XsmEngine>(new XsmEngine(query, sink));
}

void XsmEngine::Reset() {
  for (auto& stage : stages_) stage->Reset();
  collector_->Reset();
  status_ = Status::OK();
}

void XsmEngine::OnDocumentBegin() { Reset(); }

void XsmEngine::OnBegin(std::string_view tag,
                        const std::vector<xml::Attribute>& attributes,
                        int /*depth*/) {
  Token token;
  token.type = Token::Type::kBegin;
  token.tag.assign(tag);
  token.attributes = xml::CopyAttributes(attributes);
  stages_.front()->Process(token);
}

void XsmEngine::OnText(std::string_view enclosing_tag, std::string_view text,
                       int /*depth*/) {
  Token token;
  token.type = Token::Type::kText;
  token.tag.assign(enclosing_tag);
  token.text.assign(text);
  stages_.front()->Process(token);
}

void XsmEngine::OnEnd(std::string_view tag, int /*depth*/) {
  Token token;
  token.type = Token::Type::kEnd;
  token.tag.assign(tag);
  stages_.front()->Process(token);
}

void XsmEngine::OnDocumentEnd() { collector_->FinishDocument(); }

}  // namespace xsq::xsm
