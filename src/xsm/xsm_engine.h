// XSM-style chained-transducer engine: a stand-in for the XML Stream
// Machine of Ludascher, Mukhopadhyay & Papakonstantinou (VLDB 2002).
//
// The paper could not include XSM in its empirical study ("a release
// version of XSM was unavailable at the time of writing"); this module
// makes that comparison possible. It follows the XSM architecture the
// paper describes: the query is decomposed into one transducer per
// location step, arranged in a chain where the output token stream of
// one machine is the input of the next. Each stage selects the elements
// matching its step among the children of its input stream's top-level
// elements, evaluates its predicate, and forwards accepted subtrees.
//
// The architecture differences the paper criticizes are reproduced
// deliberately:
//   * tokens are materialized and copied between stages (XSM's
//     inter-machine queues), unlike XSQ's single shared event pass;
//   * a stage with an unresolved predicate buffers the entire candidate
//     subtree at its queue, so late-deciding predicates cost one full
//     copy per chained stage rather than XSQ's single shared item;
//   * closures are not supported (the paper: "XSM does not handle
//     queries with aggregations and closures"); we do keep aggregations
//     in the output collector for comparability with XSQ-NC.
#ifndef XSQ_XSM_XSM_ENGINE_H_
#define XSQ_XSM_XSM_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/aggregator.h"
#include "core/result_sink.h"
#include "xml/events.h"
#include "xpath/ast.h"

namespace xsq::xsm {

// A materialized SAX token flowing through the transducer chain.
struct Token {
  enum class Type : uint8_t { kBegin, kEnd, kText };

  Type type;
  std::string tag;                               // begin/end
  std::vector<xml::OwnedAttribute> attributes;   // begin (owned: tokens
                                                 // queue across stages)
  std::string text;                              // text

  size_t ApproxBytes() const;
};

class XsmEngine : public xml::SaxHandler {
 public:
  // Fails with NotSupported for queries with closure axes.
  static Result<std::unique_ptr<XsmEngine>> Create(const xpath::Query& query,
                                                   core::ResultSink* sink);

  ~XsmEngine() override;  // out of line: Stage/OutputCollector are opaque

  void OnDocumentBegin() override;
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

  void Reset();

  const Status& status() const { return status_; }
  // Total bytes buffered across every stage's queue, peak.
  const MemoryTracker& memory() const { return memory_; }
  // Tokens copied between stages (the chaining overhead).
  uint64_t tokens_forwarded() const { return tokens_forwarded_; }

 private:
  class Stage;
  class OutputCollector;

  XsmEngine(xpath::Query query, core::ResultSink* sink);

  xpath::Query query_;
  core::ResultSink* sink_;
  std::vector<std::unique_ptr<Stage>> stages_;
  std::unique_ptr<OutputCollector> collector_;
  MemoryTracker memory_;
  uint64_t tokens_forwarded_ = 0;
  Status status_;
};

}  // namespace xsq::xsm

#endif  // XSQ_XSM_XSM_ENGINE_H_
