// Plain-text table and bar-chart rendering for the benchmark binaries,
// which print each of the paper's figures as rows/series on stdout.
#ifndef XSQ_BENCH_UTIL_TABLE_H_
#define XSQ_BENCH_UTIL_TABLE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace xsq::bench {

// Fixed-width column table with a header row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Renders to a string (header, separator, rows).
  std::string ToString() const;
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// "#####----- 0.52"-style horizontal bar for relative-throughput plots.
std::string Bar(double fraction, int width = 30);

std::string FormatDouble(double value, int precision = 2);
std::string FormatBytes(size_t bytes);

}  // namespace xsq::bench

#endif  // XSQ_BENCH_UTIL_TABLE_H_
