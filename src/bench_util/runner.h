// Experiment harness: runs any of the systems under study on a
// (query, document) pair and measures the phases the paper measures
// (Figure 18: query compile, preprocessing, querying), plus accounted
// memory (Figures 19/20) and throughput relative to the bare SAX
// PureParser (Section 6.2).
#ifndef XSQ_BENCH_UTIL_RUNNER_H_
#define XSQ_BENCH_UTIL_RUNNER_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace xsq::bench {

// The systems of the paper's study (Figure 14) mapped to the
// architecture-equivalent engines of this repository.
enum class System {
  kPureParser,  // SAX parse, no query work: the throughput upper bound
  kXsqF,        // XSQ-F: closures + predicates + aggregation
  kXsqNc,       // XSQ-NC: deterministic, no closures
  kLazyDfa,     // XMLTK stand-in: lazy DFA, no predicates
  kDom,         // Saxon/Galax stand-in: DOM materialization + evaluation
  kNaive,       // Joost/STX-like strawman: buffers candidate subtrees
  kTextIndex,   // XQEngine stand-in: full-text index, big preprocessing
};

constexpr System kAllSystems[] = {
    System::kPureParser, System::kXsqF, System::kXsqNc, System::kLazyDfa,
    System::kDom,        System::kNaive, System::kTextIndex};

const char* SystemName(System system);

struct RunMeasurement {
  bool supported = true;
  std::string unsupported_reason;

  double compile_seconds = 0.0;     // query parse + automaton build
  double preprocess_seconds = 0.0;  // DOM build (non-streaming systems)
  double query_seconds = 0.0;       // streaming / evaluation phase
  double total_seconds() const {
    return compile_seconds + preprocess_seconds + query_seconds;
  }

  size_t input_bytes = 0;
  size_t item_count = 0;
  size_t peak_memory_bytes = 0;  // accounted buffered/materialized bytes

  double throughput_mb_per_s() const {
    double t = preprocess_seconds + query_seconds;
    if (t <= 0.0) return 0.0;
    return static_cast<double>(input_bytes) / (1024.0 * 1024.0) / t;
  }
};

// Runs `system` on the document with the given query. Systems that
// cannot handle the query return supported=false with the reason, like
// the paper's "the system cannot handle the query" footnotes.
Result<RunMeasurement> RunSystem(System system, std::string_view query_text,
                                 std::string_view xml_text);

// Throughput normalized to the PureParser on the same input
// (the paper's "relative throughput").
double RelativeThroughput(const RunMeasurement& run,
                          const RunMeasurement& pure_parser);

}  // namespace xsq::bench

#endif  // XSQ_BENCH_UTIL_RUNNER_H_
