#include "bench_util/table.h"

#include <algorithm>
#include <cstdio>

namespace xsq::bench {

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < cells.size() ? cells[c] : "";
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  out.append(total > 2 ? total - 2 : 0, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string Bar(double fraction, int width) {
  fraction = std::clamp(fraction, 0.0, 1.0);
  int filled = static_cast<int>(fraction * width + 0.5);
  std::string out(static_cast<size_t>(filled), '#');
  out.append(static_cast<size_t>(width - filled), '-');
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatBytes(size_t bytes) {
  char buf[64];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fMB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuB", bytes);
  }
  return buf;
}

}  // namespace xsq::bench
