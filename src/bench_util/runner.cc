#include "bench_util/runner.h"

#include <chrono>

#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "dom/builder.h"
#include "dom/evaluator.h"
#include "lazydfa/lazy_dfa_engine.h"
#include "naive/naive_engine.h"
#include "textindex/text_index_engine.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq::bench {

namespace {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

class NullHandler : public xml::SaxHandler {
 public:
  void OnBegin(std::string_view, const std::vector<xml::Attribute>&,
               int) override {}
  void OnEnd(std::string_view, int) override {}
  void OnText(std::string_view, std::string_view, int) override {}
};

RunMeasurement Unsupported(std::string reason, size_t input_bytes) {
  RunMeasurement m;
  m.supported = false;
  m.unsupported_reason = std::move(reason);
  m.input_bytes = input_bytes;
  return m;
}

}  // namespace

const char* SystemName(System system) {
  switch (system) {
    case System::kPureParser:
      return "PureParser";
    case System::kXsqF:
      return "XSQ-F";
    case System::kXsqNc:
      return "XSQ-NC";
    case System::kLazyDfa:
      return "LazyDFA(XMLTK)";
    case System::kDom:
      return "DOM(Saxon)";
    case System::kNaive:
      return "Subtree(Joost)";
    case System::kTextIndex:
      return "TextIndex(XQEngine)";
  }
  return "?";
}

Result<RunMeasurement> RunSystem(System system, std::string_view query_text,
                                 std::string_view xml_text) {
  RunMeasurement m;
  m.input_bytes = xml_text.size();

  if (system == System::kPureParser) {
    NullHandler handler;
    xml::SaxParser parser(&handler);
    WallTimer timer;
    XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
    m.query_seconds = timer.Seconds();
    return m;
  }

  WallTimer compile_timer;
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  XSQ_RETURN_IF_ERROR(query.status());

  switch (system) {
    case System::kXsqF: {
      core::CountingSink sink;
      auto engine = core::XsqEngine::Create(*query, &sink);
      XSQ_RETURN_IF_ERROR(engine.status());
      m.compile_seconds = compile_timer.Seconds();
      xml::SaxParser parser(engine->get());
      WallTimer timer;
      XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
      m.query_seconds = timer.Seconds();
      XSQ_RETURN_IF_ERROR((*engine)->status());
      m.item_count = sink.item_count + sink.update_count;
      m.peak_memory_bytes = (*engine)->memory().peak_bytes();
      return m;
    }
    case System::kXsqNc: {
      core::CountingSink sink;
      auto engine = core::XsqNcEngine::Create(*query, &sink);
      if (!engine.ok()) {
        return Unsupported(engine.status().message(), xml_text.size());
      }
      m.compile_seconds = compile_timer.Seconds();
      xml::SaxParser parser(engine->get());
      WallTimer timer;
      XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
      m.query_seconds = timer.Seconds();
      XSQ_RETURN_IF_ERROR((*engine)->status());
      m.item_count = sink.item_count + sink.update_count;
      m.peak_memory_bytes = (*engine)->memory().peak_bytes();
      return m;
    }
    case System::kLazyDfa: {
      core::CountingSink sink;
      auto engine = lazydfa::LazyDfaEngine::Create(*query, &sink);
      if (!engine.ok()) {
        return Unsupported(engine.status().message(), xml_text.size());
      }
      m.compile_seconds = compile_timer.Seconds();
      xml::SaxParser parser(engine->get());
      WallTimer timer;
      XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
      m.query_seconds = timer.Seconds();
      XSQ_RETURN_IF_ERROR((*engine)->status());
      m.item_count = sink.item_count;
      m.peak_memory_bytes = (*engine)->memory().peak_bytes();
      return m;
    }
    case System::kDom: {
      m.compile_seconds = compile_timer.Seconds();
      WallTimer preprocess_timer;
      Result<dom::Document> document = dom::BuildFromString(xml_text);
      XSQ_RETURN_IF_ERROR(document.status());
      m.preprocess_seconds = preprocess_timer.Seconds();
      WallTimer timer;
      Result<dom::EvalResult> result = dom::Evaluate(*document, *query);
      XSQ_RETURN_IF_ERROR(result.status());
      m.query_seconds = timer.Seconds();
      m.item_count = result->items.size();
      m.peak_memory_bytes = document->ApproxBytes();
      return m;
    }
    case System::kNaive: {
      core::CountingSink sink;
      auto engine = naive::NaiveEngine::Create(*query, &sink);
      if (!engine.ok()) {
        return Unsupported(engine.status().message(), xml_text.size());
      }
      m.compile_seconds = compile_timer.Seconds();
      xml::SaxParser parser(engine->get());
      WallTimer timer;
      XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
      m.query_seconds = timer.Seconds();
      XSQ_RETURN_IF_ERROR((*engine)->status());
      m.item_count = sink.item_count + sink.update_count;
      m.peak_memory_bytes = (*engine)->memory().peak_bytes();
      return m;
    }
    case System::kTextIndex: {
      m.compile_seconds = compile_timer.Seconds();
      WallTimer preprocess_timer;
      auto engine = textindex::TextIndexEngine::Build(xml_text);
      if (!engine.ok()) {
        return Unsupported(engine.status().message(), xml_text.size());
      }
      m.preprocess_seconds = preprocess_timer.Seconds();
      WallTimer timer;
      Result<dom::EvalResult> result = (*engine)->Evaluate(*query);
      XSQ_RETURN_IF_ERROR(result.status());
      m.query_seconds = timer.Seconds();
      m.item_count = result->items.size();
      m.peak_memory_bytes = (*engine)->ApproxBytes();
      return m;
    }
    case System::kPureParser:
      break;  // handled above
  }
  return Status::Internal("unknown system");
}

double RelativeThroughput(const RunMeasurement& run,
                          const RunMeasurement& pure_parser) {
  double pure = pure_parser.throughput_mb_per_s();
  double own = run.throughput_mb_per_s();
  if (pure <= 0.0) return 0.0;
  return own / pure;
}

}  // namespace xsq::bench
