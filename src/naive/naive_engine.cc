#include "naive/naive_engine.h"

#include <algorithm>

#include "dom/evaluator.h"

namespace xsq::naive {

NaiveEngine::NaiveEngine(xpath::Query query, core::ResultSink* sink)
    : query_(std::move(query)), sink_(sink) {
  Reset();
}

Result<std::unique_ptr<NaiveEngine>> NaiveEngine::Create(
    const xpath::Query& query, core::ResultSink* sink) {
  if (query.steps.empty()) {
    return Status::InvalidArgument("query has no location steps");
  }
  if (query.IsUnion()) {
    return Status::NotSupported(
        "the subtree-buffering engine does not support union queries");
  }
  return std::unique_ptr<NaiveEngine>(new NaiveEngine(query, sink));
}

void NaiveEngine::Reset() {
  buffering_.reset();
  build_stack_.clear();
  candidate_depth_ = 0;
  agg_count_ = 0;
  agg_numeric_count_ = 0;
  agg_sum_ = 0.0;
  agg_min_ = 0.0;
  agg_max_ = 0.0;
  status_ = Status::OK();
}

void NaiveEngine::OnDocumentBegin() { Reset(); }

bool NaiveEngine::IsCandidate(std::string_view tag, int depth) const {
  const xpath::LocationStep& first = query_.steps.front();
  if (!first.IsWildcard() && first.node_test != tag) return false;
  // A child-axis first step only matches the root element; a closure
  // first step matches the tag at any depth (nested occurrences are
  // covered by the enclosing candidate's evaluation).
  return first.axis == xpath::Axis::kClosure || depth == 1;
}

void NaiveEngine::OnBegin(std::string_view tag,
                          const std::vector<xml::Attribute>& attributes,
                          int depth) {
  if (!status_.ok()) return;
  if (buffering_ == nullptr) {
    if (!IsCandidate(tag, depth)) return;
    buffering_ = std::make_unique<dom::Document>();
    build_stack_.clear();
    build_stack_.push_back(buffering_->mutable_document_node());
    candidate_depth_ = depth;
  }
  dom::Node* node = build_stack_.back()->AddChild(dom::Node::MakeElement(
      std::string(tag), xml::CopyAttributes(attributes)));
  build_stack_.push_back(node);
  size_t bytes = sizeof(dom::Node) + tag.size();
  for (const xml::Attribute& attr : attributes) {
    bytes += attr.name.size() + attr.value.size();
  }
  memory_.Add(bytes);
}

void NaiveEngine::OnText(std::string_view /*enclosing_tag*/,
                         std::string_view text, int /*depth*/) {
  if (!status_.ok() || buffering_ == nullptr) return;
  build_stack_.back()->AddChild(dom::Node::MakeText(std::string(text)));
  memory_.Add(sizeof(dom::Node) + text.size());
}

void NaiveEngine::OnEnd(std::string_view /*tag*/, int depth) {
  if (!status_.ok() || buffering_ == nullptr) return;
  build_stack_.pop_back();
  if (depth == candidate_depth_) {
    EvaluateCandidate();
    memory_.Release(memory_.current_bytes());
    buffering_.reset();
  }
}

void NaiveEngine::EvaluateCandidate() {
  buffering_->AssignOrderIndexes();
  Result<dom::EvalResult> result = dom::Evaluate(*buffering_, query_);
  if (!result.ok()) {
    status_ = result.status();
    return;
  }
  for (const std::string& item : result->items) {
    sink_->OnItem(item);
  }
  if (!xpath::IsAggregation(query_.output.kind)) return;
  agg_count_ += result->match_count;
  if (result->numeric_count > 0) {
    if (agg_numeric_count_ == 0) {
      agg_min_ = result->min;
      agg_max_ = result->max;
    } else {
      agg_min_ = std::min(agg_min_, result->min);
      agg_max_ = std::max(agg_max_, result->max);
    }
    agg_numeric_count_ += result->numeric_count;
    agg_sum_ += result->sum;
  }
  // Incremental updates, one per candidate subtree.
  switch (query_.output.kind) {
    case xpath::OutputKind::kCount:
      sink_->OnAggregateUpdate(static_cast<double>(agg_count_));
      break;
    case xpath::OutputKind::kSum:
      sink_->OnAggregateUpdate(agg_sum_);
      break;
    case xpath::OutputKind::kAvg:
      if (agg_numeric_count_ > 0) {
        sink_->OnAggregateUpdate(agg_sum_ /
                                 static_cast<double>(agg_numeric_count_));
      }
      break;
    case xpath::OutputKind::kMin:
      if (agg_numeric_count_ > 0) sink_->OnAggregateUpdate(agg_min_);
      break;
    case xpath::OutputKind::kMax:
      if (agg_numeric_count_ > 0) sink_->OnAggregateUpdate(agg_max_);
      break;
    default:
      break;
  }
}

void NaiveEngine::OnDocumentEnd() {
  if (!status_.ok()) return;
  if (!xpath::IsAggregation(query_.output.kind)) return;
  switch (query_.output.kind) {
    case xpath::OutputKind::kCount:
      sink_->OnAggregateFinal(static_cast<double>(agg_count_));
      break;
    case xpath::OutputKind::kSum:
      sink_->OnAggregateFinal(agg_sum_);
      break;
    case xpath::OutputKind::kAvg:
      sink_->OnAggregateFinal(
          agg_numeric_count_ > 0
              ? std::optional<double>(agg_sum_ /
                                      static_cast<double>(agg_numeric_count_))
              : std::nullopt);
      break;
    case xpath::OutputKind::kMin:
      sink_->OnAggregateFinal(agg_numeric_count_ > 0
                                  ? std::optional<double>(agg_min_)
                                  : std::nullopt);
      break;
    case xpath::OutputKind::kMax:
      sink_->OnAggregateFinal(agg_numeric_count_ > 0
                                  ? std::optional<double>(agg_max_)
                                  : std::nullopt);
      break;
    default:
      break;
  }
}

}  // namespace xsq::naive
