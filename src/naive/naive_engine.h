// The "direct solution" strawman of paper Section 3.1: a streaming
// processor that side-steps predicate bookkeeping by buffering whole
// candidate subtrees.
//
// Whenever an element that can match the first location step begins, the
// engine materializes its entire subtree as a mini DOM; when the subtree
// closes it runs the reference DOM evaluator on it and emits the
// results. This is simple and correct, but it buffers the whole
// candidate element even when only a tiny fraction of it is relevant -
// the contrast the paper draws with XSQ, which "buffers only data that
// must be buffered by any streaming XPath processor". The memory figures
// (19/20) show the gap.
//
// Its event-order behavior is also Joost/STX-like: results of a
// candidate are only available at the candidate's end tag.
#ifndef XSQ_NAIVE_NAIVE_ENGINE_H_
#define XSQ_NAIVE_NAIVE_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/memory_tracker.h"
#include "common/status.h"
#include "core/aggregator.h"
#include "core/result_sink.h"
#include "dom/node.h"
#include "xml/events.h"
#include "xpath/ast.h"

namespace xsq::naive {

class NaiveEngine : public xml::SaxHandler {
 public:
  static Result<std::unique_ptr<NaiveEngine>> Create(
      const xpath::Query& query, core::ResultSink* sink);

  void OnDocumentBegin() override;
  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

  void Reset();

  const MemoryTracker& memory() const { return memory_; }
  const Status& status() const { return status_; }

 private:
  NaiveEngine(xpath::Query query, core::ResultSink* sink);

  bool IsCandidate(std::string_view tag, int depth) const;
  void EvaluateCandidate();

  xpath::Query query_;
  core::ResultSink* sink_;

  // Candidate subtree being buffered (null when outside a candidate).
  std::unique_ptr<dom::Document> buffering_;
  std::vector<dom::Node*> build_stack_;
  int candidate_depth_ = 0;

  // Running aggregate across candidates.
  size_t agg_count_ = 0;
  size_t agg_numeric_count_ = 0;
  double agg_sum_ = 0.0;
  double agg_min_ = 0.0;
  double agg_max_ = 0.0;

  MemoryTracker memory_;
  Status status_;
};

}  // namespace xsq::naive

#endif  // XSQ_NAIVE_NAIVE_ENGINE_H_
