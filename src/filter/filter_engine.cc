#include "filter/filter_engine.h"

#include <algorithm>

#include "xml/sax_parser.h"

namespace xsq::filter {

Result<int> FilterEngine::AddQuery(std::string_view query_text) {
  XSQ_ASSIGN_OR_RETURN(xpath::Query query, xpath::ParseQuery(query_text));
  if (query.HasPredicates()) {
    return Status::NotSupported(
        "filtering supports only structural (predicate-free) paths");
  }
  int id = static_cast<int>(query_count_);
  XSQ_RETURN_IF_ERROR(AddBranch(query.steps, id));
  for (const xpath::Query& branch : query.union_branches) {
    XSQ_RETURN_IF_ERROR(AddBranch(branch.steps, id));
  }
  ++query_count_;
  return id;
}

Status FilterEngine::AddBranch(const std::vector<xpath::LocationStep>& steps,
                               int id) {
  int node = 0;
  for (const xpath::LocationStep& step : steps) {
    Node& current = nodes_[static_cast<size_t>(node)];
    int* slot;
    if (step.axis == xpath::Axis::kChild) {
      if (step.IsWildcard()) {
        slot = &current.child_wildcard;
      } else {
        slot = &nodes_[static_cast<size_t>(node)]
                    .child_edges.try_emplace(step.node_test, -1)
                    .first->second;
      }
    } else {
      if (step.IsWildcard()) {
        slot = &current.desc_wildcard;
      } else {
        slot = &nodes_[static_cast<size_t>(node)]
                    .desc_edges.try_emplace(step.node_test, -1)
                    .first->second;
      }
    }
    if (*slot < 0) {
      int fresh = AddNode();  // may reallocate nodes_: re-resolve the slot
      const std::string& tag = step.node_test;
      Node& owner = nodes_[static_cast<size_t>(node)];
      if (step.axis == xpath::Axis::kChild) {
        if (step.IsWildcard()) {
          owner.child_wildcard = fresh;
        } else {
          owner.child_edges[tag] = fresh;
        }
      } else {
        if (step.IsWildcard()) {
          owner.desc_wildcard = fresh;
        } else {
          owner.desc_edges[tag] = fresh;
        }
      }
      node = fresh;
    } else {
      node = *slot;
    }
  }
  nodes_[static_cast<size_t>(node)].accepts.push_back(id);
  return Status::OK();
}

// Runs the shared NFA over one document.
class FilterEngine::Run : public xml::SaxHandler {
 public:
  Run(const std::vector<Node>& nodes, size_t query_count)
      : nodes_(nodes), matched_(query_count, false) {
    frontiers_.push_back({0});
  }

  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& /*attributes*/,
               int /*depth*/) override {
    std::vector<int> next;
    const std::string tag_key(tag);
    for (int node_id : frontiers_.back()) {
      const Node& node = nodes_[static_cast<size_t>(node_id)];
      auto child_it = node.child_edges.find(tag_key);
      if (child_it != node.child_edges.end()) Activate(child_it->second, &next);
      if (node.child_wildcard >= 0) Activate(node.child_wildcard, &next);
      auto desc_it = node.desc_edges.find(tag_key);
      if (desc_it != node.desc_edges.end()) Activate(desc_it->second, &next);
      if (node.desc_wildcard >= 0) Activate(node.desc_wildcard, &next);
      // A node with pending '//' continuations stays active while the
      // stream descends below it.
      if (node.HasDescendantEdges()) Activate(node_id, &next);
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    frontiers_.push_back(std::move(next));
  }

  void OnEnd(std::string_view /*tag*/, int /*depth*/) override {
    frontiers_.pop_back();
  }

  void OnText(std::string_view /*tag*/, std::string_view /*text*/,
              int /*depth*/) override {}

  std::vector<int> MatchedIds() const {
    std::vector<int> ids;
    for (size_t i = 0; i < matched_.size(); ++i) {
      if (matched_[i]) ids.push_back(static_cast<int>(i));
    }
    return ids;
  }

 private:
  void Activate(int node_id, std::vector<int>* next) {
    next->push_back(node_id);
    for (int query_id : nodes_[static_cast<size_t>(node_id)].accepts) {
      matched_[static_cast<size_t>(query_id)] = true;
    }
  }

  const std::vector<Node>& nodes_;
  std::vector<bool> matched_;
  std::vector<std::vector<int>> frontiers_;
};

Result<std::vector<int>> FilterEngine::FilterDocument(
    std::string_view xml_text) {
  Run run(nodes_, query_count_);
  xml::SaxParser parser(&run);
  XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
  return run.MatchedIds();
}

}  // namespace xsq::filter
