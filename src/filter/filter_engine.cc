#include "filter/filter_engine.h"

#include <algorithm>

#include "xml/sax_parser.h"

namespace xsq::filter {

uint32_t FilterEngine::InternTag(const std::string& tag) {
  auto [it, inserted] =
      tag_ids_.try_emplace(tag, static_cast<uint32_t>(tag_ids_.size()));
  return it->second;
}

Result<int> FilterEngine::AddQuery(std::string_view query_text) {
  XSQ_ASSIGN_OR_RETURN(xpath::Query query, xpath::ParseQuery(query_text));
  return AddQuery(query);
}

Result<int> FilterEngine::AddQuery(const xpath::Query& query) {
  if (query.HasPredicates()) {
    return Status::NotSupported(
        "filtering supports only structural (predicate-free) paths");
  }
  int id = static_cast<int>(query_count_);
  XSQ_RETURN_IF_ERROR(AddBranch(query.steps, id));
  for (const xpath::Query& branch : query.union_branches) {
    XSQ_RETURN_IF_ERROR(AddBranch(branch.steps, id));
  }
  ++query_count_;
  return id;
}

Status FilterEngine::AddBranch(const std::vector<xpath::LocationStep>& steps,
                               int id) {
  int node = 0;
  for (const xpath::LocationStep& step : steps) {
    const uint32_t tag_id =
        step.IsWildcard() ? kNoTag : InternTag(step.node_test);
    Node& current = nodes_[static_cast<size_t>(node)];
    int* slot;
    if (step.axis == xpath::Axis::kChild) {
      if (step.IsWildcard()) {
        slot = &current.child_wildcard;
      } else {
        slot = &nodes_[static_cast<size_t>(node)]
                    .child_edges.try_emplace(tag_id, -1)
                    .first->second;
      }
    } else {
      if (step.IsWildcard()) {
        slot = &current.desc_wildcard;
      } else {
        slot = &nodes_[static_cast<size_t>(node)]
                    .desc_edges.try_emplace(tag_id, -1)
                    .first->second;
      }
    }
    if (*slot < 0) {
      int fresh = AddNode();  // may reallocate nodes_: re-resolve the slot
      Node& owner = nodes_[static_cast<size_t>(node)];
      if (step.axis == xpath::Axis::kChild) {
        if (step.IsWildcard()) {
          owner.child_wildcard = fresh;
        } else {
          owner.child_edges[tag_id] = fresh;
        }
      } else {
        if (step.IsWildcard()) {
          owner.desc_wildcard = fresh;
        } else {
          owner.desc_edges[tag_id] = fresh;
        }
      }
      node = fresh;
    } else {
      node = *slot;
    }
  }
  nodes_[static_cast<size_t>(node)].accepts.push_back(id);
  return Status::OK();
}

void FilterEngine::Matcher::Reset() {
  matched_.assign(engine_->query_count_, 0);
  frontiers_.clear();
  frontiers_.push_back({0});
  current_accepts_.clear();
}

void FilterEngine::Matcher::Activate(int node_id, std::vector<int>* next) {
  next->push_back(node_id);
  const Node& node = engine_->nodes_[static_cast<size_t>(node_id)];
  for (int query_id : node.accepts) {
    current_accepts_.push_back(query_id);
    matched_[static_cast<size_t>(query_id)] = 1;
  }
}

void FilterEngine::Matcher::OnBegin(
    std::string_view tag, const std::vector<xml::Attribute>& /*attributes*/,
    int /*depth*/) {
  current_accepts_.clear();
  // One string hash per event: resolve the tag to its dense id, then
  // probe integer maps per frontier node.
  tag_scratch_.assign(tag.data(), tag.size());
  const uint32_t tag_id = engine_->FindTag(tag_scratch_);
  std::vector<int> next;
  const std::vector<Node>& nodes = engine_->nodes_;
  for (int node_id : frontiers_.back()) {
    const Node& node = nodes[static_cast<size_t>(node_id)];
    if (tag_id != kNoTag) {
      auto child_it = node.child_edges.find(tag_id);
      if (child_it != node.child_edges.end()) {
        Activate(child_it->second, &next);
      }
      auto desc_it = node.desc_edges.find(tag_id);
      if (desc_it != node.desc_edges.end()) Activate(desc_it->second, &next);
    }
    if (node.child_wildcard >= 0) Activate(node.child_wildcard, &next);
    if (node.desc_wildcard >= 0) Activate(node.desc_wildcard, &next);
    // A node with pending '//' continuations stays active while the
    // stream descends below it. This is survival, not a transition:
    // the opened element does not match the node's prefix, so its
    // accepts are NOT reported into current_accepts_ (matched_ was
    // already set when the node was first entered via an edge).
    if (node.HasDescendantEdges()) next.push_back(node_id);
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
  frontiers_.push_back(std::move(next));
  std::sort(current_accepts_.begin(), current_accepts_.end());
  current_accepts_.erase(
      std::unique(current_accepts_.begin(), current_accepts_.end()),
      current_accepts_.end());
}

void FilterEngine::Matcher::OnEnd(std::string_view /*tag*/, int /*depth*/) {
  current_accepts_.clear();
  if (frontiers_.size() > 1) frontiers_.pop_back();
}

std::vector<int> FilterEngine::Matcher::MatchedIds() const {
  std::vector<int> ids;
  for (size_t i = 0; i < matched_.size(); ++i) {
    if (matched_[i]) ids.push_back(static_cast<int>(i));
  }
  return ids;
}

Result<std::vector<int>> FilterEngine::FilterDocument(
    std::string_view xml_text) {
  Matcher matcher(this);
  xml::SaxParser parser(&matcher);
  XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
  return matcher.MatchedIds();
}

}  // namespace xsq::filter
