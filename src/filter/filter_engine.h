// Shared-NFA multi-query document filter: the stand-in for the
// XFilter/YFilter family [Altinel & Franklin 2000; Diao et al. 2002]
// discussed in the paper's related work and Figure 14.
//
// Filtering systems answer a different question than XSQ: given many
// predicate-free path expressions and a stream of documents, which
// documents match which expressions? They never buffer element data -
// only document identifiers are returned - which is why they cannot
// evaluate general XPath queries (Section 1).
//
// Like YFilter, all registered queries are combined into a single NFA
// whose common prefixes are shared: each node is a location-path prefix,
// edges are (axis, tag) pairs, and a node remains active across
// arbitrary descents when some registered query continues from it with a
// closure axis.
#ifndef XSQ_FILTER_FILTER_ENGINE_H_
#define XSQ_FILTER_FILTER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "xml/events.h"
#include "xpath/ast.h"

namespace xsq::filter {

class FilterEngine {
 public:
  FilterEngine() = default;

  // Registers a predicate-free path query; returns its id (0-based).
  // Output expressions are ignored: filters report document ids only.
  Result<int> AddQuery(std::string_view query_text);

  // Streams one document and reports the ids of all queries it matches,
  // in ascending order.
  Result<std::vector<int>> FilterDocument(std::string_view xml_text);

  size_t query_count() const { return query_count_; }
  // Number of shared NFA nodes - the YFilter sharing effect.
  size_t node_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::unordered_map<std::string, int> child_edges;  // '/' axis
    std::unordered_map<std::string, int> desc_edges;   // '//' axis
    int child_wildcard = -1;  // '/*'
    int desc_wildcard = -1;   // '//*'
    std::vector<int> accepts;  // query ids accepted at this prefix

    bool HasDescendantEdges() const {
      return !desc_edges.empty() || desc_wildcard >= 0;
    }
  };

  class Run;  // per-document SAX handler

  Status AddBranch(const std::vector<xpath::LocationStep>& steps, int id);

  int AddNode() {
    nodes_.emplace_back();
    return static_cast<int>(nodes_.size()) - 1;
  }

  std::vector<Node> nodes_ = std::vector<Node>(1);  // node 0 = root prefix
  size_t query_count_ = 0;
};

}  // namespace xsq::filter

#endif  // XSQ_FILTER_FILTER_ENGINE_H_
