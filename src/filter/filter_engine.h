// Shared-NFA multi-query document filter: the stand-in for the
// XFilter/YFilter family [Altinel & Franklin 2000; Diao et al. 2002]
// discussed in the paper's related work and Figure 14.
//
// Filtering systems answer a different question than XSQ: given many
// predicate-free path expressions and a stream of documents, which
// documents match which expressions? They never buffer element data -
// only document identifiers are returned - which is why they cannot
// evaluate general XPath queries (Section 1).
//
// Like YFilter, all registered queries are combined into a single NFA
// whose common prefixes are shared: each node is a location-path prefix,
// edges are (axis, tag) pairs, and a node remains active across
// arbitrary descents when some registered query continues from it with a
// closure axis. Tag names are interned to dense uint32 ids at AddQuery
// time, so the per-event hot loop hashes the incoming tag once and then
// probes integer-keyed edge maps, never re-hashing std::string tags per
// frontier node. Registering an identical path twice reuses the existing
// node chain end to end: node_count() grows by zero (the query still
// gets its own id — filters report per-query matches).
//
// Two ways to run a document through the NFA:
//   FilterDocument(xml_text)  - parse and match in one call (whole-string
//                               convenience; what the original API offered)
//   Matcher                   - an incremental xml::SaxHandler over the
//                               shared structure, suitable for tees: feed
//                               it events from any source (live parse,
//                               tape replay) and read per-begin-event
//                               accepts as they happen. This is what the
//                               pub/sub layer drives so each published
//                               document is parsed exactly once.
#ifndef XSQ_FILTER_FILTER_ENGINE_H_
#define XSQ_FILTER_FILTER_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "xml/events.h"
#include "xpath/ast.h"

namespace xsq::filter {

class FilterEngine {
 public:
  FilterEngine() = default;

  // Registers a predicate-free path query; returns its id (0-based).
  // Output expressions are ignored: filters report document ids only.
  Result<int> AddQuery(std::string_view query_text);

  // Registers an already-parsed query (same contract: predicates are
  // rejected). The pub/sub layer uses this to register the structural
  // skeleton — predicates stripped — of predicate-bearing subscriptions,
  // which is a sound over-approximation: predicates only restrict, so a
  // document the skeleton does not match cannot be matched by the full
  // query either.
  Result<int> AddQuery(const xpath::Query& query);

  // Streams one document and reports the ids of all queries it matches,
  // in ascending order.
  Result<std::vector<int>> FilterDocument(std::string_view xml_text);

  size_t query_count() const { return query_count_; }
  // Number of shared NFA nodes - the YFilter sharing effect.
  size_t node_count() const { return nodes_.size(); }

  // Incremental runner over the shared NFA. Not thread-safe; the engine
  // must not have AddQuery called while a Matcher is mid-document, and
  // must outlive the Matcher. Reset() (or OnDocumentBegin) rebinds to
  // the engine's current query set, so one Matcher can be reused across
  // documents even as subscriptions are added between them.
  class Matcher : public xml::SaxHandler {
   public:
    explicit Matcher(const FilterEngine* engine) : engine_(engine) {
      Reset();
    }

    // Rewinds to the document start state and resizes the matched set to
    // the engine's current query count.
    void Reset();

    void OnDocumentBegin() override { Reset(); }
    void OnBegin(std::string_view tag,
                 const std::vector<xml::Attribute>& attributes,
                 int depth) override;
    void OnEnd(std::string_view tag, int depth) override;
    void OnText(std::string_view /*tag*/, std::string_view /*text*/,
                int /*depth*/) override {}

    // Query ids accepted at the most recent begin event — i.e. queries
    // for which the just-opened element is a match — sorted ascending
    // and deduplicated (a query reachable through several NFA paths
    // reports once). Valid until the next event.
    const std::vector<int>& current_accepts() const {
      return current_accepts_;
    }

    // True if query `id` matched anywhere in the document so far.
    bool Matched(int id) const {
      return id >= 0 && static_cast<size_t>(id) < matched_.size() &&
             matched_[static_cast<size_t>(id)] != 0;
    }

    // All query ids matched so far, ascending.
    std::vector<int> MatchedIds() const;

   private:
    void Activate(int node_id, std::vector<int>* next);

    const FilterEngine* engine_;
    std::vector<uint8_t> matched_;
    std::vector<std::vector<int>> frontiers_;
    std::vector<int> current_accepts_;
    // Per-event scratch: the incoming tag is interned-looked-up once
    // into this buffer (one string hash per event, not one per frontier
    // node).
    std::string tag_scratch_;
  };

 private:
  friend class Matcher;

  // Sentinel for "tag never registered": no tag edge can match.
  static constexpr uint32_t kNoTag = 0xffffffffu;

  struct Node {
    std::unordered_map<uint32_t, int> child_edges;  // '/' axis
    std::unordered_map<uint32_t, int> desc_edges;   // '//' axis
    int child_wildcard = -1;  // '/*'
    int desc_wildcard = -1;   // '//*'
    std::vector<int> accepts;  // query ids accepted at this prefix

    bool HasDescendantEdges() const {
      return !desc_edges.empty() || desc_wildcard >= 0;
    }
  };

  Status AddBranch(const std::vector<xpath::LocationStep>& steps, int id);

  // Interns `tag`, assigning the next dense id on first sight.
  uint32_t InternTag(const std::string& tag);
  // Lookup without interning; kNoTag when never registered.
  uint32_t FindTag(const std::string& tag) const {
    auto it = tag_ids_.find(tag);
    return it == tag_ids_.end() ? kNoTag : it->second;
  }

  int AddNode() {
    nodes_.emplace_back();
    return static_cast<int>(nodes_.size()) - 1;
  }

  std::unordered_map<std::string, uint32_t> tag_ids_;
  std::vector<Node> nodes_ = std::vector<Node>(1);  // node 0 = root prefix
  size_t query_count_ = 0;
};

}  // namespace xsq::filter

#endif  // XSQ_FILTER_FILTER_ENGINE_H_
