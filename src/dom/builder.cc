#include "dom/builder.h"

#include "xml/sax_parser.h"

namespace xsq::dom {

std::string Node::DirectText() const {
  std::string out;
  for (const auto& child : children_) {
    if (child->is_text()) out += child->text();
  }
  return out;
}

size_t Node::ApproxBytes() const {
  size_t bytes = sizeof(Node) + tag_.capacity() + text_.capacity() +
                 attributes_.capacity() * sizeof(xml::OwnedAttribute) +
                 children_.capacity() * sizeof(std::unique_ptr<Node>);
  for (const xml::OwnedAttribute& attr : attributes_) {
    bytes += attr.name.capacity() + attr.value.capacity();
  }
  for (const auto& child : children_) {
    bytes += child->ApproxBytes();
  }
  return bytes;
}

namespace {
size_t AssignOrder(Node* node, size_t next) {
  node->set_order_index(next++);
  for (const auto& child : node->children()) {
    next = AssignOrder(const_cast<Node*>(child.get()), next);
  }
  return next;
}
}  // namespace

void Document::AssignOrderIndexes() {
  AssignOrder(document_node_.get(), 0);
}

void DomBuilder::OnBegin(std::string_view tag,
                         const std::vector<xml::Attribute>& attributes,
                         int /*depth*/) {
  Node* node = stack_.back()->AddChild(
      Node::MakeElement(std::string(tag), xml::CopyAttributes(attributes)));
  stack_.push_back(node);
}

void DomBuilder::OnEnd(std::string_view /*tag*/, int /*depth*/) {
  stack_.pop_back();
}

void DomBuilder::OnText(std::string_view /*enclosing_tag*/,
                        std::string_view text, int /*depth*/) {
  stack_.back()->AddChild(Node::MakeText(std::string(text)));
}

void DomBuilder::OnDocumentEnd() { document_.AssignOrderIndexes(); }

Result<Document> BuildFromString(std::string_view xml_text) {
  DomBuilder builder;
  xml::SaxParser parser(&builder);
  XSQ_RETURN_IF_ERROR(parser.Parse(xml_text));
  return builder.TakeDocument();
}

Result<Document> BuildFromFile(const std::string& path) {
  DomBuilder builder;
  XSQ_RETURN_IF_ERROR(xml::ParseFile(path, &builder));
  return builder.TakeDocument();
}

}  // namespace xsq::dom
