// In-memory XML tree. This is the stand-in for DOM-materializing systems
// (Saxon, Galax) in the paper's study, and doubles as the correctness
// oracle for the streaming engines: dom::Evaluate defines the reference
// result of every query.
#ifndef XSQ_DOM_NODE_H_
#define XSQ_DOM_NODE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xml/events.h"

namespace xsq::dom {

// Either an element or a text node. Children of an element interleave
// element and text nodes in document order.
class Node {
 public:
  enum class Type { kElement, kText };

  static std::unique_ptr<Node> MakeElement(
      std::string tag, std::vector<xml::OwnedAttribute> attrs) {
    auto node = std::unique_ptr<Node>(new Node(Type::kElement));
    node->tag_ = std::move(tag);
    node->attributes_ = std::move(attrs);
    return node;
  }

  static std::unique_ptr<Node> MakeText(std::string text) {
    auto node = std::unique_ptr<Node>(new Node(Type::kText));
    node->text_ = std::move(text);
    return node;
  }

  Type type() const { return type_; }
  bool is_element() const { return type_ == Type::kElement; }
  bool is_text() const { return type_ == Type::kText; }

  const std::string& tag() const { return tag_; }
  const std::string& text() const { return text_; }
  const std::vector<xml::OwnedAttribute>& attributes() const {
    return attributes_;
  }
  const Node* parent() const { return parent_; }
  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }

  // Preorder position in the document; used for document-order output.
  size_t order_index() const { return order_index_; }
  void set_order_index(size_t index) { order_index_ = index; }

  // Returns the attribute value, or nullptr if absent.
  const std::string* FindAttribute(std::string_view name) const {
    for (const xml::OwnedAttribute& attr : attributes_) {
      if (attr.name == name) return &attr.value;
    }
    return nullptr;
  }

  Node* AddChild(std::unique_ptr<Node> child) {
    child->parent_ = this;
    children_.push_back(std::move(child));
    return children_.back().get();
  }

  // Concatenation of the *direct* text children. This is the value used
  // by sum()/avg()/min()/max(); see DESIGN.md section 3.
  std::string DirectText() const;

  // Approximate heap footprint of this subtree, for the memory study.
  size_t ApproxBytes() const;

 private:
  explicit Node(Type type) : type_(type) {}

  Type type_;
  std::string tag_;
  std::string text_;
  std::vector<xml::OwnedAttribute> attributes_;
  Node* parent_ = nullptr;
  std::vector<std::unique_ptr<Node>> children_;
  size_t order_index_ = 0;
};

// A parsed document: a virtual document node whose single element child is
// the root element (mirroring the XPath root).
class Document {
 public:
  Document() : document_node_(Node::MakeElement("", {})) {}

  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  const Node* document_node() const { return document_node_.get(); }
  Node* mutable_document_node() { return document_node_.get(); }

  // The root element, or nullptr for an empty document.
  const Node* root() const {
    for (const auto& child : document_node_->children()) {
      if (child->is_element()) return child.get();
    }
    return nullptr;
  }

  size_t ApproxBytes() const { return document_node_->ApproxBytes(); }

  // Assigns preorder order indexes; called by the builder.
  void AssignOrderIndexes();

 private:
  std::unique_ptr<Node> document_node_;
};

}  // namespace xsq::dom

#endif  // XSQ_DOM_NODE_H_
