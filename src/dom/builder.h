// Builds a dom::Document from the SAX event stream, like a DOM-based
// XPath processor must do before it can evaluate anything (paper
// Section 6.2: Saxon "loads all the data into the memory and builds the
// DOM tree before it evaluates the query").
#ifndef XSQ_DOM_BUILDER_H_
#define XSQ_DOM_BUILDER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dom/node.h"
#include "xml/events.h"

namespace xsq::dom {

class DomBuilder : public xml::SaxHandler {
 public:
  DomBuilder() { stack_.push_back(document_.mutable_document_node()); }

  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override;
  void OnEnd(std::string_view tag, int depth) override;
  void OnText(std::string_view enclosing_tag, std::string_view text,
              int depth) override;
  void OnDocumentEnd() override;

  // Moves the finished document out of the builder.
  Document TakeDocument() { return std::move(document_); }

 private:
  Document document_;
  std::vector<Node*> stack_;
};

// Parses a complete document string into a Document.
Result<Document> BuildFromString(std::string_view xml_text);

// Parses a file into a Document.
Result<Document> BuildFromFile(const std::string& path);

}  // namespace xsq::dom

#endif  // XSQ_DOM_BUILDER_H_
