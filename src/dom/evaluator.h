// Reference (non-streaming) XPath evaluator over a DOM tree.
//
// Defines the result semantics every streaming engine in this repo must
// reproduce; the differential property tests compare the engines against
// this evaluator on randomized documents and queries.
#ifndef XSQ_DOM_EVALUATOR_H_
#define XSQ_DOM_EVALUATOR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dom/node.h"
#include "xpath/ast.h"

namespace xsq::dom {

struct EvalResult {
  // Result items in document order: text contents for /text(), attribute
  // values for /@attr, serialized elements when the query has no output
  // expression. Empty for aggregation queries.
  std::vector<std::string> items;

  // Aggregate value for count()/sum()/avg()/min()/max() queries.
  // count() and sum() are always present (0 for no matches); avg/min/max
  // are absent when no matched element has numeric content.
  std::optional<double> aggregate;

  // Number of distinct elements matching the location path.
  size_t match_count = 0;

  // Aggregate components (filled for aggregation queries) so partial
  // results from disjoint fragments can be combined (used by the
  // subtree-buffering baseline).
  size_t numeric_count = 0;
  double sum = 0.0;
  double min = 0.0;  // valid when numeric_count > 0
  double max = 0.0;  // valid when numeric_count > 0
};

// Evaluates `query` against `document`.
Result<EvalResult> Evaluate(const Document& document,
                            const xpath::Query& query);

// Returns true iff `element` satisfies every predicate of `step`
// (existential child semantics; see xpath/value_compare.h). Exposed for
// reuse by the subtree-buffering baseline engine.
bool ElementMatchesPredicates(const Node& element,
                              const xpath::LocationStep& step);

// Serializes an element subtree exactly the way the streaming engines'
// catchall output does (unindented, escaped, <tag></tag> for empty).
std::string SerializeSubtree(const Node& element);

}  // namespace xsq::dom

#endif  // XSQ_DOM_EVALUATOR_H_
