#include "dom/evaluator.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "common/strings.h"
#include "xml/writer.h"
#include "xpath/value_compare.h"

namespace xsq::dom {

namespace {

bool TagMatches(const xpath::LocationStep& step, const Node& element) {
  return step.IsWildcard() || element.tag() == step.node_test;
}

bool ChildTagMatches(const xpath::Predicate& predicate, const Node& child) {
  return predicate.child_tag == "*" || child.tag() == predicate.child_tag;
}

bool PredicateHolds(const Node& element, const xpath::Predicate& predicate) {
  using xpath::PredicateKind;
  switch (predicate.kind) {
    case PredicateKind::kAttribute: {
      const std::string* value = element.FindAttribute(predicate.attribute);
      if (value == nullptr) return false;
      return !predicate.has_comparison ||
             xpath::CompareValue(*value, predicate);
    }
    case PredicateKind::kText: {
      for (const auto& child : element.children()) {
        if (!child->is_text()) continue;
        if (!predicate.has_comparison ||
            xpath::CompareValue(child->text(), predicate)) {
          return true;
        }
      }
      return false;
    }
    case PredicateKind::kChild: {
      for (const auto& child : element.children()) {
        if (child->is_element() && ChildTagMatches(predicate, *child)) {
          return true;
        }
      }
      return false;
    }
    case PredicateKind::kChildAttribute: {
      for (const auto& child : element.children()) {
        if (!child->is_element() || !ChildTagMatches(predicate, *child)) {
          continue;
        }
        const std::string* value = child->FindAttribute(predicate.attribute);
        if (value == nullptr) continue;
        if (!predicate.has_comparison ||
            xpath::CompareValue(*value, predicate)) {
          return true;
        }
      }
      return false;
    }
    case PredicateKind::kChildText: {
      for (const auto& child : element.children()) {
        if (!child->is_element() || !ChildTagMatches(predicate, *child)) {
          continue;
        }
        for (const auto& grandchild : child->children()) {
          if (grandchild->is_text() &&
              xpath::CompareValue(grandchild->text(), predicate)) {
            return true;
          }
        }
      }
      return false;
    }
  }
  return false;
}

void CollectDescendants(const Node& node, const xpath::LocationStep& step,
                        std::unordered_set<const Node*>* out) {
  for (const auto& child : node.children()) {
    if (!child->is_element()) continue;
    if (TagMatches(step, *child) && ElementMatchesPredicates(*child, step)) {
      out->insert(child.get());
    }
    CollectDescendants(*child, step, out);
  }
}

void SerializeNode(const Node& node, xml::XmlWriter* writer) {
  if (node.is_text()) {
    writer->Text(node.text());
    return;
  }
  writer->BeginElement(node.tag(), xml::AttributeViews(node.attributes()));
  for (const auto& child : node.children()) {
    SerializeNode(*child, writer);
  }
  writer->EndElement(node.tag());
}

// Walks the tree in document order collecting output items.
class OutputCollector {
 public:
  OutputCollector(const xpath::OutputExpr& output,
                  const std::unordered_set<const Node*>& matched,
                  EvalResult* result)
      : output_(output), matched_(matched), result_(result) {}

  void Walk(const Node& node) {
    if (node.is_element() && matched_.count(&node) > 0) {
      EmitMatch(node);
    }
    if (output_.kind == xpath::OutputKind::kText && node.is_text() &&
        node.parent() != nullptr && matched_.count(node.parent()) > 0) {
      result_->items.push_back(node.text());
    }
    for (const auto& child : node.children()) {
      Walk(*child);
    }
  }

  void Finalize() {
    using xpath::OutputKind;
    result_->numeric_count = numeric_count_;
    result_->sum = sum_;
    if (numeric_count_ > 0) {
      result_->min = min_;
      result_->max = max_;
    }
    switch (output_.kind) {
      case OutputKind::kCount:
        result_->aggregate = static_cast<double>(count_);
        break;
      case OutputKind::kSum:
        result_->aggregate = sum_;
        break;
      case OutputKind::kAvg:
        if (numeric_count_ > 0) {
          result_->aggregate = sum_ / static_cast<double>(numeric_count_);
        }
        break;
      case OutputKind::kMin:
        if (numeric_count_ > 0) result_->aggregate = min_;
        break;
      case OutputKind::kMax:
        if (numeric_count_ > 0) result_->aggregate = max_;
        break;
      default:
        break;
    }
  }

 private:
  void EmitMatch(const Node& element) {
    using xpath::OutputKind;
    switch (output_.kind) {
      case OutputKind::kElement:
        result_->items.push_back(SerializeSubtree(element));
        break;
      case OutputKind::kAttribute: {
        const std::string* value = element.FindAttribute(output_.attribute);
        if (value != nullptr) result_->items.push_back(*value);
        break;
      }
      case OutputKind::kText:
        break;  // handled per text node in Walk
      case OutputKind::kCount:
        ++count_;
        break;
      case OutputKind::kSum:
      case OutputKind::kAvg:
      case OutputKind::kMin:
      case OutputKind::kMax: {
        std::optional<double> value = ParseNumber(element.DirectText());
        if (value.has_value()) {
          ++numeric_count_;
          sum_ += *value;
          min_ = std::min(min_, *value);
          max_ = std::max(max_, *value);
        }
        break;
      }
    }
  }

  const xpath::OutputExpr& output_;
  const std::unordered_set<const Node*>& matched_;
  EvalResult* result_;
  size_t count_ = 0;
  size_t numeric_count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace

bool ElementMatchesPredicates(const Node& element,
                              const xpath::LocationStep& step) {
  for (const xpath::Predicate& predicate : step.predicates) {
    if (!PredicateHolds(element, predicate)) return false;
  }
  return true;
}

std::string SerializeSubtree(const Node& element) {
  xml::XmlWriter writer;
  SerializeNode(element, &writer);
  return writer.TakeString();
}

namespace {

// Elements matching one location path, starting at the document node.
std::unordered_set<const Node*> ComputeFrontier(
    const Document& document, const std::vector<xpath::LocationStep>& steps) {
  std::unordered_set<const Node*> frontier = {document.document_node()};
  for (const xpath::LocationStep& step : steps) {
    std::unordered_set<const Node*> next;
    for (const Node* node : frontier) {
      if (step.axis == xpath::Axis::kChild) {
        for (const auto& child : node->children()) {
          if (child->is_element() && TagMatches(step, *child) &&
              ElementMatchesPredicates(*child, step)) {
            next.insert(child.get());
          }
        }
      } else {
        CollectDescendants(*node, step, &next);
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return frontier;
}

}  // namespace

Result<EvalResult> Evaluate(const Document& document,
                            const xpath::Query& query) {
  if (query.steps.empty()) {
    return Status::InvalidArgument("query has no location steps");
  }

  // Union semantics: the set union of the branches' matched elements.
  std::unordered_set<const Node*> frontier =
      ComputeFrontier(document, query.steps);
  for (const xpath::Query& branch : query.union_branches) {
    if (branch.steps.empty()) {
      return Status::InvalidArgument("union branch has no location steps");
    }
    for (const Node* node : ComputeFrontier(document, branch.steps)) {
      frontier.insert(node);
    }
  }

  EvalResult result;
  result.match_count = frontier.size();
  if (xpath::IsAggregation(query.output.kind) && frontier.empty()) {
    // count() and sum() of an empty match set are defined as 0.
    if (query.output.kind == xpath::OutputKind::kCount ||
        query.output.kind == xpath::OutputKind::kSum) {
      result.aggregate = 0.0;
    }
    return result;
  }

  OutputCollector collector(query.output, frontier, &result);
  collector.Walk(*document.document_node());
  collector.Finalize();
  return result;
}

}  // namespace xsq::dom
