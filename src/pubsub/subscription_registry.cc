#include "pubsub/subscription_registry.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "core/aggregator.h"
#include "tape/recorder.h"
#include "tape/replayer.h"
#include "tape/tape.h"

namespace xsq::pubsub {

namespace {

const std::string_view* FindAttr(const std::vector<xml::Attribute>& attributes,
                                 std::string_view name) {
  for (const xml::Attribute& attr : attributes) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

// Serialized begin tag, byte-identical to the query engines' element
// output (attribute values XML-escaped, names raw).
void AppendBeginTag(std::string* out, std::string_view tag,
                    const std::vector<xml::Attribute>& attributes) {
  out->push_back('<');
  out->append(tag);
  for (const xml::Attribute& attr : attributes) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(XmlEscape(attr.value));
    out->push_back('"');
  }
  out->push_back('>');
}

}  // namespace

xpath::Query SubscriptionRegistry::Skeleton(const xpath::Query& query) {
  xpath::Query skeleton = query;
  for (xpath::LocationStep& step : skeleton.steps) step.predicates.clear();
  for (xpath::Query& branch : skeleton.union_branches) {
    for (xpath::LocationStep& step : branch.steps) step.predicates.clear();
  }
  return skeleton;
}

std::string_view SubscriptionRegistry::query_text(uint64_t id) const {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return {};
  return subs_[it->second].query_text;
}

Result<uint64_t> SubscriptionRegistry::Subscribe(std::string_view query_text) {
  XSQ_ASSIGN_OR_RETURN(xpath::Query query, xpath::ParseQuery(query_text));
  if (query.steps.empty()) {
    return Status::InvalidArgument("subscription query has no location steps");
  }
  Sub sub;
  sub.query_text = std::string(query_text);
  sub.has_predicates = query.HasPredicates();
  if (sub.has_predicates) {
    // Predicate-bearing: a persistent full-evaluation engine, fed by
    // tape replay only when the skeleton survives NFA pruning.
    XSQ_ASSIGN_OR_RETURN(sub.engine, core::StreamingQuery::Open(query_text));
  }
  // Register the structural skeleton in the shared NFA. The returned
  // filter id is this subscription's dense slot index.
  XSQ_ASSIGN_OR_RETURN(int filter_id, skeleton_.AddQuery(Skeleton(query)));
  if (static_cast<size_t>(filter_id) != subs_.size()) {
    return Status::Internal("filter id out of sync with subscription slots");
  }
  sub.id = next_id_++;
  sub.query = std::move(query);
  sub.alive = true;
  by_id_.emplace(sub.id, subs_.size());
  subs_.push_back(std::move(sub));
  ++alive_count_;
  return subs_.back().id;
}

Status SubscriptionRegistry::Unsubscribe(uint64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) {
    return Status::InvalidArgument("unknown subscription id " +
                                   std::to_string(id));
  }
  Sub& sub = subs_[it->second];
  sub.alive = false;
  sub.engine.reset();  // free engine buffers; the NFA slot goes inert
  by_id_.erase(it);
  --alive_count_;
  return Status::OK();
}

// Runs the shared matcher over the single parse and emits results for
// every predicate-free subscription as the events stream by — no
// buffering beyond open element serializations, which is exactly what
// the matched output requires.
class SubscriptionRegistry::DirectRun : public xml::SaxHandler {
 public:
  // Per-subscription direct output, indexed by filter id.
  struct Out {
    std::vector<std::string> items;
    // Aggregation subscriptions: one entry per matched element, in
    // match (begin-event) order — the order the engines feed their
    // aggregator — holding the element's concatenated direct text.
    std::vector<std::string> agg_texts;
  };

  explicit DirectRun(const SubscriptionRegistry* registry)
      : registry_(registry), matcher_(&registry->skeleton_) {}

  void OnDocumentBegin() override {
    matcher_.OnDocumentBegin();
    outs_.assign(registry_->subs_.size(), Out());
    frames_.clear();
    frames_.emplace_back();  // depth 0 sentinel
    open_sers_.clear();
  }

  void OnBegin(std::string_view tag,
               const std::vector<xml::Attribute>& attributes,
               int depth) override {
    matcher_.OnBegin(tag, attributes, depth);
    frames_.emplace_back();
    Frame& frame = frames_.back();
    std::string begin_tag;
    if (!open_sers_.empty()) {
      AppendBeginTag(&begin_tag, tag, attributes);
      for (Ser& ser : open_sers_) ser.buf.append(begin_tag);
    }
    for (int filter_id : matcher_.current_accepts()) {
      const Sub& sub = registry_->subs_[static_cast<size_t>(filter_id)];
      if (!sub.alive || sub.has_predicates) continue;
      Out& out = outs_[static_cast<size_t>(filter_id)];
      switch (sub.query.output.kind) {
        case xpath::OutputKind::kElement: {
          if (begin_tag.empty()) AppendBeginTag(&begin_tag, tag, attributes);
          // Item slot reserved now so emission order is match order
          // even when matches nest; the serialization fills it at the
          // element's end event.
          out.items.emplace_back();
          open_sers_.push_back(Ser{static_cast<size_t>(filter_id),
                                   out.items.size() - 1, depth, begin_tag});
          break;
        }
        case xpath::OutputKind::kText:
          frame.text_subs.push_back(static_cast<size_t>(filter_id));
          break;
        case xpath::OutputKind::kAttribute: {
          const std::string_view* value =
              FindAttr(attributes, sub.query.output.attribute);
          if (value != nullptr) out.items.emplace_back(*value);
          break;
        }
        default: {  // aggregation: accumulate this element's direct text
          out.agg_texts.emplace_back();
          frame.agg_runs.push_back(AggRun{static_cast<size_t>(filter_id),
                                          out.agg_texts.size() - 1});
          break;
        }
      }
    }
  }

  void OnText(std::string_view /*tag*/, std::string_view text,
              int /*depth*/) override {
    Frame& frame = frames_.back();
    for (size_t filter_id : frame.text_subs) {
      outs_[filter_id].items.emplace_back(text);
    }
    for (const AggRun& run : frame.agg_runs) {
      outs_[run.sub].agg_texts[run.index].append(text);
    }
    if (!open_sers_.empty()) {
      std::string escaped = XmlEscape(text);
      for (Ser& ser : open_sers_) ser.buf.append(escaped);
    }
  }

  void OnEnd(std::string_view tag, int depth) override {
    if (!open_sers_.empty()) {
      std::string end_tag = "</";
      end_tag.append(tag);
      end_tag.push_back('>');
      for (Ser& ser : open_sers_) ser.buf.append(end_tag);
      // Serializations opened at this element are complete. They form a
      // suffix of the open list: anything opened deeper already closed
      // at its own end event.
      while (!open_sers_.empty() && open_sers_.back().start_depth == depth) {
        Ser& ser = open_sers_.back();
        outs_[ser.sub].items[ser.item_index] = std::move(ser.buf);
        open_sers_.pop_back();
      }
    }
    frames_.pop_back();
    matcher_.OnEnd(tag, depth);
  }

  const filter::FilterEngine::Matcher& matcher() const { return matcher_; }
  std::vector<Out>& outs() { return outs_; }

 private:
  struct AggRun {
    size_t sub;    // filter id
    size_t index;  // slot in outs_[sub].agg_texts
  };
  // Per-open-element bookkeeping (index == element depth).
  struct Frame {
    std::vector<size_t> text_subs;  // kText subscriptions matched here
    std::vector<AggRun> agg_runs;   // aggregation accumulators opened here
  };
  // One in-progress kElement serialization.
  struct Ser {
    size_t sub;
    size_t item_index;
    int start_depth;
    std::string buf;
  };

  const SubscriptionRegistry* registry_;
  filter::FilterEngine::Matcher matcher_;
  std::vector<Out> outs_;
  std::vector<Frame> frames_;
  std::vector<Ser> open_sers_;
};

Result<PublishOutcome> SubscriptionRegistry::Publish(
    std::string_view document) {
  PublishOutcome outcome;
  outcome.subscriptions = alive_count_;
  bool any_predicates = false;
  for (const Sub& sub : subs_) {
    if (sub.alive && sub.has_predicates) {
      ++outcome.predicate_subs;
      any_predicates = true;
    }
  }

  // ONE parse: the shared matcher + direct emission see the live
  // events; the recorder captures them for the (single) replay to
  // whatever predicate-bearing subscriptions survive pruning.
  DirectRun run(this);
  tape::Tape tape;
  tape::TapeRecorder recorder(&tape);
  xml::TeeHandler tee;
  tee.AddTarget(&run);
  if (any_predicates) tee.AddTarget(&recorder);
  xml::SaxParser parser(&tee, parser_limits_);
  XSQ_RETURN_IF_ERROR(parser.Parse(document));

  // Survivors: predicate-bearing subscriptions whose structural
  // skeleton matched somewhere in the document.
  std::vector<size_t> survivors;
  for (size_t i = 0; i < subs_.size(); ++i) {
    if (subs_[i].alive && subs_[i].has_predicates &&
        run.matcher().Matched(static_cast<int>(i))) {
      survivors.push_back(i);
    }
  }
  outcome.filter_survivors = survivors.size();

  // ONE replay feeds every survivor's engine through a tee.
  if (!survivors.empty()) {
    xml::TeeHandler replay_tee;
    for (size_t i : survivors) {
      subs_[i].engine->Reset();
      replay_tee.AddTarget(subs_[i].engine->event_handler());
    }
    XSQ_RETURN_IF_ERROR(tape::Replay(tape, &replay_tee));
    outcome.tape_events = tape.event_count();
    outcome.hpdt_evaluations = survivors.size();
  }

  for (size_t i : survivors) {
    Sub& sub = subs_[i];
    Status finish = sub.engine->FinishEvents();
    if (!finish.ok()) {
      // Contained: this subscription delivers nothing for this
      // document; siblings and future publishes are unaffected.
      ++outcome.failed_evaluations;
      sub.engine->Reset();
      continue;
    }
    Delivery delivery;
    delivery.subscription_id = sub.id;
    if (xpath::IsAggregation(sub.query.output.kind)) {
      delivery.is_aggregate = true;
      delivery.aggregate = sub.engine->final_aggregate();
      outcome.deliveries.push_back(std::move(delivery));
    } else {
      while (std::optional<std::string> item = sub.engine->NextItem()) {
        delivery.items.push_back(std::move(*item));
      }
      if (!delivery.items.empty()) {
        outcome.deliveries.push_back(std::move(delivery));
      }
    }
    sub.engine->Reset();  // release engine buffers between documents
  }

  // Predicate-free subscriptions: results were emitted during the
  // parse. Aggregations always deliver (their empty-set value is
  // defined); others deliver when they produced items.
  std::vector<DirectRun::Out>& outs = run.outs();
  for (size_t i = 0; i < subs_.size(); ++i) {
    const Sub& sub = subs_[i];
    if (!sub.alive || sub.has_predicates) continue;
    Delivery delivery;
    delivery.subscription_id = sub.id;
    if (xpath::IsAggregation(sub.query.output.kind)) {
      core::Aggregator aggregator(sub.query.output.kind);
      for (const std::string& text : outs[i].agg_texts) {
        aggregator.Update(text);
      }
      delivery.is_aggregate = true;
      delivery.aggregate = aggregator.Final();
      outcome.deliveries.push_back(std::move(delivery));
    } else if (!outs[i].items.empty()) {
      delivery.items = std::move(outs[i].items);
      outcome.deliveries.push_back(std::move(delivery));
    }
  }

  // NFA-pruned aggregation subscriptions still owe their subscriber a
  // value: the empty match set aggregates to count/sum = 0 and absent
  // avg/min/max, independent of the document — synthesized with no
  // engine run (result parity with standalone evaluation).
  for (size_t i = 0; i < subs_.size(); ++i) {
    const Sub& sub = subs_[i];
    if (!sub.alive || !sub.has_predicates) continue;
    if (!xpath::IsAggregation(sub.query.output.kind)) continue;
    if (run.matcher().Matched(static_cast<int>(i))) continue;
    Delivery delivery;
    delivery.subscription_id = sub.id;
    delivery.is_aggregate = true;
    delivery.aggregate = core::Aggregator(sub.query.output.kind).Final();
    outcome.deliveries.push_back(std::move(delivery));
  }

  std::sort(outcome.deliveries.begin(), outcome.deliveries.end(),
            [](const Delivery& a, const Delivery& b) {
              return a.subscription_id < b.subscription_id;
            });
  return outcome;
}

}  // namespace xsq::pubsub
