// SubscriptionRegistry: standing-query pub/sub over one shared parse.
//
// The paper positions XSQ against the XFilter/YFilter filtering family
// (Section 1, Figure 14): filters share one NFA across thousands of
// queries but cannot evaluate predicates or return element data; XSQ
// evaluates full predicates but runs one engine per query. This module
// combines the two halves into the "millions of users" workload shape:
// register Q XPath subscriptions, publish documents, and each document
// is parsed exactly once regardless of Q.
//
// Publish pipeline (the parse-once / fan-out-many contract):
//
//   document bytes
//        |
//   SaxParser --- tee ---> DirectRun (filter::FilterEngine::Matcher
//        |                 + streaming output emission for every
//        |                 predicate-free subscription: no buffering,
//        |                 membership is decidable at the begin event)
//        +------ tee ---> tape::TapeRecorder  (only when predicate-
//                          bearing subscriptions exist)
//        then:
//   TapeReplayer --- tee ---> StreamingQuery engines of the SURVIVORS
//                             (predicate-bearing subscriptions whose
//                             structural skeleton matched; one replay
//                             feeds them all)
//
// Pruning soundness: a subscription's skeleton is its location path
// with every predicate stripped. Predicates only restrict the match
// set, so skeleton-match is a necessary condition for any HPDT match —
// a document the shared NFA rejects cannot produce results for the full
// query, and skipping its engine changes nothing (DESIGN.md §11 gives
// the argument; bench/ext_pubsub enforces hpdt_evaluations ==
// filter_survivors and zero result diffs vs standalone evaluation).
//
// Aggregation subscriptions pruned by the NFA still get a delivery:
// the empty-match-set aggregate (count/sum = 0, avg/min/max absent) is
// synthesized without touching an engine, preserving result parity
// with standalone evaluation on every document.
//
// Thread safety: none. The registry is externally serialized (the
// service layer holds its pub/sub mutex across Subscribe/Unsubscribe/
// Publish); persistent per-subscription engines make concurrent
// publishes meaningless anyway.
#ifndef XSQ_PUBSUB_SUBSCRIPTION_REGISTRY_H_
#define XSQ_PUBSUB_SUBSCRIPTION_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/streaming_query.h"
#include "filter/filter_engine.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq::pubsub {

// What one subscription receives for one published document.
struct Delivery {
  uint64_t subscription_id = 0;
  // Result items in document order (non-aggregation outputs). The bytes
  // are identical to what a standalone StreamingQuery over the same
  // document yields.
  std::vector<std::string> items;
  // Aggregation queries: the final value (nullopt for avg/min/max over
  // no numeric matches — exactly StreamingQuery::final_aggregate()).
  std::optional<double> aggregate;
  bool is_aggregate = false;
};

struct PublishOutcome {
  // One entry per subscription with output — every aggregation
  // subscription, plus non-aggregation subscriptions with >= 1 item —
  // ascending by subscription id.
  std::vector<Delivery> deliveries;
  size_t subscriptions = 0;       // alive at publish time
  size_t predicate_subs = 0;      // alive subscriptions with predicates
  size_t filter_survivors = 0;    // predicate subs whose skeleton matched
  size_t hpdt_evaluations = 0;    // engines actually run (== survivors)
  uint64_t tape_events = 0;       // events replayed to survivors
  // Engine failures during replay (budget/internal); those
  // subscriptions deliver nothing for this document.
  size_t failed_evaluations = 0;
};

class SubscriptionRegistry {
 public:
  SubscriptionRegistry() = default;

  SubscriptionRegistry(const SubscriptionRegistry&) = delete;
  SubscriptionRegistry& operator=(const SubscriptionRegistry&) = delete;

  // Parser hardening applied to every Publish (defaults to no limits;
  // the service layer installs its Serving preset).
  void set_parser_limits(const xml::ParserLimits& limits) {
    parser_limits_ = limits;
  }

  // Compiles `query_text`, registers its structural skeleton in the
  // shared NFA, and — for predicate-bearing queries — instantiates a
  // persistent evaluation engine (reset between documents, never
  // recompiled). Returns the subscription id (1-based, never reused).
  Result<uint64_t> Subscribe(std::string_view query_text);

  // Removes the subscription. The shared NFA keeps its node chain (it
  // is prefix-shared with other subscriptions); the accept is simply
  // ignored from now on. InvalidArgument for unknown ids.
  Status Unsubscribe(uint64_t id);

  // Matches one document against every live subscription: one parse,
  // at most one tape replay. Fails only on document-level errors
  // (malformed XML, parser limits); per-engine failures are contained
  // and counted in the outcome.
  Result<PublishOutcome> Publish(std::string_view document);

  size_t subscription_count() const { return alive_count_; }
  // Shared NFA size — the YFilter sharing effect across subscriptions.
  size_t node_count() const { return skeleton_.node_count(); }
  bool has_subscription(uint64_t id) const {
    return by_id_.find(id) != by_id_.end();
  }
  // The registered query text (empty view when unknown).
  std::string_view query_text(uint64_t id) const;

 private:
  struct Sub {
    uint64_t id = 0;
    std::string query_text;
    xpath::Query query;
    bool has_predicates = false;
    bool alive = false;
    // Predicate-bearing subscriptions: the persistent engine.
    std::unique_ptr<core::StreamingQuery> engine;
  };

  class DirectRun;  // SaxHandler: shared matcher + direct emission

  // Builds the predicate-stripped structural skeleton of `query`.
  static xpath::Query Skeleton(const xpath::Query& query);

  filter::FilterEngine skeleton_;
  // Index == filter-NFA query id; holds dead (unsubscribed) slots too,
  // so filter ids stay dense and stable.
  std::vector<Sub> subs_;
  std::unordered_map<uint64_t, size_t> by_id_;
  uint64_t next_id_ = 1;
  size_t alive_count_ = 0;
  xml::ParserLimits parser_limits_;
};

}  // namespace xsq::pubsub

#endif  // XSQ_PUBSUB_SUBSCRIPTION_REGISTRY_H_
