# Empty dependencies file for fig19_memory.
# This may be replaced when dependencies are built.
