file(REMOVE_RECURSE
  "CMakeFiles/ext_xsm.dir/ext_xsm.cc.o"
  "CMakeFiles/ext_xsm.dir/ext_xsm.cc.o.d"
  "ext_xsm"
  "ext_xsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_xsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
