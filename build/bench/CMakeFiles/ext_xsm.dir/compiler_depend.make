# Empty compiler generated dependencies file for ext_xsm.
# This may be replaced when dependencies are built.
