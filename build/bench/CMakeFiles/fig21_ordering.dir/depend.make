# Empty dependencies file for fig21_ordering.
# This may be replaced when dependencies are built.
