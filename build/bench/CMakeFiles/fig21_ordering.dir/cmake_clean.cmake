file(REMOVE_RECURSE
  "CMakeFiles/fig21_ordering.dir/fig21_ordering.cc.o"
  "CMakeFiles/fig21_ordering.dir/fig21_ordering.cc.o.d"
  "fig21_ordering"
  "fig21_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
