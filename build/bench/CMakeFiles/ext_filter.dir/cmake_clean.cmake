file(REMOVE_RECURSE
  "CMakeFiles/ext_filter.dir/ext_filter.cc.o"
  "CMakeFiles/ext_filter.dir/ext_filter.cc.o.d"
  "ext_filter"
  "ext_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
