# Empty dependencies file for ext_filter.
# This may be replaced when dependencies are built.
