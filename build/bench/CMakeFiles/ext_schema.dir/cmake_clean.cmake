file(REMOVE_RECURSE
  "CMakeFiles/ext_schema.dir/ext_schema.cc.o"
  "CMakeFiles/ext_schema.dir/ext_schema.cc.o.d"
  "ext_schema"
  "ext_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
