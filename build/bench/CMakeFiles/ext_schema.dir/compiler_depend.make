# Empty compiler generated dependencies file for ext_schema.
# This may be replaced when dependencies are built.
