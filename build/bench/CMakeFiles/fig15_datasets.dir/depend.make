# Empty dependencies file for fig15_datasets.
# This may be replaced when dependencies are built.
