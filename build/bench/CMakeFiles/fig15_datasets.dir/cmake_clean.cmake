file(REMOVE_RECURSE
  "CMakeFiles/fig15_datasets.dir/fig15_datasets.cc.o"
  "CMakeFiles/fig15_datasets.dir/fig15_datasets.cc.o.d"
  "fig15_datasets"
  "fig15_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
