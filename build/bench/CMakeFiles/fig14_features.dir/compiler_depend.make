# Empty compiler generated dependencies file for fig14_features.
# This may be replaced when dependencies are built.
