file(REMOVE_RECURSE
  "CMakeFiles/fig14_features.dir/fig14_features.cc.o"
  "CMakeFiles/fig14_features.dir/fig14_features.cc.o.d"
  "fig14_features"
  "fig14_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
