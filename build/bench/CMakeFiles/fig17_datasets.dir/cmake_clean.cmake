file(REMOVE_RECURSE
  "CMakeFiles/fig17_datasets.dir/fig17_datasets.cc.o"
  "CMakeFiles/fig17_datasets.dir/fig17_datasets.cc.o.d"
  "fig17_datasets"
  "fig17_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
