# Empty dependencies file for fig17_datasets.
# This may be replaced when dependencies are built.
