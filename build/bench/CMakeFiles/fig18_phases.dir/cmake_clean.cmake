file(REMOVE_RECURSE
  "CMakeFiles/fig18_phases.dir/fig18_phases.cc.o"
  "CMakeFiles/fig18_phases.dir/fig18_phases.cc.o.d"
  "fig18_phases"
  "fig18_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
