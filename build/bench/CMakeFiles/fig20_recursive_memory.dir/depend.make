# Empty dependencies file for fig20_recursive_memory.
# This may be replaced when dependencies are built.
