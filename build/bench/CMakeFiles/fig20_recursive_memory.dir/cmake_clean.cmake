file(REMOVE_RECURSE
  "CMakeFiles/fig20_recursive_memory.dir/fig20_recursive_memory.cc.o"
  "CMakeFiles/fig20_recursive_memory.dir/fig20_recursive_memory.cc.o.d"
  "fig20_recursive_memory"
  "fig20_recursive_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_recursive_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
