# Empty dependencies file for fig16_shake_queries.
# This may be replaced when dependencies are built.
