file(REMOVE_RECURSE
  "CMakeFiles/fig16_shake_queries.dir/fig16_shake_queries.cc.o"
  "CMakeFiles/fig16_shake_queries.dir/fig16_shake_queries.cc.o.d"
  "fig16_shake_queries"
  "fig16_shake_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_shake_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
