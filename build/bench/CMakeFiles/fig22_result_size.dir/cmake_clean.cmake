file(REMOVE_RECURSE
  "CMakeFiles/fig22_result_size.dir/fig22_result_size.cc.o"
  "CMakeFiles/fig22_result_size.dir/fig22_result_size.cc.o.d"
  "fig22_result_size"
  "fig22_result_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_result_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
