# Empty dependencies file for fig22_result_size.
# This may be replaced when dependencies are built.
