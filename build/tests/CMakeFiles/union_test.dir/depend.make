# Empty dependencies file for union_test.
# This may be replaced when dependencies are built.
