file(REMOVE_RECURSE
  "CMakeFiles/scale_differential_test.dir/scale_differential_test.cc.o"
  "CMakeFiles/scale_differential_test.dir/scale_differential_test.cc.o.d"
  "scale_differential_test"
  "scale_differential_test.pdb"
  "scale_differential_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scale_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
