# Empty dependencies file for scale_differential_test.
# This may be replaced when dependencies are built.
