# Empty dependencies file for reverse_axis_test.
# This may be replaced when dependencies are built.
