# Empty compiler generated dependencies file for reverse_axis_test.
# This may be replaced when dependencies are built.
