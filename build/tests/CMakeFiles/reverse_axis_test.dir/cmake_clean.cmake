file(REMOVE_RECURSE
  "CMakeFiles/reverse_axis_test.dir/reverse_axis_test.cc.o"
  "CMakeFiles/reverse_axis_test.dir/reverse_axis_test.cc.o.d"
  "reverse_axis_test"
  "reverse_axis_test.pdb"
  "reverse_axis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_axis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
