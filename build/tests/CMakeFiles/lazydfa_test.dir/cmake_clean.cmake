file(REMOVE_RECURSE
  "CMakeFiles/lazydfa_test.dir/lazydfa_test.cc.o"
  "CMakeFiles/lazydfa_test.dir/lazydfa_test.cc.o.d"
  "lazydfa_test"
  "lazydfa_test.pdb"
  "lazydfa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lazydfa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
