# Empty compiler generated dependencies file for lazydfa_test.
# This may be replaced when dependencies are built.
