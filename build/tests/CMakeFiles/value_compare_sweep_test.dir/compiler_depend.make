# Empty compiler generated dependencies file for value_compare_sweep_test.
# This may be replaced when dependencies are built.
