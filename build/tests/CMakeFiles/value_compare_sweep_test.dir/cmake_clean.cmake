file(REMOVE_RECURSE
  "CMakeFiles/value_compare_sweep_test.dir/value_compare_sweep_test.cc.o"
  "CMakeFiles/value_compare_sweep_test.dir/value_compare_sweep_test.cc.o.d"
  "value_compare_sweep_test"
  "value_compare_sweep_test.pdb"
  "value_compare_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/value_compare_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
