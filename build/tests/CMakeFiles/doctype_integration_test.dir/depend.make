# Empty dependencies file for doctype_integration_test.
# This may be replaced when dependencies are built.
