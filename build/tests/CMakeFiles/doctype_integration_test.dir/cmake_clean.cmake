file(REMOVE_RECURSE
  "CMakeFiles/doctype_integration_test.dir/doctype_integration_test.cc.o"
  "CMakeFiles/doctype_integration_test.dir/doctype_integration_test.cc.o.d"
  "doctype_integration_test"
  "doctype_integration_test.pdb"
  "doctype_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doctype_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
