file(REMOVE_RECURSE
  "CMakeFiles/streaming_query_test.dir/streaming_query_test.cc.o"
  "CMakeFiles/streaming_query_test.dir/streaming_query_test.cc.o.d"
  "streaming_query_test"
  "streaming_query_test.pdb"
  "streaming_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
