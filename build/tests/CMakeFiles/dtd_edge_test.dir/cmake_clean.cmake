file(REMOVE_RECURSE
  "CMakeFiles/dtd_edge_test.dir/dtd_edge_test.cc.o"
  "CMakeFiles/dtd_edge_test.dir/dtd_edge_test.cc.o.d"
  "dtd_edge_test"
  "dtd_edge_test.pdb"
  "dtd_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtd_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
