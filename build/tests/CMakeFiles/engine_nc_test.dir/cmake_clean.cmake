file(REMOVE_RECURSE
  "CMakeFiles/engine_nc_test.dir/engine_nc_test.cc.o"
  "CMakeFiles/engine_nc_test.dir/engine_nc_test.cc.o.d"
  "engine_nc_test"
  "engine_nc_test.pdb"
  "engine_nc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_nc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
