# Empty dependencies file for engine_nc_test.
# This may be replaced when dependencies are built.
