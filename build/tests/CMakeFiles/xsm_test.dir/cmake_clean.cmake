file(REMOVE_RECURSE
  "CMakeFiles/xsm_test.dir/xsm_test.cc.o"
  "CMakeFiles/xsm_test.dir/xsm_test.cc.o.d"
  "xsm_test"
  "xsm_test.pdb"
  "xsm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
