# Empty compiler generated dependencies file for xsm_test.
# This may be replaced when dependencies are built.
