file(REMOVE_RECURSE
  "CMakeFiles/hpdt_test.dir/hpdt_test.cc.o"
  "CMakeFiles/hpdt_test.dir/hpdt_test.cc.o.d"
  "hpdt_test"
  "hpdt_test.pdb"
  "hpdt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpdt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
