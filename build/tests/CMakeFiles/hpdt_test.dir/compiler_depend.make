# Empty compiler generated dependencies file for hpdt_test.
# This may be replaced when dependencies are built.
