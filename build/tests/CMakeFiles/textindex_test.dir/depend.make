# Empty dependencies file for textindex_test.
# This may be replaced when dependencies are built.
