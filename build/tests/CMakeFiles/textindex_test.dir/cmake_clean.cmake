file(REMOVE_RECURSE
  "CMakeFiles/textindex_test.dir/textindex_test.cc.o"
  "CMakeFiles/textindex_test.dir/textindex_test.cc.o.d"
  "textindex_test"
  "textindex_test.pdb"
  "textindex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/textindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
