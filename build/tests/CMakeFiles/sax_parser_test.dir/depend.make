# Empty dependencies file for sax_parser_test.
# This may be replaced when dependencies are built.
