file(REMOVE_RECURSE
  "CMakeFiles/xsq_test_util.dir/test_util.cc.o"
  "CMakeFiles/xsq_test_util.dir/test_util.cc.o.d"
  "libxsq_test_util.a"
  "libxsq_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
