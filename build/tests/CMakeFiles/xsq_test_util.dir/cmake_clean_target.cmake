file(REMOVE_RECURSE
  "libxsq_test_util.a"
)
