# Empty dependencies file for xsq_test_util.
# This may be replaced when dependencies are built.
