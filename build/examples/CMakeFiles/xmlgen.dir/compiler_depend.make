# Empty compiler generated dependencies file for xmlgen.
# This may be replaced when dependencies are built.
