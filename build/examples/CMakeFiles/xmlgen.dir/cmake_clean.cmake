file(REMOVE_RECURSE
  "CMakeFiles/xmlgen.dir/xmlgen.cpp.o"
  "CMakeFiles/xmlgen.dir/xmlgen.cpp.o.d"
  "xmlgen"
  "xmlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xmlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
