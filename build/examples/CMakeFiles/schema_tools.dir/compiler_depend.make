# Empty compiler generated dependencies file for schema_tools.
# This may be replaced when dependencies are built.
