
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/aggregate_stream.cpp" "examples/CMakeFiles/aggregate_stream.dir/aggregate_stream.cpp.o" "gcc" "examples/CMakeFiles/aggregate_stream.dir/aggregate_stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/xsq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dom/CMakeFiles/xsq_dom.dir/DependInfo.cmake"
  "/root/repo/build/src/lazydfa/CMakeFiles/xsq_lazydfa.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/xsq_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/naive/CMakeFiles/xsq_naive.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/xsq_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/xsq_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xsq_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xsq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/xsq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
