file(REMOVE_RECURSE
  "CMakeFiles/aggregate_stream.dir/aggregate_stream.cpp.o"
  "CMakeFiles/aggregate_stream.dir/aggregate_stream.cpp.o.d"
  "aggregate_stream"
  "aggregate_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
