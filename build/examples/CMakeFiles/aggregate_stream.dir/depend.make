# Empty dependencies file for aggregate_stream.
# This may be replaced when dependencies are built.
