# Empty compiler generated dependencies file for filter_documents.
# This may be replaced when dependencies are built.
