file(REMOVE_RECURSE
  "CMakeFiles/filter_documents.dir/filter_documents.cpp.o"
  "CMakeFiles/filter_documents.dir/filter_documents.cpp.o.d"
  "filter_documents"
  "filter_documents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_documents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
