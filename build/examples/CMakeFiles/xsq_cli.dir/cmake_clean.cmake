file(REMOVE_RECURSE
  "CMakeFiles/xsq_cli.dir/xsq_cli.cpp.o"
  "CMakeFiles/xsq_cli.dir/xsq_cli.cpp.o.d"
  "xsq_cli"
  "xsq_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
