# Empty compiler generated dependencies file for xsq_cli.
# This may be replaced when dependencies are built.
