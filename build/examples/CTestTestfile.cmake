# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_paper_examples "/root/repo/build/examples/paper_examples")
set_tests_properties(example_paper_examples PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_filter_documents "/root/repo/build/examples/filter_documents")
set_tests_properties(example_filter_documents PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_schema_tools "/root/repo/build/examples/schema_tools")
set_tests_properties(example_schema_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_aggregate_stream "/root/repo/build/examples/aggregate_stream")
set_tests_properties(example_aggregate_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xmlgen "/root/repo/build/examples/xmlgen" "colors" "0.1" "1")
set_tests_properties(example_xmlgen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
