file(REMOVE_RECURSE
  "libxsq_dom.a"
)
