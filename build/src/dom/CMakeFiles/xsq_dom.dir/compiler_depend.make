# Empty compiler generated dependencies file for xsq_dom.
# This may be replaced when dependencies are built.
