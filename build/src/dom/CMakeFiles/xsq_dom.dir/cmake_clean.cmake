file(REMOVE_RECURSE
  "CMakeFiles/xsq_dom.dir/builder.cc.o"
  "CMakeFiles/xsq_dom.dir/builder.cc.o.d"
  "CMakeFiles/xsq_dom.dir/evaluator.cc.o"
  "CMakeFiles/xsq_dom.dir/evaluator.cc.o.d"
  "libxsq_dom.a"
  "libxsq_dom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_dom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
