# Empty compiler generated dependencies file for xsq_naive.
# This may be replaced when dependencies are built.
