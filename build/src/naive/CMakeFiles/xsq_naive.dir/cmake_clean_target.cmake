file(REMOVE_RECURSE
  "libxsq_naive.a"
)
