file(REMOVE_RECURSE
  "CMakeFiles/xsq_naive.dir/naive_engine.cc.o"
  "CMakeFiles/xsq_naive.dir/naive_engine.cc.o.d"
  "libxsq_naive.a"
  "libxsq_naive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_naive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
