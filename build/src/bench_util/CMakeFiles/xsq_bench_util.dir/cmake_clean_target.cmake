file(REMOVE_RECURSE
  "libxsq_bench_util.a"
)
