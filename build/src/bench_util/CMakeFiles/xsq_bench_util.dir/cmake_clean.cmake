file(REMOVE_RECURSE
  "CMakeFiles/xsq_bench_util.dir/runner.cc.o"
  "CMakeFiles/xsq_bench_util.dir/runner.cc.o.d"
  "CMakeFiles/xsq_bench_util.dir/table.cc.o"
  "CMakeFiles/xsq_bench_util.dir/table.cc.o.d"
  "libxsq_bench_util.a"
  "libxsq_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
