# Empty dependencies file for xsq_bench_util.
# This may be replaced when dependencies are built.
