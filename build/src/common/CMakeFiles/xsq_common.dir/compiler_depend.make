# Empty compiler generated dependencies file for xsq_common.
# This may be replaced when dependencies are built.
