file(REMOVE_RECURSE
  "libxsq_common.a"
)
