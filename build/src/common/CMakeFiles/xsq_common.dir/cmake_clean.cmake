file(REMOVE_RECURSE
  "CMakeFiles/xsq_common.dir/status.cc.o"
  "CMakeFiles/xsq_common.dir/status.cc.o.d"
  "CMakeFiles/xsq_common.dir/strings.cc.o"
  "CMakeFiles/xsq_common.dir/strings.cc.o.d"
  "libxsq_common.a"
  "libxsq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
