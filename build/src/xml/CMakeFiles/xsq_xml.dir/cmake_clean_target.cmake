file(REMOVE_RECURSE
  "libxsq_xml.a"
)
