# Empty dependencies file for xsq_xml.
# This may be replaced when dependencies are built.
