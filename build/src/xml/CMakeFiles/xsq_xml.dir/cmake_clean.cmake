file(REMOVE_RECURSE
  "CMakeFiles/xsq_xml.dir/sax_parser.cc.o"
  "CMakeFiles/xsq_xml.dir/sax_parser.cc.o.d"
  "CMakeFiles/xsq_xml.dir/writer.cc.o"
  "CMakeFiles/xsq_xml.dir/writer.cc.o.d"
  "libxsq_xml.a"
  "libxsq_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
