file(REMOVE_RECURSE
  "CMakeFiles/xsq_filter.dir/filter_engine.cc.o"
  "CMakeFiles/xsq_filter.dir/filter_engine.cc.o.d"
  "libxsq_filter.a"
  "libxsq_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
