file(REMOVE_RECURSE
  "libxsq_filter.a"
)
