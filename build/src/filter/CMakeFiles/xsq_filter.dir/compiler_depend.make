# Empty compiler generated dependencies file for xsq_filter.
# This may be replaced when dependencies are built.
