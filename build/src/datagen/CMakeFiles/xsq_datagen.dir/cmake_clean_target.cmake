file(REMOVE_RECURSE
  "libxsq_datagen.a"
)
