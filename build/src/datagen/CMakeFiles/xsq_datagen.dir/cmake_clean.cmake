file(REMOVE_RECURSE
  "CMakeFiles/xsq_datagen.dir/generators.cc.o"
  "CMakeFiles/xsq_datagen.dir/generators.cc.o.d"
  "libxsq_datagen.a"
  "libxsq_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
