# Empty compiler generated dependencies file for xsq_datagen.
# This may be replaced when dependencies are built.
