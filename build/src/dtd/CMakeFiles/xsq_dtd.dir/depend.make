# Empty dependencies file for xsq_dtd.
# This may be replaced when dependencies are built.
