file(REMOVE_RECURSE
  "CMakeFiles/xsq_dtd.dir/content_automaton.cc.o"
  "CMakeFiles/xsq_dtd.dir/content_automaton.cc.o.d"
  "CMakeFiles/xsq_dtd.dir/dtd.cc.o"
  "CMakeFiles/xsq_dtd.dir/dtd.cc.o.d"
  "CMakeFiles/xsq_dtd.dir/optimizer.cc.o"
  "CMakeFiles/xsq_dtd.dir/optimizer.cc.o.d"
  "CMakeFiles/xsq_dtd.dir/validator.cc.o"
  "CMakeFiles/xsq_dtd.dir/validator.cc.o.d"
  "libxsq_dtd.a"
  "libxsq_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
