
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtd/content_automaton.cc" "src/dtd/CMakeFiles/xsq_dtd.dir/content_automaton.cc.o" "gcc" "src/dtd/CMakeFiles/xsq_dtd.dir/content_automaton.cc.o.d"
  "/root/repo/src/dtd/dtd.cc" "src/dtd/CMakeFiles/xsq_dtd.dir/dtd.cc.o" "gcc" "src/dtd/CMakeFiles/xsq_dtd.dir/dtd.cc.o.d"
  "/root/repo/src/dtd/optimizer.cc" "src/dtd/CMakeFiles/xsq_dtd.dir/optimizer.cc.o" "gcc" "src/dtd/CMakeFiles/xsq_dtd.dir/optimizer.cc.o.d"
  "/root/repo/src/dtd/validator.cc" "src/dtd/CMakeFiles/xsq_dtd.dir/validator.cc.o" "gcc" "src/dtd/CMakeFiles/xsq_dtd.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xsq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xsq_xpath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
