file(REMOVE_RECURSE
  "libxsq_dtd.a"
)
