file(REMOVE_RECURSE
  "libxsq_xsm.a"
)
