file(REMOVE_RECURSE
  "CMakeFiles/xsq_xsm.dir/xsm_engine.cc.o"
  "CMakeFiles/xsq_xsm.dir/xsm_engine.cc.o.d"
  "libxsq_xsm.a"
  "libxsq_xsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_xsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
