# Empty dependencies file for xsq_xsm.
# This may be replaced when dependencies are built.
