# Empty compiler generated dependencies file for xsq_lazydfa.
# This may be replaced when dependencies are built.
