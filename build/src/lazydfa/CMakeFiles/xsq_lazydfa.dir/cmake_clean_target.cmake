file(REMOVE_RECURSE
  "libxsq_lazydfa.a"
)
