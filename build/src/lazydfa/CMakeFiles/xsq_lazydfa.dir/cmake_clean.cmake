file(REMOVE_RECURSE
  "CMakeFiles/xsq_lazydfa.dir/lazy_dfa_engine.cc.o"
  "CMakeFiles/xsq_lazydfa.dir/lazy_dfa_engine.cc.o.d"
  "libxsq_lazydfa.a"
  "libxsq_lazydfa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_lazydfa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
