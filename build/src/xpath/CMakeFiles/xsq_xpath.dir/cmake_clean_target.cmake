file(REMOVE_RECURSE
  "libxsq_xpath.a"
)
