file(REMOVE_RECURSE
  "CMakeFiles/xsq_xpath.dir/parser.cc.o"
  "CMakeFiles/xsq_xpath.dir/parser.cc.o.d"
  "CMakeFiles/xsq_xpath.dir/value_compare.cc.o"
  "CMakeFiles/xsq_xpath.dir/value_compare.cc.o.d"
  "libxsq_xpath.a"
  "libxsq_xpath.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_xpath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
