# Empty compiler generated dependencies file for xsq_xpath.
# This may be replaced when dependencies are built.
