file(REMOVE_RECURSE
  "libxsq_textindex.a"
)
