
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/textindex/text_index_engine.cc" "src/textindex/CMakeFiles/xsq_textindex.dir/text_index_engine.cc.o" "gcc" "src/textindex/CMakeFiles/xsq_textindex.dir/text_index_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dom/CMakeFiles/xsq_dom.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xsq_xpath.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xsq_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
