# Empty compiler generated dependencies file for xsq_textindex.
# This may be replaced when dependencies are built.
