file(REMOVE_RECURSE
  "CMakeFiles/xsq_textindex.dir/text_index_engine.cc.o"
  "CMakeFiles/xsq_textindex.dir/text_index_engine.cc.o.d"
  "libxsq_textindex.a"
  "libxsq_textindex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_textindex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
