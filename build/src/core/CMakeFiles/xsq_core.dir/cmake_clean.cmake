file(REMOVE_RECURSE
  "CMakeFiles/xsq_core.dir/engine.cc.o"
  "CMakeFiles/xsq_core.dir/engine.cc.o.d"
  "CMakeFiles/xsq_core.dir/engine_nc.cc.o"
  "CMakeFiles/xsq_core.dir/engine_nc.cc.o.d"
  "CMakeFiles/xsq_core.dir/hpdt.cc.o"
  "CMakeFiles/xsq_core.dir/hpdt.cc.o.d"
  "CMakeFiles/xsq_core.dir/multi_query.cc.o"
  "CMakeFiles/xsq_core.dir/multi_query.cc.o.d"
  "CMakeFiles/xsq_core.dir/streaming_query.cc.o"
  "CMakeFiles/xsq_core.dir/streaming_query.cc.o.d"
  "CMakeFiles/xsq_core.dir/trace.cc.o"
  "CMakeFiles/xsq_core.dir/trace.cc.o.d"
  "libxsq_core.a"
  "libxsq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
