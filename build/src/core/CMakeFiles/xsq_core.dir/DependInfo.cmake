
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/xsq_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/xsq_core.dir/engine.cc.o.d"
  "/root/repo/src/core/engine_nc.cc" "src/core/CMakeFiles/xsq_core.dir/engine_nc.cc.o" "gcc" "src/core/CMakeFiles/xsq_core.dir/engine_nc.cc.o.d"
  "/root/repo/src/core/hpdt.cc" "src/core/CMakeFiles/xsq_core.dir/hpdt.cc.o" "gcc" "src/core/CMakeFiles/xsq_core.dir/hpdt.cc.o.d"
  "/root/repo/src/core/multi_query.cc" "src/core/CMakeFiles/xsq_core.dir/multi_query.cc.o" "gcc" "src/core/CMakeFiles/xsq_core.dir/multi_query.cc.o.d"
  "/root/repo/src/core/streaming_query.cc" "src/core/CMakeFiles/xsq_core.dir/streaming_query.cc.o" "gcc" "src/core/CMakeFiles/xsq_core.dir/streaming_query.cc.o.d"
  "/root/repo/src/core/trace.cc" "src/core/CMakeFiles/xsq_core.dir/trace.cc.o" "gcc" "src/core/CMakeFiles/xsq_core.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/xsq_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xsq_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/xpath/CMakeFiles/xsq_xpath.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
