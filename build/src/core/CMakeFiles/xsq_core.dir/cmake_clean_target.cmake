file(REMOVE_RECURSE
  "libxsq_core.a"
)
