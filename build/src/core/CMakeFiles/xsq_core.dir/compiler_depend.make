# Empty compiler generated dependencies file for xsq_core.
# This may be replaced when dependencies are built.
