// Parameterized sweep over the comparison semantics shared by every
// engine (xpath/value_compare.h): each case is (observed, op, literal,
// expected), covering numeric coercion, string fallback, whitespace,
// and contains.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "xpath/ast.h"
#include "xpath/value_compare.h"

namespace xsq::xpath {
namespace {

struct CompareCase {
  const char* observed;
  CompareOp op;
  const char* literal;
  bool expected;
};

class ValueCompareSweep : public ::testing::TestWithParam<CompareCase> {};

TEST_P(ValueCompareSweep, MatchesExpectation) {
  const CompareCase& c = GetParam();
  Predicate predicate;
  predicate.kind = PredicateKind::kText;
  predicate.has_comparison = true;
  predicate.op = c.op;
  predicate.literal = c.literal;
  predicate.literal_number = ParseNumber(c.literal);
  EXPECT_EQ(CompareValue(c.observed, predicate), c.expected)
      << "'" << c.observed << "' " << CompareOpName(c.op) << " '"
      << c.literal << "'";
}

INSTANTIATE_TEST_SUITE_P(
    NumericRelational, ValueCompareSweep,
    ::testing::Values(
        CompareCase{"5", CompareOp::kLt, "10", true},
        CompareCase{"10", CompareOp::kLt, "10", false},
        CompareCase{"10", CompareOp::kLe, "10", true},
        CompareCase{"10.5", CompareOp::kGt, "10", true},
        CompareCase{"-3", CompareOp::kGt, "-4", true},
        CompareCase{"2e2", CompareOp::kGe, "200", true},
        CompareCase{"0.1", CompareOp::kGe, "0.2", false},
        CompareCase{" 7 ", CompareOp::kLt, "8", true},     // trimmed
        CompareCase{"abc", CompareOp::kLt, "10", false},   // NaN
        CompareCase{"10", CompareOp::kLt, "abc", false},   // literal NaN
        CompareCase{"", CompareOp::kLe, "0", false},
        CompareCase{"12x", CompareOp::kGt, "1", false}));  // partial number

// Regression: numerals longer than ParseNumber's old 63-char stack cap
// were treated as NaN, so zero-padded observed values compared as
// strings (or not at all) instead of numerically.
INSTANTIATE_TEST_SUITE_P(
    LongNumerals, ValueCompareSweep,
    ::testing::Values(
        // 72-char zero-padded 42 == 42 numerically.
        CompareCase{"000000000000000000000000000000000000"
                    "000000000000000000000000000000000042",
                    CompareOp::kEq, "42", true},
        CompareCase{"000000000000000000000000000000000000"
                    "000000000000000000000000000000000042",
                    CompareOp::kLt, "43", true},
        // Long observed vs long literal.
        CompareCase{"0000000000000000000000000000000000000000"
                    "0000000000000000000000000000000000000007",
                    CompareOp::kGe,
                    "0000000000000000000000000000000000000000"
                    "0000000000000000000000000000000000000008",
                    false}));

INSTANTIATE_TEST_SUITE_P(
    Equality, ValueCompareSweep,
    ::testing::Values(
        CompareCase{"10", CompareOp::kEq, "10.0", true},   // numeric
        CompareCase{" 10", CompareOp::kEq, "10", true},
        CompareCase{"10.", CompareOp::kEq, "10", true},
        CompareCase{"x", CompareOp::kEq, "x", true},       // string
        CompareCase{" x", CompareOp::kEq, "x", false},     // no trim
        CompareCase{"X", CompareOp::kEq, "x", false},      // case
        CompareCase{"x", CompareOp::kEq, "10", false},
        CompareCase{"10", CompareOp::kNe, "10.0", false},
        CompareCase{"11", CompareOp::kNe, "10", true},
        CompareCase{"x", CompareOp::kNe, "10", true},
        CompareCase{"", CompareOp::kEq, "", true}));

INSTANTIATE_TEST_SUITE_P(
    Contains, ValueCompareSweep,
    ::testing::Values(
        CompareCase{"what light", CompareOp::kContains, "light", true},
        CompareCase{"light", CompareOp::kContains, "what light", false},
        CompareCase{"lovely", CompareOp::kContains, "love", true},
        CompareCase{"love", CompareOp::kContains, "LOVE", false},  // case
        CompareCase{"anything", CompareOp::kContains, "", true},
        CompareCase{"", CompareOp::kContains, "x", false},
        CompareCase{"123.5", CompareOp::kContains, "3.5", true}));

struct FormatCase {
  double value;
  const char* expected;
};

class FormatNumberSweep : public ::testing::TestWithParam<FormatCase> {};

TEST_P(FormatNumberSweep, FormatsLikeXPath) {
  EXPECT_EQ(FormatNumber(GetParam().value), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FormatNumberSweep,
    ::testing::Values(FormatCase{0.0, "0"}, FormatCase{-0.0, "-0"},
                      FormatCase{1.0, "1"}, FormatCase{-17.0, "-17"},
                      FormatCase{1e6, "1000000"},
                      FormatCase{0.5, "0.5"},
                      FormatCase{1.25, "1.25"}));

}  // namespace
}  // namespace xsq::xpath
