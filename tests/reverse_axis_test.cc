// '.' (self) and '..' (parent) steps, rewritten to forward-only queries
// at parse time - the miniature of "XPath: Looking Forward" [21] cited
// in the paper's related work. The paper's XSQ excludes reverse axes;
// the rewrite makes the common cases evaluable anyway.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "dom/builder.h"
#include "dom/evaluator.h"
#include "xpath/ast.h"

namespace xsq::xpath {
namespace {

std::string Rewritten(std::string_view text) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << text << ": " << query.status().ToString();
  return query.ok() ? query->ToString() : "";
}

TEST(ReverseAxisTest, SelfStepDisappears) {
  EXPECT_EQ(Rewritten("/a/./b"), "/a/b");
  EXPECT_EQ(Rewritten("/a/b/."), "/a/b");
  EXPECT_EQ(Rewritten("//a/./text()"), "//a/text()");
}

TEST(ReverseAxisTest, ParentFoldsIntoChildPredicate) {
  EXPECT_EQ(Rewritten("/a/b/.."), "/a[b]");
  EXPECT_EQ(Rewritten("/a/b/../c"), "/a[b]/c");
  EXPECT_EQ(Rewritten("//x/y/../t/text()"), "//x[y]/t/text()");
  EXPECT_EQ(Rewritten("/a/b/../c/d/../e"), "/a[b]/c[d]/e");
}

TEST(ReverseAxisTest, RewriteInsideUnions) {
  EXPECT_EQ(Rewritten("/a/b/.. | /c/./d"), "/a[b] | /c/d");
}

TEST(ReverseAxisTest, UnsupportedFormsAreRejectedCleanly) {
  EXPECT_EQ(ParseQuery("/a/..").status().code(), StatusCode::kNotSupported);
  EXPECT_EQ(ParseQuery("/..").status().code(), StatusCode::kNotSupported);
  EXPECT_EQ(ParseQuery("/.").status().code(), StatusCode::kNotSupported);
  EXPECT_EQ(ParseQuery("/a//b/..").status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(ParseQuery("/a/b[x]/..").status().code(),
            StatusCode::kNotSupported);
  EXPECT_FALSE(ParseQuery("/a/..[x]").ok());
  EXPECT_FALSE(ParseQuery("//..").ok());
}

TEST(ReverseAxisTest, RewrittenQueriesEvaluateCorrectly) {
  const char* doc =
      "<r><a><b/><t>has-b</t></a><a><t>no-b</t></a></r>";
  // /r/a/b/../t = the t children of a's that have a b child.
  Result<core::QueryResult> result =
      core::RunQuery("/r/a/b/../t/text()", doc);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0], "has-b");

  // Same result through the DOM oracle, which sees the rewritten query.
  Result<Query> query = ParseQuery("/r/a/b/../t/text()");
  ASSERT_TRUE(query.ok());
  Result<dom::Document> document = dom::BuildFromString(doc);
  ASSERT_TRUE(document.ok());
  Result<dom::EvalResult> oracle = dom::Evaluate(*document, *query);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(oracle->items, result->items);
}

TEST(ReverseAxisTest, ParentDeduplicatesLikeANodeSet) {
  // Two b children, one parent: the parent is matched once.
  Result<core::QueryResult> result =
      core::RunQuery("/r/a/b/../count()", "<r><a><b/><b/></a><a/></r>");
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(*result->aggregate, 1.0);
}

}  // namespace
}  // namespace xsq::xpath
