#include "dtd/dtd.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "datagen/generators.h"
#include "dtd/content_automaton.h"
#include "dtd/optimizer.h"
#include "dtd/validator.h"
#include "xpath/ast.h"

namespace xsq::dtd {
namespace {

// DTDs matching the synthetic corpora of datagen/.
constexpr const char* kShakeDtd = R"(
  <!ELEMENT PLAY (TITLE, ACT+)>
  <!ELEMENT TITLE (#PCDATA)>
  <!ELEMENT ACT (TITLE, SCENE+)>
  <!ELEMENT SCENE (TITLE, SPEECH+)>
  <!ELEMENT SPEECH (SPEAKER, LINE+)>
  <!ELEMENT SPEAKER (#PCDATA)>
  <!ELEMENT LINE (#PCDATA)>
)";

constexpr const char* kPubsDtd = R"(
  <!-- recursive: pub may contain pub -->
  <!ELEMENT pubs (pub+)>
  <!ELEMENT pub (year?, (book | pub)*)>
  <!ELEMENT book (title, price)>
  <!ATTLIST book id CDATA #IMPLIED>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT price (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
)";

Dtd ParseOk(std::string_view text) {
  Result<Dtd> dtd = Dtd::Parse(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status().ToString();
  return dtd.ok() ? *std::move(dtd) : Dtd();
}

TEST(DtdParserTest, ParsesElementDeclarations) {
  Dtd dtd = ParseOk(kShakeDtd);
  EXPECT_EQ(dtd.element_count(), 7u);
  const ElementDecl* play = dtd.FindElement("PLAY");
  ASSERT_NE(play, nullptr);
  EXPECT_EQ(play->model.kind, ContentModel::Kind::kChildren);
  EXPECT_EQ(play->model.ToString(), "(TITLE,ACT+)");
  const ElementDecl* title = dtd.FindElement("TITLE");
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->model.kind, ContentModel::Kind::kMixed);
  EXPECT_EQ(dtd.FindElement("NOSUCH"), nullptr);
}

TEST(DtdParserTest, ParsesAttlistAndSpecials) {
  Dtd dtd = ParseOk(R"(
    <!ELEMENT r EMPTY>
    <!ATTLIST r id CDATA #REQUIRED
                kind (a|b) "a"
                version CDATA #FIXED "1.0"
                note CDATA #IMPLIED>
  )");
  const ElementDecl* r = dtd.FindElement("r");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->model.kind, ContentModel::Kind::kEmpty);
  ASSERT_EQ(r->attributes.size(), 4u);
  EXPECT_EQ(r->attributes[0].presence, AttributeDecl::Presence::kRequired);
  EXPECT_EQ(r->attributes[1].type, "(a|b)");
  EXPECT_EQ(r->attributes[1].default_value, "a");
  EXPECT_EQ(r->attributes[2].presence, AttributeDecl::Presence::kFixed);
  EXPECT_EQ(r->attributes[2].default_value, "1.0");
  EXPECT_EQ(r->attributes[3].presence, AttributeDecl::Presence::kImplied);
}

TEST(DtdParserTest, SkipsEntitiesAndComments) {
  Dtd dtd = ParseOk(R"(
    <!-- a comment -->
    <!ENTITY e "text">
    <!ELEMENT a ANY>
  )");
  EXPECT_EQ(dtd.element_count(), 1u);
}

TEST(DtdParserTest, Rejections) {
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT >").ok());
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b,c|d)>").ok());  // mixed separators
  EXPECT_FALSE(Dtd::Parse("<!ELEMENT a (b").ok());
  EXPECT_FALSE(Dtd::Parse("<!ATTLIST a x>").ok());
  EXPECT_FALSE(Dtd::Parse("random").ok());
}

TEST(DtdModelTest, PossibleChildrenAndText) {
  Dtd dtd = ParseOk(kPubsDtd);
  auto pub_children = dtd.PossibleChildren("pub");
  EXPECT_EQ(pub_children.size(), 3u);  // year, book, pub
  EXPECT_TRUE(dtd.AllowsText("title"));
  EXPECT_FALSE(dtd.AllowsText("pub"));
}

TEST(DtdModelTest, RecursionDetection) {
  EXPECT_TRUE(ParseOk(kPubsDtd).IsRecursive());
  EXPECT_FALSE(ParseOk(kShakeDtd).IsRecursive());
}

TEST(DtdModelTest, ReachableDescendants) {
  Dtd dtd = ParseOk(kShakeDtd);
  auto from_act = dtd.ReachableDescendants("ACT");
  EXPECT_EQ(from_act.count("SPEAKER"), 1u);
  EXPECT_EQ(from_act.count("PLAY"), 0u);
  EXPECT_EQ(from_act.count("TITLE"), 1u);
}

TEST(ContentAutomatonTest, SequencesChoicesAndRepeats) {
  Dtd dtd = ParseOk("<!ELEMENT a (b, (c | d)+, e?)>");
  const ElementDecl* a = dtd.FindElement("a");
  ASSERT_NE(a, nullptr);
  ContentAutomaton automaton = ContentAutomaton::Compile(a->model.particle);

  auto run = [&](const std::vector<std::string>& children) {
    std::vector<int> states = automaton.Start();
    for (const std::string& child : children) {
      states = automaton.Advance(states, child);
      if (states.empty()) return false;
    }
    return automaton.Accepts(states);
  };
  EXPECT_TRUE(run({"b", "c"}));
  EXPECT_TRUE(run({"b", "d", "c", "e"}));
  EXPECT_FALSE(run({"b"}));            // missing (c|d)+
  EXPECT_FALSE(run({"c"}));            // missing b
  EXPECT_FALSE(run({"b", "c", "b"}));  // b not allowed again
  EXPECT_FALSE(run({"b", "e"}));
  EXPECT_FALSE(run({"b", "c", "e", "e"}));
}

TEST(ContentAutomatonTest, StarAcceptsEmpty) {
  Dtd dtd = ParseOk("<!ELEMENT a (b*)>");
  ContentAutomaton automaton =
      ContentAutomaton::Compile(dtd.FindElement("a")->model.particle);
  EXPECT_TRUE(automaton.Accepts(automaton.Start()));
  auto states = automaton.Advance(automaton.Start(), "b");
  EXPECT_TRUE(automaton.Accepts(states));
  states = automaton.Advance(states, "b");
  EXPECT_TRUE(automaton.Accepts(states));
}

TEST(ValidatorTest, AcceptsValidDocuments) {
  Dtd dtd = ParseOk(kPubsDtd);
  EXPECT_TRUE(ValidateDocument(dtd,
                               "<pubs><pub><year>2002</year>"
                               "<book id=\"1\"><title>t</title>"
                               "<price>9</price></book>"
                               "<pub><book><title>u</title><price>8</price>"
                               "</book></pub></pub></pubs>",
                               "pubs")
                  .ok());
}

TEST(ValidatorTest, RejectsWrongRoot) {
  Dtd dtd = ParseOk(kPubsDtd);
  Status status = ValidateDocument(dtd, "<pub></pub>", "pubs");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("root"), std::string::npos);
}

TEST(ValidatorTest, RejectsUndeclaredElement) {
  Dtd dtd = ParseOk(kPubsDtd);
  EXPECT_FALSE(
      ValidateDocument(dtd, "<pubs><mystery/></pubs>").ok());
}

TEST(ValidatorTest, RejectsChildOutOfPlace) {
  Dtd dtd = ParseOk(kShakeDtd);
  // SPEECH requires SPEAKER before LINE.
  Status status = ValidateDocument(
      dtd,
      "<PLAY><TITLE>t</TITLE><ACT><TITLE>t</TITLE><SCENE><TITLE>t</TITLE>"
      "<SPEECH><LINE>l</LINE><SPEAKER>s</SPEAKER></SPEECH>"
      "</SCENE></ACT></PLAY>");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("not allowed at this position"),
            std::string::npos);
}

TEST(ValidatorTest, RejectsIncompleteContent) {
  Dtd dtd = ParseOk(kShakeDtd);
  // SPEECH requires at least one LINE.
  Status status = ValidateDocument(
      dtd,
      "<PLAY><TITLE>t</TITLE><ACT><TITLE>t</TITLE><SCENE><TITLE>t</TITLE>"
      "<SPEECH><SPEAKER>s</SPEAKER></SPEECH></SCENE></ACT></PLAY>");
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("incomplete"), std::string::npos);
}

TEST(ValidatorTest, RejectsTextInElementContent) {
  Dtd dtd = ParseOk(kPubsDtd);
  EXPECT_FALSE(
      ValidateDocument(dtd, "<pubs>stray text<pub></pub></pubs>").ok());
  // Whitespace between children is fine.
  EXPECT_TRUE(ValidateDocument(dtd, "<pubs>\n  <pub></pub>\n</pubs>").ok());
}

TEST(ValidatorTest, ChecksAttributes) {
  Dtd dtd = ParseOk(R"(
    <!ELEMENT r EMPTY>
    <!ATTLIST r id CDATA #REQUIRED v CDATA #FIXED "1">
  )");
  EXPECT_TRUE(ValidateDocument(dtd, "<r id=\"7\" v=\"1\"/>").ok());
  EXPECT_FALSE(ValidateDocument(dtd, "<r v=\"1\"/>").ok());        // missing id
  EXPECT_FALSE(ValidateDocument(dtd, "<r id=\"7\" v=\"2\"/>").ok());  // FIXED
  EXPECT_FALSE(ValidateDocument(dtd, "<r id=\"7\" x=\"1\"/>").ok());  // undecl
}

TEST(ValidatorTest, GeneratedShakeCorpusIsValid) {
  // The SHAKE generator produces documents valid under the SHAKE DTD -
  // the schema-optimizer experiments depend on this.
  Dtd dtd = ParseOk(kShakeDtd);
  std::string xml = datagen::GenerateShake(60000, 11);
  EXPECT_TRUE(ValidateDocument(dtd, xml, "PLAY").ok());
}

TEST(OptimizerTest, StepTagsAndSatisfiability) {
  Dtd dtd = ParseOk(kShakeDtd);
  auto query = xpath::ParseQuery("//ACT//SPEAKER/text()");
  ASSERT_TRUE(query.ok());
  Result<QueryAnalysis> analysis = AnalyzeQuery(dtd, "PLAY", *query);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->satisfiable);
  ASSERT_EQ(analysis->step_tags.size(), 2u);
  EXPECT_EQ(analysis->step_tags[0], std::vector<std::string>{"ACT"});
  EXPECT_EQ(analysis->step_tags[1], std::vector<std::string>{"SPEAKER"});
}

TEST(OptimizerTest, ProvesUnsatisfiability) {
  Dtd dtd = ParseOk(kShakeDtd);
  // No GHOST element exists.
  auto q1 = xpath::ParseQuery("//GHOST/text()");
  auto a1 = AnalyzeQuery(dtd, "PLAY", *q1);
  ASSERT_TRUE(a1.ok());
  EXPECT_FALSE(a1->satisfiable);
  // SPEAKER can never be a child of ACT.
  auto q2 = xpath::ParseQuery("/PLAY/ACT/SPEAKER");
  auto a2 = AnalyzeQuery(dtd, "PLAY", *q2);
  ASSERT_TRUE(a2.ok());
  EXPECT_FALSE(a2->satisfiable);
  // SPEAKER has no attributes declared.
  auto q3 = xpath::ParseQuery("//SPEAKER[@id]/text()");
  auto a3 = AnalyzeQuery(dtd, "PLAY", *q3);
  ASSERT_TRUE(a3.ok());
  EXPECT_FALSE(a3->satisfiable);
  // SPEECH has element content: text() can never hold.
  auto q4 = xpath::ParseQuery("//SPEECH[text()=1]");
  auto a4 = AnalyzeQuery(dtd, "PLAY", *q4);
  ASSERT_TRUE(a4.ok());
  EXPECT_FALSE(a4->satisfiable);
}

TEST(OptimizerTest, RewritesClosuresToUniqueChildPaths) {
  // The headline rewrite: Q3 becomes Q2 of the paper's Figure 16.
  Dtd dtd = ParseOk(kShakeDtd);
  auto query = xpath::ParseQuery("//ACT//SPEAKER/text()");
  auto analysis = AnalyzeQuery(dtd, "PLAY", *query);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->closure_free_rewrite.has_value());
  EXPECT_EQ(analysis->closure_free_rewrite->ToString(),
            "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()");
  EXPECT_FALSE(analysis->closure_free_rewrite->HasClosure());
}

TEST(OptimizerTest, RewritePreservesPredicates) {
  Dtd dtd = ParseOk(kShakeDtd);
  auto query = xpath::ParseQuery("//SPEECH[LINE%love]/SPEAKER/text()");
  auto analysis = AnalyzeQuery(dtd, "PLAY", *query);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->closure_free_rewrite.has_value());
  EXPECT_EQ(analysis->closure_free_rewrite->ToString(),
            "/PLAY/ACT/SCENE/SPEECH[LINE%\"love\"]/SPEAKER/text()");
}

TEST(OptimizerTest, RewriteEquivalentOnValidDocuments) {
  Dtd dtd = ParseOk(kShakeDtd);
  std::string xml = datagen::GenerateShake(80000, 3);
  auto query = xpath::ParseQuery("//ACT//SPEAKER/text()");
  auto analysis = AnalyzeQuery(dtd, "PLAY", *query);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->closure_free_rewrite.has_value());
  auto original = core::RunQuery("//ACT//SPEAKER/text()", xml);
  auto rewritten =
      core::RunQuery(analysis->closure_free_rewrite->ToString(), xml);
  ASSERT_TRUE(original.ok() && rewritten.ok());
  EXPECT_EQ(original->items, rewritten->items);
  EXPECT_GT(original->items.size(), 0u);
}

TEST(OptimizerTest, RecursiveDtdBlocksRewrite) {
  Dtd dtd = ParseOk(kPubsDtd);
  auto query = xpath::ParseQuery("//pub[year]//book[@id]/title/text()");
  auto analysis = AnalyzeQuery(dtd, "pubs", *query);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->satisfiable);
  EXPECT_FALSE(analysis->closure_free_rewrite.has_value());
}

TEST(OptimizerTest, AmbiguousPathBlocksRewrite) {
  Dtd dtd = ParseOk(R"(
    <!ELEMENT r (a, b)>
    <!ELEMENT a (t?)>
    <!ELEMENT b (t?)>
    <!ELEMENT t (#PCDATA)>
  )");
  auto query = xpath::ParseQuery("//t/text()");
  auto analysis = AnalyzeQuery(dtd, "r", *query);
  ASSERT_TRUE(analysis.ok());
  EXPECT_TRUE(analysis->satisfiable);
  EXPECT_FALSE(analysis->closure_free_rewrite.has_value());  // via a or b
}

TEST(OptimizerTest, WildcardClosureResolvedWhenUnique) {
  Dtd dtd = ParseOk(R"(
    <!ELEMENT r (m)>
    <!ELEMENT m (#PCDATA)>
  )");
  auto query = xpath::ParseQuery("//m/text()");
  auto analysis = AnalyzeQuery(dtd, "r", *query);
  ASSERT_TRUE(analysis.ok());
  ASSERT_TRUE(analysis->closure_free_rewrite.has_value());
  EXPECT_EQ(analysis->closure_free_rewrite->ToString(), "/r/m/text()");
}

TEST(OptimizerTest, UnknownRootIsAnError) {
  Dtd dtd = ParseOk(kShakeDtd);
  auto query = xpath::ParseQuery("//ACT");
  EXPECT_FALSE(AnalyzeQuery(dtd, "NOSUCH", *query).ok());
}

}  // namespace
}  // namespace xsq::dtd
