// Differential tests for tape replay: for every generated corpus
// (SHAKE, NASA, DBLP, PSD, and the recursive Figure-20 structure) and a
// query mix covering both engines, evaluating over a TapeReplayer must
// be indistinguishable from evaluating over a direct SaxParser parse —
// identical items, identical aggregates, and (for the stream itself)
// identical event sequences. A projected tape built for the query set
// must preserve every query's results as well.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/streaming_query.h"
#include "datagen/generators.h"
#include "tape/projection.h"
#include "tape/recorder.h"
#include "tape/replayer.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xsq::tape {
namespace {

struct QueryOutcome {
  std::vector<std::string> items;
  std::optional<double> aggregate;
  bool deterministic_engine = false;
};

QueryOutcome Collect(core::StreamingQuery& query) {
  QueryOutcome outcome;
  while (std::optional<std::string> item = query.NextItem()) {
    outcome.items.push_back(std::move(*item));
  }
  outcome.aggregate = query.final_aggregate();
  outcome.deterministic_engine = query.uses_deterministic_engine();
  return outcome;
}

QueryOutcome RunDirect(const std::string& query_text,
                       const std::string& document) {
  Result<std::unique_ptr<core::StreamingQuery>> query =
      core::StreamingQuery::Open(query_text);
  EXPECT_TRUE(query.ok()) << query_text << ": " << query.status().ToString();
  Status status = (*query)->Push(document);
  EXPECT_TRUE(status.ok()) << query_text << ": " << status.ToString();
  status = (*query)->Close();
  EXPECT_TRUE(status.ok()) << query_text << ": " << status.ToString();
  return Collect(**query);
}

QueryOutcome RunReplay(const std::string& query_text, const Tape& tape) {
  Result<std::unique_ptr<core::StreamingQuery>> query =
      core::StreamingQuery::Open(query_text);
  EXPECT_TRUE(query.ok()) << query_text << ": " << query.status().ToString();
  Status status = Replay(tape, (*query)->event_handler());
  EXPECT_TRUE(status.ok()) << query_text << ": " << status.ToString();
  status = (*query)->FinishEvents();
  EXPECT_TRUE(status.ok()) << query_text << ": " << status.ToString();
  return Collect(**query);
}

void ExpectSameOutcome(const QueryOutcome& direct, const QueryOutcome& replay,
                       const std::string& label) {
  ASSERT_EQ(direct.items.size(), replay.items.size()) << label;
  for (size_t i = 0; i < direct.items.size(); ++i) {
    EXPECT_EQ(direct.items[i], replay.items[i]) << label << " item " << i;
  }
  EXPECT_EQ(direct.aggregate.has_value(), replay.aggregate.has_value())
      << label;
  if (direct.aggregate.has_value() && replay.aggregate.has_value()) {
    EXPECT_DOUBLE_EQ(*direct.aggregate, *replay.aggregate) << label;
  }
}

struct Corpus {
  const char* name;
  std::string xml;
  // Mix of closure-free (XSQ-NC) and closure/predicate (XSQ-F) queries.
  std::vector<std::string> queries;
};

std::vector<Corpus> MakeCorpora() {
  std::vector<Corpus> corpora;
  corpora.push_back({"SHAKE", datagen::GenerateShake(200000, 7),
                     {"/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()",
                      "//ACT//SPEAKER/text()",
                      "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()"}});
  corpora.push_back({"NASA", datagen::GenerateNasa(200000, 7),
                     {"/datasets/dataset/reference/source/other/name/text()",
                      "//other/name/text()"}});
  corpora.push_back({"DBLP", datagen::GenerateDblp(200000, 7),
                     {"/dblp/article/title/text()",
                      "/dblp/inproceedings[author]/title/text()",
                      "//article/year/count()",
                      "//inproceedings[@key]/year/text()"}});
  corpora.push_back(
      {"PSD", datagen::GeneratePsd(200000, 7),
       {"/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author/"
        "text()",
        "//authors/author/text()"}});
  corpora.push_back({"RECURSIVE", datagen::GenerateRecursivePubs(200000, 7),
                     {"//pub[year]//book[@id]/title/text()",
                      "//book/price/sum()",
                      "/pubs/pub/year/text()"}});
  return corpora;
}

TEST(TapeDifferentialTest, ReplayedEventStreamMatchesDirectParse) {
  for (const Corpus& corpus : MakeCorpora()) {
    SCOPED_TRACE(corpus.name);
    xml::RecordingHandler direct;
    xml::SaxParser parser(&direct);
    ASSERT_TRUE(parser.Parse(corpus.xml).ok());

    Result<Tape> tape = RecordDocument(corpus.xml);
    ASSERT_TRUE(tape.ok()) << tape.status().ToString();
    xml::RecordingHandler replayed;
    ASSERT_TRUE(Replay(*tape, &replayed).ok());

    ASSERT_EQ(direct.events.size(), replayed.events.size());
    for (size_t i = 0; i < direct.events.size(); ++i) {
      ASSERT_TRUE(direct.events[i] == replayed.events[i])
          << corpus.name << " event " << i;
    }
  }
}

TEST(TapeDifferentialTest, ReplayResultsMatchDirectParseBothEngines) {
  for (const Corpus& corpus : MakeCorpora()) {
    SCOPED_TRACE(corpus.name);
    Result<Tape> tape = RecordDocument(corpus.xml);
    ASSERT_TRUE(tape.ok()) << tape.status().ToString();

    bool saw_deterministic = false;
    bool saw_nondeterministic = false;
    for (const std::string& query_text : corpus.queries) {
      SCOPED_TRACE(query_text);
      QueryOutcome direct = RunDirect(query_text, corpus.xml);
      QueryOutcome replay = RunReplay(query_text, *tape);
      ExpectSameOutcome(direct, replay,
                        std::string(corpus.name) + " " + query_text);
      EXPECT_EQ(direct.deterministic_engine, replay.deterministic_engine);
      (direct.deterministic_engine ? saw_deterministic
                                   : saw_nondeterministic) = true;
      // Replay should do real work: at least one query per corpus must
      // produce output, or the comparison proves nothing.
    }
    EXPECT_TRUE(saw_deterministic) << corpus.name;
    EXPECT_TRUE(saw_nondeterministic) << corpus.name;
  }
}

TEST(TapeDifferentialTest, SomeQueriesProduceOutput) {
  for (const Corpus& corpus : MakeCorpora()) {
    SCOPED_TRACE(corpus.name);
    size_t total = 0;
    for (const std::string& query_text : corpus.queries) {
      QueryOutcome direct = RunDirect(query_text, corpus.xml);
      total += direct.items.size();
      if (direct.aggregate.has_value()) ++total;
    }
    EXPECT_GT(total, 0u) << corpus.name;
  }
}

TEST(TapeDifferentialTest, ProjectedReplayPreservesQuerySetResults) {
  for (const Corpus& corpus : MakeCorpora()) {
    SCOPED_TRACE(corpus.name);
    std::vector<std::shared_ptr<const core::CompiledPlan>> plans;
    for (const std::string& query_text : corpus.queries) {
      Result<std::shared_ptr<const core::CompiledPlan>> plan =
          core::CompilePlan(query_text);
      ASSERT_TRUE(plan.ok()) << query_text;
      plans.push_back(*std::move(plan));
    }
    ProjectionMask mask = ProjectionMask::FromPlans(plans);
    Result<Tape> projected = RecordDocument(corpus.xml, &mask);
    ASSERT_TRUE(projected.ok()) << projected.status().ToString();

    for (const std::string& query_text : corpus.queries) {
      SCOPED_TRACE(query_text);
      QueryOutcome direct = RunDirect(query_text, corpus.xml);
      QueryOutcome replay = RunReplay(query_text, *projected);
      ExpectSameOutcome(direct, replay,
                        std::string(corpus.name) + " projected " +
                            query_text);
    }
  }
}

TEST(TapeDifferentialTest, ProjectionShrinksSelectiveQuerySets) {
  // A narrow closure-free query set over DBLP should prune most of the
  // stream (record-level selection + payload drops).
  std::string xml = datagen::GenerateDblp(300000, 11);
  Result<Tape> full = RecordDocument(xml);
  ASSERT_TRUE(full.ok());

  std::vector<std::shared_ptr<const core::CompiledPlan>> plans;
  Result<std::shared_ptr<const core::CompiledPlan>> plan =
      core::CompilePlan("/dblp/inproceedings[author]/title/text()");
  ASSERT_TRUE(plan.ok());
  plans.push_back(*std::move(plan));
  ProjectionMask mask = ProjectionMask::FromPlans(plans);
  Result<Tape> projected = RecordDocument(xml, &mask);
  ASSERT_TRUE(projected.ok());

  EXPECT_LT(projected->memory_bytes(), full->memory_bytes());
  EXPECT_LT(projected->event_count(), full->event_count());
  EXPECT_GT(projected->stats().dropped_subtrees, 0u);

  QueryOutcome direct =
      RunDirect("/dblp/inproceedings[author]/title/text()", xml);
  QueryOutcome replay =
      RunReplay("/dblp/inproceedings[author]/title/text()", *projected);
  ExpectSameOutcome(direct, replay, "DBLP figure-19 query");
  EXPECT_FALSE(direct.items.empty());
}

TEST(TapeDifferentialTest, SaveLoadReplayStillMatches) {
  // Persistence must not perturb results: record -> save -> load ->
  // replay equals direct evaluation.
  std::string xml = datagen::GenerateShake(150000, 3);
  Result<Tape> tape = RecordDocument(xml);
  ASSERT_TRUE(tape.ok());
  const char* path = "xsq_tape_diff_persist.bin";
  ASSERT_TRUE(tape->Save(path).ok());
  Result<Tape> loaded = Tape::Load(path);
  std::remove(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  const std::string query_text = "//ACT//SPEAKER/text()";
  QueryOutcome direct = RunDirect(query_text, xml);
  QueryOutcome replay = RunReplay(query_text, *loaded);
  ExpectSameOutcome(direct, replay, "persisted SHAKE");
  EXPECT_FALSE(direct.items.empty());
}

}  // namespace
}  // namespace xsq::tape
