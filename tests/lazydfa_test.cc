#include "lazydfa/lazy_dfa_engine.h"

#include <gtest/gtest.h>

#include "core/result_sink.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq::lazydfa {
namespace {

struct RunResult {
  std::vector<std::string> items;
  size_t dfa_states = 0;
};

RunResult RunQuery(std::string_view query_text, std::string_view xml) {
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  core::CollectingSink sink;
  auto engine = LazyDfaEngine::Create(*query, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  xml::SaxParser parser(engine->get());
  Status status = parser.Parse(xml);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE((*engine)->status().ok());
  return {std::move(sink.items), (*engine)->dfa_state_count()};
}

TEST(LazyDfaTest, RejectsPredicatesAndAggregations) {
  core::CollectingSink sink;
  auto q1 = xpath::ParseQuery("/a[b]/c");
  ASSERT_TRUE(q1.ok());
  EXPECT_EQ(LazyDfaEngine::Create(*q1, &sink).status().code(),
            StatusCode::kNotSupported);
  auto q2 = xpath::ParseQuery("/a/b/count()");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(LazyDfaEngine::Create(*q2, &sink).status().code(),
            StatusCode::kNotSupported);
}

TEST(LazyDfaTest, ChildPathTextOutput) {
  RunResult r = RunQuery("/r/a/text()", "<r><a>1</a><b><a>no</a></b><a>2</a></r>");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "1");
  EXPECT_EQ(r.items[1], "2");
}

TEST(LazyDfaTest, ClosureMatchesAllDepths) {
  RunResult r = RunQuery("//a/text()", "<r><a>1</a><b><a>2</a></b></r>");
  ASSERT_EQ(r.items.size(), 2u);
}

TEST(LazyDfaTest, MixedAxes) {
  RunResult r = RunQuery("/r//a/b/text()",
                   "<r><a><b>1</b></a><x><a><b>2</b></a></x><b>no</b></r>");
  ASSERT_EQ(r.items.size(), 2u);
}

TEST(LazyDfaTest, AttributeOutput) {
  RunResult r = RunQuery("//a/@id", "<r><a id=\"1\"/><a/><a id=\"2\"/></r>");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "1");
}

TEST(LazyDfaTest, ElementOutputNestedMatchesInDocumentOrder) {
  RunResult r = RunQuery("//a", "<a>1<a>2</a></a>");
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "<a>1<a>2</a></a>");
  EXPECT_EQ(r.items[1], "<a>2</a>");
}

TEST(LazyDfaTest, WildcardSteps) {
  RunResult r = RunQuery("/r/*/text()", "<r><a>1</a><b>2</b></r>");
  ASSERT_EQ(r.items.size(), 2u);
}

TEST(LazyDfaTest, RecursiveNestingBeyondQueryDepth) {
  RunResult r = RunQuery("//a//a/text()", "<a><a>1<a>2</a></a></a>");
  ASSERT_EQ(r.items.size(), 2u);
}

TEST(LazyDfaTest, DfaStatesMaterializeLazily) {
  // Only the tag paths actually observed create states.
  RunResult narrow = RunQuery("/r/a/b/text()", "<r><a><b>1</b></a></r>");
  RunResult wide = RunQuery(
      "/r/a/b/text()",
      "<r><a><b>1</b></a><x/><y/><z><q><b>no</b></q></z><a><c/></a></r>");
  EXPECT_GT(wide.dfa_states, narrow.dfa_states);
}

TEST(LazyDfaTest, MemoryGrowsWithDfaNotDocument) {
  Result<xpath::Query> query = xpath::ParseQuery("//a/text()");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  auto engine = LazyDfaEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  // A long flat document with one repeated tag: the DFA stays tiny.
  std::string doc = "<r>";
  for (int i = 0; i < 2000; ++i) doc += "<x>text</x>";
  doc += "</r>";
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse(doc).ok());
  EXPECT_LE((*engine)->dfa_state_count(), 8u);
}

}  // namespace
}  // namespace xsq::lazydfa
