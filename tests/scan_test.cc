// Unit tests for the gulp scan primitives (xml/scan.h) and the parser
// arena (xml/arena.h). The scan functions are exercised through every
// implementation the build provides — scalar, SWAR, and (when compiled
// in) SSE2 — against a brute-force reference, with inputs sized and
// offset to hit the word/vector tails and block-accumulation edges.
#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "xml/arena.h"
#include "xml/scan.h"

namespace xsq::xml {
namespace {

std::vector<ScanImpl> AllImpls() {
  std::vector<ScanImpl> impls = {ScanImpl::kScalar, ScanImpl::kSwar};
  if (SimdScanAvailable()) impls.push_back(ScanImpl::kSimd);
  return impls;
}

class ScanImplTest : public ::testing::TestWithParam<ScanImpl> {
 protected:
  void SetUp() override {
    saved_ = CurrentScanImpl();
    ASSERT_TRUE(SetScanImpl(GetParam()));
  }
  void TearDown() override { SetScanImpl(saved_); }

 private:
  ScanImpl saved_ = ScanImpl::kScalar;
};

size_t ReferenceFindTextSpecial(std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (s[i] == '<' || s[i] == '&' || s[i] == ']') return i;
  }
  return std::string_view::npos;
}

size_t ReferenceFindTagSpecial(std::string_view s, size_t from) {
  for (size_t i = from; i < s.size(); ++i) {
    if (s[i] == '>' || s[i] == '<' || s[i] == '"' || s[i] == '\'') return i;
  }
  return std::string_view::npos;
}

TEST_P(ScanImplTest, FindTextSpecialMatchesReference) {
  // Place each structural byte at every offset of a 40-byte window so
  // hits land in the first gulp, a later gulp, and the scalar tail.
  for (char special : {'<', '&', ']'}) {
    for (size_t at = 0; at < 40; ++at) {
      std::string s(40, 'x');
      s[at] = special;
      for (size_t from : {size_t{0}, size_t{1}, size_t{8}, size_t{17}}) {
        EXPECT_EQ(FindTextSpecial(s, from), ReferenceFindTextSpecial(s, from))
            << "special=" << special << " at=" << at << " from=" << from;
      }
    }
  }
}

TEST_P(ScanImplTest, FindTagSpecialMatchesReference) {
  for (char special : {'>', '<', '"', '\''}) {
    for (size_t at = 0; at < 40; ++at) {
      std::string s(40, 'x');
      s[at] = special;
      EXPECT_EQ(FindTagSpecial(s, 0), ReferenceFindTagSpecial(s, 0))
          << "special=" << special << " at=" << at;
    }
  }
}

TEST_P(ScanImplTest, FindReturnsNposWhenAbsent) {
  std::string s(100, 'x');
  EXPECT_EQ(FindTextSpecial(s, 0), std::string_view::npos);
  EXPECT_EQ(FindTagSpecial(s, 0), std::string_view::npos);
  EXPECT_EQ(FindTextSpecial("", 0), std::string_view::npos);
  EXPECT_EQ(FindTextSpecial(s, s.size()), std::string_view::npos);
}

TEST_P(ScanImplTest, FindReturnsFirstOfSeveral) {
  std::string s(64, 'x');
  s[20] = '&';
  s[21] = '<';
  s[40] = ']';
  EXPECT_EQ(FindTextSpecial(s, 0), 20u);
  EXPECT_EQ(FindTextSpecial(s, 21), 21u);
  EXPECT_EQ(FindTextSpecial(s, 22), 40u);
}

TEST_P(ScanImplTest, CountNewlinesMatchesReference) {
  // Sizes straddle the 8/16-byte gulp widths and the 255-block fold.
  for (size_t size : {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{9},
                      size_t{15}, size_t{16}, size_t{17}, size_t{2039},
                      size_t{2040}, size_t{2041}, size_t{5000}}) {
    std::string s(size, 'x');
    size_t expected = 0;
    for (size_t i = 0; i < size; i += 3) {
      s[i] = '\n';
      ++expected;
    }
    EXPECT_EQ(CountNewlines(s), expected) << "size=" << size;
  }
}

TEST_P(ScanImplTest, CountNewlinesAllAndNone) {
  EXPECT_EQ(CountNewlines(std::string(4100, '\n')), 4100u);
  EXPECT_EQ(CountNewlines(std::string(4100, 'x')), 0u);
  EXPECT_EQ(CountNewlines(""), 0u);
}

TEST_P(ScanImplTest, CountCodepointsMatchesReference) {
  // Mix of 1-, 2-, 3- and 4-byte UTF-8 sequences.
  const std::string piece = "a\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80";  // 4 cps
  for (size_t reps : {size_t{1}, size_t{2}, size_t{5}, size_t{300}}) {
    std::string s;
    for (size_t i = 0; i < reps; ++i) s += piece;
    EXPECT_EQ(CountCodepoints(s), 4 * reps) << "reps=" << reps;
  }
  EXPECT_EQ(CountCodepoints(""), 0u);
  EXPECT_EQ(CountCodepoints("ascii only"), 10u);
}

INSTANTIATE_TEST_SUITE_P(AllImpls, ScanImplTest,
                         ::testing::ValuesIn(AllImpls()));

TEST(ScanDispatchTest, BestImplIsAvailable) {
  EXPECT_TRUE(SetScanImpl(BestScanImpl()));
  EXPECT_EQ(CurrentScanImpl(), BestScanImpl());
}

TEST(ScanDispatchTest, SimdSelectionHonorsAvailability) {
  const ScanImpl saved = CurrentScanImpl();
  EXPECT_EQ(SetScanImpl(ScanImpl::kSimd), SimdScanAvailable());
  SetScanImpl(saved);
}

// ----------------------------------------------------------- the arena

TEST(ArenaTest, AllocationsAreStableAcrossGrowth) {
  Arena arena;
  std::vector<std::string_view> views;
  for (int i = 0; i < 1000; ++i) {
    views.push_back(arena.Store(std::string(100, 'a' + (i % 26))));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(views[i], std::string(100, 'a' + (i % 26))) << i;
  }
}

TEST(ArenaTest, MarkRewindReclaimsStackwise) {
  Arena arena;
  Arena::Mark outer = arena.mark();
  arena.Store(std::string(64, 'x'));
  Arena::Mark inner = arena.mark();
  std::string_view kept = arena.Store("kept");
  arena.Rewind(inner);
  // The next allocation reuses the rewound region.
  std::string_view reused = arena.Store("RE");
  EXPECT_EQ(reused.data(), kept.data());
  arena.Rewind(outer);
  EXPECT_EQ(arena.allocated_bytes(), 0u);
}

TEST(ArenaTest, ResetRetainsBoundedCapacity) {
  Arena arena;
  for (int i = 0; i < 100; ++i) {
    arena.Store(std::string(64 * 1024, 'x'));
  }
  EXPECT_GT(arena.allocated_bytes(), Arena::kMaxRetainedBytes);
  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  // After Reset the arena holds at most the retention cap of capacity;
  // fresh allocations under the cap must not regrow past it.
  arena.Store(std::string(1000, 'y'));
  EXPECT_LE(arena.allocated_bytes(), Arena::kMaxRetainedBytes);
}

TEST(ArenaStringTest, AppendGrowsContiguously) {
  Arena arena;
  ArenaString s(&arena);
  std::string expected;
  for (int i = 0; i < 200; ++i) {
    std::string piece = "piece" + std::to_string(i);
    s.Append(piece);
    expected += piece;
  }
  EXPECT_EQ(s.view(), expected);
}

TEST(ArenaStringTest, PushBackAndClear) {
  Arena arena;
  ArenaString s(&arena);
  for (char c = 'a'; c <= 'z'; ++c) s.PushBack(c);
  EXPECT_EQ(s.view(), "abcdefghijklmnopqrstuvwxyz");
  s.Clear();
  EXPECT_TRUE(s.empty());
  s.Append("fresh");
  EXPECT_EQ(s.view(), "fresh");
}

}  // namespace
}  // namespace xsq::xml
