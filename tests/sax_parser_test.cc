#include "xml/sax_parser.h"

#include <gtest/gtest.h>

#include "common/strings.h"
#include "test_util.h"
#include "xml/events.h"
#include "xml/writer.h"

namespace xsq::xml {
namespace {

std::vector<Event> ParseEvents(std::string_view text, Status* status) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  *status = parser.Parse(text);
  // These tests assert element structure; document markers and doctype
  // capture have their own tests below.
  return handler.element_events();
}

std::vector<Event> ParseOk(std::string_view text) {
  Status status;
  std::vector<Event> events = ParseEvents(text, &status);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return events;
}

Status ParseStatus(std::string_view text) {
  Status status;
  ParseEvents(text, &status);
  return status;
}

TEST(SaxParserTest, SingleEmptyElement) {
  auto events = ParseOk("<a></a>");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, Event::Type::kBegin);
  EXPECT_EQ(events[0].tag, "a");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_EQ(events[1].type, Event::Type::kEnd);
  EXPECT_EQ(events[1].tag, "a");
  EXPECT_EQ(events[1].depth, 1);
}

TEST(SaxParserTest, SelfClosingElement) {
  auto events = ParseOk("<a><b/></a>");
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[1].type, Event::Type::kBegin);
  EXPECT_EQ(events[1].tag, "b");
  EXPECT_EQ(events[1].depth, 2);
  EXPECT_EQ(events[2].type, Event::Type::kEnd);
  EXPECT_EQ(events[2].tag, "b");
}

TEST(SaxParserTest, TextEventCarriesEnclosingTagAndDepth) {
  auto events = ParseOk("<a><b>hello</b></a>");
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[2].type, Event::Type::kText);
  EXPECT_EQ(events[2].tag, "b");
  EXPECT_EQ(events[2].text, "hello");
  EXPECT_EQ(events[2].depth, 2);
}

TEST(SaxParserTest, MixedContentSplitsTextAtMarkup) {
  auto events = ParseOk("<a>x<b/>y</a>");
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[1].text, "x");
  EXPECT_EQ(events[4].text, "y");
  EXPECT_EQ(events[4].tag, "a");
}

TEST(SaxParserTest, Attributes) {
  auto events = ParseOk(R"(<a id="1" name='two'><b x="a&amp;b"/></a>)");
  ASSERT_EQ(events[0].attributes.size(), 2u);
  EXPECT_EQ(events[0].attributes[0].name, "id");
  EXPECT_EQ(events[0].attributes[0].value, "1");
  EXPECT_EQ(events[0].attributes[1].name, "name");
  EXPECT_EQ(events[0].attributes[1].value, "two");
  EXPECT_EQ(events[1].attributes[0].value, "a&b");
}

TEST(SaxParserTest, AttributeWithWhitespaceAroundEquals) {
  auto events = ParseOk(R"(<a id = "7"></a>)");
  ASSERT_EQ(events[0].attributes.size(), 1u);
  EXPECT_EQ(events[0].attributes[0].value, "7");
}

TEST(SaxParserTest, GreaterThanInsideAttributeValue) {
  auto events = ParseOk(R"(<a cond="x>y"></a>)");
  EXPECT_EQ(events[0].attributes[0].value, "x>y");
}

TEST(SaxParserTest, PredefinedEntities) {
  auto events = ParseOk("<a>&lt;&gt;&amp;&apos;&quot;</a>");
  EXPECT_EQ(events[1].text, "<>&'\"");
}

TEST(SaxParserTest, NumericCharacterReferences) {
  auto events = ParseOk("<a>&#65;&#x42;&#x3b1;</a>");
  EXPECT_EQ(events[1].text,
            "AB\xce\xb1");  // alpha encodes to two UTF-8 bytes
}

TEST(SaxParserTest, CdataIsVerbatimAndMergedWithText) {
  auto events = ParseOk("<a>x<![CDATA[<not&markup>]]>y</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "x<not&markup>y");
}

TEST(SaxParserTest, CommentsDoNotSplitTextRuns) {
  auto events = ParseOk("<a>x<!-- ignore <b> -->y</a>");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].text, "xy");
}

TEST(SaxParserTest, ProcessingInstructionsAndXmlDeclSkipped) {
  auto events =
      ParseOk("<?xml version=\"1.0\"?><a><?target data?><b/></a>");
  ASSERT_EQ(events.size(), 4u);
}

TEST(SaxParserTest, DoctypeWithInternalSubsetSkipped) {
  auto events = ParseOk(
      "<!DOCTYPE a [ <!ELEMENT a (b)> <!ENTITY e \"x>y\"> ]><a><b/></a>");
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].tag, "a");
}

TEST(SaxParserTest, WhitespaceOnlyTextIsReported) {
  auto events = ParseOk("<a> <b/> </a>");
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[1].type, Event::Type::kText);
  EXPECT_EQ(events[1].text, " ");
}

TEST(SaxParserTest, DepthTracksNesting) {
  auto events = ParseOk("<a><b><c></c></b><b/></a>");
  EXPECT_EQ(events[2].depth, 3);  // <c>
  EXPECT_EQ(events[6].depth, 2);  // second <b>
}

TEST(SaxParserTest, Utf8TagsAndTextPassThrough) {
  auto events = ParseOk("<caf\xc3\xa9>\xc3\xbc</caf\xc3\xa9>");
  EXPECT_EQ(events[0].tag, "caf\xc3\xa9");
  EXPECT_EQ(events[1].text, "\xc3\xbc");
}

// --- error cases ---

TEST(SaxParserErrorTest, MismatchedEndTag) {
  Status status = ParseStatus("<a><b></a></b>");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("does not match"), std::string::npos);
}

TEST(SaxParserErrorTest, UnclosedElement) {
  Status status = ParseStatus("<a><b></b>");
  EXPECT_EQ(status.code(), StatusCode::kParseError);
  EXPECT_NE(status.message().find("not closed"), std::string::npos);
}

TEST(SaxParserErrorTest, MultipleRootElements) {
  EXPECT_EQ(ParseStatus("<a></a><b></b>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, TextOutsideRoot) {
  EXPECT_EQ(ParseStatus("hello<a></a>").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("<a></a>trailing").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, EmptyDocument) {
  EXPECT_EQ(ParseStatus("").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("  \n ").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, UnknownEntity) {
  EXPECT_EQ(ParseStatus("<a>&nosuch;</a>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, UnterminatedEntity) {
  EXPECT_EQ(ParseStatus("<a>&amp</a>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, InvalidCharacterReference) {
  EXPECT_EQ(ParseStatus("<a>&#xZZ;</a>").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("<a>&#1114112;</a>").code(),
            StatusCode::kParseError);  // beyond U+10FFFF
  EXPECT_EQ(ParseStatus("<a>&#xD800;</a>").code(),
            StatusCode::kParseError);  // surrogate
}

TEST(SaxParserErrorTest, DuplicateAttribute) {
  EXPECT_EQ(ParseStatus(R"(<a x="1" x="2"></a>)").code(),
            StatusCode::kParseError);
}

TEST(SaxParserErrorTest, BadAttributeSyntax) {
  EXPECT_EQ(ParseStatus("<a x></a>").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("<a x=1></a>").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus(R"(<a x="1"y="2"></a>)").code(),
            StatusCode::kParseError);
}

TEST(SaxParserErrorTest, RawLessThanInAttributeValue) {
  EXPECT_EQ(ParseStatus(R"(<a x="<"></a>)").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, InvalidElementName) {
  EXPECT_EQ(ParseStatus("<1a></1a>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, EndTagWithNoOpenElement) {
  EXPECT_EQ(ParseStatus("</a>").code(), StatusCode::kParseError);
}

TEST(SaxParserErrorTest, TruncatedMarkupAtEof) {
  EXPECT_EQ(ParseStatus("<a><b").code(), StatusCode::kParseError);
  EXPECT_EQ(ParseStatus("<a><!-- never closed").code(),
            StatusCode::kParseError);
}

TEST(SaxParserErrorTest, ErrorsCarryLineAndColumn) {
  Status status = ParseStatus("<a>\n<b></c>\n</a>");
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(SaxParserErrorTest, CdataOutsideRoot) {
  EXPECT_EQ(ParseStatus("<![CDATA[x]]><a/>").code(), StatusCode::kParseError);
}

// --- incremental feeding ---

TEST(SaxParserChunkTest, FeedByteByByteMatchesWholeParse) {
  const std::string doc =
      "<?xml version=\"1.0\"?><root a=\"1\"><x>te&amp;xt<![CDATA[cd]]>"
      "</x><!--c--><y b='2'>z</y></root>";
  RecordingHandler whole;
  {
    SaxParser parser(&whole);
    ASSERT_TRUE(parser.Parse(doc).ok());
  }
  RecordingHandler chunked;
  {
    SaxParser parser(&chunked);
    for (char c : doc) {
      ASSERT_TRUE(parser.Feed(std::string_view(&c, 1)).ok());
    }
    ASSERT_TRUE(parser.Finish().ok());
  }
  ASSERT_EQ(whole.events.size(), chunked.events.size());
  for (size_t i = 0; i < whole.events.size(); ++i) {
    EXPECT_EQ(whole.events[i].type, chunked.events[i].type) << i;
    EXPECT_EQ(whole.events[i].tag, chunked.events[i].tag) << i;
    EXPECT_EQ(whole.events[i].text, chunked.events[i].text) << i;
    EXPECT_EQ(whole.events[i].depth, chunked.events[i].depth) << i;
  }
}

class ChunkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChunkPropertyTest, RandomChunkingIsEquivalentToWholeParse) {
  const uint64_t seed = GetParam();
  const std::string doc = testutil::RandomDocument(seed);
  RecordingHandler whole;
  {
    SaxParser parser(&whole);
    ASSERT_TRUE(parser.Parse(doc).ok()) << doc;
  }
  RecordingHandler chunked;
  SaxParser parser(&chunked);
  SplitMix64 rng(seed + 99);
  size_t pos = 0;
  while (pos < doc.size()) {
    size_t len = 1 + rng.Below(17);
    len = std::min(len, doc.size() - pos);
    ASSERT_TRUE(parser.Feed(std::string_view(doc).substr(pos, len)).ok());
    pos += len;
  }
  ASSERT_TRUE(parser.Finish().ok());
  ASSERT_EQ(whole.events.size(), chunked.events.size());
  for (size_t i = 0; i < whole.events.size(); ++i) {
    EXPECT_EQ(whole.events[i].text, chunked.events[i].text);
    EXPECT_EQ(whole.events[i].tag, chunked.events[i].tag);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChunkPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{25}));

class RoundTripPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTripPropertyTest, SerializeThenReparseYieldsSameEvents) {
  const std::string doc = testutil::RandomDocument(GetParam());
  RecordingHandler first;
  {
    SaxParser parser(&first);
    ASSERT_TRUE(parser.Parse(doc).ok());
  }
  const std::string serialized = SerializeEvents(first.events);
  RecordingHandler second;
  {
    SaxParser parser(&second);
    ASSERT_TRUE(parser.Parse(serialized).ok()) << serialized;
  }
  ASSERT_EQ(first.events.size(), second.events.size());
  for (size_t i = 0; i < first.events.size(); ++i) {
    EXPECT_EQ(first.events[i].tag, second.events[i].tag);
    EXPECT_EQ(first.events[i].text, second.events[i].text);
    EXPECT_EQ(first.events[i].depth, second.events[i].depth);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest,
                         ::testing::Range(uint64_t{0}, uint64_t{25}));

TEST(SaxParserTest, BytesConsumedAndPosition) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Parse("<a>\nxy\n</a>").ok());
  EXPECT_EQ(parser.bytes_consumed(), 11u);
  EXPECT_EQ(parser.line(), 3);
}

TEST(SaxParserTest, ResetAllowsReuse) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(parser.Parse("<a/>").ok());
  parser.Reset();
  ASSERT_TRUE(parser.Parse("<b/>").ok());
  // Two full documents, each with begin/end markers around one element.
  ASSERT_EQ(handler.events.size(), 8u);
  EXPECT_EQ(handler.events[0].type, Event::Type::kDocumentBegin);
  EXPECT_EQ(handler.events[3].type, Event::Type::kDocumentEnd);
  EXPECT_EQ(handler.events[5].tag, "b");
}

TEST(SaxParserTest, RecordingHandlerCapturesCompleteStream) {
  RecordingHandler handler;
  SaxParser parser(&handler);
  ASSERT_TRUE(
      parser.Parse("<!DOCTYPE a [<!ELEMENT a (#PCDATA)>]><a>x</a>").ok());
  ASSERT_EQ(handler.events.size(), 6u);
  EXPECT_EQ(handler.events[0].type, Event::Type::kDocumentBegin);
  EXPECT_EQ(handler.events[1].type, Event::Type::kDoctype);
  EXPECT_EQ(handler.events[1].tag, "a");
  EXPECT_EQ(handler.events[1].text, "<!ELEMENT a (#PCDATA)>");
  EXPECT_EQ(handler.events[2].type, Event::Type::kBegin);
  EXPECT_EQ(handler.events[3].type, Event::Type::kText);
  EXPECT_EQ(handler.events[4].type, Event::Type::kEnd);
  EXPECT_EQ(handler.events[5].type, Event::Type::kDocumentEnd);
  EXPECT_EQ(handler.element_events().size(), 3u);
}

}  // namespace
}  // namespace xsq::xml
