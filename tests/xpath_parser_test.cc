#include <gtest/gtest.h>

#include "xpath/ast.h"
#include "xpath/value_compare.h"

namespace xsq::xpath {
namespace {

Query ParseOk(std::string_view text) {
  Result<Query> query = ParseQuery(text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  return query.ok() ? *std::move(query) : Query{};
}

TEST(XPathParserTest, SimpleChildPath) {
  Query q = ParseOk("/a/b/c");
  ASSERT_EQ(q.steps.size(), 3u);
  EXPECT_EQ(q.steps[0].axis, Axis::kChild);
  EXPECT_EQ(q.steps[0].node_test, "a");
  EXPECT_EQ(q.steps[2].node_test, "c");
  EXPECT_EQ(q.output.kind, OutputKind::kElement);
  EXPECT_FALSE(q.HasClosure());
  EXPECT_FALSE(q.HasPredicates());
}

TEST(XPathParserTest, ClosureAxis) {
  Query q = ParseOk("//book//name");
  ASSERT_EQ(q.steps.size(), 2u);
  EXPECT_EQ(q.steps[0].axis, Axis::kClosure);
  EXPECT_EQ(q.steps[1].axis, Axis::kClosure);
  EXPECT_TRUE(q.HasClosure());
}

TEST(XPathParserTest, WildcardNodeTest) {
  Query q = ParseOk("/*/b");
  EXPECT_TRUE(q.steps[0].IsWildcard());
}

TEST(XPathParserTest, AttributePredicateExistence) {
  Query q = ParseOk("/book[@id]");
  ASSERT_EQ(q.steps[0].predicates.size(), 1u);
  const Predicate& p = q.steps[0].predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kAttribute);
  EXPECT_EQ(p.attribute, "id");
  EXPECT_FALSE(p.has_comparison);
}

TEST(XPathParserTest, AttributePredicateComparison) {
  Query q = ParseOk("/book[@id<=10]");
  const Predicate& p = q.steps[0].predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kAttribute);
  EXPECT_TRUE(p.has_comparison);
  EXPECT_EQ(p.op, CompareOp::kLe);
  EXPECT_EQ(p.literal, "10");
  ASSERT_TRUE(p.literal_number.has_value());
  EXPECT_DOUBLE_EQ(*p.literal_number, 10.0);
}

TEST(XPathParserTest, TextPredicate) {
  Query q = ParseOk("/year[text()=2000]");
  const Predicate& p = q.steps[0].predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kText);
  EXPECT_EQ(p.op, CompareOp::kEq);
  EXPECT_EQ(p.literal, "2000");
}

TEST(XPathParserTest, ChildExistencePredicate) {
  Query q = ParseOk("/book[author]");
  const Predicate& p = q.steps[0].predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kChild);
  EXPECT_EQ(p.child_tag, "author");
  EXPECT_FALSE(p.has_comparison);
}

TEST(XPathParserTest, ChildAttributePredicate) {
  Query q = ParseOk("/pub[book@id<=10]");
  const Predicate& p = q.steps[0].predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kChildAttribute);
  EXPECT_EQ(p.child_tag, "book");
  EXPECT_EQ(p.attribute, "id");
  EXPECT_EQ(p.op, CompareOp::kLe);
}

TEST(XPathParserTest, ChildTextPredicate) {
  Query q = ParseOk("/book[year<2000]");
  const Predicate& p = q.steps[0].predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kChildText);
  EXPECT_EQ(p.child_tag, "year");
  EXPECT_EQ(p.op, CompareOp::kLt);
}

TEST(XPathParserTest, ContainsViaPercent) {
  // The paper writes contains as '%': /SPEECH[LINE%love].
  Query q = ParseOk("/SPEECH[LINE%love]/SPEAKER/text()");
  const Predicate& p = q.steps[0].predicates[0];
  EXPECT_EQ(p.kind, PredicateKind::kChildText);
  EXPECT_EQ(p.op, CompareOp::kContains);
  EXPECT_EQ(p.literal, "love");
  EXPECT_FALSE(p.literal_number.has_value());
}

TEST(XPathParserTest, ContainsViaKeyword) {
  Query q = ParseOk("/a[b contains love]");
  EXPECT_EQ(q.steps[0].predicates[0].op, CompareOp::kContains);
  EXPECT_EQ(q.steps[0].predicates[0].literal, "love");
}

TEST(XPathParserTest, QuotedLiterals) {
  Query q = ParseOk("/a[b='hello world']");
  EXPECT_EQ(q.steps[0].predicates[0].literal, "hello world");
  q = ParseOk("/a[b=\"x]y\"]");
  EXPECT_EQ(q.steps[0].predicates[0].literal, "x]y");
}

TEST(XPathParserTest, AllComparisonOperators) {
  struct Case {
    const char* text;
    CompareOp op;
  };
  const Case cases[] = {
      {"/a[b=1]", CompareOp::kEq},  {"/a[b!=1]", CompareOp::kNe},
      {"/a[b<1]", CompareOp::kLt},  {"/a[b<=1]", CompareOp::kLe},
      {"/a[b>1]", CompareOp::kGt},  {"/a[b>=1]", CompareOp::kGe},
      {"/a[b%x]", CompareOp::kContains},
  };
  for (const Case& c : cases) {
    Query q = ParseOk(c.text);
    EXPECT_EQ(q.steps[0].predicates[0].op, c.op) << c.text;
  }
}

TEST(XPathParserTest, MultiplePredicatesOnOneStep) {
  Query q = ParseOk("/book[@id][year>2000][author]");
  ASSERT_EQ(q.steps[0].predicates.size(), 3u);
  EXPECT_EQ(q.steps[0].predicates[0].kind, PredicateKind::kAttribute);
  EXPECT_EQ(q.steps[0].predicates[1].kind, PredicateKind::kChildText);
  EXPECT_EQ(q.steps[0].predicates[2].kind, PredicateKind::kChild);
}

TEST(XPathParserTest, OutputExpressions) {
  EXPECT_EQ(ParseOk("/a/text()").output.kind, OutputKind::kText);
  EXPECT_EQ(ParseOk("/a/count()").output.kind, OutputKind::kCount);
  EXPECT_EQ(ParseOk("/a/sum()").output.kind, OutputKind::kSum);
  EXPECT_EQ(ParseOk("/a/avg()").output.kind, OutputKind::kAvg);
  EXPECT_EQ(ParseOk("/a/min()").output.kind, OutputKind::kMin);
  EXPECT_EQ(ParseOk("/a/max()").output.kind, OutputKind::kMax);
  Query q = ParseOk("/a/@id");
  EXPECT_EQ(q.output.kind, OutputKind::kAttribute);
  EXPECT_EQ(q.output.attribute, "id");
}

TEST(XPathParserTest, TextWithoutParensIsAChildTag) {
  Query q = ParseOk("/a[text=1]");
  EXPECT_EQ(q.steps[0].predicates[0].kind, PredicateKind::kChildText);
  EXPECT_EQ(q.steps[0].predicates[0].child_tag, "text");
}

TEST(XPathParserTest, PaperQueries) {
  // Every query string used in the paper's examples and experiments.
  const char* queries[] = {
      "//book[year>2000]/name/text()",
      "/pub[year=2002]/book[price<11]/author",
      "//pub[year=2002]//book[author]//name",
      "/pub[year>2000]/book[author]/name/text()",
      "//pub[year>2000]//book[author]//name/text()",
      "//pub[year>2000]//book[author]//name/count()",
      "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
      "/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()",
      "//ACT//SPEAKER/text()",
      "/datasets/dataset/reference/source/other/name/text()",
      "/dblp/article/title/text()",
      "/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author/text()",
      "/dblp/inproceedings[author]/title/text()",
      "//pub[year]//book[@id]/title/text()",
  };
  for (const char* text : queries) {
    Result<Query> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  }
}

TEST(XPathParserTest, ToStringRoundTrips) {
  const char* queries[] = {
      "/a/b/c",
      "//a[@id=1]//b[c>2]/text()",
      "/pub[year=2002]/book[price<11]/author",
      "/a[b%love]/@id",
      "/a[text()=5]/count()",
      "/*[b@x!=3]/sum()",
  };
  for (const char* text : queries) {
    Query q1 = ParseOk(text);
    Query q2 = ParseOk(q1.ToString());
    EXPECT_EQ(q1.ToString(), q2.ToString()) << text;
    ASSERT_EQ(q1.steps.size(), q2.steps.size());
    EXPECT_EQ(q1.output.kind, q2.output.kind);
  }
}

TEST(XPathParserErrorTest, Rejections) {
  const char* bad[] = {
      "",                 // empty
      "a/b",              // missing leading slash
      "/",                // dangling slash
      "/a/",              // dangling slash
      "/a[",              // unterminated predicate
      "/a[]",             // empty predicate
      "/a[@]",            // missing attribute name
      "/a[b='x]",         // unterminated string
      "/a[b=]",           // missing constant
      "/a/text()/b",      // output not at end
      "/a/@id/b",         // output not at end
      "/a/nosuchfn()",    // unknown output function
      "//@id",            // '//' before output expression
      "/a[b ?? 3]",       // bad operator
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseQuery(text).ok()) << text;
  }
}

TEST(ValueCompareTest, NumericComparisons) {
  Predicate p;
  p.kind = PredicateKind::kText;
  p.has_comparison = true;
  p.literal = "10";
  p.literal_number = 10.0;
  p.op = CompareOp::kLt;
  EXPECT_TRUE(CompareValue("9.5", p));
  EXPECT_FALSE(CompareValue("10", p));
  EXPECT_FALSE(CompareValue("abc", p));  // non-numeric: relational false
  p.op = CompareOp::kGe;
  EXPECT_TRUE(CompareValue(" 10 ", p));  // whitespace trimmed for numbers
  p.op = CompareOp::kEq;
  EXPECT_TRUE(CompareValue("10.0", p));  // numeric equality, not string
  EXPECT_TRUE(CompareValue(" 10", p));
  EXPECT_FALSE(CompareValue("x", p));
  p.op = CompareOp::kNe;
  EXPECT_TRUE(CompareValue("11", p));
  EXPECT_TRUE(CompareValue("x", p));  // string inequality fallback
}

TEST(ValueCompareTest, StringComparisons) {
  Predicate p;
  p.kind = PredicateKind::kText;
  p.has_comparison = true;
  p.literal = "foo";
  p.op = CompareOp::kEq;
  EXPECT_TRUE(CompareValue("foo", p));
  EXPECT_FALSE(CompareValue(" foo ", p));  // strings are not trimmed
  p.op = CompareOp::kLt;
  EXPECT_FALSE(CompareValue("abc", p));  // non-numeric relational is false
  p.op = CompareOp::kContains;
  EXPECT_TRUE(CompareValue("xfoox", p));
  EXPECT_FALSE(CompareValue("fo", p));
}

}  // namespace
}  // namespace xsq::xpath
