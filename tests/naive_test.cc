#include "naive/naive_engine.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/result_sink.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq::naive {
namespace {

struct RunResult {
  std::vector<std::string> items;
  std::optional<double> aggregate;
  size_t peak_memory = 0;
};

RunResult RunQuery(std::string_view query_text, std::string_view xml) {
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  core::CollectingSink sink;
  auto engine = NaiveEngine::Create(*query, &sink);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  xml::SaxParser parser(engine->get());
  Status status = parser.Parse(xml);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE((*engine)->status().ok());
  return {std::move(sink.items), sink.aggregate,
          (*engine)->memory().peak_bytes()};
}

TEST(NaiveEngineTest, BasicQuery) {
  RunResult r = RunQuery("/r/a[ok]/t/text()",
                   "<r><a><t>keep</t><ok/></a><a><t>drop</t></a></r>");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "keep");
}

TEST(NaiveEngineTest, ClosureFirstStepFindsNestedMatches) {
  // The outer candidate subtree covers the inner pub; results must not
  // be duplicated and must include inner-chain-only matches.
  const char* doc =
      "<root><pub><year>2002</year>"
      "<pub><year>1999</year><name>inner</name></pub>"
      "<name>outer</name></pub></root>";
  RunResult r = RunQuery("//pub[year=2002]//name/text()", doc);
  ASSERT_EQ(r.items.size(), 2u);
  EXPECT_EQ(r.items[0], "inner");
  EXPECT_EQ(r.items[1], "outer");
}

TEST(NaiveEngineTest, SeparateCandidatesEvaluateIndependently) {
  const char* doc =
      "<r><x><p><q>1</q></p></x><p><q>2</q></p></r>";
  RunResult r = RunQuery("//p/q/text()", doc);
  ASSERT_EQ(r.items.size(), 2u);
}

TEST(NaiveEngineTest, AggregationAcrossCandidates) {
  const char* doc = "<r><p><v>1</v></p><x/><p><v>2</v><v>4</v></p></r>";
  RunResult r = RunQuery("//p/v/sum()", doc);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 7.0);
  r = RunQuery("//p/v/count()", doc);
  EXPECT_DOUBLE_EQ(*r.aggregate, 3.0);
  r = RunQuery("//p/v/avg()", doc);
  EXPECT_DOUBLE_EQ(*r.aggregate, 7.0 / 3.0);
  r = RunQuery("//p/v/min()", doc);
  EXPECT_DOUBLE_EQ(*r.aggregate, 1.0);
  r = RunQuery("//p/v/max()", doc);
  EXPECT_DOUBLE_EQ(*r.aggregate, 4.0);
}

TEST(NaiveEngineTest, NonCandidateContentIsNotBuffered) {
  std::string doc = "<r>";
  for (int i = 0; i < 500; ++i) doc += "<skip>data</skip>";
  doc += "<p><q>hit</q></p></r>";
  RunResult r = RunQuery("//p/q/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_LT(r.peak_memory, 1000u);
}

TEST(NaiveEngineTest, BuffersWholeCandidateSubtreeUnlikeXsq) {
  // The strawman's weakness (Section 3.1): it buffers the entire <a>
  // even though the query needs almost none of it.
  std::string doc = "<r><a><ok/><t>x</t>";
  for (int i = 0; i < 500; ++i) doc += "<junk>filler filler</junk>";
  doc += "</a></r>";

  RunResult naive_run = RunQuery("//a[ok]/t/text()", doc);
  ASSERT_EQ(naive_run.items.size(), 1u);

  Result<xpath::Query> query = xpath::ParseQuery("//a[ok]/t/text()");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  auto xsq = core::XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(xsq.ok());
  xml::SaxParser parser(xsq->get());
  ASSERT_TRUE(parser.Parse(doc).ok());

  EXPECT_GT(naive_run.peak_memory, 10000u);
  EXPECT_LT((*xsq)->memory().peak_bytes(), 100u);
}

TEST(NaiveEngineTest, ChildAxisFirstStepOnlyMatchesRoot) {
  RunResult r = RunQuery("/p/q/text()", "<p><q>yes</q><x><p><q>no</q></p></x></p>");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "yes");
}

TEST(NaiveEngineTest, ElementOutput) {
  RunResult r = RunQuery("//a[b]", "<r><a><b/>x</a><a>y</a></r>");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a><b></b>x</a>");
}

}  // namespace
}  // namespace xsq::naive
