// Verifies that XSQ-F's buffer operations match the paper's worked
// narration of Example 1 (Section 1) and Example 6 (Section 4.3).
#include "core/trace.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "xml/sax_parser.h"

namespace xsq::core {
namespace {

constexpr const char* kFig1 =
    "<root><pub>"
    "<book id=\"1\"><price>12.00</price><name>First</name>"
    "<author>A</author><price type=\"discount\">10.00</price></book>"
    "<book id=\"2\"><price>14.00</price><name>Second</name>"
    "<author>A</author><author>B</author>"
    "<price type=\"discount\">12.00</price></book>"
    "<year>2002</year>"
    "</pub></root>";

constexpr const char* kFig2 =
    "<root><pub>"
    "<book><name>X</name><author>A</author></book>"
    "<book><name>Y</name>"
    "<pub><book><name>Z</name><author>B</author></book>"
    "<year>1999</year></pub>"
    "</book>"
    "<year>2002</year>"
    "</pub></root>";

RecordingTrace RunTraced(const char* query_text, const char* xml) {
  RecordingTrace trace;
  Result<xpath::Query> query = xpath::ParseQuery(query_text);
  EXPECT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqEngine::Create(*query, &sink);
  EXPECT_TRUE(engine.ok());
  (*engine)->set_trace(&trace);
  xml::SaxParser parser(engine->get());
  EXPECT_TRUE(parser.Parse(xml).ok());
  EXPECT_TRUE((*engine)->status().ok());
  return trace;
}

size_t CountKind(const RecordingTrace& trace, BufferOp::Kind kind) {
  return trace.OfKind(kind).size();
}

TEST(TraceTest, Example1Narration) {
  // Section 1, Example 1: three authors are buffered (A of book 1;
  // A and B of book 2); the two authors of book 2 are removed when
  // </book> proves [price<11] false; author A is flushed when the
  // year satisfies [year=2002]; exactly one item is emitted.
  RecordingTrace trace =
      RunTraced("/root/pub[year=2002]/book[price<11]/author", kFig1);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kEnqueue), 3u);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kClear), 2u);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kFlush), 1u);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kEmit), 1u);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kDiscard), 2u);

  // Author A is first buffered under the book BPDT ([price<11] still
  // undecided), then uploaded to the pub BPDT - bpdt(2,3), pub entered with /root
  // known true - when the 10.00 price
  // arrives, exactly as the example walks through.
  auto uploads = trace.OfKind(BufferOp::Kind::kUpload);
  bool a_uploaded_to_pub = false;
  for (const BufferOp& op : uploads) {
    if (op.value.find(">A<") != std::string::npos &&
        op.bpdt == "bpdt(2,3)") {
      a_uploaded_to_pub = true;
    }
  }
  EXPECT_TRUE(a_uploaded_to_pub);

  // The cleared items are the book-2 authors.
  auto clears = trace.OfKind(BufferOp::Kind::kClear);
  ASSERT_EQ(clears.size(), 2u);
  EXPECT_NE(clears[0].value.find("author"), std::string::npos);
}

TEST(TraceTest, Example1EnqueueTargetsTheUndecidedBpdt) {
  RecordingTrace trace =
      RunTraced("/root/pub[year=2002]/book[price<11]/author", kFig1);
  // All three enqueues land in the book BPDT's buffer: when each
  // author streams past, [price<11] is the lowest undecided predicate.
  for (const BufferOp& op : trace.OfKind(BufferOp::Kind::kEnqueue)) {
    EXPECT_EQ(op.bpdt, "bpdt(3,6)") << op.ToString();
  }
}

TEST(TraceTest, Example6SelectiveClear) {
  // Section 4.3, Example 6: when the inner pub fails [year=2002], its
  // clear must not delete the copy of Z claimed through the outer pub;
  // Z is emitted exactly once, X likewise.
  RecordingTrace trace =
      RunTraced("//pub[year=2002]//book[author]//name", kFig2);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kEmit), 2u);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kDiscard), 1u);  // only Y
  bool y_cleared = false;
  bool z_cleared = false;
  for (const BufferOp& op : trace.OfKind(BufferOp::Kind::kClear)) {
    if (op.value.find(">Y<") != std::string::npos) y_cleared = true;
    if (op.value.find(">Z<") != std::string::npos) z_cleared = true;
  }
  EXPECT_TRUE(y_cleared);
  // Z loses SOME claims (the failing chains), but the emit above
  // proves the surviving chain outweighed them.
  (void)z_cleared;
}

TEST(TraceTest, FullyProvedItemsFlushWithoutBuffering) {
  RecordingTrace trace = RunTraced("/r/a/text()", "<r><a>x</a></r>");
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kEnqueue), 0u);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kFlush), 1u);
  EXPECT_EQ(CountKind(trace, BufferOp::Kind::kEmit), 1u);
}

TEST(TraceTest, OpsRenderReadably) {
  BufferOp op;
  op.kind = BufferOp::Kind::kUpload;
  op.bpdt = "bpdt(1,1)";
  op.value = "<author>A</author>";
  EXPECT_EQ(op.ToString(), "upload @bpdt(1,1)  [<author>A</author>]");
  EXPECT_STREQ(BufferOpKindName(BufferOp::Kind::kClear), "clear");
}

TEST(TraceTest, DisabledTraceCostsNothingAndChangesNothing) {
  Result<xpath::Query> query =
      xpath::ParseQuery("/root/pub[year=2002]/book[price<11]/author");
  ASSERT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse(kFig1).ok());
  ASSERT_EQ(sink.items.size(), 1u);
}

}  // namespace
}  // namespace xsq::core
