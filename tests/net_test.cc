// Tests for the TCP front-end: net::LineProtocol, net::Server,
// net::Client — protocol parity with the stdin transport, bounded
// buffers, idle reaping, load shedding, disconnect-driven cancellation,
// the GET /metrics scrape path, client retries, and a concurrent soak
// with injected faults (mid-query disconnects, half-open peers,
// oversized lines, slow readers).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <mutex>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoints.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/line_protocol.h"
#include "net/server.h"
#include "service/query_service.h"

namespace xsq {
namespace {

using net::Client;
using net::ClientConfig;
using net::LineProtocol;
using net::Server;
using net::ServerConfig;
using service::QueryService;
using service::ServiceConfig;

// ---------------------------------------------------------------------------
// Raw blocking socket, for the fault-shaped interactions net::Client
// deliberately cannot produce (abrupt disconnects, half-open peers,
// unread floods, oversized lines).
class RawSocket {
 public:
  explicit RawSocket(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
    timeval tv{5, 0};  // reads bounded so a server bug fails, not hangs
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawSocket() { Close(); }

  bool connected() const { return connected_; }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  bool SendAll(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                         MSG_NOSIGNAL);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  // Reads until `lines` newline-terminated lines arrived or EOF/timeout.
  std::string ReadLines(size_t lines) {
    std::string out;
    size_t seen = 0;
    char buf[4096];
    while (seen < lines) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      for (ssize_t i = 0; i < n; ++i) {
        if (buf[i] == '\n') ++seen;
      }
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  // Reads to EOF (or the receive timeout).
  std::string ReadAll() {
    std::string out;
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    return out;
  }

  // True when the server has closed its side (recv returns 0).
  bool AtEof() {
    char buf[256];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout: still open
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

struct Harness {
  explicit Harness(ServiceConfig service_config = ServiceConfig(),
                   ServerConfig server_config = ServerConfig()) {
    service = std::make_unique<QueryService>(service_config);
    auto created = Server::Create(service.get(), server_config);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    server = *std::move(created);
  }
  ~Harness() {
    server->Stop();
    service->Shutdown();
  }

  ClientConfig client_config() const {
    ClientConfig config;
    config.port = server->port();
    return config;
  }

  // Spins (bounded) until `predicate` holds; returns whether it did.
  template <typename Predicate>
  bool WaitFor(Predicate predicate, int timeout_ms = 5000) {
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return predicate();
  }

  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;
};

// A document big enough that its evaluation spans many cancellation
// sampling intervals.
std::string BigDocument(int elements) {
  std::string doc = "<r>";
  for (int i = 0; i < elements; ++i) {
    doc += "<a><b>payload text that the engine has to scan ";
    doc += std::to_string(i);
    doc += "</b></a>";
  }
  doc += "</r>";
  return doc;
}

// ---------------------------------------------------------------------------
// Protocol parity and basic serving.

TEST(NetServerTest, ServesTheLineProtocol) {
  Harness harness;
  Client client(harness.client_config());

  auto open = client.Request("OPEN //a/text()");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_TRUE(open->status.ok());
  const std::string id = open->ok_payload;
  EXPECT_FALSE(id.empty());

  auto push = client.Request("PUSH " + id + " <r><a>one</a><a>two</a></r>");
  ASSERT_TRUE(push.ok());
  EXPECT_TRUE(push->status.ok());

  auto close = client.Request("CLOSE " + id);
  ASSERT_TRUE(close.ok());
  EXPECT_TRUE(close->status.ok());
  ASSERT_EQ(close->lines.size(), 2u);
  EXPECT_EQ(close->lines[0], "ITEM one");
  EXPECT_EQ(close->lines[1], "ITEM two");
}

TEST(NetServerTest, SocketTranscriptMatchesStdinTranscript) {
  // The same commands through a LineProtocol directly (the stdin path)
  // and through the socket must produce identical bytes.
  Harness harness;
  const std::string commands[] = {"OPEN //a/text()",
                                  // No DRAIN here: its reply depends on
                                  // whether the async evaluation has
                                  // produced the item yet, so it is not
                                  // transcript-deterministic.
                                  "PUSH 1 <r><a>hi</a></r>",
                                  "CLOSE 1", "STATS"};

  std::string expected;
  {
    QueryService local_service{ServiceConfig()};
    LineProtocol local(&local_service);
    for (const std::string& command : commands) {
      local.HandleLine(command, &expected);
    }
  }

  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  std::string wire;
  for (const std::string& command : commands) wire += command + "\n";
  ASSERT_TRUE(raw.SendAll(wire));
  // Expected replies: OK 1 / OK / ITEM hi + OK / (CLOSE: no items left) OK /
  // STAT block + OK. Count lines in `expected` to know what to read.
  size_t expected_lines = 0;
  for (char c : expected) expected_lines += c == '\n';
  std::string actual = raw.ReadLines(expected_lines);
  // The STAT block differs in connection counters (the socket path
  // accepted a connection; the local path did not), so compare only up
  // to the stats block's first divergence-free prefix: every line
  // before "STAT connections_accepted".
  size_t cut_expected = expected.find("STAT connections_accepted");
  size_t cut_actual = actual.find("STAT connections_accepted");
  ASSERT_NE(cut_expected, std::string::npos);
  ASSERT_NE(cut_actual, std::string::npos);
  EXPECT_EQ(actual.substr(0, cut_actual), expected.substr(0, cut_expected));
}

TEST(NetServerTest, PipelinedCommandsAnswerInOrder) {
  Harness harness;
  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(
      raw.SendAll("OPEN //a/text()\nPUSH 1 <r><a>x</a></r>\nCLOSE 1\nQUIT\n"));
  std::string replies = raw.ReadAll();
  EXPECT_EQ(replies, "OK 1\nOK\nITEM x\nOK\nOK\n");
  EXPECT_TRUE(raw.AtEof());
}

TEST(NetServerTest, QuitClosesTheConnection) {
  Harness harness;
  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.SendAll("QUIT\n"));
  EXPECT_EQ(raw.ReadAll(), "OK\n");
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.server->connection_count() == 0; }));
}

TEST(NetServerTest, UnknownVerbAnswersErrAndKeepsServing) {
  Harness harness;
  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.SendAll("FROB 1\nSTATS\nQUIT\n"));
  std::string replies = raw.ReadAll();
  EXPECT_NE(replies.find("ERR InvalidArgument: unknown command 'FROB'"),
            std::string::npos);
  EXPECT_NE(replies.find("STAT sessions_opened"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Bounded buffers and deadlines.

TEST(NetServerTest, OversizedLineAnswersErrAndCloses) {
  ServerConfig server_config;
  server_config.max_line_bytes = 128;
  Harness harness(ServiceConfig(), server_config);

  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  std::string big(4096, 'x');
  ASSERT_TRUE(raw.SendAll("PUSH 1 " + big + "\n"));
  std::string replies = raw.ReadAll();
  EXPECT_NE(replies.find("ERR LimitExceeded: line exceeds --max-line-bytes="),
            std::string::npos);
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.service->stats().net_overrun_closed == 1; }));
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.server->connection_count() == 0; }));
}

TEST(NetServerTest, IdleConnectionIsReaped) {
  ServerConfig server_config;
  server_config.idle_timeout_ms = 100;
  Harness harness(ServiceConfig(), server_config);

  RawSocket raw(harness.server->port());  // half-open peer: never speaks
  ASSERT_TRUE(raw.connected());
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.service->stats().net_idle_closed == 1; }));
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.server->connection_count() == 0; }));
  EXPECT_TRUE(raw.AtEof());
}

TEST(NetServerTest, SlowReaderHitsOutputBoundAndIsClosed) {
  ServerConfig server_config;
  server_config.max_output_buffer_bytes = 2048;
  Harness harness(ServiceConfig(), server_config);

  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  // Ask for many METRICS blocks without ever reading: the kernel socket
  // buffer fills, the server-side output buffer hits its bound.
  std::string flood;
  for (int i = 0; i < 64; ++i) flood += "METRICS\n";
  ASSERT_TRUE(raw.SendAll(flood));
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.service->stats().net_overrun_closed >= 1; }));
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.server->connection_count() == 0; }));
}

// ---------------------------------------------------------------------------
// Load shedding.

TEST(NetServerTest, ProtocolConnectionBeyondMaxConnectionsIsShed) {
  ServerConfig server_config;
  server_config.max_connections = 1;
  Harness harness(ServiceConfig(), server_config);

  RawSocket holder(harness.server->port());
  ASSERT_TRUE(holder.connected());
  ASSERT_TRUE(holder.SendAll("STATS\n"));
  holder.ReadLines(1);  // make sure the server registered the connection

  // The shed decision lands when the transport is sniffed, not at
  // accept: the TCP connect succeeds, and the first protocol line draws
  // the shed ERR plus a close. (An HTTP probe on the same socket would
  // have been served; see HttpProbesAreServedWhileShedding.)
  RawSocket shed(harness.server->port());
  ASSERT_TRUE(shed.connected());
  ASSERT_TRUE(shed.SendAll("STATS\n"));
  std::string reply = shed.ReadAll();
  EXPECT_NE(reply.find("ERR ResourceExhausted"), std::string::npos);
  EXPECT_TRUE(shed.AtEof());
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.service->stats().connections_shed == 1; }));
  // The held connection is untouched.
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.server->connection_count() == 1; }));
  ASSERT_TRUE(holder.SendAll("STATS\n"));
  EXPECT_NE(holder.ReadLines(1).find("STAT"), std::string::npos);
}

TEST(NetServerTest, SaturatedServiceShedsNewProtocolConnections) {
  ServiceConfig service_config;
  service_config.max_sessions = 1;
  Harness harness(service_config);

  Client client(harness.client_config());
  auto open = client.Request("OPEN //a");
  ASSERT_TRUE(open.ok());
  ASSERT_TRUE(open->status.ok());  // the only session slot is now taken

  RawSocket shed(harness.server->port());
  ASSERT_TRUE(shed.connected());
  ASSERT_TRUE(shed.SendAll("STATS\n"));
  EXPECT_NE(shed.ReadAll().find("ERR ResourceExhausted"), std::string::npos);
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.service->stats().connections_shed >= 1; }));
}

TEST(NetServerTest, HttpProbesAreServedWhileShedding) {
  // The satellite fix this pins: health probes must not be casualties
  // of the capacity limit they exist to report. With the server at
  // max_connections, a protocol newcomer is shed, but GET /healthz and
  // GET /metrics on the very same port are answered (503/200), never
  // closed raw.
  ServerConfig server_config;
  server_config.max_connections = 1;
  Harness harness(ServiceConfig(), server_config);

  RawSocket holder(harness.server->port());
  ASSERT_TRUE(holder.connected());
  ASSERT_TRUE(holder.SendAll("STATS\n"));
  holder.ReadLines(1);

  RawSocket shed(harness.server->port());
  ASSERT_TRUE(shed.connected());
  ASSERT_TRUE(shed.SendAll("STATS\n"));
  EXPECT_NE(shed.ReadAll().find("ERR ResourceExhausted"), std::string::npos);

  RawSocket probe(harness.server->port());
  ASSERT_TRUE(probe.connected());
  ASSERT_TRUE(probe.SendAll("GET /healthz HTTP/1.0\r\n\r\n"));
  std::string healthz = probe.ReadAll();
  EXPECT_EQ(healthz.rfind("HTTP/1.0 503", 0), 0u) << healthz;
  EXPECT_NE(healthz.find("shedding"), std::string::npos) << healthz;

  RawSocket scrape(harness.server->port());
  ASSERT_TRUE(scrape.connected());
  ASSERT_TRUE(scrape.SendAll("GET /metrics HTTP/1.0\r\n\r\n"));
  std::string metrics = scrape.ReadAll();
  EXPECT_EQ(metrics.rfind("HTTP/1.0 200 OK", 0), 0u) << metrics;
  EXPECT_NE(metrics.find("xsq_connections_accepted"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Disconnect-driven cancellation.

TEST(NetServerTest, DisconnectCancelsInFlightQuery) {
  ServiceConfig service_config;
  service_config.num_workers = 1;
  Harness harness(service_config);

  RawSocket peer(harness.server->port());
  ASSERT_TRUE(peer.connected());
  std::string doc = BigDocument(20000);
  ASSERT_TRUE(peer.SendAll("OPEN //a/b/text()\n"));
  ASSERT_NE(peer.ReadLines(1).find("OK"), std::string::npos);
  ASSERT_TRUE(
      peer.SendAll("PUSH 1 " + doc + "\nCLOSE 1\n"));
  // Vanish without reading the answer: the poll thread must cancel the
  // in-flight evaluation and reclaim the session.
  peer.Close();

  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.service->stats().disconnect_cancels >= 1; }));
  EXPECT_TRUE(
      harness.WaitFor([&] { return harness.service->active_sessions() == 0; }));
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.server->connection_count() == 0; }));
}

TEST(NetServerTest, DisconnectOfIdleSessionStillReclaimsIt) {
  Harness harness;
  RawSocket peer(harness.server->port());
  ASSERT_TRUE(peer.connected());
  ASSERT_TRUE(peer.SendAll("OPEN //a\n"));
  ASSERT_NE(peer.ReadLines(1).find("OK 1"), std::string::npos);
  EXPECT_EQ(harness.service->active_sessions(), 1u);
  peer.Close();
  EXPECT_TRUE(
      harness.WaitFor([&] { return harness.service->active_sessions() == 0; }));
}

// ---------------------------------------------------------------------------
// GET /metrics.

TEST(NetServerTest, HttpMetricsServesTheExposition) {
  Harness harness;
  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.SendAll("GET /metrics HTTP/1.0\r\n\r\n"));
  std::string response = raw.ReadAll();
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
  EXPECT_NE(response.find("Content-Type: text/plain"), std::string::npos);
  size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::string body = response.substr(body_at + 4);
  EXPECT_NE(body.find("# TYPE xsq_request_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(body.find("xsq_connections_accepted"), std::string::npos);
  EXPECT_TRUE(raw.AtEof());  // HTTP/1.0: one exchange, then close
}

TEST(NetServerTest, HttpMetricsBodyMatchesMetricsVerb) {
  Harness harness;
  // Drive one document through so the histograms are non-trivial.
  Client client(harness.client_config());
  auto open = client.Request("OPEN //a/text()");
  ASSERT_TRUE(open.ok() && open->status.ok());
  client.Request("PUSH " + open->ok_payload + " <r><a>v</a></r>");
  client.Request("CLOSE " + open->ok_payload);

  auto verb = client.Request("METRICS");
  ASSERT_TRUE(verb.ok() && verb->status.ok());

  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.SendAll("GET /metrics HTTP/1.0\r\n\r\n"));
  std::string response = raw.ReadAll();
  size_t body_at = response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  std::string body = response.substr(body_at + 4);

  // Same exposition, line for line, modulo counters the scrape itself
  // moved (the HTTP connection increments connection counters, and the
  // scrape may land in a different latency bucket refresh).
  std::vector<std::string> verb_names;
  for (const std::string& line : verb->lines) {
    ASSERT_EQ(line.rfind("METRIC ", 0), 0u);
    std::string payload = line.substr(7);
    size_t space = payload.find(' ');
    verb_names.push_back(payload.substr(0, space));
  }
  std::vector<std::string> http_names;
  size_t begin = 0;
  while (begin < body.size()) {
    size_t end = body.find('\n', begin);
    std::string line = body.substr(begin, end - begin);
    begin = end + 1;
    size_t space = line.find(' ');
    http_names.push_back(line.substr(0, space));
  }
  EXPECT_EQ(verb_names, http_names);
}

TEST(NetServerTest, HttpUnknownPathIs404) {
  Harness harness;
  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  ASSERT_TRUE(raw.SendAll("GET /nope HTTP/1.0\r\n\r\n"));
  EXPECT_EQ(raw.ReadAll().rfind("HTTP/1.0 404", 0), 0u);
}

TEST(NetServerTest, HealthzReportsServingDrainingAndShedding) {
  {
    Harness harness;
    RawSocket raw(harness.server->port());
    ASSERT_TRUE(raw.connected());
    ASSERT_TRUE(raw.SendAll("GET /healthz HTTP/1.0\r\n\r\n"));
    std::string response = raw.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
    EXPECT_NE(response.find("\r\n\r\nok\n"), std::string::npos) << response;
  }
  {
    // A saturated service answers 503 shedding — the same condition
    // under which AcceptPending sheds new protocol connections, so the
    // probe must be accepted before the saturation happens.
    ServiceConfig service_config;
    service_config.max_sessions = 1;
    Harness harness(service_config);
    RawSocket raw(harness.server->port());
    ASSERT_TRUE(raw.connected());
    ASSERT_TRUE(harness.WaitFor(
        [&] { return harness.server->connection_count() == 1; }));
    Client client(harness.client_config());
    auto open = client.Request("OPEN //a/text()");
    ASSERT_TRUE(open.ok() && open->status.ok());
    ASSERT_TRUE(raw.SendAll("GET /healthz HTTP/1.0\r\n\r\n"));
    std::string response = raw.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 503", 0), 0u) << response;
    EXPECT_NE(response.find("shedding"), std::string::npos) << response;
  }
  {
    // A draining server answers 503 draining on connections it still
    // serves (the listener itself is closed, so the probe must connect
    // before BeginDrain).
    Harness harness;
    RawSocket raw(harness.server->port());
    ASSERT_TRUE(raw.connected());
    // connect() succeeding only means the kernel queued the handshake;
    // wait for the accept, or BeginDrain kills the listener first.
    ASSERT_TRUE(harness.WaitFor(
        [&] { return harness.server->connection_count() == 1; }));
    harness.server->BeginDrain();
    ASSERT_TRUE(raw.SendAll("GET /healthz HTTP/1.0\r\n\r\n"));
    std::string response = raw.ReadAll();
    EXPECT_EQ(response.rfind("HTTP/1.0 503", 0), 0u) << response;
    EXPECT_NE(response.find("draining"), std::string::npos) << response;
  }
}

// ---------------------------------------------------------------------------
// Pub/sub over the wire.

// Splits newline-terminated bytes into EVENT frames and everything
// else. EVENT frames are asynchronous (dispatcher threads), so their
// position relative to replies is non-deterministic; their content and
// count are not.
void PartitionFrames(const std::string& bytes, std::vector<std::string>* events,
                     std::vector<std::string>* replies) {
  size_t begin = 0;
  for (;;) {
    size_t newline = bytes.find('\n', begin);
    if (newline == std::string::npos) break;
    std::string line = bytes.substr(begin, newline - begin);
    begin = newline + 1;
    if (line.rfind("EVENT ", 0) == 0) {
      events->push_back(std::move(line));
    } else {
      replies->push_back(std::move(line));
    }
  }
}

TEST(NetServerTest, PubSubTranscriptMatchesStdinTranscript) {
  // SUBSCRIBE / PUBLISH / UNSUBSCRIBE through a local LineProtocol (the
  // stdin path, sink installed as xsqd does) and through the socket
  // must produce identical reply bytes and identical EVENT frames.
  Harness harness;
  const std::string commands[] = {
      "SUBSCRIBE //a/text()",
      "SUBSCRIBE //a/count()",
      "PUBLISH <r><a>x</a></r>",
      "UNSUBSCRIBE 1",
      "PUBLISH <r><a>x</a></r>",  // only the count subscription remains
      "UNSUBSCRIBE 99",           // unknown id: deterministic ERR
  };

  std::string expected;
  std::vector<std::string> expected_events;
  {
    QueryService local_service{ServiceConfig()};
    LineProtocol local(&local_service);
    std::mutex mu;
    local.SetEventSink([&](std::string_view frame) {
      std::lock_guard<std::mutex> lock(mu);
      expected_events.emplace_back(frame);
    });
    for (const std::string& command : commands) {
      local.HandleLine(command, &expected);
    }
    // EVENT delivery is asynchronous; tearing down the protocol first
    // would drop undelivered frames (by design). Wait for the three
    // deterministic frames: ITEM + AGG from the first publish, AGG
    // alone from the second.
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (expected_events.size() >= 3) break;
      }
      if (std::chrono::steady_clock::now() >= deadline) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    local.ReleaseAll();
    local_service.Shutdown();
  }
  size_t expected_lines = 0;
  for (char c : expected) expected_lines += c == '\n';

  RawSocket raw(harness.server->port());
  ASSERT_TRUE(raw.connected());
  std::string wire;
  for (const std::string& command : commands) wire += command + "\n";
  ASSERT_TRUE(raw.SendAll(wire));
  std::string actual = raw.ReadLines(expected_lines + expected_events.size());

  std::vector<std::string> actual_events;
  std::vector<std::string> actual_replies;
  PartitionFrames(actual, &actual_events, &actual_replies);
  std::vector<std::string> expected_replies;
  {
    std::vector<std::string> none;
    PartitionFrames(expected, &none, &expected_replies);
    EXPECT_TRUE(none.empty());  // stdin replies never carry EVENT lines
  }
  EXPECT_EQ(actual_replies, expected_replies);
  // Frame order within one subscriber queue is FIFO-deterministic, but
  // sort anyway so the assertion pins content, not scheduling.
  std::sort(expected_events.begin(), expected_events.end());
  std::sort(actual_events.begin(), actual_events.end());
  EXPECT_EQ(actual_events, expected_events);
  EXPECT_EQ(expected_events.size(), 3u);  // ITEM + AGG, then AGG alone
}

TEST(NetServerTest, SubscribedConnectionReceivesEventsFromOtherConnections) {
  Harness harness;
  RawSocket follower(harness.server->port());
  ASSERT_TRUE(follower.connected());
  ASSERT_TRUE(follower.SendAll("SUBSCRIBE //a/text()\n"));
  std::string reply = follower.ReadLines(1);
  ASSERT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  const std::string sub_id = reply.substr(3, reply.size() - 4);

  // A different connection publishes; the follower sent nothing more.
  Client client(harness.client_config());
  auto publish = client.Request("PUBLISH <r><a>pushed</a></r>");
  ASSERT_TRUE(publish.ok() && publish->status.ok());
  EXPECT_EQ(publish->ok_payload.rfind("matched=1 ", 0), 0u)
      << publish->ok_payload;

  EXPECT_EQ(follower.ReadLines(1), "EVENT " + sub_id + " ITEM pushed\n");

  // Disconnect deregisters the subscriber and its subscriptions.
  EXPECT_EQ(harness.service->stats().subscriptions_active, 1u);
  follower.Close();
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.service->stats().subscriptions_active == 0; }));
  auto republish = client.Request("PUBLISH <r><a>nobody</a></r>");
  ASSERT_TRUE(republish.ok() && republish->status.ok());
  EXPECT_EQ(republish->ok_payload.rfind("matched=0 ", 0), 0u)
      << republish->ok_payload;
}

TEST(NetServerTest, EventFramesLandBetweenReplyBlocksNeverInsideThem) {
  // The ordering guarantee (see net/line_protocol.h): one HandleLine's
  // whole reply block is queued atomically, and asynchronous EVENT
  // frames ship only between blocks. So a subscriber streaming requests
  // on one connection while another connection publishes must see (a) a
  // reply transcript byte-identical to an EVENT-free stdin run and (b)
  // every EVENT frame at a block boundary — never between a payload
  // line and its terminator.
  constexpr int kCycles = 8;
  constexpr int kPublishes = 16;
  std::vector<std::string> commands = {"SUBSCRIBE //a/text()"};
  for (int i = 1; i <= kCycles; ++i) {
    commands.push_back("OPEN //b/text()");
    commands.push_back("PUSH " + std::to_string(i) + " <r><b>p</b></r>");
    commands.push_back("CLOSE " + std::to_string(i));
  }

  std::string expected;
  {
    QueryService local_service{ServiceConfig()};
    LineProtocol local(&local_service);
    local.SetEventSink([](std::string_view) {});  // no publisher here
    for (const std::string& command : commands) {
      local.HandleLine(command, &expected);
    }
    local.ReleaseAll();
    local_service.Shutdown();
  }
  size_t expected_lines = 0;
  for (char c : expected) expected_lines += c == '\n';

  Harness harness;
  RawSocket follower(harness.server->port());
  ASSERT_TRUE(follower.connected());
  ASSERT_TRUE(follower.SendAll(commands[0] + "\n"));
  std::string sub_reply = follower.ReadLines(1);
  ASSERT_EQ(sub_reply.rfind("OK ", 0), 0u) << sub_reply;

  std::thread publisher([&harness] {
    Client client(harness.client_config());
    for (int i = 0; i < kPublishes; ++i) {
      auto published = client.Request("PUBLISH <r><a>evt</a></r>");
      ASSERT_TRUE(published.ok() && published->status.ok());
    }
  });
  std::string wire;
  for (size_t i = 1; i < commands.size(); ++i) wire += commands[i] + "\n";
  ASSERT_TRUE(follower.SendAll(wire));
  // Everything still owed on the follower's wire: the remaining reply
  // lines plus one EVENT frame per publish.
  std::string rest = follower.ReadLines(expected_lines - 1 + kPublishes);
  publisher.join();
  std::string actual = sub_reply + rest;

  // (a) Reply parity with the stdin run, EVENT frames stripped.
  std::vector<std::string> events;
  std::vector<std::string> replies;
  PartitionFrames(actual, &events, &replies);
  std::vector<std::string> expected_replies;
  {
    std::vector<std::string> none;
    PartitionFrames(expected, &none, &expected_replies);
    ASSERT_TRUE(none.empty());
  }
  EXPECT_EQ(replies, expected_replies);
  ASSERT_EQ(events.size(), static_cast<size_t>(kPublishes));
  for (const std::string& event : events) {
    EXPECT_EQ(event.substr(event.find(" ITEM ")), " ITEM evt") << event;
  }

  // (b) Block contiguity: an EVENT line's predecessor is a terminator
  // (OK/ERR), another EVENT, or nothing — never a payload line.
  std::string previous;
  size_t begin = 0;
  while (begin < actual.size()) {
    size_t end = actual.find('\n', begin);
    ASSERT_NE(end, std::string::npos);
    std::string line = actual.substr(begin, end - begin);
    begin = end + 1;
    if (line.rfind("EVENT ", 0) == 0) {
      bool at_boundary = previous.empty() || previous == "OK" ||
                         previous.rfind("OK ", 0) == 0 ||
                         previous.rfind("ERR ", 0) == 0 ||
                         previous.rfind("EVENT ", 0) == 0;
      EXPECT_TRUE(at_boundary)
          << "EVENT frame interleaved inside a reply block, after: "
          << previous;
    }
    previous = std::move(line);
  }
}

// ---------------------------------------------------------------------------
// net::Client behavior.

TEST(NetClientTest, VerbTableClassifiesEveryRetryClass) {
  using net::VerbRetryClass;
  // Idempotent: a replay leaves server state unchanged. RECORD is
  // idempotent *by key*: re-recording the same name with the same bytes
  // installs an identical tape.
  for (const char* line :
       {"STATS", "METRICS", "RUNCACHED 1 doc", "RECORD doc <r/>"}) {
    EXPECT_EQ(Client::RetryClassFor(line), VerbRetryClass::kIdempotent)
        << line;
    EXPECT_TRUE(Client::IsIdempotent(line)) << line;
  }
  // Non-idempotent: a replay changes state; the caller decides.
  for (const char* line : {"OPEN //a", "PUSH 1 <r/>", "DRAIN 1", "CLOSE 1",
                           "EVICT doc", "CANCEL 1", "QUIT"}) {
    EXPECT_EQ(Client::RetryClassFor(line), VerbRetryClass::kNonIdempotent)
        << line;
    EXPECT_FALSE(Client::IsIdempotent(line)) << line;
  }
  // Never-retried: a replay is externally visible (double-delivered
  // EVENT frames, duplicate standing queries).
  for (const char* line :
       {"PUBLISH <r/>", "SUBSCRIBE //a", "UNSUBSCRIBE 1"}) {
    EXPECT_EQ(Client::RetryClassFor(line), VerbRetryClass::kNeverRetry)
        << line;
    EXPECT_FALSE(Client::IsIdempotent(line)) << line;
  }
  // Unknown (future) verbs get the conservative class.
  EXPECT_EQ(Client::RetryClassFor("FROB 1"),
            VerbRetryClass::kNonIdempotent);
  EXPECT_EQ(Client::RetryClassFor(""), VerbRetryClass::kNonIdempotent);
}

TEST(NetClientTest, CountersTrackConnectsReconnectsAndRetries) {
  Harness harness;
  Client client(harness.client_config());
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_EQ(client.counters().connects, 1u);
  EXPECT_EQ(client.counters().reconnects, 0u);

  // QUIT makes the server close; the next idempotent request finds the
  // dead socket, reconnects, and retries.
  ASSERT_TRUE(client.Request("QUIT").ok());
  auto stats = client.Request("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->status.ok());
  EXPECT_GE(client.counters().connects, 2u);
  EXPECT_GE(client.counters().reconnects, 1u);
  EXPECT_GE(client.counters().retries, 1u);
  EXPECT_EQ(client.counters().shed_retries, 0u);
}

TEST(NetClientTest, DecodesErrRepliesIntoStatusCodes) {
  Harness harness;
  Client client(harness.client_config());
  auto response = client.Request("PUSH 99 <r/>");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status.code(), StatusCode::kInvalidArgument);
  auto parse = client.Request("OPEN ///");
  ASSERT_TRUE(parse.ok());
  EXPECT_FALSE(parse->status.ok());
}

TEST(NetClientTest, NonIdempotentVerbsDoNotRetryOnTransportFailure) {
  // No server: the connect fails. A non-idempotent verb must surface
  // the first failure instead of retrying.
  ClientConfig config;
  config.port = 1;  // nothing listens on port 1 for this uid
  config.connect_timeout_ms = 200;
  config.max_retries = 3;
  config.backoff_base_ms = 1;
  Client client(config);
  auto t0 = std::chrono::steady_clock::now();
  auto response = client.Request("PUSH 1 <r/>");
  EXPECT_FALSE(response.ok());
  // One attempt, no backoff sleeps: fast failure.
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(2));
}

TEST(NetClientTest, IdempotentVerbRetriesThroughShedding) {
  ServerConfig server_config;
  server_config.max_connections = 1;
  Harness harness(ServiceConfig(), server_config);

  // Occupy the only slot, then release it shortly after the client's
  // first attempt has been shed.
  auto holder = std::make_unique<RawSocket>(harness.server->port());
  ASSERT_TRUE(holder->connected());
  ASSERT_TRUE(holder->SendAll("STATS\n"));
  holder->ReadLines(1);

  std::thread releaser([&harness, &holder] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    holder->SendAll("QUIT\n");
    holder->ReadLines(1);
    holder->Close();
    (void)harness;
  });

  ClientConfig config = harness.client_config();
  config.max_retries = 8;
  config.backoff_base_ms = 40;
  config.backoff_max_ms = 120;
  Client client(config);
  auto response = client.Request("STATS");
  releaser.join();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->status.ok());
  EXPECT_GT(response->attempts, 1);
  EXPECT_GE(harness.service->stats().connections_shed, 1u);
  // The shed arrived as an "ERR ResourceExhausted" reply (the server
  // answers before closing), so the retry is accounted as honoring a
  // shed, not as fighting a dead transport.
  EXPECT_GE(client.counters().retries, 1u);
  EXPECT_GE(client.counters().shed_retries, 1u);
}

// ---------------------------------------------------------------------------
// The soak: many concurrent clients, every fault class at once.

TEST(NetSoakTest, ConcurrentClientsWithInjectedFaults) {
  ServiceConfig service_config;
  service_config.num_workers = 4;
  service_config.default_deadline_ms = 10000;
  ServerConfig server_config;
  server_config.max_connections = 24;
  server_config.max_line_bytes = 256 * 1024;
  server_config.max_output_buffer_bytes = 64 * 1024;
  server_config.idle_timeout_ms = 700;
  server_config.write_timeout_ms = 2000;
  server_config.protocol_workers = 4;
  Harness harness(service_config, server_config);

  // Exercise the failpoint-armed error paths too when they are
  // compiled in (check.sh's failpoint legs): rare injected read/write
  // failures and forced sheds on top of the organic faults.
  if (kFailPointsCompiledIn) {
    FailPoints::Instance().ArmProbability("net.read.fail", 0.02, 7);
    FailPoints::Instance().ArmProbability("net.write.fail", 0.02, 11);
    FailPoints::Instance().ArmProbability("net.accept.shed", 0.05, 13);
  }

  const std::string big_doc = BigDocument(4000);
  {
    Client setup(harness.client_config());
    auto record =
        setup.Request("RECORD soak <r><a>cached</a><a>value</a></r>");
    ASSERT_TRUE(record.ok());
    ASSERT_TRUE(record->status.ok());
  }

  constexpr int kClients = 16;
  constexpr int kIterations = 12;
  std::atomic<int> round_trips{0};
  std::atomic<int> faults_injected{0};

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      uint64_t rng = 0x5bd1e995u * static_cast<uint64_t>(c + 1);
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      for (int i = 0; i < kIterations; ++i) {
        switch (next() % 6) {
          case 0: {  // honest round trip
            Client client(harness.client_config());
            auto open = client.Request("OPEN //a/text()");
            if (!open.ok() || !open->status.ok()) break;
            client.Request("PUSH " + open->ok_payload +
                           " <r><a>soak</a></r>");
            auto close = client.Request("CLOSE " + open->ok_payload);
            if (close.ok() && close->status.ok()) {
              round_trips.fetch_add(1);
            }
            break;
          }
          case 1: {  // cached replay (idempotent, retried under shed)
            ClientConfig config = harness.client_config();
            config.max_retries = 4;
            config.backoff_base_ms = 10;
            Client client(config);
            auto open = client.Request("OPEN //a/text()");
            if (!open.ok() || !open->status.ok()) break;
            auto run =
                client.Request("RUNCACHED " + open->ok_payload + " soak");
            if (run.ok() && run->status.ok()) round_trips.fetch_add(1);
            break;
          }
          case 2: {  // mid-query disconnect
            RawSocket peer(harness.server->port());
            if (!peer.connected()) break;
            if (!peer.SendAll("OPEN //a/b/text()\n")) break;
            peer.ReadLines(1);
            peer.SendAll("PUSH 1 " + big_doc + "\nCLOSE 1\n");
            peer.Close();  // abandon mid-evaluation
            faults_injected.fetch_add(1);
            break;
          }
          case 3: {  // half-open peer: connect, say little, vanish
            RawSocket peer(harness.server->port());
            if (!peer.connected()) break;
            peer.SendAll("OPEN //a\n");
            peer.Close();
            faults_injected.fetch_add(1);
            break;
          }
          case 4: {  // oversized line
            RawSocket peer(harness.server->port());
            if (!peer.connected()) break;
            std::string big(server_config.max_line_bytes + 1024, 'z');
            peer.SendAll("PUSH 1 " + big + "\n");
            peer.ReadAll();
            faults_injected.fetch_add(1);
            break;
          }
          default: {  // slow reader: request floods, never read
            RawSocket peer(harness.server->port());
            if (!peer.connected()) break;
            std::string flood;
            for (int r = 0; r < 64; ++r) flood += "METRICS\n";
            peer.SendAll(flood);
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            peer.Close();
            faults_injected.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  if (kFailPointsCompiledIn) {
    FailPoints::Instance().Disarm("net.read.fail");
    FailPoints::Instance().Disarm("net.write.fail");
    FailPoints::Instance().Disarm("net.accept.shed");
  }

  // The daemon survived; every connection and session is reclaimed.
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.server->connection_count() == 0; }, 15000));
  EXPECT_TRUE(harness.WaitFor(
      [&] { return harness.service->active_sessions() == 0; }, 15000));

  // The service still serves cleanly after the storm.
  {
    Client client(harness.client_config());
    auto open = client.Request("OPEN //a/text()");
    ASSERT_TRUE(open.ok()) << open.status().ToString();
    ASSERT_TRUE(open->status.ok());
    client.Request("PUSH " + open->ok_payload + " <r><a>after</a></r>");
    auto close = client.Request("CLOSE " + open->ok_payload);
    ASSERT_TRUE(close.ok());
    EXPECT_TRUE(close->status.ok());
    ASSERT_EQ(close->lines.size(), 1u);
    EXPECT_EQ(close->lines[0], "ITEM after");
  }

  // Accounting: work happened, faults were seen and categorized.
  service::StatsSnapshot stats = harness.service->stats();
  EXPECT_GT(round_trips.load(), 0);
  EXPECT_GT(faults_injected.load(), 0);
  EXPECT_GT(stats.connections_accepted, 0u);
  // Every abandoned in-flight query was cancelled via disconnect (the
  // half-open OPENs may be reclaimed idle, without a cancel).
  EXPECT_GT(stats.disconnect_cancels + stats.net_idle_closed +
                stats.net_overrun_closed,
            0u);
  // Overruns from the oversized-line and slow-reader clients.
  EXPECT_GT(stats.net_overrun_closed, 0u);
}

// ---------------------------------------------------------------------------
// Drain semantics.

TEST(NetServerTest, BeginDrainStopsAcceptingButServesLiveConnections) {
  Harness harness;
  RawSocket live(harness.server->port());
  ASSERT_TRUE(live.connected());
  ASSERT_TRUE(live.SendAll("OPEN //a/text()\n"));
  ASSERT_NE(live.ReadLines(1).find("OK 1"), std::string::npos);

  harness.server->BeginDrain();
  // New connections are refused once the listener closes.
  EXPECT_TRUE(harness.WaitFor([&] {
    RawSocket refused(harness.server->port());
    return !refused.connected() || refused.AtEof();
  }));
  // The live conversation still works.
  ASSERT_TRUE(live.SendAll("PUSH 1 <r><a>drain</a></r>\nCLOSE 1\nQUIT\n"));
  std::string replies = live.ReadAll();
  EXPECT_NE(replies.find("ITEM drain"), std::string::npos);
}

TEST(NetServerTest, StopCancelsStragglersWithinTheDeadline) {
  ServiceConfig service_config;
  service_config.num_workers = 1;
  ServerConfig server_config;
  server_config.drain_deadline_ms = 300;
  Harness harness(service_config, server_config);

  RawSocket straggler(harness.server->port());
  ASSERT_TRUE(straggler.connected());
  ASSERT_TRUE(straggler.SendAll("OPEN //a/b/text()\n"));
  straggler.ReadLines(1);
  ASSERT_TRUE(
      straggler.SendAll("PUSH 1 " + BigDocument(20000) + "\nCLOSE 1\n"));

  auto t0 = std::chrono::steady_clock::now();
  harness.server->Stop();  // straggler never finishes on its own
  auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::seconds(10));
  EXPECT_EQ(harness.server->connection_count(), 0u);
  EXPECT_TRUE(
      harness.WaitFor([&] { return harness.service->active_sessions() == 0; }));
}

}  // namespace
}  // namespace xsq
