// Tests pinned directly to the paper's worked scenarios that are not
// already covered elsewhere: Example 3's three tasks, Example 7's
// flush-before-clear ordering, the Figure 10 single-step BPDT behavior,
// and a golden snapshot of the Figure 11 HPDT structure.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/hpdt.h"
#include "core/trace.h"
#include "xml/events.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq::core {
namespace {

QueryResult RunQ(std::string_view query, std::string_view xml) {
  Result<QueryResult> result = RunQuery(query, xml);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  return result.ok() ? *std::move(result) : QueryResult{};
}

// Example 3 (Section 3.2): the three tasks of /book[author] inside
// Q: /pub[year>2000]/book[author]/name/text().
TEST(PaperFidelityTest, Example3TaskOneRememberAuthorSeen) {
  // The author arrives before the name: predicate already true when the
  // name streams past, name still waits on [year>2000].
  const char* doc =
      "<pub><book><author>A</author><name>N</name></book>"
      "<year>2001</year></pub>";
  QueryResult r = RunQ("/pub[year>2000]/book[author]/name/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "N");
}

TEST(PaperFidelityTest, Example3TaskTwoDeleteBufferedNameOnNoAuthor) {
  // The book has no author: its buffered name must be deleted at
  // </book>.
  const char* doc =
      "<pub><book><name>N</name></book><year>2001</year></pub>";
  QueryResult r = RunQ("/pub[year>2000]/book[author]/name/text()", doc);
  EXPECT_TRUE(r.items.empty());
}

TEST(PaperFidelityTest, Example3TaskThreeSendBufferedNameOnAuthor) {
  // The name is buffered; the author arrives later and releases it
  // (year already known true).
  const char* doc =
      "<pub><year>2001</year><book><name>N</name><author>A</author>"
      "</book></pub>";
  QueryResult r = RunQ("/pub[year>2000]/book[author]/name/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "N");
}

// Figure 10: the single-location-step query /pub[year>2000] with
// catchall output buffers descendants until a year decides.
TEST(PaperFidelityTest, Figure10CatchallBuffersUntilYearDecides) {
  const char* doc = "<pub><a>x</a><year>1999</year><year>2002</year></pub>";
  QueryResult r = RunQ("/pub[year>2000]", doc);
  ASSERT_EQ(r.items.size(), 1u);
  // The whole pub element, including content seen before the deciding
  // year, appears in the output.
  EXPECT_EQ(r.items[0],
            "<pub><a>x</a><year>1999</year><year>2002</year></pub>");
}

TEST(PaperFidelityTest, Figure10AllYearsFailClearsQueue) {
  const char* doc = "<pub><a>x</a><year>1999</year><year>1998</year></pub>";
  QueryResult r = RunQ("/pub[year>2000]", doc);
  EXPECT_TRUE(r.items.empty());
}

// Example 7 (Section 4.3): a result element arriving after the text
// event of the deciding year but before its end event must be flushed,
// not cleared. Requires mixed content inside year.
TEST(PaperFidelityTest, Example7ResultBetweenTextAndEndOfYear) {
  const char* doc =
      "<root><pub><year>2002<name>N</name></year></pub></root>";
  QueryResult r = RunQ("//pub[year>2000]//name/text()", doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "N");
}

TEST(PaperFidelityTest, Example7FailingYearStillClears) {
  const char* doc =
      "<root><pub><year>1999<name>N</name></year></pub></root>";
  QueryResult r = RunQ("//pub[year>2000]//name/text()", doc);
  EXPECT_TRUE(r.items.empty());
}

// A golden snapshot of the Figure 11 HPDT skeleton: BPDT ids, parent
// links, and entry-state kinds. (State numbers are implementation
// detail, so the snapshot checks structure lines only.)
TEST(PaperFidelityTest, Figure11GoldenStructure) {
  Result<xpath::Query> query =
      xpath::ParseQuery("//pub[year>2000]//book[author]//name/text()");
  ASSERT_TRUE(query.ok());
  Result<std::unique_ptr<Hpdt>> hpdt = Hpdt::Build(*query);
  ASSERT_TRUE(hpdt.ok());
  const std::string debug = (*hpdt)->DebugString();
  const char* expected_lines[] = {
      "bpdt(0,0)  (root)  [true-spine]",
      "bpdt(1,1)  step=//pub[year>2000]  [true-spine]",
      "bpdt(2,3)  step=//book[author]  [true-spine]",
      "bpdt(2,2)  step=//book[author]",
      "bpdt(3,7)  step=//name  [true-spine]",
      "bpdt(3,6)  step=//name",
      "bpdt(3,5)  step=//name",
      "bpdt(3,4)  step=//name",
      "parent=bpdt(1,1) (via TRUE)",
      "parent=bpdt(1,1) (via NA)",
      "parent=bpdt(2,3) (via TRUE)",
      "parent=bpdt(2,2) (via NA)",
  };
  for (const char* line : expected_lines) {
    EXPECT_NE(debug.find(line), std::string::npos) << line << "\n" << debug;
  }
}

// The depth-vector scenario of Example 6, rechecked through the trace:
// the clear at </pub> (inner) must only drop the inner-chain claim.
TEST(PaperFidelityTest, Example6InnerClearLeavesOuterClaim) {
  constexpr const char* kFig2 =
      "<root><pub>"
      "<book><name>X</name><author>A</author></book>"
      "<book><name>Y</name>"
      "<pub><book><name>Z</name><author>B</author></book>"
      "<year>1999</year></pub>"
      "</book>"
      "<year>2002</year>"
      "</pub></root>";
  RecordingTrace trace;
  Result<xpath::Query> query =
      xpath::ParseQuery("//pub[year=2002]//book[author]//name/text()");
  ASSERT_TRUE(query.ok());
  CollectingSink sink;
  auto engine = XsqEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  (*engine)->set_trace(&trace);
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse(kFig2).ok());
  EXPECT_EQ(sink.items, (std::vector<std::string>{"X", "Z"}));
  // Z was cleared at least once (failing chains) yet emitted: claims
  // are per chain, exactly the depth-vector bookkeeping of Example 6.
  size_t z_clears = 0;
  for (const BufferOp& op : trace.OfKind(BufferOp::Kind::kClear)) {
    if (op.value == "Z") ++z_clears;
  }
  EXPECT_GE(z_clears, 1u);
  size_t z_emits = 0;
  for (const BufferOp& op : trace.OfKind(BufferOp::Kind::kEmit)) {
    if (op.value == "Z") ++z_emits;
  }
  EXPECT_EQ(z_emits, 1u);
}

// TeeHandler: one parse feeding two engines produces the same results
// as two parses.
TEST(PaperFidelityTest, TeeHandlerSharesOneParse) {
  const char* doc = "<r><a>1</a><b>2</b></r>";
  Result<xpath::Query> qa = xpath::ParseQuery("/r/a/text()");
  Result<xpath::Query> qb = xpath::ParseQuery("/r/b/text()");
  ASSERT_TRUE(qa.ok() && qb.ok());
  CollectingSink sa;
  CollectingSink sb;
  auto ea = XsqEngine::Create(*qa, &sa);
  auto eb = XsqEngine::Create(*qb, &sb);
  ASSERT_TRUE(ea.ok() && eb.ok());
  xml::TeeHandler tee({ea->get(), eb->get()});
  xml::SaxParser parser(&tee);
  ASSERT_TRUE(parser.Parse(doc).ok());
  EXPECT_EQ(sa.items, std::vector<std::string>{"1"});
  EXPECT_EQ(sb.items, std::vector<std::string>{"2"});
}

}  // namespace
}  // namespace xsq::core
