#include "textindex/text_index_engine.h"

#include <gtest/gtest.h>

#include "dom/builder.h"
#include "xpath/ast.h"

namespace xsq::textindex {
namespace {

constexpr const char* kDoc =
    "<plays>"
    "<speech><speaker>HAMLET</speaker><line>To be or not to be</line>"
    "</speech>"
    "<speech><speaker>OPHELIA</speaker><line>My lord, I love thee</line>"
    "</speech>"
    "<speech><speaker>HAMLET</speaker><line>Get thee to a nunnery</line>"
    "</speech>"
    "</plays>";

std::unique_ptr<TextIndexEngine> BuildOk(std::string_view xml) {
  auto engine = TextIndexEngine::Build(xml);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return *std::move(engine);
}

TEST(TokenizeTest, LowercasesAndSplitsOnNonWordChars) {
  auto tokens = TokenizeText("To be, or NOT to-be?  42");
  EXPECT_EQ(tokens, (std::vector<std::string>{"to", "be", "or", "not", "to",
                                              "be", "42"}));
  EXPECT_TRUE(TokenizeText("  ,;  ").empty());
}

TEST(TextIndexTest, BuildsIndexOverDocument) {
  auto engine = BuildOk(kDoc);
  EXPECT_EQ(engine->element_count(), 10u);
  EXPECT_GT(engine->distinct_words(), 10u);
  EXPECT_GT(engine->ApproxBytes(), 0u);
}

TEST(TextIndexTest, SearchWordFindsEnclosingElements) {
  auto engine = BuildOk(kDoc);
  auto hits = engine->SearchWord("thee");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0]->tag(), "line");
  // Case-folded lookup.
  EXPECT_EQ(engine->SearchWord("HAMLET").size(), 2u);
  EXPECT_EQ(engine->SearchWord("hamlet").size(), 2u);
  EXPECT_TRUE(engine->SearchWord("macbeth").empty());
}

TEST(TextIndexTest, BooleanSearch) {
  auto engine = BuildOk(kDoc);
  EXPECT_EQ(engine->SearchAll({"to", "be"}).size(), 1u);
  EXPECT_EQ(engine->SearchAll({"to", "nunnery"}).size(), 1u);
  EXPECT_TRUE(engine->SearchAll({"to", "macbeth"}).empty());
  EXPECT_EQ(engine->SearchAny({"love", "nunnery"}).size(), 2u);
  EXPECT_TRUE(engine->SearchAny({"x", "y"}).empty());
  EXPECT_TRUE(engine->SearchAll({}).empty());
}

TEST(TextIndexTest, SearchResultsAreInDocumentOrder) {
  auto engine = BuildOk(kDoc);
  auto hits = engine->SearchWord("thee");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_LT(hits[0]->order_index(), hits[1]->order_index());
}

TEST(TextIndexTest, EvaluateDelegatesToXPathSemantics) {
  auto engine = BuildOk(kDoc);
  auto query = xpath::ParseQuery("//speech[line%love]/speaker/text()");
  ASSERT_TRUE(query.ok());
  auto result = engine->Evaluate(*query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0], "OPHELIA");
}

TEST(TextIndexTest, AbsentKeywordShortCircuitsToEmpty) {
  auto engine = BuildOk(kDoc);
  auto query = xpath::ParseQuery("//speech[line%zzzz]/speaker/text()");
  ASSERT_TRUE(query.ok());
  auto result = engine->Evaluate(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->items.empty());
  // Aggregations still get their defined empty values.
  query = xpath::ParseQuery("//speech[line%zzzz]/speaker/count()");
  result = engine->Evaluate(*query);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->aggregate.has_value());
  EXPECT_DOUBLE_EQ(*result->aggregate, 0.0);
}

TEST(TextIndexTest, SubstringOfIndexedWordIsNotShortCircuited) {
  // contains() is a substring test: "unner" occurs inside "nunnery"
  // even though it is not a token, so the index must not prune it.
  auto engine = BuildOk(kDoc);
  auto query = xpath::ParseQuery("//speech[line%unner]/speaker/text()");
  ASSERT_TRUE(query.ok());
  auto result = engine->Evaluate(*query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);
  EXPECT_EQ(result->items[0], "HAMLET");
}

TEST(TextIndexTest, MultiWordLiteralIsNotShortCircuited) {
  auto engine = BuildOk(kDoc);
  auto query = xpath::ParseQuery("//speech[line%'or not']/speaker/text()");
  ASSERT_TRUE(query.ok());
  auto result = engine->Evaluate(*query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->items.size(), 1u);
}

TEST(TextIndexTest, ElementLimitReproducesXqEngineFootnote) {
  std::string big = "<r>";
  for (size_t i = 0; i < TextIndexEngine::kMaxElements + 10; ++i) {
    big += "<e/>";
  }
  big += "</r>";
  auto engine = TextIndexEngine::Build(big);
  EXPECT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kNotSupported);
  EXPECT_NE(engine.status().message().find("32768"), std::string::npos);
}

TEST(TextIndexTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(TextIndexEngine::Build("<a><b></a>").ok());
}

}  // namespace
}  // namespace xsq::textindex
