// Union queries (XPath 1.0 '|'): parser, XSQ-F, lazy DFA, filter, and
// the DOM oracle, including cross-branch deduplication and
// document-order output.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/engine_nc.h"
#include "core/result_sink.h"
#include "dom/builder.h"
#include "dom/evaluator.h"
#include "filter/filter_engine.h"
#include "lazydfa/lazy_dfa_engine.h"
#include "test_util.h"
#include "xml/sax_parser.h"
#include "xpath/ast.h"

namespace xsq {
namespace {

TEST(UnionParserTest, ParsesBranches) {
  Result<xpath::Query> query =
      xpath::ParseQuery("//a/text() | /r/b/text() | //c[d]/text()");
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(query->IsUnion());
  ASSERT_EQ(query->union_branches.size(), 2u);
  EXPECT_EQ(query->steps.size(), 1u);
  EXPECT_EQ(query->union_branches[0].steps.size(), 2u);
  EXPECT_TRUE(query->HasPredicates());  // only the last branch has one
  EXPECT_TRUE(query->HasClosure());
  EXPECT_EQ(query->ToString(),
            "//a/text() | /r/b/text() | //c[d]/text()");
}

TEST(UnionParserTest, PipeInsidePredicateIsNotAUnion) {
  // '|' inside brackets belongs to the literal, not the union.
  Result<xpath::Query> query = xpath::ParseQuery("/a[b='x|y']/text()");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(query->IsUnion());
  EXPECT_EQ(query->steps[0].predicates[0].literal, "x|y");
}

TEST(UnionParserTest, MismatchedOutputsRejected) {
  EXPECT_FALSE(xpath::ParseQuery("//a/text() | //b/@id").ok());
  EXPECT_FALSE(xpath::ParseQuery("//a/count() | //b/sum()").ok());
  EXPECT_FALSE(xpath::ParseQuery("//a | ").ok());
}

TEST(UnionParserTest, RoundTrips) {
  Result<xpath::Query> q1 = xpath::ParseQuery("//a/text() | /r/b/text()");
  ASSERT_TRUE(q1.ok());
  Result<xpath::Query> q2 = xpath::ParseQuery(q1->ToString());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1->ToString(), q2->ToString());
}

TEST(UnionDomTest, SetSemanticsAcrossBranches) {
  Result<dom::Document> doc = dom::BuildFromString(
      "<r><a>1</a><b>2</b><a>3</a><c>4</c></r>");
  ASSERT_TRUE(doc.ok());
  Result<xpath::Query> query = xpath::ParseQuery("/r/a/text() | /r/b/text()");
  ASSERT_TRUE(query.ok());
  Result<dom::EvalResult> result = dom::Evaluate(*doc, *query);
  ASSERT_TRUE(result.ok());
  // Document order across branches.
  EXPECT_EQ(result->items, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(UnionDomTest, OverlappingBranchesDeduplicate) {
  Result<dom::Document> doc =
      dom::BuildFromString("<r><a x=\"1\">v</a></r>");
  ASSERT_TRUE(doc.ok());
  Result<xpath::Query> query = xpath::ParseQuery("//a | /r/a");
  ASSERT_TRUE(query.ok());
  Result<dom::EvalResult> result = dom::Evaluate(*doc, *query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->items.size(), 1u);  // both branches match the same a
  EXPECT_EQ(result->match_count, 1u);
}

core::QueryResult RunF(std::string_view query, std::string_view xml) {
  Result<core::QueryResult> result = core::RunQuery(query, xml);
  EXPECT_TRUE(result.ok()) << query << ": " << result.status().ToString();
  return result.ok() ? *std::move(result) : core::QueryResult{};
}

TEST(UnionEngineTest, DocumentOrderAcrossBranches) {
  core::QueryResult r =
      RunF("/r/a/text() | /r/b/text()",
           "<r><a>1</a><b>2</b><a>3</a><c>4</c></r>");
  EXPECT_EQ(r.items, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(UnionEngineTest, OverlapEmittedOnce) {
  core::QueryResult r = RunF("//a | /r/a", "<r><a x=\"1\">v</a></r>");
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "<a x=\"1\">v</a>");
}

TEST(UnionEngineTest, BranchesWithDifferentPredicates) {
  const char* doc =
      "<r><p><ok/><t>via-p</t></p><q><t>via-q</t><yes/></q>"
      "<p><t>drop</t></p></r>";
  core::QueryResult r = RunF("/r/p[ok]/t/text() | /r/q[yes]/t/text()", doc);
  EXPECT_EQ(r.items, (std::vector<std::string>{"via-p", "via-q"}));
}

TEST(UnionEngineTest, ElementMatchedByOneBranchOnlyNeedsThatBranch) {
  // The element fails branch 1's predicate but passes branch 2's.
  const char* doc = "<r><a><t>x</t><second/></a></r>";
  core::QueryResult r = RunF("/r/a[first]/t/text() | /r/a[second]/t/text()",
                             doc);
  ASSERT_EQ(r.items.size(), 1u);
  EXPECT_EQ(r.items[0], "x");
}

TEST(UnionEngineTest, AggregationOverUnion) {
  const char* doc = "<r><a>1</a><b>2</b><a>4</a></r>";
  core::QueryResult r = RunF("/r/a/sum() | /r/b/sum()", doc);
  ASSERT_TRUE(r.aggregate.has_value());
  EXPECT_DOUBLE_EQ(*r.aggregate, 7.0);
  r = RunF("//a/count() | //b/count()", doc);
  EXPECT_DOUBLE_EQ(*r.aggregate, 3.0);
}

TEST(UnionEngineTest, ClosurePlusChildBranches) {
  const char* doc = "<r><x><a>deep</a></x><a>shallow</a></r>";
  core::QueryResult r = RunF("//x//a/text() | /r/a/text()", doc);
  EXPECT_EQ(r.items, (std::vector<std::string>{"deep", "shallow"}));
}

TEST(UnionEngineTest, NcRejectsUnions) {
  Result<xpath::Query> query = xpath::ParseQuery("/r/a | /r/b");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  EXPECT_EQ(core::XsqNcEngine::Create(*query, &sink).status().code(),
            StatusCode::kNotSupported);
}

TEST(UnionLazyDfaTest, UnionOfPaths) {
  Result<xpath::Query> query =
      xpath::ParseQuery("/r/a/text() | //b/text()");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  auto engine = lazydfa::LazyDfaEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse("<r><a>1</a><x><b>2</b></x><b>3</b></r>").ok());
  EXPECT_EQ(sink.items, (std::vector<std::string>{"1", "2", "3"}));
}

TEST(UnionLazyDfaTest, OverlappingBranchesEmitOnce) {
  Result<xpath::Query> query = xpath::ParseQuery("//a/text() | /r/a/text()");
  ASSERT_TRUE(query.ok());
  core::CollectingSink sink;
  auto engine = lazydfa::LazyDfaEngine::Create(*query, &sink);
  ASSERT_TRUE(engine.ok());
  xml::SaxParser parser(engine->get());
  ASSERT_TRUE(parser.Parse("<r><a>once</a></r>").ok());
  EXPECT_EQ(sink.items, std::vector<std::string>{"once"});
}

TEST(UnionFilterTest, SubscriptionMatchesViaAnyBranch) {
  filter::FilterEngine engine;
  Result<int> id = engine.AddQuery("/r/a | //b");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(engine.query_count(), 1u);
  EXPECT_EQ(engine.FilterDocument("<r><a/></r>")->size(), 1u);
  EXPECT_EQ(engine.FilterDocument("<x><b/></x>")->size(), 1u);
  EXPECT_EQ(engine.FilterDocument("<r><c/></r>")->size(), 0u);
  // Matching both branches still reports the id once.
  auto both = engine.FilterDocument("<r><a/><b/></r>");
  ASSERT_TRUE(both.ok());
  EXPECT_EQ(*both, std::vector<int>{0});
}

TEST(UnionEngineTest, IdenticalBranchesStillEmitOnce) {
  core::QueryResult r = RunF("//a/text() | //a/text()", "<r><a>x</a></r>");
  EXPECT_EQ(r.items, std::vector<std::string>{"x"});
}

TEST(UnionEngineTest, ThreeBranches) {
  const char* doc = "<r><a>1</a><b>2</b><c>3</c><d>4</d></r>";
  core::QueryResult r =
      RunF("/r/a/text() | /r/c/text() | /r/d/text()", doc);
  EXPECT_EQ(r.items, (std::vector<std::string>{"1", "3", "4"}));
}

TEST(UnionEngineTest, RecursiveClosureUnionDeduplicates) {
  // Both branches match the inner a via different chains.
  const char* doc = "<a><b><a>inner</a></b></a>";
  core::QueryResult r = RunF("//b//a/text() | //a//a/text()", doc);
  EXPECT_EQ(r.items, std::vector<std::string>{"inner"});
}

TEST(UnionEngineTest, PendingBranchesResolveIndependently) {
  // Branch 1 pends on [x], branch 2 on [y]; only [y] arrives. The item
  // must survive through branch 2 and be emitted exactly once.
  const char* doc = "<r><p><t>keep</t><y/></p></r>";
  core::QueryResult r = RunF("/r/p[x]/t/text() | /r/p[y]/t/text()", doc);
  EXPECT_EQ(r.items, std::vector<std::string>{"keep"});
}

class UnionDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(UnionDifferentialTest, EngineMatchesOracleOnRandomUnions) {
  const uint64_t seed = GetParam();
  for (int i = 0; i < 3; ++i) {
    const std::string doc =
        testutil::RandomDocument(seed * 211 + static_cast<uint64_t>(i));
    // Two random branches forced onto a common output expression.
    std::string b1 = testutil::RandomQuery(seed * 7 + static_cast<uint64_t>(i));
    std::string b2 =
        testutil::RandomQuery(seed * 13 + static_cast<uint64_t>(i) + 99);
    auto strip_output = [](std::string query) {
      for (const char* suffix :
           {"/text()", "/count()", "/sum()", "/avg()", "/@id", "/@x"}) {
        size_t pos = query.rfind(suffix);
        if (pos != std::string::npos &&
            pos + std::string(suffix).size() == query.size()) {
          query.resize(pos);
          break;
        }
      }
      return query;
    };
    std::string query_text =
        strip_output(b1) + "/text() | " + strip_output(b2) + "/text()";

    Result<xpath::Query> query = xpath::ParseQuery(query_text);
    ASSERT_TRUE(query.ok()) << query_text;
    Result<dom::Document> document = dom::BuildFromString(doc);
    ASSERT_TRUE(document.ok());
    Result<dom::EvalResult> oracle = dom::Evaluate(*document, *query);
    ASSERT_TRUE(oracle.ok());

    core::CollectingSink sink;
    auto engine = core::XsqEngine::Create(*query, &sink);
    ASSERT_TRUE(engine.ok());
    xml::SaxParser parser(engine->get());
    ASSERT_TRUE(parser.Parse(doc).ok());
    ASSERT_TRUE((*engine)->status().ok()) << query_text;
    EXPECT_EQ(sink.items, oracle->items)
        << "union mismatch\nquery: " << query_text << "\ndoc: " << doc;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnionDifferentialTest,
                         ::testing::Range(uint64_t{0}, uint64_t{30}));

}  // namespace
}  // namespace xsq
