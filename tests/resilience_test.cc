// Resilience properties of the serving path: cooperative cancellation
// and deadlines (CancelToken through StreamingQuery, Session, and
// QueryService), parser resource limits, and the failure accounting
// that backs the cancelled/deadline_exceeded/limit_rejected counters.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel_token.h"
#include "core/streaming_query.h"
#include "service/query_service.h"
#include "service/session.h"
#include "xml/events.h"
#include "xml/sax_parser.h"

namespace xsq {
namespace {

using core::CancelToken;
using core::StreamingQuery;

// ------------------------------------------------------------- CancelToken

TEST(CancelTokenTest, FreshTokenChecksOk) {
  CancelToken token;
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.expired());
}

TEST(CancelTokenTest, CancelTripsCheck) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ExpiredDeadlineTripsCheck) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.expired());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(CancelTokenTest, FutureDeadlineChecksOk) {
  CancelToken token;
  token.SetDeadlineAfterMs(60'000);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.expired());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, CancelWinsOverExpiredDeadline) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  token.Cancel();
  EXPECT_EQ(token.Check().code(), StatusCode::kCancelled);
}

TEST(CancelTokenTest, ClearDeadlineDisarms) {
  CancelToken token;
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  token.ClearDeadline();
  EXPECT_FALSE(token.has_deadline());
  EXPECT_TRUE(token.Check().ok());
}

TEST(CancelTokenTest, ResetClearsFlagAndDeadline) {
  CancelToken token;
  token.Cancel();
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  token.Reset();
  EXPECT_TRUE(token.Check().ok());
  EXPECT_FALSE(token.cancelled());
  EXPECT_FALSE(token.has_deadline());
}

// ---------------------------------------------------------- StreamingQuery

std::unique_ptr<StreamingQuery> MustOpen(const char* query) {
  auto result = StreamingQuery::Open(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *std::move(result);
}

TEST(StreamingCancelTest, DetachedTokenCostsNothingAndWorks) {
  auto query = MustOpen("//a/text()");
  ASSERT_TRUE(query->Push("<r><a>hi</a></r>").ok());
  ASSERT_TRUE(query->Close().ok());
  EXPECT_EQ(query->NextItem(), "hi");
}

TEST(StreamingCancelTest, CancelledTokenFailsTheNextChunk) {
  auto query = MustOpen("//a/text()");
  CancelToken token;
  query->set_cancel_token(&token);
  ASSERT_TRUE(query->Push("<r><a>hi</a>").ok());
  token.Cancel();
  EXPECT_EQ(query->Push("<a>more</a>").code(), StatusCode::kCancelled);
  EXPECT_EQ(query->Close().code(), StatusCode::kCancelled);
}

TEST(StreamingCancelTest, ExpiredDeadlineFailsTheNextChunk) {
  auto query = MustOpen("//a/text()");
  CancelToken token;
  query->set_cancel_token(&token);
  ASSERT_TRUE(query->Push("<r>").ok());
  token.SetDeadlineAfter(std::chrono::nanoseconds(-1));
  EXPECT_EQ(query->Push("<a>x</a>").code(), StatusCode::kDeadlineExceeded);
}

TEST(StreamingCancelTest, EngineObservesTokenWithinOneSamplingInterval) {
  // The engine polls the token every kCheckIntervalEvents events, so a
  // flag raised mid-stream is observed without another chunk boundary.
  // Event-level delivery bypasses Push's per-chunk check and isolates
  // the sampled engine path.
  auto query = MustOpen("//a/text()");
  CancelToken token;
  query->set_cancel_token(&token);

  xml::SaxHandler* handler = query->event_handler();
  handler->OnDocumentBegin();
  handler->OnBegin("r", {}, 1);
  token.Cancel();
  int delivered = 0;
  while (query->engine_status().ok() && delivered < 1000) {
    handler->OnBegin("a", {}, 2);
    handler->OnEnd("a", 2);
    delivered += 2;
  }
  EXPECT_EQ(query->engine_status().code(), StatusCode::kCancelled);
  // Observed within one sampling interval, not at the end of the doc.
  EXPECT_LE(delivered,
            static_cast<int>(CancelToken::kCheckIntervalEvents) + 2);
}

TEST(StreamingCancelTest, ConfigurableSamplingIntervalIsHonoured) {
  // A token constructed with a tighter interval is observed sooner:
  // the engine caches the token's grain, not the compile-time default.
  auto query = MustOpen("//a/text()");
  CancelToken token(/*check_interval_events=*/8);
  query->set_cancel_token(&token);

  xml::SaxHandler* handler = query->event_handler();
  handler->OnDocumentBegin();
  handler->OnBegin("r", {}, 1);
  token.Cancel();
  int delivered = 0;
  while (query->engine_status().ok() && delivered < 1000) {
    handler->OnBegin("a", {}, 2);
    handler->OnEnd("a", 2);
    delivered += 2;
  }
  EXPECT_EQ(query->engine_status().code(), StatusCode::kCancelled);
  EXPECT_LE(delivered, 8 + 2);
}

TEST(StreamingCancelTest, ResetRearmsACancelledQuery) {
  auto query = MustOpen("//a/text()");
  CancelToken token;
  query->set_cancel_token(&token);
  token.Cancel();
  ASSERT_EQ(query->Push("<r/>").code(), StatusCode::kCancelled);
  token.Reset();
  query->Reset();
  ASSERT_TRUE(query->Push("<r><a>back</a></r>").ok());
  ASSERT_TRUE(query->Close().ok());
  EXPECT_EQ(query->NextItem(), "back");
}

// ------------------------------------------------------------ ParserLimits

Status ParseWithLimits(std::string_view doc, const xml::ParserLimits& limits) {
  xml::RecordingHandler handler;
  xml::SaxParser parser(&handler, limits);
  return parser.Parse(doc);
}

TEST(ParserLimitsTest, DefaultsAreUnlimited) {
  xml::ParserLimits limits;
  EXPECT_EQ(limits.max_depth, 0u);
  EXPECT_EQ(limits.max_attributes, 0u);
  EXPECT_EQ(limits.max_name_length, 0u);
  EXPECT_EQ(limits.max_entity_expansion, 0u);
  EXPECT_EQ(limits.max_doctype_bytes, 0u);
}

TEST(ParserLimitsTest, DepthLimitRejectsDeepNesting) {
  xml::ParserLimits limits;
  limits.max_depth = 8;
  std::string at_limit = "<a><a><a><a><a><a><a><a>";
  std::string closing = "</a></a></a></a></a></a></a></a>";
  EXPECT_TRUE(ParseWithLimits(at_limit + closing, limits).ok());
  Status over = ParseWithLimits("<a>" + at_limit + closing + "</a>", limits);
  EXPECT_EQ(over.code(), StatusCode::kLimitExceeded);
  EXPECT_NE(over.message().find("depth"), std::string::npos);
  EXPECT_NE(over.message().find("line"), std::string::npos);
}

TEST(ParserLimitsTest, AttributeCountLimit) {
  xml::ParserLimits limits;
  limits.max_attributes = 3;
  EXPECT_TRUE(ParseWithLimits("<a p=\"1\" q=\"2\" r=\"3\"/>", limits).ok());
  Status over =
      ParseWithLimits("<a p=\"1\" q=\"2\" r=\"3\" s=\"4\"/>", limits);
  EXPECT_EQ(over.code(), StatusCode::kLimitExceeded);
}

TEST(ParserLimitsTest, NameLengthLimitCoversElementsAndAttributes) {
  xml::ParserLimits limits;
  limits.max_name_length = 8;
  EXPECT_TRUE(ParseWithLimits("<okname/>", limits).ok());
  EXPECT_EQ(ParseWithLimits("<waytoolongname/>", limits).code(),
            StatusCode::kLimitExceeded);
  EXPECT_EQ(
      ParseWithLimits("<a waytoolongattr=\"v\"/>", limits).code(),
      StatusCode::kLimitExceeded);
}

TEST(ParserLimitsTest, EntityExpansionBudgetIsPerDocument) {
  xml::ParserLimits limits;
  limits.max_entity_expansion = 16;
  EXPECT_TRUE(ParseWithLimits("<a>&amp;&amp;</a>", limits).ok());
  // Each text run with references charges its decoded size; the budget
  // accumulates across runs within one document.
  std::string doc = "<r>";
  for (int i = 0; i < 8; ++i) doc += "<a>x&amp;x</a>";
  doc += "</r>";
  Status over = ParseWithLimits(doc, limits);
  EXPECT_EQ(over.code(), StatusCode::kLimitExceeded);
  EXPECT_NE(over.message().find("entity expansion"), std::string::npos);
  // Reference-free text is never charged, however large.
  std::string plain = "<a>" + std::string(4096, 'x') + "</a>";
  EXPECT_TRUE(ParseWithLimits(plain, limits).ok());
}

TEST(ParserLimitsTest, DoctypeByteLimitStopsUnterminatedDoctype) {
  xml::ParserLimits limits;
  limits.max_doctype_bytes = 64;
  EXPECT_TRUE(
      ParseWithLimits("<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r/>", limits)
          .ok());
  // Complete but oversized declaration.
  std::string big = "<!DOCTYPE r [" + std::string(200, ' ') + "]><r/>";
  EXPECT_EQ(ParseWithLimits(big, limits).code(), StatusCode::kLimitExceeded);
  // Unterminated declaration fed in chunks must trip the cap instead of
  // buffering the prefix without bound.
  xml::RecordingHandler handler;
  xml::SaxParser parser(&handler, limits);
  Status status = parser.Feed("<!DOCTYPE r [");
  for (int i = 0; status.ok() && i < 100; ++i) {
    status = parser.Feed(std::string(16, ' '));
  }
  EXPECT_EQ(status.code(), StatusCode::kLimitExceeded);
}

TEST(ParserLimitsTest, ServingPresetAcceptsOrdinaryDocuments) {
  xml::ParserLimits serving = xml::ParserLimits::Serving();
  EXPECT_GT(serving.max_depth, 0u);
  EXPECT_GT(serving.max_attributes, 0u);
  EXPECT_TRUE(ParseWithLimits(
                  "<!DOCTYPE r [<!ELEMENT r (a*)>]>"
                  "<r><a id=\"1\">hello &amp; goodbye</a><b/></r>",
                  serving)
                  .ok());
  // ... and still rejects a hostile depth.
  std::string deep;
  for (size_t i = 0; i <= serving.max_depth; ++i) deep += "<d>";
  EXPECT_EQ(ParseWithLimits(deep, serving).code(),
            StatusCode::kLimitExceeded);
}

TEST(ParserLimitsTest, LimitsResetPerDocument) {
  xml::ParserLimits limits;
  limits.max_entity_expansion = 8;
  xml::RecordingHandler handler;
  xml::SaxParser parser(&handler, limits);
  ASSERT_TRUE(parser.Parse("<a>&amp;&amp;&amp;</a>").ok());
  parser.Reset();
  // A fresh document gets a fresh budget: no carry-over from the last.
  EXPECT_TRUE(parser.Parse("<a>&amp;&amp;&amp;</a>").ok());
}

// ---------------------------------------------------------------- Session

using service::ServiceStats;
using service::Session;

std::unique_ptr<Session> MustCreateSession(
    const char* query, ServiceStats* stats,
    const xml::ParserLimits& limits = {}) {
  auto plan = core::CompilePlan(query);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();
  auto session = Session::Create(*plan, /*memory_budget=*/0, stats,
                                 /*metrics=*/nullptr, limits);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  return *std::move(session);
}

TEST(SessionCancelTest, CancelFailsSessionAndFreesBuffers) {
  ServiceStats stats;
  // The predicate stays undecided while price is unseen, so the title
  // is buffered bytes until then.
  auto session =
      MustCreateSession("//book[price<20]/title/text()", &stats);
  ASSERT_TRUE(
      session->Push("<catalog><book><title>War and Peace</title>").ok());
  EXPECT_GT(session->buffered_bytes(), 0u);
  EXPECT_GT(stats.Snapshot().engine_buffered_bytes, 0u);

  session->Cancel();
  EXPECT_EQ(session->Push("<price>10</price>").code(),
            StatusCode::kCancelled);
  // The abandoned request returns its buffers immediately.
  EXPECT_EQ(session->buffered_bytes(), 0u);
  EXPECT_EQ(stats.Snapshot().engine_buffered_bytes, 0u);
  EXPECT_EQ(stats.Snapshot().cancelled, 1u);
  // Still failed, and counted exactly once.
  EXPECT_EQ(session->Close().code(), StatusCode::kCancelled);
  EXPECT_EQ(stats.Snapshot().cancelled, 1u);
}

TEST(SessionCancelTest, ResetRevivesACancelledSession) {
  ServiceStats stats;
  auto session = MustCreateSession("//a/text()", &stats);
  session->Cancel();
  ASSERT_EQ(session->Push("<r/>").code(), StatusCode::kCancelled);
  ASSERT_TRUE(session->Reset().ok());
  EXPECT_FALSE(session->cancelled());
  ASSERT_TRUE(session->Push("<r><a>ok</a></r>").ok());
  ASSERT_TRUE(session->Close().ok());
  std::vector<std::string> items = session->TakeItems();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], "ok");
}

TEST(SessionCancelTest, ResetRevivesADeadlineExpiredSession) {
  ServiceStats stats;
  auto session = MustCreateSession("//a/text()", &stats);
  session->SetDeadlineAfterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(session->Push("<r><a>late</a></r>").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(session->Close().code(), StatusCode::kDeadlineExceeded);

  // Reset clears the expired deadline along with the failure; the next
  // document streams normally.
  ASSERT_TRUE(session->Reset().ok());
  ASSERT_TRUE(session->Push("<r><a>fresh</a></r>").ok());
  ASSERT_TRUE(session->Close().ok());
  std::vector<std::string> items = session->TakeItems();
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], "fresh");
  EXPECT_EQ(stats.Snapshot().deadline_exceeded, 1u);
}

TEST(SessionCancelTest, TokenRearmsAcrossRepeatedFailureCycles) {
  // The same session survives alternating cancel and deadline failures:
  // each Reset() re-arms the embedded CancelToken completely (flag and
  // deadline both cleared), with no residue from the previous cycle.
  ServiceStats stats;
  auto session = MustCreateSession("//a/text()", &stats);
  for (int cycle = 0; cycle < 3; ++cycle) {
    session->Cancel();
    EXPECT_EQ(session->Push("<r/>").code(), StatusCode::kCancelled);
    ASSERT_TRUE(session->Reset().ok());
    EXPECT_FALSE(session->cancelled());

    session->SetDeadlineAfterMs(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    EXPECT_EQ(session->Push("<r/>").code(), StatusCode::kDeadlineExceeded);
    ASSERT_TRUE(session->Reset().ok());

    ASSERT_TRUE(session->Push("<r><a>ok</a></r>").ok());
    ASSERT_TRUE(session->Close().ok());
    std::vector<std::string> items = session->TakeItems();
    ASSERT_EQ(items.size(), 1u);
    EXPECT_EQ(items[0], "ok");
    ASSERT_TRUE(session->Reset().ok());
  }
  EXPECT_EQ(stats.Snapshot().cancelled, 3u);
  EXPECT_EQ(stats.Snapshot().deadline_exceeded, 3u);
}

TEST(SessionCancelTest, CancelCheckEventsKnobReachesTheToken) {
  ServiceStats stats;
  auto plan = core::CompilePlan("//a/text()");
  ASSERT_TRUE(plan.ok());
  auto session =
      Session::Create(*plan, /*memory_budget=*/0, &stats,
                      /*metrics=*/nullptr, {}, /*cancel_check_events=*/8);
  ASSERT_TRUE(session.ok());
  // The knob still serves documents correctly...
  ASSERT_TRUE((*session)->Push("<r><a>x</a></r>").ok());
  ASSERT_TRUE((*session)->Close().ok());
  EXPECT_EQ((*session)->TakeItems().size(), 1u);
  // ...and 0 is clamped to 1 (check-every-event), never divide-by-zero.
  auto eager = Session::Create(*plan, 0, &stats, nullptr, {},
                               /*cancel_check_events=*/0);
  ASSERT_TRUE(eager.ok());
  ASSERT_TRUE((*eager)->Push("<r><a>y</a></r>").ok());
  ASSERT_TRUE((*eager)->Close().ok());
  EXPECT_EQ((*eager)->TakeItems().size(), 1u);
}

TEST(SessionCancelTest, DeadlineExceededIsCountedSeparately) {
  ServiceStats stats;
  auto session = MustCreateSession("//a/text()", &stats);
  ASSERT_TRUE(session->Push("<r><a>hi</a>").ok());
  session->SetDeadlineAfterMs(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(session->Push("<a>more</a>").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.Snapshot().deadline_exceeded, 1u);
  EXPECT_EQ(stats.Snapshot().cancelled, 0u);
}

TEST(SessionCancelTest, ParserLimitViolationCountsLimitRejected) {
  ServiceStats stats;
  xml::ParserLimits limits;
  limits.max_depth = 4;
  auto session = MustCreateSession("//a/text()", &stats, limits);
  EXPECT_EQ(session->Push("<a><a><a><a><a>").code(),
            StatusCode::kLimitExceeded);
  EXPECT_EQ(stats.Snapshot().limit_rejected, 1u);
}

// ------------------------------------------------------------ QueryService

using service::QueryService;
using service::ServiceConfig;
using service::SessionId;

TEST(ServiceCancelTest, CancelSessionSparesSiblings) {
  ServiceConfig config;
  config.num_workers = 2;
  QueryService service(config);

  auto doomed = service.OpenSession("//a/text()");
  auto healthy = service.OpenSession("//a/text()");
  ASSERT_TRUE(doomed.ok());
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(service.Push(*doomed, "<r><a>one</a>").ok());
  ASSERT_TRUE(service.Push(*healthy, "<r><a>two</a></r>").ok());

  ASSERT_TRUE(service.CancelSession(*doomed).ok());
  EXPECT_EQ(service.Close(*doomed).code(), StatusCode::kCancelled);

  ASSERT_TRUE(service.Close(*healthy).ok());
  std::vector<std::string> items = service.Drain(*healthy);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], "two");

  EXPECT_EQ(service.stats().cancelled, 1u);
  EXPECT_EQ(service.CancelSession(9999).code(),
            StatusCode::kInvalidArgument);
  service.Shutdown();
}

TEST(ServiceCancelTest, CancelledSessionRecoversViaReset) {
  QueryService service;
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.CancelSession(*id).ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>x</a></r>").ok());
  EXPECT_EQ(service.Close(*id).code(), StatusCode::kCancelled);
  ASSERT_TRUE(service.ResetSession(*id).ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>y</a></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());
  std::vector<std::string> items = service.Drain(*id);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], "y");
  service.Shutdown();
}

TEST(ServiceCancelTest, DeadlineExpiredSessionRecoversViaReset) {
  QueryService service;
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>x</a>", /*deadline_ms=*/1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(service.Close(*id).code(), StatusCode::kDeadlineExceeded);
  service.Drain(*id);  // discard items emitted before the deadline hit
  ASSERT_TRUE(service.ResetSession(*id).ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>again</a></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());
  std::vector<std::string> items = service.Drain(*id);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0], "again");
  service.Shutdown();
}

TEST(ServiceCancelTest, CancelCheckEventsConfigFlowsToSessions) {
  ServiceConfig config;
  config.cancel_check_events = 4;
  QueryService service(config);
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>tight</a></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());
  EXPECT_EQ(service.Drain(*id).size(), 1u);
  // Cancellation still lands on a session built with the tighter grain.
  ASSERT_TRUE(service.ResetSession(*id).ok());
  ASSERT_TRUE(service.CancelSession(*id).ok());
  EXPECT_EQ(service.Close(*id).code(), StatusCode::kCancelled);
  service.Shutdown();
}

TEST(ServiceDeadlineTest, PerRequestDeadlineFailsASlowDocument) {
  QueryService service;
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>hi</a>", /*deadline_ms=*/1).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(service.Close(*id).code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(service.stats().deadline_exceeded, 1u);
  service.Shutdown();
}

TEST(ServiceDeadlineTest, ServiceDefaultDeadlineApplies) {
  ServiceConfig config;
  config.default_deadline_ms = 1;
  QueryService service(config);
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>hi</a>").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(service.Close(*id).code(), StatusCode::kDeadlineExceeded);
  // The failure is exposed through METRICS as a scalar too.
  EXPECT_NE(service.MetricsText().find("xsq_deadline_exceeded 1"),
            std::string::npos);
  service.Shutdown();
}

TEST(ServiceDeadlineTest, GenerousDeadlineDoesNotPerturbResults) {
  ServiceConfig config;
  config.default_deadline_ms = 60'000;
  QueryService service(config);
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>one</a><a>two</a></r>").ok());
  ASSERT_TRUE(service.Close(*id).ok());
  EXPECT_EQ(service.Drain(*id).size(), 2u);
  // Next document on the same session gets a fresh deadline.
  ASSERT_TRUE(service.ResetSession(*id).ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>three</a></r>", 60'000).ok());
  ASSERT_TRUE(service.Close(*id).ok());
  EXPECT_EQ(service.Drain(*id).size(), 1u);
  EXPECT_EQ(service.stats().deadline_exceeded, 0u);
  service.Shutdown();
}

TEST(ServiceDeadlineTest, RunCachedHonoursDeadlinesAndClearsCancel) {
  QueryService service;
  ASSERT_TRUE(service.RecordDocument("doc", "<r><a>x</a></r>").ok());
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  // A generous per-replay deadline passes.
  ASSERT_TRUE(service.RunCached(*id, "doc", /*deadline_ms=*/60'000).ok());
  EXPECT_EQ(service.Drain(*id).size(), 1u);
  // RunCached rewinds a failed session first, so a prior cancellation
  // does not leak into the next replay.
  ASSERT_TRUE(service.CancelSession(*id).ok());
  ASSERT_TRUE(service.RunCached(*id, "doc").ok());
  EXPECT_EQ(service.Drain(*id).size(), 1u);
  service.Shutdown();
}

TEST(ServiceDeadlineTest, ShutdownDrainDeadlineBoundsTheJoin) {
  ServiceConfig config;
  config.drain_deadline_ms = 50;
  QueryService service(config);
  auto id = service.OpenSession("//a/text()");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(service.Push(*id, "<r><a>hi</a>").ok());
  // Shutdown must complete even though the document never closed.
  service.Shutdown();
}

TEST(ServiceLimitsTest, ServingLimitsRejectHostileDocumentsPerSession) {
  QueryService service;  // parser_limits defaults to Serving()
  auto hostile = service.OpenSession("//a/text()");
  auto normal = service.OpenSession("//a/text()");
  ASSERT_TRUE(hostile.ok());
  ASSERT_TRUE(normal.ok());

  std::string deep;
  for (int i = 0; i < 5000; ++i) deep += "<d>";
  ASSERT_TRUE(service.Push(*hostile, deep).ok());
  EXPECT_EQ(service.Close(*hostile).code(), StatusCode::kLimitExceeded);

  ASSERT_TRUE(service.Push(*normal, "<r><a>fine</a></r>").ok());
  ASSERT_TRUE(service.Close(*normal).ok());
  EXPECT_EQ(service.Drain(*normal).size(), 1u);

  EXPECT_EQ(service.stats().limit_rejected, 1u);
  EXPECT_NE(service.MetricsText().find("xsq_limit_rejected 1"),
            std::string::npos);
  service.Shutdown();
}

TEST(ServiceCancelTest, ConcurrentCancellationStress) {
  // Many sessions streaming while another thread cancels half of them:
  // no crash, no cross-session contamination, counters consistent.
  ServiceConfig config;
  config.num_workers = 4;
  QueryService service(config);

  constexpr int kSessions = 16;
  std::vector<SessionId> ids;
  for (int i = 0; i < kSessions; ++i) {
    auto id = service.OpenSession("//a/text()");
    ASSERT_TRUE(id.ok());
    ids.push_back(*id);
    ASSERT_TRUE(service.Push(ids.back(), "<r>").ok());
  }
  std::thread canceller([&service, &ids] {
    for (size_t i = 0; i < ids.size(); i += 2) {
      EXPECT_TRUE(service.CancelSession(ids[i]).ok());
    }
  });
  for (int round = 0; round < 8; ++round) {
    for (SessionId id : ids) {
      Status push = service.Push(id, "<a>x</a>");
      // Accepted, or rejected because the session already failed.
      EXPECT_TRUE(push.ok() || push.code() == StatusCode::kCancelled)
          << push.ToString();
    }
  }
  canceller.join();
  for (size_t i = 0; i < ids.size(); ++i) {
    Status ignored = service.Push(ids[i], "</r>");  // frame survivors
    (void)ignored;
    Status status = service.Close(ids[i]);
    if (i % 2 == 0) {
      // The canceller finished before these Closes, so every even
      // session must end cancelled — and only those.
      EXPECT_EQ(status.code(), StatusCode::kCancelled) << "session " << i;
    } else {
      EXPECT_TRUE(status.ok()) << "session " << i << ": "
                               << status.ToString();
      EXPECT_EQ(service.Drain(ids[i]).size(), 8u);
    }
  }
  EXPECT_EQ(service.stats().cancelled, static_cast<uint64_t>(kSessions / 2));
  service.Shutdown();
}

}  // namespace
}  // namespace xsq
